# Empty compiler generated dependencies file for eager_listwalk.
# This may be replaced when dependencies are built.
