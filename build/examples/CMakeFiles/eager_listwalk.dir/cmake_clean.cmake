file(REMOVE_RECURSE
  "CMakeFiles/eager_listwalk.dir/eager_listwalk.cpp.o"
  "CMakeFiles/eager_listwalk.dir/eager_listwalk.cpp.o.d"
  "eager_listwalk"
  "eager_listwalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eager_listwalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
