file(REMOVE_RECURSE
  "CMakeFiles/concurrent_mt.dir/concurrent_mt.cpp.o"
  "CMakeFiles/concurrent_mt.dir/concurrent_mt.cpp.o.d"
  "concurrent_mt"
  "concurrent_mt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
