# Empty compiler generated dependencies file for concurrent_mt.
# This may be replaced when dependencies are built.
