file(REMOVE_RECURSE
  "CMakeFiles/test_queue_ring.dir/test_queue_ring.cc.o"
  "CMakeFiles/test_queue_ring.dir/test_queue_ring.cc.o.d"
  "test_queue_ring"
  "test_queue_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
