# Empty compiler generated dependencies file for test_queue_ring.
# This may be replaced when dependencies are built.
