file(REMOVE_RECURSE
  "CMakeFiles/test_core_func.dir/test_core_func.cc.o"
  "CMakeFiles/test_core_func.dir/test_core_func.cc.o.d"
  "test_core_func"
  "test_core_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
