# Empty dependencies file for test_core_func.
# This may be replaced when dependencies are built.
