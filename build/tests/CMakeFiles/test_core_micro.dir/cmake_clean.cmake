file(REMOVE_RECURSE
  "CMakeFiles/test_core_micro.dir/test_core_micro.cc.o"
  "CMakeFiles/test_core_micro.dir/test_core_micro.cc.o.d"
  "test_core_micro"
  "test_core_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
