# Empty dependencies file for test_core_micro.
# This may be replaced when dependencies are built.
