file(REMOVE_RECURSE
  "CMakeFiles/test_eager.dir/test_eager.cc.o"
  "CMakeFiles/test_eager.dir/test_eager.cc.o.d"
  "test_eager"
  "test_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
