# Empty dependencies file for test_recurrence.
# This may be replaced when dependencies are built.
