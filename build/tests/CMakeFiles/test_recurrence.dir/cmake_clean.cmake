file(REMOVE_RECURSE
  "CMakeFiles/test_recurrence.dir/test_recurrence.cc.o"
  "CMakeFiles/test_recurrence.dir/test_recurrence.cc.o.d"
  "test_recurrence"
  "test_recurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
