
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_matrix.cc" "tests/CMakeFiles/test_matrix.dir/test_matrix.cc.o" "gcc" "tests/CMakeFiles/test_matrix.dir/test_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/smtsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/smtsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/smtsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/smtsim_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smtsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/smtsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/smtsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/smtsim_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/asmr/CMakeFiles/smtsim_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/smtsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smtsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/smtsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
