file(REMOVE_RECURSE
  "CMakeFiles/test_sched_random.dir/test_sched_random.cc.o"
  "CMakeFiles/test_sched_random.dir/test_sched_random.cc.o.d"
  "test_sched_random"
  "test_sched_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
