# Empty compiler generated dependencies file for test_sched_random.
# This may be replaced when dependencies are built.
