# Empty dependencies file for test_schedule_unit.
# This may be replaced when dependencies are built.
