file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_unit.dir/test_schedule_unit.cc.o"
  "CMakeFiles/test_schedule_unit.dir/test_schedule_unit.cc.o.d"
  "test_schedule_unit"
  "test_schedule_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
