# Empty compiler generated dependencies file for bench_doacross.
# This may be replaced when dependencies are built.
