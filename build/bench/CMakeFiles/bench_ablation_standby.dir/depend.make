# Empty dependencies file for bench_ablation_standby.
# This may be replaced when dependencies are built.
