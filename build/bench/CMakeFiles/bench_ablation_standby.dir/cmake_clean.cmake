file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_standby.dir/bench_ablation_standby.cc.o"
  "CMakeFiles/bench_ablation_standby.dir/bench_ablation_standby.cc.o.d"
  "bench_ablation_standby"
  "bench_ablation_standby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_standby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
