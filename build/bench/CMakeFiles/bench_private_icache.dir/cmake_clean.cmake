file(REMOVE_RECURSE
  "CMakeFiles/bench_private_icache.dir/bench_private_icache.cc.o"
  "CMakeFiles/bench_private_icache.dir/bench_private_icache.cc.o.d"
  "bench_private_icache"
  "bench_private_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_private_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
