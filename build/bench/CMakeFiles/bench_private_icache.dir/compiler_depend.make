# Empty compiler generated dependencies file for bench_private_icache.
# This may be replaced when dependencies are built.
