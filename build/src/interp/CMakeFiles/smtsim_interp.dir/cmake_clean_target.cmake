file(REMOVE_RECURSE
  "libsmtsim_interp.a"
)
