file(REMOVE_RECURSE
  "CMakeFiles/smtsim_interp.dir/interpreter.cc.o"
  "CMakeFiles/smtsim_interp.dir/interpreter.cc.o.d"
  "libsmtsim_interp.a"
  "libsmtsim_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
