# Empty dependencies file for smtsim_interp.
# This may be replaced when dependencies are built.
