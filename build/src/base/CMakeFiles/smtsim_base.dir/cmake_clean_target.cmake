file(REMOVE_RECURSE
  "libsmtsim_base.a"
)
