file(REMOVE_RECURSE
  "CMakeFiles/smtsim_base.dir/logging.cc.o"
  "CMakeFiles/smtsim_base.dir/logging.cc.o.d"
  "CMakeFiles/smtsim_base.dir/stats.cc.o"
  "CMakeFiles/smtsim_base.dir/stats.cc.o.d"
  "CMakeFiles/smtsim_base.dir/strutil.cc.o"
  "CMakeFiles/smtsim_base.dir/strutil.cc.o.d"
  "CMakeFiles/smtsim_base.dir/table.cc.o"
  "CMakeFiles/smtsim_base.dir/table.cc.o.d"
  "libsmtsim_base.a"
  "libsmtsim_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
