# Empty compiler generated dependencies file for smtsim_base.
# This may be replaced when dependencies are built.
