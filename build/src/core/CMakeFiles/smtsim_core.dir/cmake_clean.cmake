file(REMOVE_RECURSE
  "CMakeFiles/smtsim_core.dir/processor.cc.o"
  "CMakeFiles/smtsim_core.dir/processor.cc.o.d"
  "CMakeFiles/smtsim_core.dir/queue_ring.cc.o"
  "CMakeFiles/smtsim_core.dir/queue_ring.cc.o.d"
  "CMakeFiles/smtsim_core.dir/schedule.cc.o"
  "CMakeFiles/smtsim_core.dir/schedule.cc.o.d"
  "libsmtsim_core.a"
  "libsmtsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
