file(REMOVE_RECURSE
  "libsmtsim_core.a"
)
