# Empty compiler generated dependencies file for smtsim_core.
# This may be replaced when dependencies are built.
