file(REMOVE_RECURSE
  "libsmtsim_baseline.a"
)
