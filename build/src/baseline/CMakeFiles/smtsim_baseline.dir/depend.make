# Empty dependencies file for smtsim_baseline.
# This may be replaced when dependencies are built.
