file(REMOVE_RECURSE
  "CMakeFiles/smtsim_baseline.dir/baseline.cc.o"
  "CMakeFiles/smtsim_baseline.dir/baseline.cc.o.d"
  "libsmtsim_baseline.a"
  "libsmtsim_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
