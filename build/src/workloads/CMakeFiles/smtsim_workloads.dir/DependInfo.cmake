
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bsearch.cc" "src/workloads/CMakeFiles/smtsim_workloads.dir/bsearch.cc.o" "gcc" "src/workloads/CMakeFiles/smtsim_workloads.dir/bsearch.cc.o.d"
  "/root/repo/src/workloads/listwalk.cc" "src/workloads/CMakeFiles/smtsim_workloads.dir/listwalk.cc.o" "gcc" "src/workloads/CMakeFiles/smtsim_workloads.dir/listwalk.cc.o.d"
  "/root/repo/src/workloads/livermore.cc" "src/workloads/CMakeFiles/smtsim_workloads.dir/livermore.cc.o" "gcc" "src/workloads/CMakeFiles/smtsim_workloads.dir/livermore.cc.o.d"
  "/root/repo/src/workloads/matmul.cc" "src/workloads/CMakeFiles/smtsim_workloads.dir/matmul.cc.o" "gcc" "src/workloads/CMakeFiles/smtsim_workloads.dir/matmul.cc.o.d"
  "/root/repo/src/workloads/radiosity.cc" "src/workloads/CMakeFiles/smtsim_workloads.dir/radiosity.cc.o" "gcc" "src/workloads/CMakeFiles/smtsim_workloads.dir/radiosity.cc.o.d"
  "/root/repo/src/workloads/raytrace.cc" "src/workloads/CMakeFiles/smtsim_workloads.dir/raytrace.cc.o" "gcc" "src/workloads/CMakeFiles/smtsim_workloads.dir/raytrace.cc.o.d"
  "/root/repo/src/workloads/recurrence.cc" "src/workloads/CMakeFiles/smtsim_workloads.dir/recurrence.cc.o" "gcc" "src/workloads/CMakeFiles/smtsim_workloads.dir/recurrence.cc.o.d"
  "/root/repo/src/workloads/stencil.cc" "src/workloads/CMakeFiles/smtsim_workloads.dir/stencil.cc.o" "gcc" "src/workloads/CMakeFiles/smtsim_workloads.dir/stencil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmr/CMakeFiles/smtsim_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/smtsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smtsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/smtsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
