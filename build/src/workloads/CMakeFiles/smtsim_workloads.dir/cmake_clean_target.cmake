file(REMOVE_RECURSE
  "libsmtsim_workloads.a"
)
