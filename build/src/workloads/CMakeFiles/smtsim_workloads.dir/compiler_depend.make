# Empty compiler generated dependencies file for smtsim_workloads.
# This may be replaced when dependencies are built.
