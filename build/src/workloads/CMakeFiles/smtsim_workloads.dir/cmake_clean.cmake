file(REMOVE_RECURSE
  "CMakeFiles/smtsim_workloads.dir/bsearch.cc.o"
  "CMakeFiles/smtsim_workloads.dir/bsearch.cc.o.d"
  "CMakeFiles/smtsim_workloads.dir/listwalk.cc.o"
  "CMakeFiles/smtsim_workloads.dir/listwalk.cc.o.d"
  "CMakeFiles/smtsim_workloads.dir/livermore.cc.o"
  "CMakeFiles/smtsim_workloads.dir/livermore.cc.o.d"
  "CMakeFiles/smtsim_workloads.dir/matmul.cc.o"
  "CMakeFiles/smtsim_workloads.dir/matmul.cc.o.d"
  "CMakeFiles/smtsim_workloads.dir/radiosity.cc.o"
  "CMakeFiles/smtsim_workloads.dir/radiosity.cc.o.d"
  "CMakeFiles/smtsim_workloads.dir/raytrace.cc.o"
  "CMakeFiles/smtsim_workloads.dir/raytrace.cc.o.d"
  "CMakeFiles/smtsim_workloads.dir/recurrence.cc.o"
  "CMakeFiles/smtsim_workloads.dir/recurrence.cc.o.d"
  "CMakeFiles/smtsim_workloads.dir/stencil.cc.o"
  "CMakeFiles/smtsim_workloads.dir/stencil.cc.o.d"
  "libsmtsim_workloads.a"
  "libsmtsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
