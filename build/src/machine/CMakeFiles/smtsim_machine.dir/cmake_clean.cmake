file(REMOVE_RECURSE
  "CMakeFiles/smtsim_machine.dir/machine.cc.o"
  "CMakeFiles/smtsim_machine.dir/machine.cc.o.d"
  "libsmtsim_machine.a"
  "libsmtsim_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
