file(REMOVE_RECURSE
  "libsmtsim_machine.a"
)
