# Empty compiler generated dependencies file for smtsim_machine.
# This may be replaced when dependencies are built.
