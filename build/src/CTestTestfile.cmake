# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("isa")
subdirs("mem")
subdirs("asmr")
subdirs("machine")
subdirs("interp")
subdirs("baseline")
subdirs("core")
subdirs("sched")
subdirs("trace")
subdirs("workloads")
subdirs("harness")
