file(REMOVE_RECURSE
  "libsmtsim_asm.a"
)
