file(REMOVE_RECURSE
  "CMakeFiles/smtsim_asm.dir/assembler.cc.o"
  "CMakeFiles/smtsim_asm.dir/assembler.cc.o.d"
  "CMakeFiles/smtsim_asm.dir/program.cc.o"
  "CMakeFiles/smtsim_asm.dir/program.cc.o.d"
  "libsmtsim_asm.a"
  "libsmtsim_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
