# Empty compiler generated dependencies file for smtsim_asm.
# This may be replaced when dependencies are built.
