file(REMOVE_RECURSE
  "libsmtsim_isa.a"
)
