
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/dataop.cc" "src/isa/CMakeFiles/smtsim_isa.dir/dataop.cc.o" "gcc" "src/isa/CMakeFiles/smtsim_isa.dir/dataop.cc.o.d"
  "/root/repo/src/isa/insn.cc" "src/isa/CMakeFiles/smtsim_isa.dir/insn.cc.o" "gcc" "src/isa/CMakeFiles/smtsim_isa.dir/insn.cc.o.d"
  "/root/repo/src/isa/op.cc" "src/isa/CMakeFiles/smtsim_isa.dir/op.cc.o" "gcc" "src/isa/CMakeFiles/smtsim_isa.dir/op.cc.o.d"
  "/root/repo/src/isa/semantics.cc" "src/isa/CMakeFiles/smtsim_isa.dir/semantics.cc.o" "gcc" "src/isa/CMakeFiles/smtsim_isa.dir/semantics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/smtsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
