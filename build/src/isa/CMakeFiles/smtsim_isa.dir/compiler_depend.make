# Empty compiler generated dependencies file for smtsim_isa.
# This may be replaced when dependencies are built.
