file(REMOVE_RECURSE
  "CMakeFiles/smtsim_isa.dir/dataop.cc.o"
  "CMakeFiles/smtsim_isa.dir/dataop.cc.o.d"
  "CMakeFiles/smtsim_isa.dir/insn.cc.o"
  "CMakeFiles/smtsim_isa.dir/insn.cc.o.d"
  "CMakeFiles/smtsim_isa.dir/op.cc.o"
  "CMakeFiles/smtsim_isa.dir/op.cc.o.d"
  "CMakeFiles/smtsim_isa.dir/semantics.cc.o"
  "CMakeFiles/smtsim_isa.dir/semantics.cc.o.d"
  "libsmtsim_isa.a"
  "libsmtsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
