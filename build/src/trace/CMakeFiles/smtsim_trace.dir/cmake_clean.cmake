file(REMOVE_RECURSE
  "CMakeFiles/smtsim_trace.dir/synth.cc.o"
  "CMakeFiles/smtsim_trace.dir/synth.cc.o.d"
  "CMakeFiles/smtsim_trace.dir/trace.cc.o"
  "CMakeFiles/smtsim_trace.dir/trace.cc.o.d"
  "libsmtsim_trace.a"
  "libsmtsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
