file(REMOVE_RECURSE
  "libsmtsim_trace.a"
)
