
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/synth.cc" "src/trace/CMakeFiles/smtsim_trace.dir/synth.cc.o" "gcc" "src/trace/CMakeFiles/smtsim_trace.dir/synth.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/smtsim_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/smtsim_trace.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmr/CMakeFiles/smtsim_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/smtsim_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/smtsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smtsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/smtsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
