# Empty dependencies file for smtsim_trace.
# This may be replaced when dependencies are built.
