file(REMOVE_RECURSE
  "libsmtsim_mem.a"
)
