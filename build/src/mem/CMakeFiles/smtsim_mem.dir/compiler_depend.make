# Empty compiler generated dependencies file for smtsim_mem.
# This may be replaced when dependencies are built.
