file(REMOVE_RECURSE
  "CMakeFiles/smtsim_mem.dir/cache.cc.o"
  "CMakeFiles/smtsim_mem.dir/cache.cc.o.d"
  "CMakeFiles/smtsim_mem.dir/memory.cc.o"
  "CMakeFiles/smtsim_mem.dir/memory.cc.o.d"
  "libsmtsim_mem.a"
  "libsmtsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
