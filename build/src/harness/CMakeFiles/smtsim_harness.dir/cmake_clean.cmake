file(REMOVE_RECURSE
  "CMakeFiles/smtsim_harness.dir/analytic.cc.o"
  "CMakeFiles/smtsim_harness.dir/analytic.cc.o.d"
  "CMakeFiles/smtsim_harness.dir/runner.cc.o"
  "CMakeFiles/smtsim_harness.dir/runner.cc.o.d"
  "libsmtsim_harness.a"
  "libsmtsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
