# Empty dependencies file for smtsim_harness.
# This may be replaced when dependencies are built.
