file(REMOVE_RECURSE
  "libsmtsim_harness.a"
)
