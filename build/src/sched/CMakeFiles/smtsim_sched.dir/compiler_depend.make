# Empty compiler generated dependencies file for smtsim_sched.
# This may be replaced when dependencies are built.
