file(REMOVE_RECURSE
  "CMakeFiles/smtsim_sched.dir/ddg.cc.o"
  "CMakeFiles/smtsim_sched.dir/ddg.cc.o.d"
  "CMakeFiles/smtsim_sched.dir/list_scheduler.cc.o"
  "CMakeFiles/smtsim_sched.dir/list_scheduler.cc.o.d"
  "CMakeFiles/smtsim_sched.dir/standby_scheduler.cc.o"
  "CMakeFiles/smtsim_sched.dir/standby_scheduler.cc.o.d"
  "libsmtsim_sched.a"
  "libsmtsim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
