file(REMOVE_RECURSE
  "libsmtsim_sched.a"
)
