# Empty dependencies file for smtsim-run.
# This may be replaced when dependencies are built.
