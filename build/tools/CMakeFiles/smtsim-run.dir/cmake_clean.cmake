file(REMOVE_RECURSE
  "CMakeFiles/smtsim-run.dir/smtsim_run.cc.o"
  "CMakeFiles/smtsim-run.dir/smtsim_run.cc.o.d"
  "smtsim-run"
  "smtsim-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
