# Empty compiler generated dependencies file for smtsim-run.
# This may be replaced when dependencies are built.
