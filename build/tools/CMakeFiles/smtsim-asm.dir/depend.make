# Empty dependencies file for smtsim-asm.
# This may be replaced when dependencies are built.
