file(REMOVE_RECURSE
  "CMakeFiles/smtsim-asm.dir/smtsim_asm.cc.o"
  "CMakeFiles/smtsim-asm.dir/smtsim_asm.cc.o.d"
  "smtsim-asm"
  "smtsim-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
