# Empty compiler generated dependencies file for smtsim-isadoc.
# This may be replaced when dependencies are built.
