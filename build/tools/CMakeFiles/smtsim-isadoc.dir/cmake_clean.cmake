file(REMOVE_RECURSE
  "CMakeFiles/smtsim-isadoc.dir/smtsim_isadoc.cc.o"
  "CMakeFiles/smtsim-isadoc.dir/smtsim_isadoc.cc.o.d"
  "smtsim-isadoc"
  "smtsim-isadoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtsim-isadoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
