
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/smtsim_isadoc.cc" "tools/CMakeFiles/smtsim-isadoc.dir/smtsim_isadoc.cc.o" "gcc" "tools/CMakeFiles/smtsim-isadoc.dir/smtsim_isadoc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/smtsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/smtsim_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/smtsim_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
