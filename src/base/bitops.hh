/**
 * @file
 * Bit-manipulation helpers used by the instruction encoder/decoder.
 */

#ifndef SMTSIM_BASE_BITOPS_HH
#define SMTSIM_BASE_BITOPS_HH

#include <cstdint>

namespace smtsim
{

/**
 * Extract the bit field [hi:lo] (inclusive, hi >= lo) from @p value.
 */
constexpr std::uint32_t
bits(std::uint32_t value, int hi, int lo)
{
    const std::uint32_t width = static_cast<std::uint32_t>(hi - lo + 1);
    const std::uint32_t mask =
        width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
    return (value >> lo) & mask;
}

/**
 * Return @p value with the bit field [hi:lo] replaced by @p field.
 * Bits of @p field above the field width are ignored.
 */
constexpr std::uint32_t
insertBits(std::uint32_t value, int hi, int lo, std::uint32_t field)
{
    const std::uint32_t width = static_cast<std::uint32_t>(hi - lo + 1);
    const std::uint32_t mask =
        width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
    return (value & ~(mask << lo)) |
           ((field & mask) << lo);
}

/**
 * Sign-extend the low @p width bits of @p value to a signed 32-bit
 * integer.
 */
constexpr std::int32_t
sext(std::uint32_t value, int width)
{
    const std::uint32_t shift = static_cast<std::uint32_t>(32 - width);
    return static_cast<std::int32_t>(value << shift) >>
           static_cast<std::int32_t>(shift);
}

/** True iff @p value fits in a signed @p width-bit immediate. */
constexpr bool
fitsSigned(std::int64_t value, int width)
{
    const std::int64_t lo = -(std::int64_t{1} << (width - 1));
    const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** True iff @p value fits in an unsigned @p width-bit immediate. */
constexpr bool
fitsUnsigned(std::int64_t value, int width)
{
    return value >= 0 && value < (std::int64_t{1} << width);
}

} // namespace smtsim

#endif // SMTSIM_BASE_BITOPS_HH
