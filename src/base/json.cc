#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace smtsim
{

// ----------------------------------------------------------------
// Value accessors
// ----------------------------------------------------------------

void
Json::set(const std::string &key, Json value)
{
    if (type_ != Type::Object)
        throw JsonParseError("set() on non-object");
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(value);
            return;
        }
    }
    obj_.emplace_back(key, std::move(value));
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &kv : obj_) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *j = find(key);
    if (!j)
        throw JsonParseError("missing member \"" + key + "\"");
    return *j;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    static const std::vector<std::pair<std::string, Json>> empty;
    return type_ == Type::Object ? obj_ : empty;
}

void
Json::push(Json value)
{
    if (type_ != Type::Array)
        throw JsonParseError("push() on non-array");
    arr_.push_back(std::move(value));
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    if (type_ != Type::Array || i >= arr_.size())
        throw JsonParseError("array index out of range");
    return arr_[i];
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        throw JsonParseError("not a bool");
    return bool_;
}

std::int64_t
Json::asInt() const
{
    if (type_ == Type::Int)
        return int_;
    if (type_ == Type::Double)
        return static_cast<std::int64_t>(dbl_);
    throw JsonParseError("not a number");
}

std::uint64_t
Json::asU64() const
{
    return static_cast<std::uint64_t>(asInt());
}

double
Json::asDouble() const
{
    if (type_ == Type::Int)
        return static_cast<double>(int_);
    if (type_ == Type::Double)
        return dbl_;
    throw JsonParseError("not a number");
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        throw JsonParseError("not a string");
    return str_;
}

// ----------------------------------------------------------------
// Writer
// ----------------------------------------------------------------

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
newlineIndent(std::ostream &os, int indent, int depth)
{
    if (indent <= 0)
        return;
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
Json::writeImpl(std::ostream &os, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Int:
        os << int_;
        break;
      case Type::Double: {
        if (!std::isfinite(dbl_)) {
            os << "null";   // JSON has no inf/nan
            break;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
        os << buf;
        break;
      }
      case Type::String:
        os << '"' << jsonEscape(str_) << '"';
        break;
      case Type::Array: {
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                os << ',';
            newlineIndent(os, indent, depth + 1);
            arr_[i].writeImpl(os, indent, depth + 1);
        }
        if (!arr_.empty())
            newlineIndent(os, indent, depth);
        os << ']';
        break;
      }
      case Type::Object: {
        os << '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                os << ',';
            newlineIndent(os, indent, depth + 1);
            os << '"' << jsonEscape(obj_[i].first) << "\":";
            if (indent > 0)
                os << ' ';
            obj_[i].second.writeImpl(os, indent, depth + 1);
        }
        if (!obj_.empty())
            newlineIndent(os, indent, depth);
        os << '}';
        break;
      }
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeImpl(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream oss;
    write(oss, indent);
    return oss.str();
}

// ----------------------------------------------------------------
// Parser (recursive descent)
// ----------------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json
    document()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw JsonParseError("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + what,
                             pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    Json
    value()
    {
        skipWs();
        const char c = peek();
        switch (c) {
          case '{': return objectValue();
          case '[': return arrayValue();
          case '"': return Json(stringValue());
          case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null"))
                return Json();
            fail("bad literal");
          default:
            return numberValue();
        }
    }

    /**
     * Bound container recursion: deeply nested input must fail with
     * a diagnostic, not exhaust the host stack.
     */
    struct DepthGuard
    {
        explicit DepthGuard(Parser &p) : parser(p)
        {
            if (++parser.depth_ > Json::kMaxParseDepth)
                parser.fail("nesting deeper than " +
                            std::to_string(Json::kMaxParseDepth) +
                            " levels");
        }
        ~DepthGuard() { --parser.depth_; }
        Parser &parser;
    };

    Json
    objectValue()
    {
        const DepthGuard guard(*this);
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWs();
            std::string key = stringValue();
            skipWs();
            expect(':');
            obj.set(key, value());
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return obj;
            }
            fail("expected ',' or '}'");
        }
    }

    Json
    arrayValue()
    {
        const DepthGuard guard(*this);
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(value());
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return arr;
            }
            fail("expected ',' or ']'");
        }
    }

    std::string
    stringValue()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            c = text_[pos_++];
            switch (c) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode (surrogate pairs not recombined;
                // cache records only ever escape control chars).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 |
                                             ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Json
    numberValue()
    {
        const std::size_t start = pos_;
        bool is_double = false;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '.' || text_[pos_] == 'e' ||
             text_[pos_] == 'E')) {
            is_double = true;
            while (pos_ < text_.size() &&
                   (std::isdigit(static_cast<unsigned char>(
                        text_[pos_])) ||
                    text_[pos_] == '.' || text_[pos_] == 'e' ||
                    text_[pos_] == 'E' || text_[pos_] == '+' ||
                    text_[pos_] == '-'))
                ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string tok(text_.substr(start, pos_ - start));
        try {
            if (is_double)
                return Json(std::stod(tok));
            return Json(static_cast<long long>(std::stoll(tok)));
        } catch (const std::exception &) {
            // Integer overflow (e.g. > 2^63): keep it as a double.
            try {
                return Json(std::stod(tok));
            } catch (const std::exception &) {
                fail("bad number \"" + tok + "\"");
            }
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

Json
Json::parse(std::string_view text)
{
    return Parser(text).document();
}

} // namespace smtsim
