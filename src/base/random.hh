/**
 * @file
 * Deterministic pseudo-random number generator (xorshift64*) so that
 * workload generation is reproducible across hosts and standard
 * library versions.
 */

#ifndef SMTSIM_BASE_RANDOM_HH
#define SMTSIM_BASE_RANDOM_HH

#include <cstdint>

namespace smtsim
{

/** xorshift64* PRNG; identical sequences on every platform. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @p bound must be positive. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    nextRange(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

  private:
    std::uint64_t state_;
};

} // namespace smtsim

#endif // SMTSIM_BASE_RANDOM_HH
