/**
 * @file
 * Error and status reporting in the gem5 spirit: panic() for simulator
 * bugs, fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef SMTSIM_BASE_LOGGING_HH
#define SMTSIM_BASE_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace smtsim
{

/** Thrown by panic(): an internal invariant of the simulator broke. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user supplied a bad program/configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace logging
{

/** Verbosity for warn()/inform(); tests may silence output. */
enum class Level { Quiet, Warnings, Verbose };

/** Get/set the global verbosity (default: Warnings). */
Level verbosity();
void setVerbosity(Level level);

void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

/** Concatenate any streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace logging

/**
 * Report an internal simulator bug and abort the simulation by
 * throwing PanicError. Use when a condition can only arise from a bug
 * in smtsim itself, never from user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError("panic: " +
                     logging::concat(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user error (bad assembly, impossible
 * configuration) by throwing FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError("fatal: " +
                     logging::concat(std::forward<Args>(args)...));
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    logging::emitWarn(logging::concat(std::forward<Args>(args)...));
}

/** Informative status message (printed only in Verbose mode). */
template <typename... Args>
void
inform(Args &&...args)
{
    logging::emitInform(logging::concat(std::forward<Args>(args)...));
}

/** panic() unless the given invariant holds. */
#define SMTSIM_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::smtsim::panic("assertion '", #cond, "' failed: ",           \
                            __VA_ARGS__);                                 \
        }                                                                 \
    } while (0)

} // namespace smtsim

#endif // SMTSIM_BASE_LOGGING_HH
