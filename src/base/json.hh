/**
 * @file
 * Minimal JSON value type: enough of RFC 8259 to write and read the
 * experiment-engine's result records (`.smtsim-cache/`), the
 * ResultSet exports, and `smtsim-run --json`. Objects preserve
 * insertion order so serialization is deterministic.
 */

#ifndef SMTSIM_BASE_JSON_HH
#define SMTSIM_BASE_JSON_HH

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smtsim
{

/**
 * Thrown by Json::parse on malformed input and by the typed
 * accessors on shape mismatches. For parse failures offset() is the
 * byte position the parser rejected (<= input size) and what()
 * spells it out; accessor errors carry offset() == npos.
 */
class JsonParseError : public std::runtime_error
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    explicit JsonParseError(const std::string &what,
                            std::size_t offset = npos)
        : std::runtime_error(what), offset_(offset)
    {}

    /** Byte offset of a parse failure; npos for accessor errors. */
    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

class Json
{
  public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(int v) : type_(Type::Int), int_(v) {}
    Json(long v) : type_(Type::Int), int_(v) {}
    Json(long long v) : type_(Type::Int), int_(v) {}
    Json(unsigned v) : type_(Type::Int), int_(v) {}
    Json(unsigned long v)
        : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
    Json(unsigned long long v)
        : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
    Json(double v) : type_(Type::Double), dbl_(v) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json object() { Json j; j.type_ = Type::Object; return j; }
    static Json array() { Json j; j.type_ = Type::Array; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Double;
    }

    // -- object ---------------------------------------------------
    /** Insert or overwrite a member (value must be an Object). */
    void set(const std::string &key, Json value);
    /** Member lookup; nullptr when absent (or not an Object). */
    const Json *find(const std::string &key) const;
    /** Member lookup that throws JsonParseError when absent. */
    const Json &at(const std::string &key) const;

    /** Object members in insertion order; empty for non-objects. */
    const std::vector<std::pair<std::string, Json>> &members() const;

    // -- array ----------------------------------------------------
    void push(Json value);
    std::size_t size() const;
    const Json &at(std::size_t i) const;

    // -- scalars --------------------------------------------------
    bool asBool() const;
    std::int64_t asInt() const;
    std::uint64_t asU64() const;
    double asDouble() const;
    const std::string &asString() const;

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;
    void write(std::ostream &os, int indent = 0) const;

    /**
     * Parse one JSON document. Malformed, truncated or overly
     * nested (> kMaxParseDepth) input throws JsonParseError with
     * the failing byte offset — parsing never crashes, whatever the
     * bytes (tests/test_json.cc fuzzes this contract).
     */
    static Json parse(std::string_view text);

    /** Container-nesting bound enforced by parse(). */
    static constexpr int kMaxParseDepth = 192;

  private:
    void writeImpl(std::ostream &os, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** JSON string escaping (quotes not included). */
std::string jsonEscape(std::string_view s);

} // namespace smtsim

#endif // SMTSIM_BASE_JSON_HH
