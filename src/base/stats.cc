#include "stats.hh"

namespace smtsim
{
namespace stats
{

void
Group::dump(std::ostream &os) const
{
    for (const auto &[key, value] : counters_) {
        if (!name_.empty())
            os << name_ << '.';
        os << key << ' ' << value << '\n';
    }
}

double
utilizationPercent(std::uint64_t invocations, std::uint64_t issue_latency,
                   std::uint64_t total_cycles)
{
    if (total_cycles == 0)
        return 0.0;
    return 100.0 * static_cast<double>(invocations * issue_latency) /
           static_cast<double>(total_cycles);
}

} // namespace stats
} // namespace smtsim
