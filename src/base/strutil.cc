#include "strutil.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace smtsim
{

std::string
trim(std::string_view s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return std::string(s.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
parseInt(std::string_view s, long long *out)
{
    const std::string t = trim(s);
    if (t.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(t.c_str(), &end, 0);
    if (errno != 0 || end != t.c_str() + t.size())
        return false;
    *out = v;
    return true;
}

bool
parseUint(std::string_view s, unsigned long long *out)
{
    const std::string t = trim(s);
    if (t.empty() || t[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(t.c_str(), &end, 0);
    if (errno != 0 || end != t.c_str() + t.size())
        return false;
    *out = v;
    return true;
}

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace smtsim
