/**
 * @file
 * ASCII table formatter used by the benchmark harness to print the
 * paper's tables.
 */

#ifndef SMTSIM_BASE_TABLE_HH
#define SMTSIM_BASE_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace smtsim
{

/**
 * A simple right-padded text table. The first added row is the
 * header; a separator line is drawn under it.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "")
        : title_(std::move(title))
    {}

    /** Append a row of cells. */
    void addRow(std::vector<std::string> cells);

    /** Render the whole table to @p os. */
    void print(std::ostream &os) const;

    /** Render to a string (handy for tests). */
    std::string str() const;

  private:
    std::string title_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace smtsim

#endif // SMTSIM_BASE_TABLE_HH
