/**
 * @file
 * FNV-1a hashing used for content-addressed cache keys. The hash is
 * part of the on-disk cache format (`smtsim::lab`), so the
 * constants and the byte order must never change silently; bump
 * `lab::kCacheSchemaVersion` instead if they do.
 */

#ifndef SMTSIM_BASE_HASH_HH
#define SMTSIM_BASE_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace smtsim
{

constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/** Incremental 64-bit FNV-1a. */
class Fnv1a
{
  public:
    void
    add(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            state_ ^= p[i];
            state_ *= kFnv1aPrime;
        }
    }

    void add(std::string_view s) { add(s.data(), s.size()); }

    std::uint64_t digest() const { return state_; }

  private:
    std::uint64_t state_ = kFnv1aOffset;
};

/** One-shot 64-bit FNV-1a over a byte string. */
inline std::uint64_t
fnv1a(std::string_view s)
{
    Fnv1a h;
    h.add(s);
    return h.digest();
}

/** Fixed-width lower-case hex rendering (16 digits). */
inline std::string
hashToHex(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

} // namespace smtsim

#endif // SMTSIM_BASE_HASH_HH
