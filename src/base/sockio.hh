/**
 * @file
 * Unix-domain socket plumbing for the simulation service
 * (smtsim::serve) and its clients: RAII file descriptors, a
 * listener/connector pair, EINTR-safe full writes and a buffered
 * line reader with poll()-based timeouts.
 *
 * Everything here speaks bytes; framing above this layer is
 * newline-delimited JSON (serve/protocol.hh). On sockets SIGPIPE is
 * never raised (writes use MSG_NOSIGNAL) and a vanished peer
 * surfaces as an ordinary error return. writeAll/LineReader also
 * accept pipe fds (the worker-process transport), where
 * MSG_NOSIGNAL does not exist — pipe users must ignore SIGPIPE
 * themselves (WorkerPool does).
 */

#ifndef SMTSIM_BASE_SOCKIO_HH
#define SMTSIM_BASE_SOCKIO_HH

#include <string>
#include <string_view>
#include <utility>

namespace smtsim
{

/** Move-only owner of one file descriptor (-1 = empty). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Fd &
    operator=(Fd &&o) noexcept
    {
        if (this != &o) {
            reset();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    bool valid() const { return fd_ >= 0; }
    int get() const { return fd_; }
    int release() { return std::exchange(fd_, -1); }
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Bind + listen on a unix stream socket at @p path. A stale socket
 * file (no live listener — probed with a connect) is unlinked
 * first; a path owned by a *running* process is refused rather
 * than hijacked. @return listening fd, or invalid with *error set.
 */
Fd listenUnix(const std::string &path, std::string *error,
              int backlog = 128);

/** Connect to a unix stream socket; invalid + *error on failure. */
Fd connectUnix(const std::string &path, std::string *error);

/** accept(2) on a listener; invalid on error/shutdown. */
Fd acceptConn(const Fd &listener);

/**
 * Write the whole buffer, retrying on EINTR/short writes, raising
 * no SIGPIPE. @return false on any write error (peer gone).
 */
bool writeAll(const Fd &fd, std::string_view data);

/** Result of one LineReader::readLine call. */
enum class ReadStatus
{
    Ok,         ///< a full line was delivered (newline stripped)
    Eof,        ///< orderly shutdown before a complete line
    Timeout,    ///< timeout_ms elapsed with no complete line
    Error       ///< read error / peer reset
};

/**
 * Buffered reader that yields '\n'-terminated lines from a socket.
 * One reader per fd; not thread-safe (each connection has a single
 * reading thread).
 */
class LineReader
{
  public:
    /** @param fd borrowed; must outlive the reader. */
    explicit LineReader(const Fd &fd) : fd_(&fd) {}

    /**
     * Block until a full line arrives, EOF, error, or @p timeout_ms
     * elapses (-1 = wait forever). On Ok, *line holds the line
     * without its trailing newline. Oversized lines (> 64 MiB) are
     * treated as errors — no request is legitimately that large.
     */
    ReadStatus readLine(std::string *line, int timeout_ms = -1);

  private:
    const Fd *fd_;
    std::string buf_;
    std::size_t scanned_ = 0;   ///< prefix of buf_ known newline-free
};

/**
 * Raise RLIMIT_NOFILE's soft limit toward the hard limit (capped at
 * @p want). Best-effort: the daemon and the load generator both
 * juggle thousands of sockets and the default soft limit of 1024 is
 * too small. @return the resulting soft limit.
 */
long raiseFdLimit(long want = 16384);

} // namespace smtsim

#endif // SMTSIM_BASE_SOCKIO_HH
