#include "table.hh"

#include <algorithm>
#include <sstream>

namespace smtsim
{

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    if (!title_.empty())
        os << title_ << '\n';
    if (rows_.empty())
        return;

    size_t cols = 0;
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<size_t> width(cols, 0);
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "| ";
        for (size_t c = 0; c < cols; ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            os << cell << std::string(width[c] - cell.size(), ' ');
            os << " | ";
        }
        os << '\n';
    };

    print_row(rows_.front());
    os << '|';
    for (size_t c = 0; c < cols; ++c)
        os << std::string(width[c] + 2, '-') << '|';
    os << '\n';
    for (size_t r = 1; r < rows_.size(); ++r)
        print_row(rows_[r]);
}

std::string
TextTable::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace smtsim
