#include "logging.hh"

#include <iostream>

namespace smtsim
{
namespace logging
{

namespace
{
Level global_level = Level::Warnings;
} // namespace

Level
verbosity()
{
    return global_level;
}

void
setVerbosity(Level level)
{
    global_level = level;
}

void
emitWarn(const std::string &msg)
{
    if (global_level >= Level::Warnings)
        std::cerr << "warn: " << msg << std::endl;
}

void
emitInform(const std::string &msg)
{
    if (global_level >= Level::Verbose)
        std::cerr << "info: " << msg << std::endl;
}

} // namespace logging
} // namespace smtsim
