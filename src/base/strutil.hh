/**
 * @file
 * Small string helpers shared by the assembler and the table printer.
 */

#ifndef SMTSIM_BASE_STRUTIL_HH
#define SMTSIM_BASE_STRUTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace smtsim
{

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view s);

/** Split @p s at every occurrence of @p sep (separators not kept). */
std::vector<std::string> split(std::string_view s, char sep);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** True iff @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** printf-style float formatting with fixed precision. */
std::string formatDouble(double v, int precision);

/**
 * Strict signed-integer parse: the whole (trimmed) string must be a
 * decimal integer (optional leading +/-, or 0x-prefixed hex).
 * @return false on empty/garbage/overflow; *out untouched.
 */
bool parseInt(std::string_view s, long long *out);

/** Strict unsigned parse (decimal or 0x hex); rejects '-'. */
bool parseUint(std::string_view s, unsigned long long *out);

} // namespace smtsim

#endif // SMTSIM_BASE_STRUTIL_HH
