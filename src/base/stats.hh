/**
 * @file
 * Minimal statistics package: named scalar counters grouped per
 * component, in the spirit of gem5's stats. Groups can be dumped as
 * text and queried programmatically by the benchmark harness.
 */

#ifndef SMTSIM_BASE_STATS_HH
#define SMTSIM_BASE_STATS_HH

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

namespace smtsim
{
namespace stats
{

/**
 * A group of named scalar statistics. Counters are created lazily on
 * first access and iterate in name order, which keeps dumps
 * deterministic.
 */
class Group
{
  public:
    explicit Group(std::string name = "") : name_(std::move(name)) {}

    /**
     * Mutable reference to the counter @p key (created at zero).
     * Heterogeneous lookup: a string-literal call site allocates a
     * std::string only on the first access, when the counter node
     * is created. The reference stays valid for the lifetime of
     * the group (std::map nodes are stable) — hot paths resolve it
     * once and bump the referenced value directly.
     */
    std::uint64_t &
    counter(std::string_view key)
    {
        auto it = counters_.find(key);
        if (it == counters_.end())
            it = counters_.emplace(std::string(key), 0).first;
        return it->second;
    }

    /** Read-only lookup; returns 0 for unknown counters. */
    std::uint64_t
    get(std::string_view key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second;
    }

    bool
    has(std::string_view key) const
    {
        return counters_.find(key) != counters_.end();
    }

    /** Name the group was constructed with. */
    const std::string &name() const { return name_; }

    const std::map<std::string, std::uint64_t, std::less<>> &
    all() const
    {
        return counters_;
    }

    void reset() { counters_.clear(); }

    /** Dump "name.key value" lines to @p os. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    /** std::less<> enables find() on string_view without a
     *  temporary std::string. */
    std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/**
 * Power-of-two-bucket histogram of non-negative integer samples
 * (wall times, cycle counts, queue depths — quantities spanning
 * orders of magnitude). Bucket 0 holds the value 0; bucket i >= 1
 * holds [2^(i-1), 2^i). add() is O(1) and allocation-free, so
 * recording under a mutex on a service hot path is fine.
 */
class Histogram
{
  public:
    /** Bucket count: value 0 plus one bucket per u64 bit. */
    static constexpr int kBuckets = 65;

    void
    add(std::uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        ++count_;
        sum_ += v;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Bucket index a value lands in (0..64). */
    static int
    bucketOf(std::uint64_t v)
    {
        return std::bit_width(v);
    }

    /** Inclusive lower bound of bucket @p i. */
    static std::uint64_t
    bucketLo(int i)
    {
        return i == 0 ? 0 : 1ull << (i - 1);
    }

    /** Inclusive upper bound of bucket @p i (capped at u64 max). */
    static std::uint64_t
    bucketHi(int i)
    {
        if (i == 0)
            return 0;
        if (i >= 64)
            return ~0ull;
        return (1ull << i) - 1;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }
    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    const std::array<std::uint64_t, kBuckets> &
    buckets() const
    {
        return buckets_;
    }

    void
    reset()
    {
        buckets_.fill(0);
        count_ = sum_ = min_ = max_ = 0;
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Functional-unit utilization exactly as defined in the paper's
 * section 1: U = N * L / T * 100 [%], where N is the number of
 * invocations, L the issue latency and T the total cycles.
 */
double utilizationPercent(std::uint64_t invocations,
                          std::uint64_t issue_latency,
                          std::uint64_t total_cycles);

} // namespace stats
} // namespace smtsim

#endif // SMTSIM_BASE_STATS_HH
