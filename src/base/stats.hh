/**
 * @file
 * Minimal statistics package: named scalar counters grouped per
 * component, in the spirit of gem5's stats. Groups can be dumped as
 * text and queried programmatically by the benchmark harness.
 */

#ifndef SMTSIM_BASE_STATS_HH
#define SMTSIM_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace smtsim
{
namespace stats
{

/**
 * A group of named scalar statistics. Counters are created lazily on
 * first access and iterate in name order, which keeps dumps
 * deterministic.
 */
class Group
{
  public:
    explicit Group(std::string name = "") : name_(std::move(name)) {}

    /** Mutable reference to the counter @p key (created at zero). */
    std::uint64_t &
    counter(const std::string &key)
    {
        return counters_[key];
    }

    /** Read-only lookup; returns 0 for unknown counters. */
    std::uint64_t
    get(const std::string &key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second;
    }

    bool
    has(const std::string &key) const
    {
        return counters_.find(key) != counters_.end();
    }

    /** Name the group was constructed with. */
    const std::string &name() const { return name_; }

    const std::map<std::string, std::uint64_t> &
    all() const
    {
        return counters_;
    }

    void reset() { counters_.clear(); }

    /** Dump "name.key value" lines to @p os. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Functional-unit utilization exactly as defined in the paper's
 * section 1: U = N * L / T * 100 [%], where N is the number of
 * invocations, L the issue latency and T the total cycles.
 */
double utilizationPercent(std::uint64_t invocations,
                          std::uint64_t issue_latency,
                          std::uint64_t total_cycles);

} // namespace stats
} // namespace smtsim

#endif // SMTSIM_BASE_STATS_HH
