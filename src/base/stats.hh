/**
 * @file
 * Minimal statistics package: named scalar counters grouped per
 * component, in the spirit of gem5's stats. Groups can be dumped as
 * text and queried programmatically by the benchmark harness.
 */

#ifndef SMTSIM_BASE_STATS_HH
#define SMTSIM_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

namespace smtsim
{
namespace stats
{

/**
 * A group of named scalar statistics. Counters are created lazily on
 * first access and iterate in name order, which keeps dumps
 * deterministic.
 */
class Group
{
  public:
    explicit Group(std::string name = "") : name_(std::move(name)) {}

    /**
     * Mutable reference to the counter @p key (created at zero).
     * Heterogeneous lookup: a string-literal call site allocates a
     * std::string only on the first access, when the counter node
     * is created. The reference stays valid for the lifetime of
     * the group (std::map nodes are stable) — hot paths resolve it
     * once and bump the referenced value directly.
     */
    std::uint64_t &
    counter(std::string_view key)
    {
        auto it = counters_.find(key);
        if (it == counters_.end())
            it = counters_.emplace(std::string(key), 0).first;
        return it->second;
    }

    /** Read-only lookup; returns 0 for unknown counters. */
    std::uint64_t
    get(std::string_view key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second;
    }

    bool
    has(std::string_view key) const
    {
        return counters_.find(key) != counters_.end();
    }

    /** Name the group was constructed with. */
    const std::string &name() const { return name_; }

    const std::map<std::string, std::uint64_t, std::less<>> &
    all() const
    {
        return counters_;
    }

    void reset() { counters_.clear(); }

    /** Dump "name.key value" lines to @p os. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    /** std::less<> enables find() on string_view without a
     *  temporary std::string. */
    std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/**
 * Functional-unit utilization exactly as defined in the paper's
 * section 1: U = N * L / T * 100 [%], where N is the number of
 * invocations, L the issue latency and T the total cycles.
 */
double utilizationPercent(std::uint64_t invocations,
                          std::uint64_t issue_latency,
                          std::uint64_t total_cycles);

} // namespace stats
} // namespace smtsim

#endif // SMTSIM_BASE_STATS_HH
