#include "sockio.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace smtsim
{

namespace
{

constexpr std::size_t kMaxLineBytes = 64u << 20;

/** Picks the right interpretation of strerror_r's result for both
 *  the XSI (int return) and GNU (char* return) signatures; exactly
 *  one overload is instantiated per platform. */
[[maybe_unused]] const char *
strerrorResult(int rc, const char *buf)
{
    return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char *
strerrorResult(const char *msg, const char *)
{
    return msg;
}

/** Thread-safe errno formatting: sockio errors surface from the
 *  serve daemon's accept/reader/dispatcher threads, so the shared
 *  static buffer of plain strerror() is off limits. */
std::string
errnoString(const char *what)
{
    char buf[128] = {};
    return std::string(what) + ": " +
           strerrorResult(strerror_r(errno, buf, sizeof(buf)), buf);
}

/** Fill a sockaddr_un; false when the path does not fit. */
bool
makeAddr(const std::string &path, sockaddr_un *addr)
{
    if (path.empty() || path.size() >= sizeof(addr->sun_path))
        return false;
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

void
Fd::reset()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

Fd
listenUnix(const std::string &path, std::string *error, int backlog)
{
    sockaddr_un addr;
    if (!makeAddr(path, &addr)) {
        if (error)
            *error = "socket path \"" + path +
                     "\" is empty or too long for AF_UNIX";
        return Fd();
    }
    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) {
        if (error)
            *error = errnoString("socket");
        return Fd();
    }
    // A previous daemon may have left its socket file behind, but
    // an unconditional unlink would silently hijack a *live*
    // daemon's socket (stranding its clients on the orphaned
    // inode). Probe with a connect: success means the path has a
    // living owner — refuse; ECONNREFUSED means nobody is
    // listening and the stale file is safe to remove.
    {
        Fd probe(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
        if (probe.valid()) {
            int rc;
            do {
                rc = ::connect(probe.get(),
                               reinterpret_cast<sockaddr *>(&addr),
                               sizeof(addr));
            } while (rc != 0 && errno == EINTR);
            if (rc == 0) {
                if (error)
                    *error = "socket " + path +
                             " is in use by a running process "
                             "(refusing to hijack it)";
                return Fd();
            }
            if (errno == ECONNREFUSED)
                ::unlink(path.c_str());
            // ENOENT: nothing to clean up. Anything else (a
            // non-socket file, a permission problem): leave the
            // path alone and let bind report the conflict.
        }
    }
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        if (error)
            *error = errnoString(("bind " + path).c_str());
        return Fd();
    }
    if (::listen(fd.get(), backlog) != 0) {
        if (error)
            *error = errnoString("listen");
        return Fd();
    }
    return fd;
}

Fd
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!makeAddr(path, &addr)) {
        if (error)
            *error = "socket path \"" + path +
                     "\" is empty or too long for AF_UNIX";
        return Fd();
    }
    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) {
        if (error)
            *error = errnoString("socket");
        return Fd();
    }
    int rc;
    do {
        rc = ::connect(fd.get(),
                       reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        if (error)
            *error = errnoString(("connect " + path).c_str());
        return Fd();
    }
    return fd;
}

Fd
acceptConn(const Fd &listener)
{
    while (true) {
        const int fd = ::accept4(listener.get(), nullptr, nullptr,
                                 SOCK_CLOEXEC);
        if (fd >= 0)
            return Fd(fd);
        if (errno != EINTR)
            return Fd();
    }
}

bool
writeAll(const Fd &fd, std::string_view data)
{
    const char *p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
        // send(MSG_NOSIGNAL) suppresses SIGPIPE on sockets; pipes
        // (worker stdin/stdout) reject send with ENOTSOCK, so fall
        // back to write — pipe users must ignore SIGPIPE.
        ssize_t n = ::send(fd.get(), p, left, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd.get(), p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    return true;
}

ReadStatus
LineReader::readLine(std::string *line, int timeout_ms)
{
    while (true) {
        // Scan only bytes not inspected by a previous call.
        const std::size_t nl = buf_.find('\n', scanned_);
        if (nl != std::string::npos) {
            line->assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            scanned_ = 0;
            return ReadStatus::Ok;
        }
        scanned_ = buf_.size();
        if (buf_.size() > kMaxLineBytes)
            return ReadStatus::Error;

        pollfd pfd{fd_->get(), POLLIN, 0};
        int rc;
        do {
            rc = ::poll(&pfd, 1, timeout_ms);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0)
            return ReadStatus::Error;
        if (rc == 0)
            return ReadStatus::Timeout;

        char chunk[4096];
        ssize_t n;
        do {
            n = ::recv(fd_->get(), chunk, sizeof(chunk), 0);
            if (n < 0 && errno == ENOTSOCK)
                n = ::read(fd_->get(), chunk, sizeof(chunk));
        } while (n < 0 && errno == EINTR);
        if (n < 0)
            return ReadStatus::Error;
        if (n == 0)
            return ReadStatus::Eof;
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

long
raiseFdLimit(long want)
{
    rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) != 0)
        return -1;
    const rlim_t target =
        lim.rlim_max == RLIM_INFINITY
            ? static_cast<rlim_t>(want)
            : std::min<rlim_t>(static_cast<rlim_t>(want),
                               lim.rlim_max);
    if (lim.rlim_cur < target) {
        rlimit raised = lim;
        raised.rlim_cur = target;
        if (::setrlimit(RLIMIT_NOFILE, &raised) == 0)
            lim = raised;
    }
    return static_cast<long>(lim.rlim_cur);
}

} // namespace smtsim
