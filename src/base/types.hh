/**
 * @file
 * Fundamental scalar types shared by every smtsim module.
 */

#ifndef SMTSIM_BASE_TYPES_HH
#define SMTSIM_BASE_TYPES_HH

#include <cstdint>
#include <limits>

namespace smtsim
{

/** Simulated cycle count. Cycle 0 is the first simulated cycle. */
using Cycle = std::uint64_t;

/** Byte address in the simulated flat memory space. */
using Addr = std::uint32_t;

/** Architectural register index (0..31 for both int and FP files). */
using RegIndex = std::uint8_t;

/** Thread-slot (logical processor) index within a physical processor. */
using SlotId = int;

/** Context-frame index (concurrent multithreading). */
using FrameId = int;

/** Sentinel for "no cycle" / "not scheduled yet". */
constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Number of architectural registers per file (int and FP alike). */
constexpr int kNumRegs = 32;

/** Size in bytes of one encoded instruction. */
constexpr Addr kInsnBytes = 4;

} // namespace smtsim

#endif // SMTSIM_BASE_TYPES_HH
