/**
 * @file
 * Client for the simulation service: connect, submit, stream.
 *
 * A Client owns one connection and is strictly sequential — one
 * request in flight at a time, owned by one thread. The server may
 * interleave a submission's "accepted" event with early results
 * (different server threads write them), so submitAndWait() accepts
 * events in any order until the terminal one.
 */

#ifndef SMTSIM_SERVE_CLIENT_HH
#define SMTSIM_SERVE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/sockio.hh"
#include "lab/result.hh"
#include "lab/spec.hh"
#include "serve/protocol.hh"

namespace smtsim::serve
{

/** Everything one submission produced. */
struct SubmitOutcome
{
    /**
     * Terminal status: "done" (all results in), "rejected",
     * "overloaded", or "disconnected" (server went away / event
     * stream broke before completion).
     */
    std::string status;
    std::string error;          ///< for rejected/overloaded
    std::size_t jobs = 0;       ///< grid points accepted
    std::size_t failures = 0;
    std::size_t cache_hits = 0;
    std::size_t coalesced = 0;
    std::vector<lab::JobResult> results;
    /** Parallel to results: "sim", "cache" or "dedup". */
    std::vector<std::string> sources;

    bool done() const { return status == "done"; }
    bool overloaded() const { return status == "overloaded"; }
};

class Client
{
  public:
    Client() = default;

    /** Connect to the daemon's unix socket. */
    bool connect(const std::string &socket_path,
                 std::string *error);
    bool connected() const { return fd_.valid(); }
    void close();

    /**
     * Submit @p spec under client-chosen id @p id and block until
     * the submission resolves. @p timeout_ms bounds each event
     * gap, not the whole run (-1 = no bound).
     */
    SubmitOutcome submitAndWait(const std::string &id,
                                const lab::ExperimentSpec &spec,
                                int timeout_ms = -1);

    /** Round-trip a ping. */
    bool ping(std::string *error, int timeout_ms = 5000);

    /** Fetch the daemon's stats object. */
    bool stats(Json *out, std::string *error,
               int timeout_ms = 5000);

    /** Ask the daemon to shut down; waits for the "bye" ack. */
    bool shutdownServer(std::string *error, int timeout_ms = 5000);

    /** Send a raw request line (tests exercise bad input). */
    bool sendRaw(const std::string &line);

    /**
     * Read + parse the next event. Malformed lines surface as
     * status Error.
     */
    ReadStatus readEvent(Event *ev, int timeout_ms = -1);

  private:
    Fd fd_;
    std::unique_ptr<LineReader> reader_;
};

} // namespace smtsim::serve

#endif // SMTSIM_SERVE_CLIENT_HH
