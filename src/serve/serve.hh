/**
 * @file
 * Umbrella header for smtsim::serve — the long-running simulation
 * service: NDJSON-over-unix-socket protocol, bounded fair admission
 * queue, single-flight dedup, crash-isolated worker pool, daemon
 * core and client. See docs/SERVE.md for the operational guide.
 */

#ifndef SMTSIM_SERVE_SERVE_HH
#define SMTSIM_SERVE_SERVE_HH

#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"
#include "serve/server.hh"
#include "serve/singleflight.hh"
#include "serve/worker.hh"

#endif // SMTSIM_SERVE_SERVE_HH
