/**
 * @file
 * Bounded admission queue with round-robin fair scheduling across
 * clients.
 *
 * One greedy connection submitting a 10,000-point sweep must not
 * starve a one-job client that arrives a moment later, so the queue
 * keeps one FIFO bucket per client and pops by rotating a cursor
 * over the non-empty buckets: each client gets one job dispatched
 * per round. Within a client, jobs stay in submission order.
 *
 * The total depth is bounded; admission is all-or-nothing per batch
 * so a submission is either fully queued or explicitly shed
 * (protocol "overloaded"), never half-accepted.
 *
 * NOT thread-safe by design: the server serializes access under its
 * scheduling mutex, which also covers the single-flight table — the
 * two structures must be updated atomically with respect to each
 * other (singleflight.hh).
 */

#ifndef SMTSIM_SERVE_QUEUE_HH
#define SMTSIM_SERVE_QUEUE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "lab/spec.hh"

namespace smtsim::serve
{

/** One unit of queued work (cache key precomputed at admission). */
struct QueuedJob
{
    lab::Job job;
    std::string key;            ///< job.cacheKey()
};

class FairQueue
{
  public:
    explicit FairQueue(std::size_t max_depth)
        : max_depth_(max_depth)
    {}

    std::size_t maxDepth() const { return max_depth_; }
    std::size_t depth() const { return depth_; }

    /** Would a batch of @p n jobs fit right now? */
    bool canAccept(std::size_t n) const
    {
        return depth_ + n <= max_depth_;
    }

    /**
     * Enqueue a whole batch for @p client. All-or-nothing: when the
     * batch does not fit, nothing is queued and false is returned
     * (the caller sheds the submission).
     */
    bool pushBatch(std::uint64_t client,
                   std::vector<QueuedJob> batch);

    /**
     * Pop the next job in round-robin client order.
     * @return false when the queue is empty.
     */
    bool pop(QueuedJob *out);

  private:
    struct Bucket
    {
        std::uint64_t client;
        std::deque<QueuedJob> jobs;
    };

    std::size_t max_depth_;
    std::size_t depth_ = 0;
    /** Non-empty buckets in rotation order; cursor_ points at the
     *  bucket that pops next. */
    std::vector<Bucket> buckets_;
    std::size_t cursor_ = 0;
};

} // namespace smtsim::serve

#endif // SMTSIM_SERVE_QUEUE_HH
