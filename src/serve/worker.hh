/**
 * @file
 * Process pool executing simulation jobs in isolation.
 *
 * Each worker is a forked+exec'd child (the daemon re-executes its
 * own binary with `--worker`) speaking the NDJSON worker protocol
 * on its stdin/stdout. Process isolation is the point: a config
 * that crashes, corrupts memory or livelocks the simulator takes
 * down one child, not the daemon — the pool kills it, restarts a
 * fresh one, and retries the job with exponential backoff up to a
 * bounded attempt count. Deterministic simulation failures (budget
 * exhaustion, verification mismatch) are results, not crashes, and
 * are never retried.
 */

#ifndef SMTSIM_SERVE_WORKER_HH
#define SMTSIM_SERVE_WORKER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/sockio.hh"
#include "lab/result.hh"
#include "lab/spec.hh"

namespace smtsim::serve
{

/** Pool configuration. */
struct WorkerOptions
{
    /**
     * Worker command line, e.g. {"/proc/self/exe", "--worker"}.
     * Empty argv means "this executable with --worker appended".
     */
    std::vector<std::string> argv;
    /** Per-attempt wall-clock budget; <= 0 disables the watchdog. */
    double job_timeout_seconds = 300.0;
    /** Retries after a crash/hang (attempts = 1 + max_retries). */
    int max_retries = 2;
    /** First retry delay; doubles per subsequent retry. */
    double backoff_seconds = 0.05;
};

/** How one dispatch attempt on a worker ended. */
enum class RunOutcome
{
    Ok,         ///< clean result round trip (result may be ok=false)
    Crashed,    ///< worker died / broke protocol — retry elsewhere
    Timeout     ///< worker exceeded the job budget — do not retry
};

/**
 * One worker child process. Not thread-safe; the pool hands a
 * worker to exactly one dispatcher at a time.
 */
class WorkerProcess
{
  public:
    explicit WorkerProcess(const std::vector<std::string> &argv);
    ~WorkerProcess();

    WorkerProcess(const WorkerProcess &) = delete;
    WorkerProcess &operator=(const WorkerProcess &) = delete;

    bool alive() const { return pid_ > 0; }
    int pid() const { return pid_; }

    /**
     * Ship @p job, await its result line. On Ok *out is filled
     * (possibly an ok=false simulation failure). On Crashed or
     * Timeout *why describes what happened and the child must be
     * killed and replaced by the caller.
     */
    RunOutcome run(const lab::Job &job, double timeout_seconds,
                   lab::JobResult *out, std::string *why);

    /** SIGKILL + reap (idempotent). */
    void kill();

  private:
    bool spawn(const std::vector<std::string> &argv);

    int pid_ = -1;
    Fd to_child_;       ///< write end of the child's stdin
    Fd from_child_;     ///< read end of the child's stdout
    std::unique_ptr<LineReader> reader_;
};

/** Aggregate pool counters (monotonic). */
struct WorkerPoolStats
{
    std::uint64_t executed = 0;     ///< jobs run to a clean result
    std::uint64_t retries = 0;      ///< re-dispatches after crashes
    std::uint64_t restarts = 0;     ///< worker processes replaced
};

class WorkerPool
{
  public:
    WorkerPool(int num_workers, WorkerOptions opts);
    ~WorkerPool();

    /**
     * Execute @p job on some worker, blocking until a worker is
     * free and the job resolves. Crash/hang attempts are retried
     * per WorkerOptions; when attempts are exhausted the returned
     * result is ok=false describing the failure. Thread-safe.
     */
    lab::JobResult execute(const lab::Job &job);

    /** Live worker pids (for crash-injection tests and ops). */
    std::vector<int> pids() const;

    WorkerPoolStats stats() const;

    /** Kill every worker; subsequent execute() calls fail fast. */
    void shutdown();

  private:
    std::unique_ptr<WorkerProcess> checkout();
    void checkin(std::unique_ptr<WorkerProcess> worker);

    WorkerOptions opts_;
    int num_workers_;

    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::vector<std::unique_ptr<WorkerProcess>> idle_;
    /** Pids of checked-out workers (kept for pids()). */
    std::vector<int> busy_pids_;
    bool shutdown_ = false;

    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> retries_{0};
    std::atomic<std::uint64_t> restarts_{0};
};

/**
 * Worker-mode main loop: read job lines on stdin, write result
 * lines on stdout until EOF. @return process exit code.
 */
int workerMain();

/** Absolute path of the running executable (/proc/self/exe). */
std::string selfExecutablePath();

} // namespace smtsim::serve

#endif // SMTSIM_SERVE_WORKER_HH
