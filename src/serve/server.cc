#include "server.hh"

#include <chrono>
#include <set>

#include <sys/socket.h>

#include <poll.h>

#include "analysis/lint.hh"
#include "base/hash.hh"
#include "lab/executor.hh"
#include "lab/spec_json.hh"
#include "serve/protocol.hh"

namespace smtsim::serve
{

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_dir, opts_.cache_max_bytes),
      queue_(opts_.queue_max)
{
    if (opts_.num_workers <= 0) {
        opts_.num_workers = static_cast<int>(
            std::thread::hardware_concurrency());
        if (opts_.num_workers <= 0)
            opts_.num_workers = 1;
    }
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *error)
{
    listener_ = listenUnix(opts_.socket_path, error);
    if (!listener_.valid())
        return false;

    WorkerOptions wopts;
    wopts.argv = opts_.worker_argv;
    wopts.job_timeout_seconds = opts_.job_timeout_seconds;
    wopts.max_retries = opts_.max_retries;
    wopts.backoff_seconds = opts_.backoff_seconds;
    pool_ = std::make_unique<WorkerPool>(opts_.num_workers,
                                         std::move(wopts));

    dispatchers_.reserve(opts_.num_workers);
    for (int i = 0; i < opts_.num_workers; ++i)
        dispatchers_.emplace_back([this] { dispatchLoop(); });
    accept_thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [&] { return stop_requested_; });
}

bool
Server::waitFor(int timeout_ms)
{
    std::unique_lock<std::mutex> lock(stop_mutex_);
    return stop_cv_.wait_for(lock,
                             std::chrono::milliseconds(timeout_ms),
                             [&] { return stop_requested_; });
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        if (stopped_)
            return;
        stopped_ = true;
        stop_requested_ = true;
        stop_cv_.notify_all();
    }
    stopping_.store(true, std::memory_order_release);

    // Unblock everything: dispatchers waiting for work, workers
    // mid-checkout, readers blocked in poll, the accept loop (it
    // polls the listener with a timeout and re-checks stopping_).
    work_cv_.notify_all();
    if (pool_)
        pool_->shutdown();
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        for (auto &[id, conn] : conns_)
            ::shutdown(conn->fd.get(), SHUT_RDWR);
    }

    if (accept_thread_.joinable())
        accept_thread_.join();
    for (std::thread &t : dispatchers_)
        t.join();
    dispatchers_.clear();

    {
        std::unique_lock<std::mutex> lock(conns_mutex_);
        readers_done_.wait(lock,
                           [&] { return active_readers_ == 0; });
        conns_.clear();
    }
    listener_.reset();
}

void
Server::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        struct pollfd pfd = {listener_.get(), POLLIN, 0};
        const int rv = ::poll(&pfd, 1, 250);
        if (rv <= 0)
            continue;       // timeout or EINTR: re-check stopping_
        Fd fd = acceptConn(listener_);
        if (!fd.valid())
            continue;

        auto conn = std::make_shared<Connection>();
        conn->fd = std::move(fd);
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            if (stopping_.load(std::memory_order_acquire)) {
                // Lost the race with stop(): don't strand a reader
                // on a socket nobody will shut down.
                break;
            }
            conn->id = next_conn_id_++;
            conns_[conn->id] = conn;
            ++active_readers_;
        }
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.connections;
        }
        std::thread([this, conn] { readerLoop(conn); }).detach();
    }
}

void
Server::readerLoop(std::shared_ptr<Connection> conn)
{
    LineReader reader(conn->fd);
    std::string line;
    while (!stopping_.load(std::memory_order_acquire)) {
        const ReadStatus st = reader.readLine(&line);
        if (st != ReadStatus::Ok)
            break;
        handleLine(conn, line);
    }
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conns_.erase(conn->id);
        --active_readers_;
        readers_done_.notify_all();
    }
}

void
Server::handleLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line)
{
    std::string op;
    Json request;
    try {
        request = Json::parse(line);
        if (request.at("v").asInt() != kProtocolVersion) {
            sendTo(conn->id,
                   eventError("unsupported protocol version"));
            return;
        }
        op = request.at("op").asString();
    } catch (const JsonParseError &e) {
        sendTo(conn->id,
               eventError(std::string("bad request: ") + e.what()));
        return;
    }

    if (op == "ping") {
        sendTo(conn->id, eventPong());
    } else if (op == "stats") {
        sendTo(conn->id, eventStats(statsJson()));
    } else if (op == "shutdown") {
        sendTo(conn->id, eventBye());
        std::lock_guard<std::mutex> lock(stop_mutex_);
        stop_requested_ = true;
        stop_cv_.notify_all();
    } else if (op == "submit") {
        handleSubmit(conn, request);
    } else {
        sendTo(conn->id, eventError("unknown op: " + op));
    }
}

namespace
{

/** Thread-slot count the job's engine actually runs with (the
 *  cross-slot lint rules project the program onto it). */
int
jobSlots(const lab::Job &job)
{
    switch (job.engine) {
      case lab::EngineKind::Baseline:
        return 1;
      case lab::EngineKind::Interp:
        return job.interp_threads;
      case lab::EngineKind::Core:
      case lab::EngineKind::Machine:
        return job.core.num_slots;
    }
    return 1;
}

/** Content fingerprint of an assembled program image. */
std::string
programFingerprint(const Program &prog)
{
    Fnv1a h;
    h.add(&prog.text_base, sizeof(prog.text_base));
    if (!prog.text.empty())
        h.add(prog.text.data(),
              prog.text.size() * sizeof(prog.text[0]));
    h.add(&prog.data_base, sizeof(prog.data_base));
    if (!prog.data.empty())
        h.add(prog.data.data(), prog.data.size());
    h.add(&prog.entry, sizeof(prog.entry));
    return hashToHex(h.digest());
}

} // namespace

bool
Server::admitLint(const std::vector<lab::Job> &jobs,
                  std::string *why)
{
    // (workload, slots) pairs already handled this submission; a
    // sweep expands one workload into hundreds of grid cells and
    // must instantiate it once, not per cell.
    std::set<std::string> seen;
    for (const lab::Job &job : jobs) {
        const int slots = jobSlots(job);
        if (!seen
                 .insert(job.workload.canonical() + "@" +
                         std::to_string(slots))
                 .second)
            continue;

        Workload w;
        try {
            w = lab::instantiate(job.workload);
        } catch (const std::exception &) {
            // Unknown kinds/params surface through the expand or
            // worker path with their own error reporting.
            continue;
        }
        const std::string key = programFingerprint(w.program) +
                                "@" + std::to_string(slots);

        bool cached = false;
        std::string verdict;
        {
            std::lock_guard<std::mutex> lock(lint_mutex_);
            const auto it = lint_verdicts_.find(key);
            if (it != lint_verdicts_.end()) {
                cached = true;
                verdict = it->second;
            }
        }
        if (cached) {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.lint_cache_hits;
        } else {
            analysis::LintOptions lopts;
            lopts.slots = slots;
            const analysis::LintReport lr =
                analysis::lint(w.program, lopts);
            if (lr.hasErrors()) {
                // Same rendering as smtsim-lint / smtsim-run
                // --lint: "<file>:<line>:<col>: <severity>: ..."
                verdict = "lint rejected workload " +
                          job.workload.canonical() + ":\n" +
                          analysis::formatText(
                              lr, job.workload.kind + ".s");
            }
            std::lock_guard<std::mutex> lock(lint_mutex_);
            lint_verdicts_[key] = verdict;
        }
        if (!verdict.empty()) {
            *why = verdict;
            return false;
        }
    }
    return true;
}

void
Server::handleSubmit(const std::shared_ptr<Connection> &conn,
                     const Json &request)
{
    std::string id;
    std::vector<lab::Job> jobs;
    try {
        id = request.at("id").asString();
        const lab::ExperimentSpec spec =
            lab::experimentSpecFromJson(request.at("spec"));
        jobs = spec.expand();
    } catch (const std::exception &e) {
        // Not just JsonParseError: expand() throws
        // std::invalid_argument (empty axis, duplicate grid point),
        // and any escape from this detached thread would
        // std::terminate() the daemon.
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.rejected;
        }
        sendTo(conn->id, eventRejected(id, e.what()));
        return;
    }
    if (jobs.empty()) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.rejected;
        }
        sendTo(conn->id,
               eventRejected(id, "spec expands to zero jobs"));
        return;
    }

    // Admission lint gate: a program the static verifier can prove
    // deadlocks (or is otherwise broken) must not consume a queue
    // slot or a worker. Runs before any cache probe so rejection
    // cost is one lint per distinct workload, amortized by the
    // fingerprint verdict cache across submissions.
    if (opts_.lint_admission) {
        std::string lint_why;
        if (!admitLint(jobs, &lint_why)) {
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.rejected;
                ++stats_.lint_rejected;
            }
            sendTo(conn->id, eventRejected(id, lint_why));
            return;
        }
    }

    // Probe the cache before taking the scheduling lock: hits
    // stream back without consuming queue capacity, and disk reads
    // must not serialize admission.
    std::vector<lab::JobResult> hits;
    std::vector<QueuedJob> misses;
    for (const lab::Job &job : jobs) {
        lab::JobResult r;
        if (cache_.load(job, &r)) {
            hits.push_back(std::move(r));
        } else {
            misses.push_back({job, job.cacheKey()});
        }
    }

    std::uint64_t token = 0;
    std::size_t shed_depth = 0;
    bool shed = false;
    std::string reject_why;
    {
        std::lock_guard<std::mutex> lock(sched_mutex_);
        // Only misses that are not already in flight consume a
        // queue slot, so bound exactly those — a warm-cache or
        // heavily-coalesced sweep of any size must stay admissible.
        // Check and admission share this lock scope so the decision
        // is atomic; the socket write happens after release.
        std::set<std::string> new_keys;
        for (const QueuedJob &qj : misses)
            if (!flights_.inFlight(qj.key))
                new_keys.insert(qj.key);
        const std::size_t slots_needed = new_keys.size();
        if (slots_needed > queue_.maxDepth()) {
            // Even an empty queue could not hold this: permanent,
            // so reject rather than shed as transient load.
            reject_why = "spec has " +
                         std::to_string(slots_needed) +
                         " uncached jobs, queue holds " +
                         std::to_string(queue_.maxDepth());
        } else if (!queue_.canAccept(slots_needed)) {
            shed = true;
            shed_depth = queue_.depth();
        } else {
            token = next_submission_++;
            Submission &sub = submissions_[token];
            sub.conn = conn->id;
            sub.id = id;
            sub.total = jobs.size();
            sub.pending = jobs.size();

            std::vector<QueuedJob> batch;
            for (QueuedJob &qj : misses) {
                const bool leader =
                    flights_.join(qj.key, {token, qj.job.id});
                if (leader)
                    batch.push_back(std::move(qj));
            }
            if (!batch.empty()) {
                queue_.pushBatch(conn->id, std::move(batch));
                work_cv_.notify_all();
            }
        }
    }
    if (!reject_why.empty()) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.rejected;
        }
        sendTo(conn->id, eventRejected(id, reject_why));
        return;
    }
    if (shed) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.overloaded;
        }
        sendTo(conn->id,
               eventOverloaded(id,
                               "queue full, resubmit with backoff",
                               shed_depth, opts_.queue_max));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.submissions;
        stats_.jobs_submitted += jobs.size();
        stats_.cache_hits += hits.size();
    }

    sendTo(conn->id, eventAccepted(id, jobs.size()));

    // Stream admission-time cache hits; the last one may complete
    // the submission.
    for (lab::JobResult &r : hits) {
        sendTo(conn->id, eventResult(id, r, "cache"));
        std::string done_line;
        {
            std::lock_guard<std::mutex> lock(sched_mutex_);
            auto it = submissions_.find(token);
            if (it == submissions_.end())
                break;
            Submission &sub = it->second;
            ++sub.cache_hits;
            if (!r.ok)
                ++sub.failures;
            if (--sub.pending == 0) {
                done_line =
                    eventDone(sub.id, sub.total, sub.failures,
                              sub.cache_hits, sub.coalesced);
                submissions_.erase(it);
            }
        }
        if (!done_line.empty())
            sendTo(conn->id, done_line);
    }
}

void
Server::dispatchLoop()
{
    while (true) {
        QueuedJob qj;
        std::size_t depth_at_pop = 0;
        {
            std::unique_lock<std::mutex> lock(sched_mutex_);
            work_cv_.wait(lock, [&] {
                return stopping_.load(std::memory_order_acquire) ||
                       queue_.depth() > 0;
            });
            if (stopping_.load(std::memory_order_acquire))
                return;
            depth_at_pop = queue_.depth();
            if (!queue_.pop(&qj))
                continue;
        }
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            hists_.queue_depth.add(depth_at_pop);
        }

        // Another client may have completed this key between our
        // admission probe and now — the flight table only dedups
        // concurrent work, the cache dedups across time.
        lab::JobResult result;
        std::string source;
        if (cache_.load(qj.job, &result)) {
            source = "cache";
        } else {
            result = pool_->execute(qj.job);
            source = "sim";
            // Store before publishing so a probe that misses the
            // flight table (we're about to clear it) hits the
            // cache instead.
            if (result.ok)
                cache_.store(qj.job, result);
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.executed;
            ++stats_.cache_misses;
            hists_.wall_ms.add(static_cast<std::uint64_t>(
                result.wall_seconds * 1000.0));
            hists_.sim_cycles.add(result.stats.cycles);
        }
        publish(qj.key, result, source);
    }
}

void
Server::publish(const std::string &key,
                const lab::JobResult &result,
                const std::string &source)
{
    struct Delivery
    {
        std::uint64_t conn;
        std::string line;
    };
    std::vector<Delivery> deliveries;
    std::size_t coalesced = 0;

    {
        std::lock_guard<std::mutex> lock(sched_mutex_);
        const std::vector<Waiter> waiters = flights_.take(key);
        for (std::size_t i = 0; i < waiters.size(); ++i) {
            const Waiter &w = waiters[i];
            auto it = submissions_.find(w.submission);
            if (it == submissions_.end())
                continue;
            Submission &sub = it->second;

            lab::JobResult r = result;
            r.id = w.job_id;    // same content, caller's label
            const std::string src = i == 0 ? source : "dedup";
            if (i > 0) {
                ++sub.coalesced;
                ++coalesced;
            } else if (source == "cache") {
                ++sub.cache_hits;
            }
            if (!r.ok)
                ++sub.failures;
            deliveries.push_back(
                {sub.conn, eventResult(sub.id, r, src)});
            if (--sub.pending == 0) {
                deliveries.push_back(
                    {sub.conn,
                     eventDone(sub.id, sub.total, sub.failures,
                               sub.cache_hits, sub.coalesced)});
                submissions_.erase(it);
            }
        }
    }
    if (coalesced > 0 || source == "cache") {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.coalesced += coalesced;
        if (source == "cache")
            ++stats_.cache_hits;
    }
    for (const Delivery &d : deliveries)
        sendTo(d.conn, d.line);
}

void
Server::sendTo(std::uint64_t conn_id, const std::string &line)
{
    std::shared_ptr<Connection> conn;
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        auto it = conns_.find(conn_id);
        if (it == conns_.end())
            return;             // client left; drop the event
        conn = it->second;
    }
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    writeAll(conn->fd, line);
}

ServerStats
Server::stats() const
{
    ServerStats s;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        s = stats_;
    }
    if (pool_) {
        const WorkerPoolStats ps = pool_->stats();
        s.retries = ps.retries;
        s.worker_restarts = ps.restarts;
    }
    return s;
}

ServerHistograms
Server::histograms() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return hists_;
}

namespace
{

/** Render one histogram as the JSON shape of the stats payload:
 *  scalars plus the non-empty log2 buckets. */
Json
histogramJson(const stats::Histogram &h)
{
    Json j = Json::object();
    j.set("count", Json(h.count()));
    j.set("sum", Json(h.sum()));
    j.set("min", Json(h.min()));
    j.set("max", Json(h.max()));
    Json buckets = Json::array();
    for (int i = 0; i < stats::Histogram::kBuckets; ++i) {
        if (h.buckets()[i] == 0)
            continue;
        Json b = Json::object();
        b.set("lo", Json(stats::Histogram::bucketLo(i)));
        b.set("hi", Json(stats::Histogram::bucketHi(i)));
        b.set("n", Json(h.buckets()[i]));
        buckets.push(std::move(b));
    }
    j.set("buckets", std::move(buckets));
    return j;
}

} // namespace

Json
Server::statsJson() const
{
    const ServerStats s = stats();
    Json j = Json::object();
    j.set("connections", Json(s.connections));
    j.set("submissions", Json(s.submissions));
    j.set("jobs_submitted", Json(s.jobs_submitted));
    j.set("executed", Json(s.executed));
    j.set("cache_hits", Json(s.cache_hits));
    j.set("cache_misses", Json(s.cache_misses));
    j.set("coalesced", Json(s.coalesced));
    j.set("overloaded", Json(s.overloaded));
    j.set("rejected", Json(s.rejected));
    j.set("lint_rejected", Json(s.lint_rejected));
    j.set("lint_cache_hits", Json(s.lint_cache_hits));
    j.set("retries", Json(s.retries));
    j.set("worker_restarts", Json(s.worker_restarts));
    {
        std::lock_guard<std::mutex> lock(sched_mutex_);
        j.set("queue_depth", Json(queue_.depth()));
        j.set("queue_max", Json(queue_.maxDepth()));
        j.set("in_flight", Json(flights_.size()));
    }
    Json pids = Json::array();
    if (pool_)
        for (const int pid : pool_->pids())
            pids.push(Json(pid));
    j.set("worker_pids", std::move(pids));
    {
        const ServerHistograms h = histograms();
        Json hj = Json::object();
        hj.set("wall_ms", histogramJson(h.wall_ms));
        hj.set("sim_cycles", histogramJson(h.sim_cycles));
        hj.set("queue_depth", histogramJson(h.queue_depth));
        j.set("histograms", std::move(hj));
    }
    return j;
}

} // namespace smtsim::serve
