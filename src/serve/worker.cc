#include "worker.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "lab/executor.hh"
#include "lab/spec_json.hh"
#include "serve/protocol.hh"

namespace smtsim::serve
{

// -- WorkerProcess ------------------------------------------------

WorkerProcess::WorkerProcess(const std::vector<std::string> &argv)
{
    spawn(argv);
}

WorkerProcess::~WorkerProcess()
{
    kill();
}

bool
WorkerProcess::spawn(const std::vector<std::string> &argv)
{
    if (argv.empty())
        return false;

    int to[2], from[2];
    if (::pipe(to) != 0)
        return false;
    if (::pipe(from) != 0) {
        ::close(to[0]);
        ::close(to[1]);
        return false;
    }

    const int pid = ::fork();
    if (pid < 0) {
        ::close(to[0]);
        ::close(to[1]);
        ::close(from[0]);
        ::close(from[1]);
        return false;
    }

    if (pid == 0) {
        // Child: jobs arrive on stdin, results leave on stdout;
        // stderr stays shared so worker diagnostics reach the
        // daemon's log.
        ::dup2(to[0], STDIN_FILENO);
        ::dup2(from[1], STDOUT_FILENO);
        ::close(to[0]);
        ::close(to[1]);
        ::close(from[0]);
        ::close(from[1]);

        std::vector<char *> cargv;
        cargv.reserve(argv.size() + 1);
        for (const std::string &arg : argv)
            cargv.push_back(const_cast<char *>(arg.c_str()));
        cargv.push_back(nullptr);
        ::execv(cargv[0], cargv.data());
        ::_exit(127);
    }

    ::close(to[0]);
    ::close(from[1]);
    pid_ = pid;
    to_child_ = Fd(to[1]);
    from_child_ = Fd(from[0]);
    reader_ = std::make_unique<LineReader>(from_child_);
    return true;
}

void
WorkerProcess::kill()
{
    if (pid_ <= 0)
        return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {}
    pid_ = -1;
    to_child_.reset();
    from_child_.reset();
    reader_.reset();
}

RunOutcome
WorkerProcess::run(const lab::Job &job, double timeout_seconds,
                   lab::JobResult *out, std::string *why)
{
    if (pid_ <= 0) {
        *why = "worker process is not running";
        return RunOutcome::Crashed;
    }
    if (!writeAll(to_child_, workerJobLine(job))) {
        *why = "could not write job to worker (worker gone)";
        return RunOutcome::Crashed;
    }

    const int timeout_ms =
        timeout_seconds > 0
            ? static_cast<int>(timeout_seconds * 1000.0)
            : -1;
    std::string line;
    switch (reader_->readLine(&line, timeout_ms)) {
      case ReadStatus::Ok:
        break;
      case ReadStatus::Timeout:
        *why = "job exceeded the " +
               std::to_string(timeout_seconds) +
               "s worker budget";
        return RunOutcome::Timeout;
      case ReadStatus::Eof:
        *why = "worker exited mid-job";
        return RunOutcome::Crashed;
      case ReadStatus::Error:
        *why = "read error from worker";
        return RunOutcome::Crashed;
    }

    try {
        const Json j = Json::parse(line);
        if (j.at("v").asInt() != kProtocolVersion) {
            *why = "worker spoke an unsupported protocol version";
            return RunOutcome::Crashed;
        }
        // The worker recomputes the content address itself; a
        // mismatch means daemon and worker disagree on the job's
        // identity, and caching the result would poison the shared
        // cache under the wrong key.
        const std::string echoed = j.at("key").asString();
        const std::string expected = job.cacheKey();
        if (echoed != expected) {
            *why = "cache key mismatch (daemon " + expected +
                   ", worker " + echoed + ")";
            return RunOutcome::Crashed;
        }
        *out = lab::resultFromJson(j.at("result"));
    } catch (const JsonParseError &e) {
        *why = std::string("malformed worker reply: ") + e.what();
        return RunOutcome::Crashed;
    }
    return RunOutcome::Ok;
}

// -- WorkerPool ---------------------------------------------------

WorkerPool::WorkerPool(int num_workers, WorkerOptions opts)
    : opts_(std::move(opts)),
      num_workers_(num_workers > 0 ? num_workers : 1)
{
    // Worker pipes cannot use MSG_NOSIGNAL; a write to a crashed
    // worker must surface as an error return, not kill the daemon.
    ::signal(SIGPIPE, SIG_IGN);
    if (opts_.argv.empty())
        opts_.argv = {selfExecutablePath(), "--worker"};
    for (int i = 0; i < num_workers_; ++i)
        idle_.push_back(
            std::make_unique<WorkerProcess>(opts_.argv));
}

WorkerPool::~WorkerPool()
{
    shutdown();
}

std::unique_ptr<WorkerProcess>
WorkerPool::checkout()
{
    std::unique_lock<std::mutex> lock(mutex_);
    available_.wait(lock,
                    [&] { return shutdown_ || !idle_.empty(); });
    if (shutdown_)
        return nullptr;
    std::unique_ptr<WorkerProcess> w = std::move(idle_.back());
    idle_.pop_back();
    if (w->pid() > 0)
        busy_pids_.push_back(w->pid());
    return w;
}

void
WorkerPool::checkin(std::unique_ptr<WorkerProcess> worker)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::erase(busy_pids_, worker->pid());
    if (shutdown_) {
        worker->kill();
        return;
    }
    idle_.push_back(std::move(worker));
    available_.notify_one();
}

lab::JobResult
WorkerPool::execute(const lab::Job &job)
{
    const int attempts = opts_.max_retries + 1;
    double backoff = opts_.backoff_seconds;
    std::string last_why = "worker pool is shut down";

    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            retries_.fetch_add(1, std::memory_order_relaxed);
            if (backoff > 0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoff));
                backoff *= 2;
            }
        }

        std::unique_ptr<WorkerProcess> w = checkout();
        if (!w)
            break;
        if (!w->alive()) {
            // Replace a worker that failed to spawn earlier.
            w = std::make_unique<WorkerProcess>(opts_.argv);
            restarts_.fetch_add(1, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (w->pid() > 0)
                    busy_pids_.push_back(w->pid());
            }
        }

        lab::JobResult result;
        std::string why;
        const RunOutcome outcome =
            w->run(job, opts_.job_timeout_seconds, &result, &why);
        if (outcome == RunOutcome::Ok) {
            executed_.fetch_add(1, std::memory_order_relaxed);
            checkin(std::move(w));
            return result;
        }

        // The worker is dead or in an unknown state: kill it and
        // return a fresh one to the pool so capacity is restored
        // no matter how this job ends. The pid leaves busy_pids_
        // BEFORE kill() reaps it — once reaped the pid can be
        // recycled, and a concurrent shutdown() iterating
        // busy_pids_ must never SIGKILL an unrelated process.
        bool replace;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            std::erase(busy_pids_, w->pid());
            replace = !shutdown_;
        }
        w->kill();
        if (replace) {
            restarts_.fetch_add(1, std::memory_order_relaxed);
            checkin(std::make_unique<WorkerProcess>(opts_.argv));
        }
        last_why = why;

        // A hang is a property of the config, not of the worker it
        // ran on — retrying would burn the whole attempt budget on
        // the same stall.
        if (outcome == RunOutcome::Timeout)
            break;
    }

    lab::JobResult fail;
    fail.id = job.id;
    fail.key = job.cacheKey();
    fail.ok = false;
    fail.error = "worker: " + last_why;
    return fail;
}

std::vector<int>
WorkerPool::pids() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<int> out = busy_pids_;
    for (const auto &w : idle_)
        if (w->pid() > 0)
            out.push_back(w->pid());
    return out;
}

WorkerPoolStats
WorkerPool::stats() const
{
    WorkerPoolStats s;
    s.executed = executed_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.restarts = restarts_.load(std::memory_order_relaxed);
    return s;
}

void
WorkerPool::shutdown()
{
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    for (auto &w : idle_)
        w->kill();
    idle_.clear();
    // Checked-out workers are owned by dispatcher threads blocked
    // in run(); SIGKILL closes their pipes so those reads return
    // EOF now instead of after the full job timeout. The owning
    // WorkerProcess reaps the zombie in its own kill().
    for (const int pid : busy_pids_)
        ::kill(pid, SIGKILL);
    available_.notify_all();
}

// -- worker mode --------------------------------------------------

int
workerMain()
{
    ::signal(SIGPIPE, SIG_IGN);
    const Fd in(STDIN_FILENO);
    const Fd out(STDOUT_FILENO);
    LineReader reader(in);

    std::string line;
    int rc = 0;
    while (true) {
        const ReadStatus st = reader.readLine(&line);
        if (st == ReadStatus::Eof)
            break;              // daemon closed our stdin: done
        if (st != ReadStatus::Ok) {
            rc = 1;
            break;
        }
        try {
            const Json j = Json::parse(line);
            if (j.at("v").asInt() != kProtocolVersion) {
                rc = 1;
                break;
            }
            const lab::Job job = lab::jobFromJson(j.at("job"));
            const lab::JobResult result = lab::simulateJob(job);
            if (!writeAll(out,
                          workerResultLine(job.cacheKey(),
                                           result))) {
                rc = 1;
                break;
            }
        } catch (const JsonParseError &) {
            rc = 1;             // daemon treats our death as crash
            break;
        }
    }
    // The Fd wrappers borrow stdio descriptors; the process is
    // exiting, so let them close.
    return rc;
}

std::string
selfExecutablePath()
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return std::string(buf);
}

} // namespace smtsim::serve
