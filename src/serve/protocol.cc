#include "protocol.hh"

#include "lab/spec_json.hh"

namespace smtsim::serve
{

namespace
{

Json
base(const char *discriminator, const char *value)
{
    Json j = Json::object();
    j.set("v", Json(kProtocolVersion));
    j.set(discriminator, Json(value));
    return j;
}

/** NDJSON framing: compact dump + newline. */
std::string
line(const Json &j)
{
    return j.dump() + "\n";
}

} // namespace

std::string
submitLine(const std::string &id, const lab::ExperimentSpec &spec)
{
    Json j = base("op", "submit");
    j.set("id", Json(id));
    j.set("spec", lab::experimentSpecToJson(spec));
    return line(j);
}

std::string
pingLine()
{
    return line(base("op", "ping"));
}

std::string
statsLine()
{
    return line(base("op", "stats"));
}

std::string
shutdownLine()
{
    return line(base("op", "shutdown"));
}

std::string
eventAccepted(const std::string &id, std::size_t jobs)
{
    Json j = base("event", "accepted");
    j.set("id", Json(id));
    j.set("jobs", Json(jobs));
    return line(j);
}

std::string
eventRejected(const std::string &id, const std::string &error)
{
    Json j = base("event", "rejected");
    j.set("id", Json(id));
    j.set("error", Json(error));
    return line(j);
}

std::string
eventOverloaded(const std::string &id, const std::string &error,
                std::size_t queue_depth, std::size_t queue_max)
{
    Json j = base("event", "overloaded");
    j.set("id", Json(id));
    j.set("error", Json(error));
    j.set("queue_depth", Json(queue_depth));
    j.set("queue_max", Json(queue_max));
    return line(j);
}

std::string
eventResult(const std::string &id, const lab::JobResult &result,
            const std::string &source)
{
    Json j = base("event", "result");
    j.set("id", Json(id));
    j.set("source", Json(source));
    j.set("result", lab::resultToJson(result));
    return line(j);
}

std::string
eventDone(const std::string &id, std::size_t jobs,
          std::size_t failures, std::size_t cache_hits,
          std::size_t coalesced)
{
    Json j = base("event", "done");
    j.set("id", Json(id));
    j.set("jobs", Json(jobs));
    j.set("failures", Json(failures));
    j.set("cache_hits", Json(cache_hits));
    j.set("coalesced", Json(coalesced));
    return line(j);
}

std::string
eventPong()
{
    return line(base("event", "pong"));
}

std::string
eventStats(Json stats)
{
    Json j = base("event", "stats");
    j.set("stats", std::move(stats));
    return line(j);
}

std::string
eventBye()
{
    return line(base("event", "bye"));
}

std::string
eventError(const std::string &error)
{
    Json j = base("event", "error");
    j.set("error", Json(error));
    return line(j);
}

std::string
workerJobLine(const lab::Job &job)
{
    Json j = Json::object();
    j.set("v", Json(kProtocolVersion));
    j.set("job", lab::jobToJson(job));
    return line(j);
}

std::string
workerResultLine(const std::string &key,
                 const lab::JobResult &result)
{
    Json j = Json::object();
    j.set("v", Json(kProtocolVersion));
    j.set("key", Json(key));
    j.set("result", lab::resultToJson(result));
    return line(j);
}

Event
parseEvent(const std::string &text)
{
    const Json j = Json::parse(text);
    if (j.at("v").asInt() != kProtocolVersion)
        throw JsonParseError("unsupported protocol version");
    Event ev;
    ev.type = j.at("event").asString();
    if (const Json *id = j.find("id"))
        ev.id = id->asString();
    if (const Json *error = j.find("error"))
        ev.error = error->asString();
    if (ev.type == "result") {
        ev.source = j.at("source").asString();
        ev.result = lab::resultFromJson(j.at("result"));
    }
    ev.payload = j;
    return ev;
}

} // namespace smtsim::serve
