#include "client.hh"

namespace smtsim::serve
{

bool
Client::connect(const std::string &socket_path, std::string *error)
{
    fd_ = connectUnix(socket_path, error);
    if (!fd_.valid())
        return false;
    reader_ = std::make_unique<LineReader>(fd_);
    return true;
}

void
Client::close()
{
    reader_.reset();
    fd_.reset();
}

bool
Client::sendRaw(const std::string &line)
{
    return fd_.valid() && writeAll(fd_, line);
}

ReadStatus
Client::readEvent(Event *ev, int timeout_ms)
{
    if (!reader_)
        return ReadStatus::Error;
    std::string line;
    const ReadStatus st = reader_->readLine(&line, timeout_ms);
    if (st != ReadStatus::Ok)
        return st;
    try {
        *ev = parseEvent(line);
    } catch (const JsonParseError &) {
        return ReadStatus::Error;
    }
    return ReadStatus::Ok;
}

SubmitOutcome
Client::submitAndWait(const std::string &id,
                      const lab::ExperimentSpec &spec,
                      int timeout_ms)
{
    SubmitOutcome out;
    if (!sendRaw(submitLine(id, spec))) {
        out.status = "disconnected";
        out.error = "could not send submission";
        return out;
    }

    while (true) {
        Event ev;
        if (readEvent(&ev, timeout_ms) != ReadStatus::Ok) {
            out.status = "disconnected";
            out.error = "event stream ended mid-submission";
            return out;
        }
        if (ev.id != id && !ev.id.empty())
            continue;           // stray event for another request
        if (ev.type == "accepted") {
            out.jobs = static_cast<std::size_t>(
                ev.payload.at("jobs").asInt());
        } else if (ev.type == "result") {
            out.results.push_back(std::move(ev.result));
            out.sources.push_back(ev.source);
        } else if (ev.type == "done") {
            out.status = "done";
            out.jobs = static_cast<std::size_t>(
                ev.payload.at("jobs").asInt());
            out.failures = static_cast<std::size_t>(
                ev.payload.at("failures").asInt());
            out.cache_hits = static_cast<std::size_t>(
                ev.payload.at("cache_hits").asInt());
            out.coalesced = static_cast<std::size_t>(
                ev.payload.at("coalesced").asInt());
            return out;
        } else if (ev.type == "rejected" ||
                   ev.type == "overloaded") {
            out.status = ev.type;
            out.error = ev.error;
            return out;
        } else if (ev.type == "error") {
            out.status = "rejected";
            out.error = ev.error;
            return out;
        }
        // pong/stats/bye for other requests: ignore.
    }
}

bool
Client::ping(std::string *error, int timeout_ms)
{
    if (!sendRaw(pingLine())) {
        *error = "send failed";
        return false;
    }
    Event ev;
    while (true) {
        if (readEvent(&ev, timeout_ms) != ReadStatus::Ok) {
            *error = "no pong";
            return false;
        }
        if (ev.type == "pong")
            return true;
    }
}

bool
Client::stats(Json *out, std::string *error, int timeout_ms)
{
    if (!sendRaw(statsLine())) {
        *error = "send failed";
        return false;
    }
    Event ev;
    while (true) {
        if (readEvent(&ev, timeout_ms) != ReadStatus::Ok) {
            *error = "no stats reply";
            return false;
        }
        if (ev.type == "stats") {
            *out = ev.payload.at("stats");
            return true;
        }
    }
}

bool
Client::shutdownServer(std::string *error, int timeout_ms)
{
    if (!sendRaw(shutdownLine())) {
        *error = "send failed";
        return false;
    }
    Event ev;
    while (true) {
        if (readEvent(&ev, timeout_ms) != ReadStatus::Ok) {
            *error = "no bye";
            return false;
        }
        if (ev.type == "bye")
            return true;
    }
}

} // namespace smtsim::serve
