/**
 * @file
 * Wire protocol of the simulation service: newline-delimited JSON
 * (NDJSON) over a unix stream socket. Every message is one JSON
 * object on one line; the first member is the discriminator ("op"
 * for client->server requests, "event" for server->client
 * messages) and every message carries `"v": 1`.
 *
 * Requests:
 *   {"v":1,"op":"submit","id":ID,"spec":<ExperimentSpec JSON>}
 *   {"v":1,"op":"ping"}
 *   {"v":1,"op":"stats"}
 *   {"v":1,"op":"shutdown"}
 *
 * Events (ID = the submission id chosen by the client):
 *   {"v":1,"event":"accepted","id":ID,"jobs":N}
 *   {"v":1,"event":"rejected","id":ID,"error":TEXT}
 *   {"v":1,"event":"overloaded","id":ID,"error":TEXT,
 *    "queue_depth":N,"queue_max":N}
 *   {"v":1,"event":"result","id":ID,"source":SRC,
 *    "result":<JobResult JSON>}      SRC in {sim, cache, dedup}
 *   {"v":1,"event":"done","id":ID,"jobs":N,"failures":N,
 *    "cache_hits":N,"coalesced":N}
 *   {"v":1,"event":"pong"}
 *   {"v":1,"event":"stats","stats":{...}}   monotonic counters
 *     (incl. cache_hits/cache_misses), queue gauges, worker pids,
 *     and a "histograms" object with per-job "wall_ms",
 *     "sim_cycles" and "queue_depth" log2-bucket distributions
 *     ({count,sum,min,max,buckets:[{lo,hi,n},...]})
 *   {"v":1,"event":"bye"}           acknowledges shutdown
 *   {"v":1,"event":"error","error":TEXT}   unparseable request
 *
 * Between the daemon and its worker processes the same framing is
 * used on the worker's stdin/stdout:
 *   daemon -> worker: {"v":1,"job":<Job JSON>}
 *   worker -> daemon: {"v":1,"key":KEY,"result":<JobResult JSON>}
 * The worker echoes the job's independently recomputed cache key so
 * a serialization drift between daemon and worker is caught as a
 * protocol error instead of poisoning the shared cache.
 *
 * See docs/SERVE.md for the full contract (ordering, failure and
 * backpressure semantics).
 */

#ifndef SMTSIM_SERVE_PROTOCOL_HH
#define SMTSIM_SERVE_PROTOCOL_HH

#include <cstddef>
#include <string>

#include "base/json.hh"
#include "lab/result.hh"
#include "lab/spec.hh"

namespace smtsim::serve
{

constexpr int kProtocolVersion = 1;

// -- request lines (client side) ---------------------------------

std::string submitLine(const std::string &id,
                       const lab::ExperimentSpec &spec);
std::string pingLine();
std::string statsLine();
std::string shutdownLine();

// -- event lines (server side) -----------------------------------

std::string eventAccepted(const std::string &id, std::size_t jobs);
std::string eventRejected(const std::string &id,
                          const std::string &error);
std::string eventOverloaded(const std::string &id,
                            const std::string &error,
                            std::size_t queue_depth,
                            std::size_t queue_max);
/** @p source is "sim", "cache" or "dedup". */
std::string eventResult(const std::string &id,
                        const lab::JobResult &result,
                        const std::string &source);
std::string eventDone(const std::string &id, std::size_t jobs,
                      std::size_t failures, std::size_t cache_hits,
                      std::size_t coalesced);
std::string eventPong();
std::string eventStats(Json stats);
std::string eventBye();
std::string eventError(const std::string &error);

// -- worker protocol ---------------------------------------------

std::string workerJobLine(const lab::Job &job);
std::string workerResultLine(const std::string &key,
                             const lab::JobResult &result);

// -- parsing ------------------------------------------------------

/** One parsed server->client message. */
struct Event
{
    std::string type;       ///< "accepted", "result", "pong", ...
    std::string id;         ///< submission id ("" when n/a)
    std::string error;      ///< for rejected/overloaded/error
    std::string source;     ///< for result events
    lab::JobResult result;  ///< for result events
    Json payload;           ///< the whole message (stats, counters)
};

/**
 * Parse an event line. @throws JsonParseError on anything that is
 * not a well-formed versioned event.
 */
Event parseEvent(const std::string &line);

} // namespace smtsim::serve

#endif // SMTSIM_SERVE_PROTOCOL_HH
