/**
 * @file
 * The simulation service daemon core.
 *
 * One Server owns: a unix-socket listener with an accept thread and
 * one reader thread per connection; a bounded FairQueue of unique
 * jobs with round-robin scheduling across clients; a SingleFlight
 * table coalescing identical in-flight jobs; a shared on-disk
 * ResultCache; and a WorkerPool of isolated child processes that do
 * the actual simulating.
 *
 * Life of a submission:
 *   1. admission — the spec is parsed (strict: unknown members are
 *      rejected) and expanded into jobs; every job is probed against
 *      the cache (hits stream back immediately, source "cache");
 *      remaining misses either all fit in the queue or the whole
 *      submission is shed with an "overloaded" event. Misses whose
 *      key is already in flight register as single-flight waiters
 *      and consume no queue slot — only genuinely new keys count
 *      against the bound, so a warm-cache sweep of any size is
 *      admissible. A spec whose new keys exceed the whole queue
 *      can never run and is rejected outright.
 *   2. dispatch — N dispatcher threads pop jobs in fair order,
 *      re-probe the cache (another client may have completed the
 *      key between admission and dispatch), otherwise execute on
 *      the worker pool, store ok results, and publish to every
 *      waiter of the key (leader sees source "sim"/"cache",
 *      coalesced waiters see "dedup").
 *   3. completion — when a submission's last job publishes, a
 *      "done" event with aggregate counters closes it out.
 *
 * Locking: one scheduling mutex covers {FairQueue, SingleFlight,
 * submissions} — admission and publication must see the three in a
 * consistent state. Cache I/O and socket writes happen outside it;
 * each connection has its own write mutex so dispatcher threads and
 * the reader thread can interleave events without tearing lines.
 */

#ifndef SMTSIM_SERVE_SERVER_HH
#define SMTSIM_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/json.hh"
#include "base/sockio.hh"
#include "base/stats.hh"
#include "lab/cache.hh"
#include "serve/queue.hh"
#include "serve/singleflight.hh"
#include "serve/worker.hh"

namespace smtsim::serve
{

struct ServeOptions
{
    /** Filesystem path of the listening unix socket. */
    std::string socket_path;
    /** Worker processes (and dispatcher threads); 0 = #cores. */
    int num_workers = 0;
    /** FairQueue depth bound; submissions past it are shed. */
    std::size_t queue_max = 4096;
    /** Shared result cache directory; empty disables caching. */
    std::string cache_dir;
    /** Cache size bound in bytes (0 = unbounded), LRU-evicted. */
    std::uint64_t cache_max_bytes = 0;
    /** Per-job wall budget enforced by killing the worker. */
    double job_timeout_seconds = 300.0;
    /** Crash retries per job (attempts = 1 + max_retries). */
    int max_retries = 2;
    /** First retry delay, doubling per retry. */
    double backoff_seconds = 0.05;
    /** Worker argv override (tests); empty = self + --worker. */
    std::vector<std::string> worker_argv;
    /**
     * Lint every distinct workload program at admission and reject
     * submissions whose program has error-level diagnostics before
     * they consume a queue slot or a worker. Verdicts are cached in
     * memory by program fingerprint (see docs/ANALYSIS.md).
     */
    bool lint_admission = true;
};

/** Monotonic counters exposed via the "stats" op. */
struct ServerStats
{
    std::uint64_t connections = 0;
    std::uint64_t submissions = 0;
    std::uint64_t jobs_submitted = 0;   ///< expanded grid points
    std::uint64_t executed = 0;         ///< simulations actually run
    std::uint64_t cache_hits = 0;
    /** Jobs that missed both cache probes and hit the simulator. */
    std::uint64_t cache_misses = 0;
    std::uint64_t coalesced = 0;        ///< dedup'd onto a leader
    std::uint64_t overloaded = 0;       ///< submissions shed
    std::uint64_t rejected = 0;         ///< malformed submissions
    /** Submissions rejected by the admission lint gate (also
     *  counted in rejected). */
    std::uint64_t lint_rejected = 0;
    /** Admission lint verdicts served from the fingerprint cache. */
    std::uint64_t lint_cache_hits = 0;
    std::uint64_t retries = 0;
    std::uint64_t worker_restarts = 0;
};

/** Distribution metrics exposed via the "stats" op (log2-bucket
 *  histograms, see stats::Histogram). */
struct ServerHistograms
{
    /** Per executed job: host milliseconds spent simulating. */
    stats::Histogram wall_ms;
    /** Per executed job: simulated cycles of the run. */
    stats::Histogram sim_cycles;
    /** FairQueue depth observed at each dispatch pop. */
    stats::Histogram queue_depth;
};

class Server
{
  public:
    explicit Server(ServeOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket and start the accept, reader and dispatcher
     * threads. @return false with *error set when the socket can't
     * be bound.
     */
    bool start(std::string *error);

    /** Block until a client's shutdown request (or stop()). */
    void wait();

    /**
     * Like wait() but bounded: @return true when shutdown has been
     * requested, false on timeout. Lets a daemon main loop poll a
     * signal flag between waits.
     */
    bool waitFor(int timeout_ms);

    /** Initiate shutdown; idempotent. Joins all threads. */
    void stop();

    ServerStats stats() const;
    ServerHistograms histograms() const;
    std::vector<int> workerPids() const { return pool_->pids(); }

  private:
    struct Connection
    {
        std::uint64_t id;
        Fd fd;
        std::mutex write_mutex;
    };

    /** One client submission's progress ledger. */
    struct Submission
    {
        std::uint64_t conn = 0;     ///< owning connection id
        std::string id;             ///< client-chosen submission id
        std::size_t total = 0;
        std::size_t pending = 0;
        std::size_t failures = 0;
        std::size_t cache_hits = 0;
        std::size_t coalesced = 0;
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void dispatchLoop();

    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const Json &request);

    /**
     * Admission lint gate: statically verify every distinct
     * workload program in @p jobs at its job's slot count. @return
     * false with *why describing the diagnostics when any program
     * has error-level findings. Verdicts are cached by program
     * fingerprint + slot count, so a resubmission of a known
     * program never re-instantiates the analysis.
     */
    bool admitLint(const std::vector<lab::Job> &jobs,
                   std::string *why);

    /**
     * Deliver @p result for @p key to every single-flight waiter
     * and close out submissions that drained. @p source is what the
     * leader sees ("sim" or "cache"); waiters see "dedup".
     */
    void publish(const std::string &key,
                 const lab::JobResult &result,
                 const std::string &source);

    /** Write one event line to a connection (drops if it's gone). */
    void sendTo(std::uint64_t conn_id, const std::string &line);

    Json statsJson() const;

    ServeOptions opts_;
    lab::ResultCache cache_;
    std::unique_ptr<WorkerPool> pool_;

    Fd listener_;
    std::thread accept_thread_;
    std::vector<std::thread> dispatchers_;

    std::atomic<bool> stopping_{false};
    std::mutex stop_mutex_;
    std::condition_variable stop_cv_;
    bool stop_requested_ = false;
    bool stopped_ = false;

    /**
     * Connections by id. Reader threads are detached; stop() shuts
     * the sockets down and waits for active_readers_ to drain.
     */
    mutable std::mutex conns_mutex_;
    std::condition_variable readers_done_;
    std::map<std::uint64_t, std::shared_ptr<Connection>> conns_;
    std::uint64_t next_conn_id_ = 1;
    std::size_t active_readers_ = 0;

    /** Scheduling state: queue + flights + submissions together. */
    mutable std::mutex sched_mutex_;
    std::condition_variable work_cv_;
    FairQueue queue_;
    SingleFlight flights_;
    std::map<std::uint64_t, Submission> submissions_;
    std::uint64_t next_submission_ = 1;

    mutable std::mutex stats_mutex_;
    ServerStats stats_;
    ServerHistograms hists_;

    /** Admission lint verdicts by "fingerprint@slots"; the value is
     *  the rejection reason ("" = clean). */
    mutable std::mutex lint_mutex_;
    std::map<std::string, std::string> lint_verdicts_;
};

} // namespace smtsim::serve

#endif // SMTSIM_SERVE_SERVER_HH
