/**
 * @file
 * Single-flight deduplication table: concurrent identical jobs
 * coalesce onto one execution.
 *
 * A job is identified by its content address (lab cache key). The
 * first submission of a key becomes the *leader* — it is the one
 * that enters the dispatch queue and executes — and every identical
 * submission that arrives while the key is in flight registers as a
 * *waiter* instead of queueing again. When the leader's execution
 * publishes, all waiters (the leader included) receive the result.
 * A thundering herd of N identical sweep requests therefore costs
 * one simulation, not N — the central economics of the service.
 *
 * NOT thread-safe by design: the server updates this table and the
 * fair queue under one scheduling mutex (queue.hh explains why the
 * two must move together).
 */

#ifndef SMTSIM_SERVE_SINGLEFLIGHT_HH
#define SMTSIM_SERVE_SINGLEFLIGHT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace smtsim::serve
{

/** One party waiting on an in-flight key. */
struct Waiter
{
    std::uint64_t submission;   ///< server submission token
    std::string job_id;         ///< the waiter's own label
};

class SingleFlight
{
  public:
    /**
     * Register interest in @p key. @return true when the caller is
     * the leader (it must arrange execution and eventually call
     * take()); false when the key was already in flight.
     */
    bool join(const std::string &key, Waiter waiter);

    /**
     * Complete @p key: remove the entry and return every registered
     * waiter (leader first). Publishing to them is the caller's
     * job. Returns an empty list for unknown keys.
     */
    std::vector<Waiter> take(const std::string &key);

    bool inFlight(const std::string &key) const
    {
        return flights_.count(key) != 0;
    }

    /** Number of keys currently in flight. */
    std::size_t size() const { return flights_.size(); }

  private:
    std::map<std::string, std::vector<Waiter>> flights_;
};

} // namespace smtsim::serve

#endif // SMTSIM_SERVE_SINGLEFLIGHT_HH
