#include "queue.hh"

#include <algorithm>

namespace smtsim::serve
{

bool
FairQueue::pushBatch(std::uint64_t client,
                     std::vector<QueuedJob> batch)
{
    if (!canAccept(batch.size()))
        return false;
    if (batch.empty())
        return true;
    auto it = std::find_if(buckets_.begin(), buckets_.end(),
                           [&](const Bucket &b) {
                               return b.client == client;
                           });
    if (it == buckets_.end()) {
        // New clients join the rotation just *before* the cursor:
        // they wait at most one full round before their first pop,
        // and an established heavy client cannot push them back.
        it = buckets_.insert(
            buckets_.begin() +
                static_cast<std::ptrdiff_t>(cursor_),
            Bucket{client, {}});
        ++cursor_;
        if (cursor_ >= buckets_.size())
            cursor_ = 0;
    }
    for (QueuedJob &qj : batch) {
        it->jobs.push_back(std::move(qj));
        ++depth_;
    }
    return true;
}

bool
FairQueue::pop(QueuedJob *out)
{
    if (depth_ == 0)
        return false;
    // Advance the cursor to the next non-empty bucket, serving one
    // job from it; empty buckets encountered on the way are retired
    // so the rotation only ever walks live clients.
    while (true) {
        if (cursor_ >= buckets_.size())
            cursor_ = 0;
        Bucket &b = buckets_[cursor_];
        if (b.jobs.empty()) {
            buckets_.erase(buckets_.begin() +
                           static_cast<std::ptrdiff_t>(cursor_));
            continue;
        }
        *out = std::move(b.jobs.front());
        b.jobs.pop_front();
        --depth_;
        if (b.jobs.empty())
            buckets_.erase(buckets_.begin() +
                           static_cast<std::ptrdiff_t>(cursor_));
        else
            ++cursor_;
        return true;
    }
}

} // namespace smtsim::serve
