#include "singleflight.hh"

namespace smtsim::serve
{

bool
SingleFlight::join(const std::string &key, Waiter waiter)
{
    auto [it, inserted] = flights_.try_emplace(key);
    it->second.push_back(std::move(waiter));
    return inserted;
}

std::vector<Waiter>
SingleFlight::take(const std::string &key)
{
    auto it = flights_.find(key);
    if (it == flights_.end())
        return {};
    std::vector<Waiter> waiters = std::move(it->second);
    flights_.erase(it);
    return waiters;
}

} // namespace smtsim::serve
