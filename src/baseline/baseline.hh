/**
 * @file
 * The conventional RISC processor of Figure 3(b): the sequential
 * machine every speed-up ratio in the paper is measured against.
 *
 * Pipeline contract (section 2.1.2):
 *  - dependent instructions whose producer has result latency L are
 *    separated by L+1 cycles (scoreboard interlock);
 *  - any branch costs a 4-cycle gap between its issue and the issue
 *    of the next instruction (no delay slots, no prediction);
 *  - functional units accept a new instruction every issue-latency
 *    cycles (load/store: 2).
 *
 * The same model doubles as the (D,1)-processor of Table 3: with
 * width > 1 it issues up to D independent instructions per cycle
 * from an instruction window that is refilled every cycle.
 */

#ifndef SMTSIM_BASELINE_BASELINE_HH
#define SMTSIM_BASELINE_BASELINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "asmr/program.hh"
#include "base/types.hh"
#include "isa/insn.hh"
#include "machine/fu_pool.hh"
#include "machine/run_stats.hh"
#include "mem/memory.hh"
#include "obs/event.hh"

namespace smtsim
{

/** Configuration of the baseline processor. */
struct BaselineConfig
{
    /** Superscalar issue width D (Table 3's (D,1) processors). */
    int width = 1;
    /** Functional-unit inventory. */
    FuPoolConfig fus;
    /** Issue-to-issue gap after any branch (paper: 4 cycles). */
    int branch_gap = 4;
    /**
     * Skip cycles that provably issue nothing (branch-gap bubbles,
     * scoreboard/FU waits) by jumping to the next cycle a hazard
     * comparison can flip. Cycle counts and statistics are
     * bit-identical either way; off = naive-loop oracle.
     */
    bool fast_forward = true;
    /** Simulation budget. */
    std::uint64_t max_cycles = 2'000'000'000ull;
};

/**
 * Cycle-accurate single-thread RISC model. Thread-control
 * instructions degenerate gracefully (fast-fork is a no-op, TID
 * reads 0, priority stores behave as plain stores) so the sequential
 * versions of all workloads run unchanged.
 */
class BaselineProcessor
{
  public:
    BaselineProcessor(const Program &prog, MainMemory &mem,
                      const BaselineConfig &cfg = {});

    /** Run to completion (HALT) or until the cycle budget runs out. */
    RunStats run();

    /** Architectural register state (post-run, for checking). */
    std::uint32_t intReg(RegIndex idx) const { return iregs_[idx]; }
    double fpReg(RegIndex idx) const { return fregs_[idx]; }

    /**
     * Attach a structured event sink (same schema as the
     * multithreaded core, on one thread slot: data/memory ops
     * appear as Grant events, control ops as Issue events with
     * fu == -1, so smtsim-scope counts retirements identically for
     * both models). Pass nullptr to disable (the default); the sink
     * is not owned.
     */
    void setEventSink(obs::EventSink *sink);

    /** Owned-TextSink shim mirroring the core's setPipeTrace(). */
    void setPipeTrace(std::ostream *os);

  private:
    struct WindowEntry
    {
        Insn insn;
        Addr pc = 0;
    };

    /** True iff every source of @p insn is readable in cycle @p c. */
    bool srcsReady(const Insn &insn, Cycle c,
                   std::uint32_t pending_w_int,
                   std::uint32_t pending_w_fp) const;

    Cycle &clearCycleOf(RegRef ref);
    Cycle clearCycleOf(RegRef ref) const;

    /** Find a unit of @p cls free in cycle @p c (or -1). */
    int freeUnit(FuClass cls, Cycle c) const;

    void issueDataOp(const Insn &insn, Cycle c, int unit);
    void issueMemOp(const Insn &insn, Cycle c, int unit);
    /** @return new next-PC after the branch. */
    Addr resolveBranch(const Insn &insn, Addr pc, Cycle c);

    void refillWindow();

    /**
     * Earliest cycle after @p c at which any issue-blocking
     * comparison (register clear cycle, FU free cycle) can change
     * its outcome; kNeverCycle when nothing is pending. Only valid
     * right after a cycle that issued nothing: until that cycle,
     * the window contents and all hazard state are frozen.
     */
    Cycle nextIssueEventCycle(Cycle c) const;

    const Program &prog_;
    MainMemory &mem_;
    BaselineConfig cfg_;
    /** Text segment decoded once; refillWindow indexes it. */
    PredecodedText text_;

    std::array<std::uint32_t, kNumRegs> iregs_{};
    std::array<double, kNumRegs> fregs_{};
    std::array<Cycle, kNumRegs> iclear_{};
    std::array<Cycle, kNumRegs> fclear_{};

    /** Per-class, per-unit earliest cycle the unit accepts again. */
    std::array<std::vector<Cycle>, kNumFuClasses> fu_free_;

    std::vector<WindowEntry> window_;
    /** Scratch for the per-cycle issued-entry marks (reused so the
     *  issue loop never heap-allocates after warm-up). */
    std::vector<char> done_;
    Addr fetch_pc_ = 0;
    Cycle stall_until_ = 0;
    Cycle last_activity_ = 0;
    bool running_ = true;

    RunStats stats_;

    obs::EventSink *sink_ = nullptr;
    /** Backing storage for the setPipeTrace() TextSink shim. */
    std::unique_ptr<obs::EventSink> owned_sink_;

    /** Emit the synthetic stream prologue (snapshot, ring, bind). */
    void emitStreamPrologue();
    void emitSimple(obs::EventKind kind, Cycle c, Addr pc,
                    const Insn &insn, std::uint64_t a = 0);
};

} // namespace smtsim

#endif // SMTSIM_BASELINE_BASELINE_HH
