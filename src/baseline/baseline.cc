#include "baseline.hh"

#include <algorithm>

#include "base/logging.hh"
#include "isa/dataop.hh"
#include "isa/semantics.hh"
#include "obs/sinks.hh"

namespace smtsim
{

namespace
{

/** Bit mask helpers over one register file. */
inline bool
inMask(std::uint32_t mask, RegIndex idx)
{
    return (mask >> idx) & 1u;
}

inline void
addMask(std::uint32_t &mask, RegIndex idx)
{
    mask |= 1u << idx;
}

} // namespace

BaselineProcessor::BaselineProcessor(const Program &prog,
                                     MainMemory &mem,
                                     const BaselineConfig &cfg)
    : prog_(prog), mem_(mem), cfg_(cfg), text_(prog)
{
    SMTSIM_ASSERT(cfg_.width >= 1, "width must be positive");
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        const FuClass fc = static_cast<FuClass>(cls);
        if (fc == FuClass::None)
            continue;
        fu_free_[cls].assign(cfg_.fus.count(fc), 0);
        stats_.unit_busy[cls].assign(cfg_.fus.count(fc), 0);
    }
    fetch_pc_ = prog_.entry;
}

void
BaselineProcessor::setEventSink(obs::EventSink *sink)
{
    sink_ = sink;
    owned_sink_.reset();
}

void
BaselineProcessor::setPipeTrace(std::ostream *os)
{
    if (os == nullptr) {
        setEventSink(nullptr);
        return;
    }
    owned_sink_ = std::make_unique<obs::TextSink>(*os);
    sink_ = owned_sink_.get();
}

void
BaselineProcessor::emitStreamPrologue()
{
    obs::Event ev;
    ev.cycle = 0;
    ev.kind = obs::EventKind::Snapshot;
    ev.a = stats_.instructions;
    sink_->event(ev);

    ev = obs::Event{};
    ev.kind = obs::EventKind::RingState;
    ev.unit = 1;            // one thread slot
    const int order[1] = {0};
    ev.a = obs::packRing(order, 1);
    sink_->event(ev);

    ev = obs::Event{};
    ev.kind = obs::EventKind::SlotBind;
    ev.slot = 0;
    ev.unit = 0;            // context frame 0
    ev.pc = prog_.entry;
    sink_->event(ev);
}

void
BaselineProcessor::emitSimple(obs::EventKind kind, Cycle c, Addr pc,
                              const Insn &insn, std::uint64_t a)
{
    obs::Event ev;
    ev.cycle = c;
    ev.kind = kind;
    ev.slot = 0;
    ev.pc = pc;
    ev.insn = encode(insn);
    ev.a = a;
    sink_->event(ev);
}

Cycle &
BaselineProcessor::clearCycleOf(RegRef ref)
{
    // thread_local: simulations run concurrently under smtsim::lab.
    thread_local Cycle dummy;
    if (ref.file == RF::Fp)
        return fclear_[ref.idx];
    if (ref.idx == 0) {
        dummy = 0;
        return dummy;
    }
    return iclear_[ref.idx];
}

Cycle
BaselineProcessor::clearCycleOf(RegRef ref) const
{
    if (ref.file == RF::Fp)
        return fclear_[ref.idx];
    return ref.idx == 0 ? 0 : iclear_[ref.idx];
}

bool
BaselineProcessor::srcsReady(const Insn &insn, Cycle c,
                             std::uint32_t pending_w_int,
                             std::uint32_t pending_w_fp) const
{
    RegRef srcs[3];
    const int n = insn.srcs(srcs);
    for (int i = 0; i < n; ++i) {
        if (clearCycleOf(srcs[i]) >= c)
            return false;
        const std::uint32_t mask = srcs[i].file == RF::Fp
                                       ? pending_w_fp
                                       : pending_w_int;
        if (inMask(mask, srcs[i].idx))
            return false;
    }
    return true;
}

int
BaselineProcessor::freeUnit(FuClass cls, Cycle c) const
{
    const auto &units = fu_free_[static_cast<int>(cls)];
    for (size_t u = 0; u < units.size(); ++u) {
        if (units[u] <= c)
            return static_cast<int>(u);
    }
    return -1;
}

void
BaselineProcessor::issueDataOp(const Insn &insn, Cycle c, int unit)
{
    OperandValues ops;
    ops.rs_i = iregs_[insn.rs];
    ops.rt_i = iregs_[insn.rt];
    ops.rs_f = fregs_[insn.rs];
    ops.rt_f = fregs_[insn.rt];
    const DataResult r = execDataOp(insn, ops);

    const RegRef dst = insn.dst();
    if (dst.file == RF::Fp) {
        fregs_[dst.idx] = r.fval;
    } else if (dst.idx != 0) {
        iregs_[dst.idx] = r.ival;
    }
    const OpMeta &meta = opMeta(insn.op);
    const Cycle clear = c + static_cast<Cycle>(meta.result_latency);
    clearCycleOf(dst) = clear;
    last_activity_ = std::max(last_activity_, clear);

    const int cls = static_cast<int>(meta.fu);
    fu_free_[cls][unit] = c + static_cast<Cycle>(meta.issue_latency);
    ++stats_.fu_grants[cls];
    stats_.fu_busy[cls] += meta.issue_latency;
    stats_.unit_busy[cls][unit] += meta.issue_latency;
}

void
BaselineProcessor::issueMemOp(const Insn &insn, Cycle c, int unit)
{
    const Addr addr =
        iregs_[insn.rs] + static_cast<std::uint32_t>(insn.imm);
    const OpMeta &meta = opMeta(insn.op);

    switch (insn.op) {
      case Op::LW:
        if (insn.rt != 0)
            iregs_[insn.rt] = mem_.read32(addr);
        ++stats_.loads;
        break;
      case Op::LF:
        fregs_[insn.rt] = mem_.readDouble(addr);
        ++stats_.loads;
        break;
      case Op::SW:
      case Op::PSTW:
        mem_.write32(addr, iregs_[insn.rt]);
        ++stats_.stores;
        break;
      case Op::SF:
      case Op::PSTF:
        mem_.writeDouble(addr, fregs_[insn.rt]);
        ++stats_.stores;
        break;
      default:
        panic("issueMemOp: not a memory op");
    }

    const RegRef dst = insn.dst();
    if (dst.valid()) {
        const Cycle clear =
            c + static_cast<Cycle>(meta.result_latency);
        clearCycleOf(dst) = clear;
        last_activity_ = std::max(last_activity_, clear);
    }

    const int cls = static_cast<int>(FuClass::LoadStore);
    fu_free_[cls][unit] = c + static_cast<Cycle>(meta.issue_latency);
    ++stats_.fu_grants[cls];
    stats_.fu_busy[cls] += meta.issue_latency;
    stats_.unit_busy[cls][unit] += meta.issue_latency;
}

Cycle
BaselineProcessor::nextIssueEventCycle(Cycle c) const
{
    Cycle ev = kNeverCycle;
    for (Cycle v : iclear_) {
        if (v >= c && v != kNeverCycle)
            ev = std::min(ev, v + 1);
    }
    for (Cycle v : fclear_) {
        if (v >= c && v != kNeverCycle)
            ev = std::min(ev, v + 1);
    }
    for (const auto &units : fu_free_) {
        for (Cycle f : units) {
            if (f > c)
                ev = std::min(ev, f);
        }
    }
    return ev;
}

Addr
BaselineProcessor::resolveBranch(const Insn &insn, Addr pc, Cycle c)
{
    const std::uint32_t a = iregs_[insn.rs];
    const std::uint32_t b = iregs_[insn.rt];
    Addr next = pc + kInsnBytes;

    switch (insn.op) {
      case Op::J:
        next = (pc & 0xf0000000u) |
               (static_cast<std::uint32_t>(insn.imm) << 2);
        break;
      case Op::JAL:
        iregs_[31] = pc + kInsnBytes;
        iclear_[31] = c;
        next = (pc & 0xf0000000u) |
               (static_cast<std::uint32_t>(insn.imm) << 2);
        break;
      case Op::JR:
        next = a;
        break;
      case Op::JALR:
        if (insn.rd != 0) {
            iregs_[insn.rd] = pc + kInsnBytes;
            iclear_[insn.rd] = c;
        }
        next = a;
        break;
      default:
        if (evalBranch(insn.op, a, b))
            next = pc + kInsnBytes + static_cast<Addr>(insn.imm * 4);
        break;
    }
    ++stats_.branches;
    return next;
}

void
BaselineProcessor::refillWindow()
{
    while (static_cast<int>(window_.size()) < cfg_.width &&
           fetch_pc_ < prog_.textEnd()) {
        WindowEntry e;
        e.pc = fetch_pc_;
        e.insn = text_.at(fetch_pc_);
        fetch_pc_ += kInsnBytes;
        window_.push_back(e);
    }
}

RunStats
BaselineProcessor::run()
{
    if (sink_)
        emitStreamPrologue();
    for (Cycle c = 1; running_; ++c) {
        if (c > cfg_.max_cycles) {
            stats_.cycles = cfg_.max_cycles;
            stats_.finished = false;
            if (sink_) {
                obs::Event ev;
                ev.cycle = stats_.cycles;
                ev.kind = obs::EventKind::RunEnd;
                ev.a = stats_.instructions;
                sink_->event(ev);
                sink_->flush();
            }
            return stats_;
        }
        if (c < stall_until_) {
            // Branch-gap bubble: these iterations do literally
            // nothing, so the jump is trivially cycle-exact.
            if (cfg_.fast_forward)
                c = stall_until_ - 1;
            continue;
        }
        refillWindow();

        int issues = 0;
        bool mem_blocked = false;
        bool flushed = false;
        std::uint32_t pr_int = 0, pr_fp = 0;   // pending reads
        std::uint32_t pw_int = 0, pw_fp = 0;   // pending writes
        done_.assign(window_.size(), 0);
        std::vector<char> &done = done_;

        for (size_t i = 0;
             i < window_.size() && issues < cfg_.width; ++i) {
            const Insn &insn = window_[i].insn;
            const bool front =
                pr_int == 0 && pr_fp == 0 && pw_int == 0 &&
                pw_fp == 0 && !mem_blocked;

            // Control instructions resolve in order, at the front
            // of the window only.
            if (insn.isBranch() || insn.isThreadCtl()) {
                if (!front)
                    break;
                if (insn.isBranch()) {
                    if (!srcsReady(insn, c, 0, 0))
                        break;
                    const Addr target =
                        resolveBranch(insn, window_[i].pc, c);
                    ++stats_.instructions;
                    ++issues;
                    if (sink_) {
                        emitSimple(obs::EventKind::Issue, c,
                                   window_[i].pc, insn);
                    }
                    // Predict-not-taken: the sequential stream
                    // continues for free; a taken branch flushes
                    // and pays the 4-cycle gap.
                    if (target == window_[i].pc + kInsnBytes) {
                        done[i] = 1;
                        continue;
                    }
                    if (sink_) {
                        emitSimple(obs::EventKind::Branch, c,
                                   window_[i].pc, insn, target);
                    }
                    window_.clear();
                    fetch_pc_ = target;
                    stall_until_ =
                        c + static_cast<Cycle>(cfg_.branch_gap);
                    flushed = true;
                    break;
                }
                // Thread-control op.
                if (insn.op == Op::HALT) {
                    ++stats_.instructions;
                    running_ = false;
                    stats_.cycles = std::max(c, last_activity_);
                    stats_.finished = true;
                    if (sink_) {
                        emitSimple(obs::EventKind::Issue, c,
                                   window_[i].pc, insn);
                        emitSimple(obs::EventKind::Halt, c,
                                   window_[i].pc, insn);
                    }
                    break;
                }
                if (insn.op == Op::TID || insn.op == Op::NSLOT) {
                    const RegRef dst = insn.dst();
                    if (clearCycleOf(dst) >= c)
                        break;
                    if (dst.idx != 0) {
                        iregs_[dst.idx] =
                            insn.op == Op::NSLOT ? 1 : 0;
                        clearCycleOf(dst) = c;
                    }
                }
                // FASTFORK/CHGPRI/KILLT/QEN/QDIS/SETRMODE/NOP are
                // no-ops on the sequential machine.
                ++stats_.instructions;
                ++issues;
                if (sink_) {
                    emitSimple(obs::EventKind::Issue, c,
                               window_[i].pc, insn);
                }
                done[i] = 1;
                continue;
            }

            // Data / memory instruction.
            bool issuable =
                srcsReady(insn, c, pw_int, pw_fp);
            const RegRef dst = insn.dst();
            if (issuable && dst.valid()) {
                const std::uint32_t pr =
                    dst.file == RF::Fp ? pr_fp : pr_int;
                const std::uint32_t pw =
                    dst.file == RF::Fp ? pw_fp : pw_int;
                if (clearCycleOf(dst) >= c || inMask(pr, dst.idx) ||
                    inMask(pw, dst.idx)) {
                    issuable = false;
                }
            }
            if (issuable && insn.isMem() && mem_blocked)
                issuable = false;

            int unit = -1;
            if (issuable) {
                unit = freeUnit(opMeta(insn.op).fu, c);
                issuable = unit >= 0;
            }

            if (issuable) {
                if (insn.isMem())
                    issueMemOp(insn, c, unit);
                else
                    issueDataOp(insn, c, unit);
                ++stats_.instructions;
                ++issues;
                if (sink_) {
                    obs::Event ev;
                    ev.cycle = c;
                    ev.kind = obs::EventKind::Grant;
                    ev.slot = 0;
                    ev.fu = static_cast<std::int8_t>(
                        opMeta(insn.op).fu);
                    ev.unit = static_cast<std::int16_t>(unit);
                    ev.pc = window_[i].pc;
                    ev.insn = encode(insn);
                    sink_->event(ev);
                }
                done[i] = 1;
            } else {
                // Entry stays; record its hazards for later entries.
                RegRef srcs[3];
                const int n = insn.srcs(srcs);
                for (int s = 0; s < n; ++s) {
                    if (srcs[s].file == RF::Fp)
                        addMask(pr_fp, srcs[s].idx);
                    else
                        addMask(pr_int, srcs[s].idx);
                }
                if (dst.valid()) {
                    if (dst.file == RF::Fp)
                        addMask(pw_fp, dst.idx);
                    else if (dst.idx != 0)
                        addMask(pw_int, dst.idx);
                }
                if (insn.isMem())
                    mem_blocked = true;
            }
        }

        if (!flushed && running_) {
            // Compact the window, keeping unissued entries in order.
            size_t w = 0;
            for (size_t i = 0; i < window_.size(); ++i) {
                if (!done[i])
                    window_[w++] = window_[i];
            }
            window_.resize(w);
        }

        if (cfg_.fast_forward && running_ && !flushed && issues == 0) {
            // Nothing issued and nothing flushed: the window and all
            // hazard state are frozen, and every blocking comparison
            // (clearCycleOf >= c, fu_free <= c) is monotonic in c,
            // so the cycles up to the earliest flip point replay this
            // one exactly. An exhausted window never issues again:
            // jump straight to the budget, matching the naive spin.
            const Cycle next = nextIssueEventCycle(c);
            if (next > c + 1)
                c = std::min(next, cfg_.max_cycles + 1) - 1;
        }
    }

    if (sink_) {
        obs::Event ev;
        ev.cycle = stats_.cycles;
        ev.kind = obs::EventKind::RunEnd;
        ev.a = stats_.instructions;
        sink_->event(ev);
        sink_->flush();
    }
    return stats_;
}

} // namespace smtsim
