#include "machine/manycore.hh"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "base/hash.hh"
#include "base/logging.hh"
#include "obs/serial.hh"

namespace smtsim
{

RunStats
MachineStats::aggregate() const
{
    RunStats total;
    for (const RunStats &s : cores) {
        total.cycles = std::max(total.cycles, s.cycles);
        total.instructions += s.instructions;
        for (int c = 0; c < kNumFuClasses; ++c) {
            total.fu_grants[c] += s.fu_grants[c];
            total.fu_busy[c] += s.fu_busy[c];
            if (total.unit_busy[c].size() < s.unit_busy[c].size())
                total.unit_busy[c].resize(s.unit_busy[c].size(), 0);
            for (std::size_t u = 0; u < s.unit_busy[c].size(); ++u)
                total.unit_busy[c][u] += s.unit_busy[c][u];
        }
        total.branches += s.branches;
        total.loads += s.loads;
        total.stores += s.stores;
        total.standby_stalls += s.standby_stalls;
        total.context_switches += s.context_switches;
        total.writeback_conflicts += s.writeback_conflicts;
        total.dcache_hits += s.dcache_hits;
        total.dcache_misses += s.dcache_misses;
        total.icache_hits += s.icache_hits;
        total.icache_misses += s.icache_misses;
    }
    total.cycles = std::max(total.cycles, cycles);
    total.finished = finished;
    return total;
}

/**
 * Persistent host threads driven in rounds: the barrier loop posts
 * a target cycle, every worker simulates its statically assigned
 * cores (core i on thread i mod T) to the target, and the loop
 * resumes once the last worker checks in. All hand-offs go through
 * one mutex, which gives the happens-before edges TSan wants: a
 * worker's writes to its cores are visible to the barrier drain,
 * and the drain's completeRemote() writes are visible to whichever
 * worker owns the core next round (the same one — assignment is
 * static).
 */
class ManyCoreMachine::WorkerPool
{
  public:
    WorkerPool(ManyCoreMachine &machine, int num_threads)
        : machine_(machine), num_threads_(num_threads)
    {
        threads_.reserve(static_cast<std::size_t>(num_threads));
        for (int t = 0; t < num_threads; ++t)
            threads_.emplace_back([this, t] { workerLoop(t); });
    }

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            quit_ = true;
        }
        cv_work_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    int numThreads() const { return num_threads_; }

    /** Run one quantum on the pool; blocks until every worker is
     *  done. Rethrows the first worker exception, if any. */
    void
    runQuantum(Cycle target)
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            target_ = target;
            remaining_ = num_threads_;
            ++round_;
        }
        cv_work_.notify_all();
        std::unique_lock<std::mutex> lk(m_);
        cv_done_.wait(lk, [this] { return remaining_ == 0; });
        if (error_) {
            std::exception_ptr e = error_;
            error_ = nullptr;
            std::rethrow_exception(e);
        }
    }

  private:
    void
    workerLoop(int tid)
    {
        std::uint64_t seen = 0;
        for (;;) {
            Cycle target;
            {
                std::unique_lock<std::mutex> lk(m_);
                cv_work_.wait(lk, [&] {
                    return quit_ || round_ != seen;
                });
                if (quit_)
                    return;
                seen = round_;
                target = target_;
            }
            std::exception_ptr error;
            try {
                machine_.runAssignedCores(tid, num_threads_,
                                          target);
            } catch (...) {
                error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lk(m_);
                if (error && !error_)
                    error_ = error;
                if (--remaining_ == 0)
                    cv_done_.notify_all();
            }
        }
    }

    ManyCoreMachine &machine_;
    const int num_threads_;

    std::mutex m_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    std::uint64_t round_ = 0;
    int remaining_ = 0;
    Cycle target_ = 0;
    bool quit_ = false;
    std::exception_ptr error_;

    std::vector<std::thread> threads_;
};

ManyCoreMachine::ManyCoreMachine(
    const Program &prog, const MachineConfig &cfg,
    const std::function<void(int core, MainMemory &mem)> &init)
    : cfg_(cfg), noc_(cfg.noc, cfg.num_cores)
{
    const Cycle max_quantum = noc_.minLatency() - 1;
    quantum_ = cfg_.quantum == 0 ? max_quantum : cfg_.quantum;
    if (quantum_ > max_quantum) {
        fatal("manycore: quantum ", quantum_,
              " exceeds the interconnect's minimum latency - 1 (",
              max_quantum, "); remote completions would land "
              "inside an already-simulated quantum");
    }
    has_remote_ = cfg_.core.remote.size > 0;

    const auto n = static_cast<std::size_t>(cfg_.num_cores);
    mems_.reserve(n);
    cores_.reserve(n);
    ports_.reserve(n);
    for (int i = 0; i < cfg_.num_cores; ++i) {
        mems_.push_back(std::make_unique<MainMemory>());
        prog.loadInto(*mems_.back());
        if (init)
            init(i, *mems_.back());
        ports_.push_back(std::make_unique<CorePort>(*this, i));
        cores_.push_back(std::make_unique<MultithreadedProcessor>(
            prog, *mems_.back(), cfg_.core));
        cores_.back()->setRemoteModel(ports_.back().get());
    }
}

ManyCoreMachine::~ManyCoreMachine() = default;

bool
ManyCoreMachine::finished() const
{
    for (const auto &core : cores_) {
        if (!core->finished())
            return false;
    }
    return true;
}

MultithreadedProcessor &
ManyCoreMachine::core(int i)
{
    return *cores_.at(static_cast<std::size_t>(i));
}

const MultithreadedProcessor &
ManyCoreMachine::core(int i) const
{
    return *cores_.at(static_cast<std::size_t>(i));
}

MainMemory &
ManyCoreMachine::memory(int i)
{
    return *mems_.at(static_cast<std::size_t>(i));
}

const MainMemory &
ManyCoreMachine::memory(int i) const
{
    return *mems_.at(static_cast<std::size_t>(i));
}

Cycle
ManyCoreMachine::pickQuantumEnd(Cycle stop) const
{
    // Without a remote region no core can ever touch the
    // interconnect, so the barrier discipline is vacuous and one
    // quantum spans the whole run.
    if (!has_remote_)
        return stop;

    // The idle fast-forward bound doubles as the quantum picker: no
    // core can issue a remote request before the earliest
    // next-event cycle, so the quantum budget starts counting
    // there (a machine full of sleeping cores jumps straight to
    // the next wake-up instead of crawling in quantum-sized steps).
    Cycle hint = kNeverCycle;
    for (const auto &core : cores_) {
        if (!core->finished())
            hint = std::min(hint, core->nextEventHint());
    }
    // Every runnable core drained: nothing will ever happen again
    // (or everything finished); run out the clock in one quantum.
    if (hint == kNeverCycle || hint >= stop)
        return stop;
    return std::min(stop, hint - 1 + quantum_);
}

void
ManyCoreMachine::runAssignedCores(int tid, int stride, Cycle target)
{
    for (int i = tid; i < numCores(); i += stride) {
        if (!cores_[static_cast<std::size_t>(i)]->finished())
            cores_[static_cast<std::size_t>(i)]->runUntil(target);
    }
}

void
ManyCoreMachine::runCoresUntil(Cycle target, int host_threads)
{
    const int want = std::min(host_threads, numCores());
    if (want <= 0) {
        runAssignedCores(0, 1, target);
        return;
    }
    if (!pool_ || pool_->numThreads() != want)
        pool_ = std::make_unique<WorkerPool>(*this, want);
    pool_->runQuantum(target);
}

void
ManyCoreMachine::drainRequests()
{
    drain_scratch_.clear();
    for (const auto &port : ports_) {
        auto &pending = port->pending();
        drain_scratch_.insert(drain_scratch_.end(), pending.begin(),
                              pending.end());
        pending.clear();
    }
    if (drain_scratch_.empty())
        return;

    // Canonical fold order (docs/MANYCORE.md): issue cycle, then
    // core, then per-core sequence. Because quanta partition
    // requests by issue cycle, folding per-quantum batches in this
    // order equals one fold of the whole sorted run — the source of
    // schedule independence.
    std::sort(drain_scratch_.begin(), drain_scratch_.end(),
              [](const RemoteRequest &a, const RemoteRequest &b) {
                  return std::tie(a.issued, a.core, a.seq) <
                         std::tie(b.issued, b.core, b.seq);
              });
    for (const RemoteRequest &req : drain_scratch_) {
        const Cycle done = noc_.resolve(req);
        cores_[static_cast<std::size_t>(req.core)]->completeRemote(
            req.frame, done);
    }
}

MachineStats
ManyCoreMachine::runUntil(Cycle stop, int host_threads)
{
    stop = std::min(stop, cfg_.core.max_cycles);
    while (now_ < stop && !finished()) {
        const Cycle target = pickQuantumEnd(stop);
        SMTSIM_ASSERT(target > now_,
                      "manycore: quantum made no progress");
        runCoresUntil(target, host_threads);
        drainRequests();
        now_ = target;
        ++quanta_;
    }
    return stats();
}

MachineStats
ManyCoreMachine::run(int host_threads)
{
    return runUntil(kNeverCycle, host_threads);
}

MachineStats
ManyCoreMachine::stats() const
{
    MachineStats out;
    out.quanta = quanta_;
    out.finished = finished();
    out.cores.reserve(cores_.size());
    for (const auto &core : cores_) {
        out.cores.push_back(core->stats());
        out.cycles = std::max(out.cycles, core->finished()
                                              ? core->stats().cycles
                                              : core->now());
    }
    out.noc = noc_.stats();
    return out;
}

std::uint64_t
ManyCoreMachine::checkpointFingerprint() const
{
    Fnv1a h;
    auto add64 = [&h](std::uint64_t v) { h.add(&v, sizeof v); };
    add64(0x534d'544d'434b'5031ull);    // "SMTMCKP1"
    add64(static_cast<std::uint64_t>(cfg_.num_cores));
    add64(quantum_);
    add64(noc_.fingerprint());
    for (const auto &core : cores_)
        add64(core->checkpointFingerprint());
    return h.digest();
}

void
ManyCoreMachine::saveCheckpoint(std::ostream &os) const
{
    for (const auto &port : ports_) {
        SMTSIM_ASSERT(port->pending().empty(),
                      "manycore checkpoint: unresolved remote "
                      "request (saves must happen at a barrier)");
    }
    obs::ByteWriter w(os);
    w.bytes("SMTMCKP1", 8);
    w.u64(checkpointFingerprint());
    w.u64(now_);
    w.u64(quanta_);
    noc_.save(w);
    for (const auto &core : cores_) {
        std::ostringstream blob;
        core->saveCheckpoint(blob);
        const std::string bytes = std::move(blob).str();
        w.u64(bytes.size());
        w.bytes(bytes.data(), bytes.size());
    }
    if (!w.ok()) {
        throw std::runtime_error(
            "manycore checkpoint: write failed");
    }
}

void
ManyCoreMachine::restoreCheckpoint(std::istream &is)
{
    obs::ByteReader r(is);
    char magic[8];
    r.bytes(magic, sizeof magic);
    if (std::memcmp(magic, "SMTMCKP1", sizeof magic) != 0) {
        throw std::runtime_error(
            "manycore checkpoint: bad magic (not a machine "
            "checkpoint)");
    }
    obs::expectU64(r, checkpointFingerprint(),
                   "machine fingerprint");
    now_ = r.u64();
    quanta_ = r.u64();
    noc_.load(r);
    for (const auto &core : cores_) {
        const std::uint64_t n = r.u64();
        if (n > (1ull << 32)) {
            throw std::runtime_error(
                "manycore checkpoint: implausible core blob size");
        }
        std::string blob(static_cast<std::size_t>(n), '\0');
        r.bytes(blob.data(), blob.size());
        std::istringstream s(std::move(blob));
        core->restoreCheckpoint(s);
    }
}

} // namespace smtsim
