#include "machine/manycore_json.hh"

#include "machine/run_stats_json.hh"

namespace smtsim
{

namespace
{

Json
u64Vector(const std::vector<std::uint64_t> &v)
{
    Json arr = Json::array();
    for (std::uint64_t x : v)
        arr.push(Json(x));
    return arr;
}

std::vector<std::uint64_t>
readU64Vector(const Json &arr)
{
    std::vector<std::uint64_t> v;
    v.reserve(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i)
        v.push_back(arr.at(i).asU64());
    return v;
}

Json
nocToJson(const InterconnectStats &s)
{
    Json j = Json::object();
    j.set("requests", Json(s.requests));
    j.set("conflicts", Json(s.conflicts));
    j.set("total_latency", Json(s.total_latency));
    j.set("bank_accesses", u64Vector(s.bank_accesses));
    j.set("bank_conflicts", u64Vector(s.bank_conflicts));
    return j;
}

InterconnectStats
nocFromJson(const Json &j)
{
    InterconnectStats s;
    s.requests = j.at("requests").asU64();
    s.conflicts = j.at("conflicts").asU64();
    s.total_latency = j.at("total_latency").asU64();
    s.bank_accesses = readU64Vector(j.at("bank_accesses"));
    s.bank_conflicts = readU64Vector(j.at("bank_conflicts"));
    return s;
}

} // namespace

Json
machineStatsToJson(const MachineStats &stats)
{
    Json j = Json::object();
    j.set("cycles", Json(stats.cycles));
    j.set("quanta", Json(stats.quanta));
    j.set("finished", Json(stats.finished));
    Json cores = Json::array();
    for (const RunStats &s : stats.cores)
        cores.push(statsToJson(s));
    j.set("cores", std::move(cores));
    j.set("noc", nocToJson(stats.noc));
    return j;
}

MachineStats
machineStatsFromJson(const Json &j)
{
    MachineStats stats;
    stats.cycles = j.at("cycles").asU64();
    stats.quanta = j.at("quanta").asU64();
    stats.finished = j.at("finished").asBool();
    const Json &cores = j.at("cores");
    stats.cores.reserve(cores.size());
    for (std::size_t i = 0; i < cores.size(); ++i)
        stats.cores.push_back(statsFromJson(cores.at(i)));
    stats.noc = nocFromJson(j.at("noc"));
    return stats;
}

bool
machineStatsEqual(const MachineStats &a, const MachineStats &b)
{
    if (a.cycles != b.cycles || a.quanta != b.quanta ||
        a.finished != b.finished ||
        a.cores.size() != b.cores.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
        if (!statsEqual(a.cores[i], b.cores[i]))
            return false;
    }
    return a.noc.requests == b.noc.requests &&
           a.noc.conflicts == b.noc.conflicts &&
           a.noc.total_latency == b.noc.total_latency &&
           a.noc.bank_accesses == b.noc.bank_accesses &&
           a.noc.bank_conflicts == b.noc.bank_conflicts;
}

} // namespace smtsim
