/**
 * @file
 * JSON serialization of RunStats, shared by `smtsim-run --json` and
 * the experiment engine's on-disk result cache. Every counter is
 * round-tripped exactly (integers stay integers), so a cached
 * record restores a bitwise-identical RunStats.
 */

#ifndef SMTSIM_MACHINE_RUN_STATS_JSON_HH
#define SMTSIM_MACHINE_RUN_STATS_JSON_HH

#include "base/json.hh"
#include "machine/run_stats.hh"

namespace smtsim
{

/** Serialize every RunStats field into a JSON object. */
Json statsToJson(const RunStats &stats);

/**
 * Rebuild a RunStats from statsToJson output.
 * @throws JsonParseError on missing/malformed members.
 */
RunStats statsFromJson(const Json &j);

/** Field-by-field equality (used by the determinism tests). */
bool statsEqual(const RunStats &a, const RunStats &b);

} // namespace smtsim

#endif // SMTSIM_MACHINE_RUN_STATS_JSON_HH
