/**
 * @file
 * Functional-unit pool configuration shared by the baseline RISC
 * model and the multithreaded core.
 *
 * The paper's seven heterogeneous units are one of each class below
 * with one load/store unit; the "two load/store unit" configuration
 * of section 3 sets load_store = 2 (eight units, as in Table 3).
 */

#ifndef SMTSIM_MACHINE_FU_POOL_HH
#define SMTSIM_MACHINE_FU_POOL_HH

#include "base/logging.hh"
#include "isa/op.hh"

namespace smtsim
{

/** Number of functional units of each class. */
struct FuPoolConfig
{
    int int_alu = 1;
    int shifter = 1;
    int int_mul = 1;
    int fp_add = 1;
    int fp_mul = 1;
    int fp_div = 1;
    int load_store = 1;

    int
    count(FuClass cls) const
    {
        switch (cls) {
          case FuClass::IntAlu: return int_alu;
          case FuClass::Shifter: return shifter;
          case FuClass::IntMul: return int_mul;
          case FuClass::FpAdd: return fp_add;
          case FuClass::FpMul: return fp_mul;
          case FuClass::FpDiv: return fp_div;
          case FuClass::LoadStore: return load_store;
          default:
            panic("FuPoolConfig::count: bad class");
        }
    }

    int
    total() const
    {
        return int_alu + shifter + int_mul + fp_add + fp_mul +
               fp_div + load_store;
    }
};

/** Human-readable FU class name. */
const char *fuClassName(FuClass cls);

} // namespace smtsim

#endif // SMTSIM_MACHINE_FU_POOL_HH
