#include "machine/fu_pool.hh"
#include "machine/run_stats.hh"

namespace smtsim
{

const char *
fuClassName(FuClass cls)
{
    switch (cls) {
      case FuClass::IntAlu: return "int_alu";
      case FuClass::Shifter: return "shifter";
      case FuClass::IntMul: return "int_mul";
      case FuClass::FpAdd: return "fp_add";
      case FuClass::FpMul: return "fp_mul";
      case FuClass::FpDiv: return "fp_div";
      case FuClass::LoadStore: return "load_store";
      case FuClass::None: return "none";
      default: return "?";
    }
}

double
RunStats::unitUtilization(FuClass cls, int unit) const
{
    if (cycles == 0)
        return 0.0;
    const auto &per_unit = unit_busy[static_cast<int>(cls)];
    if (unit < 0 || unit >= static_cast<int>(per_unit.size()))
        return 0.0;
    return 100.0 * static_cast<double>(per_unit[unit]) /
           static_cast<double>(cycles);
}

double
RunStats::busiestUnitUtilization() const
{
    double best = 0.0;
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        for (size_t u = 0; u < unit_busy[cls].size(); ++u) {
            const double util = unitUtilization(
                static_cast<FuClass>(cls), static_cast<int>(u));
            best = util > best ? util : best;
        }
    }
    return best;
}

} // namespace smtsim
