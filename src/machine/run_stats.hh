/**
 * @file
 * Statistics produced by one simulation run, shared by both pipeline
 * models and consumed by the benchmark harness.
 */

#ifndef SMTSIM_MACHINE_RUN_STATS_HH
#define SMTSIM_MACHINE_RUN_STATS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "isa/op.hh"

namespace smtsim
{

/** Aggregate results of one run. */
struct RunStats
{
    /** Total execution cycles (T in the paper's utilization). */
    Cycle cycles = 0;
    /** Dynamically executed (committed) instructions. */
    std::uint64_t instructions = 0;
    /** True if the program ran to completion within the budget. */
    bool finished = false;

    /** Per-class invocation count (N). */
    std::array<std::uint64_t, kNumFuClasses> fu_grants{};
    /** Per-class sum of issue latencies (N*L aggregated). */
    std::array<std::uint64_t, kNumFuClasses> fu_busy{};
    /** Per-class, per-unit busy cycles, for "busiest unit". */
    std::array<std::vector<std::uint64_t>, kNumFuClasses>
        unit_busy{};

    std::uint64_t branches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    /** Issue stalls caused by full standby stations (core only). */
    std::uint64_t standby_stalls = 0;
    /** Context switches taken (concurrent multithreading). */
    std::uint64_t context_switches = 0;
    /** Same-cycle register-bank write-port conflicts (stat only). */
    std::uint64_t writeback_conflicts = 0;

    /** Finite-cache counters (zero with perfect caches). */
    std::uint64_t dcache_hits = 0;
    std::uint64_t dcache_misses = 0;
    std::uint64_t icache_hits = 0;
    std::uint64_t icache_misses = 0;

    /** Utilization (percent) of the busiest single unit. */
    double busiestUnitUtilization() const;
    /** Utilization (percent) of the busiest unit of @p cls. */
    double unitUtilization(FuClass cls, int unit) const;
};

} // namespace smtsim

#endif // SMTSIM_MACHINE_RUN_STATS_HH
