#include "run_stats_json.hh"

namespace smtsim
{

namespace
{

Json
u64Array(const std::uint64_t *data, std::size_t n)
{
    Json arr = Json::array();
    for (std::size_t i = 0; i < n; ++i)
        arr.push(Json(data[i]));
    return arr;
}

void
readU64Array(const Json &arr, std::uint64_t *out, std::size_t n)
{
    if (arr.size() != n)
        throw JsonParseError("stats array length mismatch");
    for (std::size_t i = 0; i < n; ++i)
        out[i] = arr.at(i).asU64();
}

} // namespace

Json
statsToJson(const RunStats &s)
{
    Json j = Json::object();
    j.set("cycles", Json(s.cycles));
    j.set("instructions", Json(s.instructions));
    j.set("finished", Json(s.finished));
    j.set("fu_grants",
          u64Array(s.fu_grants.data(), s.fu_grants.size()));
    j.set("fu_busy", u64Array(s.fu_busy.data(), s.fu_busy.size()));
    Json unit_busy = Json::array();
    for (const auto &units : s.unit_busy)
        unit_busy.push(u64Array(units.data(), units.size()));
    j.set("unit_busy", std::move(unit_busy));
    j.set("branches", Json(s.branches));
    j.set("loads", Json(s.loads));
    j.set("stores", Json(s.stores));
    j.set("standby_stalls", Json(s.standby_stalls));
    j.set("context_switches", Json(s.context_switches));
    j.set("writeback_conflicts", Json(s.writeback_conflicts));
    j.set("dcache_hits", Json(s.dcache_hits));
    j.set("dcache_misses", Json(s.dcache_misses));
    j.set("icache_hits", Json(s.icache_hits));
    j.set("icache_misses", Json(s.icache_misses));
    return j;
}

RunStats
statsFromJson(const Json &j)
{
    RunStats s;
    s.cycles = j.at("cycles").asU64();
    s.instructions = j.at("instructions").asU64();
    s.finished = j.at("finished").asBool();
    readU64Array(j.at("fu_grants"), s.fu_grants.data(),
                 s.fu_grants.size());
    readU64Array(j.at("fu_busy"), s.fu_busy.data(),
                 s.fu_busy.size());
    const Json &unit_busy = j.at("unit_busy");
    if (unit_busy.size() != s.unit_busy.size())
        throw JsonParseError("unit_busy class count mismatch");
    for (std::size_t cls = 0; cls < s.unit_busy.size(); ++cls) {
        const Json &units = unit_busy.at(cls);
        s.unit_busy[cls].resize(units.size());
        readU64Array(units, s.unit_busy[cls].data(),
                     s.unit_busy[cls].size());
    }
    s.branches = j.at("branches").asU64();
    s.loads = j.at("loads").asU64();
    s.stores = j.at("stores").asU64();
    s.standby_stalls = j.at("standby_stalls").asU64();
    s.context_switches = j.at("context_switches").asU64();
    s.writeback_conflicts = j.at("writeback_conflicts").asU64();
    s.dcache_hits = j.at("dcache_hits").asU64();
    s.dcache_misses = j.at("dcache_misses").asU64();
    s.icache_hits = j.at("icache_hits").asU64();
    s.icache_misses = j.at("icache_misses").asU64();
    return s;
}

bool
statsEqual(const RunStats &a, const RunStats &b)
{
    return a.cycles == b.cycles &&
           a.instructions == b.instructions &&
           a.finished == b.finished && a.fu_grants == b.fu_grants &&
           a.fu_busy == b.fu_busy && a.unit_busy == b.unit_busy &&
           a.branches == b.branches && a.loads == b.loads &&
           a.stores == b.stores &&
           a.standby_stalls == b.standby_stalls &&
           a.context_switches == b.context_switches &&
           a.writeback_conflicts == b.writeback_conflicts &&
           a.dcache_hits == b.dcache_hits &&
           a.dcache_misses == b.dcache_misses &&
           a.icache_hits == b.icache_hits &&
           a.icache_misses == b.icache_misses;
}

} // namespace smtsim
