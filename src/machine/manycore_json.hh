/**
 * @file
 * JSON serialization of MachineStats, shared by
 * `smtsim-run --cores N --json` and the experiment engine's result
 * cache. Every counter round-trips exactly, so the
 * manycore-determinism CI job can byte-diff dumps from different
 * host-thread schedules.
 */

#ifndef SMTSIM_MACHINE_MANYCORE_JSON_HH
#define SMTSIM_MACHINE_MANYCORE_JSON_HH

#include "base/json.hh"
#include "machine/manycore.hh"

namespace smtsim
{

/** Serialize every MachineStats field into a JSON object. */
Json machineStatsToJson(const MachineStats &stats);

/**
 * Rebuild a MachineStats from machineStatsToJson output.
 * @throws JsonParseError on missing/malformed members.
 */
MachineStats machineStatsFromJson(const Json &j);

/** Field-by-field equality (used by the determinism tests). */
bool machineStatsEqual(const MachineStats &a, const MachineStats &b);

} // namespace smtsim

#endif // SMTSIM_MACHINE_MANYCORE_JSON_HH
