/**
 * @file
 * The many-core machine (docs/MANYCORE.md): N copies of the
 * elementary multithreaded processor, each with private memory and
 * icache, coupled through a banked shared L2 behind a ring
 * interconnect (src/interconnect/). This is the paper's intended
 * scale-out — the elementary processor as the building block of a
 * parallel machine.
 *
 * Functional model: *functionally partitioned, timing coupled*.
 * Each core runs the same program image in its own private memory
 * (SPMD), so architectural results never flow between cores; what
 * the interconnect carries is the *timing* of remote-memory /
 * context-frame traffic — the accesses that previously charged the
 * fixed-latency RemoteRegion stub. This keeps functional results
 * trivially schedule-independent; cycle counts are made
 * schedule-independent by the quantum discipline below.
 *
 * Timing model: simulation advances in quanta ending at barriers.
 * Within a quantum every core simulates independently; remote
 * accesses are banked per core in issue order. At the barrier the
 * machine folds all banked requests through the interconnect in a
 * canonical (issue cycle, core, per-core sequence) order and wakes
 * each waiting context at its computed completion. The quantum
 * length never exceeds minLatency() - 1, so every completion lands
 * strictly after the barrier that resolves it — no core ever needed
 * a wake-up inside a quantum it already simulated. Because the fold
 * order is canonical and quantum boundaries partition requests by
 * issue cycle, the fold is independent of how cycles are split into
 * quanta and of which host thread ran which core: parallel host
 * schedules are bit-identical to the sequential reference.
 */

#ifndef SMTSIM_MACHINE_MANYCORE_HH
#define SMTSIM_MACHINE_MANYCORE_HH

#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "asmr/program.hh"
#include "base/types.hh"
#include "core/config.hh"
#include "core/processor.hh"
#include "interconnect/interconnect.hh"
#include "machine/run_stats.hh"
#include "mem/memory.hh"

namespace smtsim
{

/** Configuration of the N-core machine. */
struct MachineConfig
{
    /** Simulated cores (each a full MultithreadedProcessor). */
    int num_cores = 2;
    /** Per-core configuration, identical for every core (SPMD). */
    CoreConfig core;
    /** Shared L2 + ring interconnect. */
    InterconnectConfig noc;
    /**
     * Barrier quantum in cycles; 0 (the default) picks the longest
     * safe value, noc.minLatency() - 1. Values above that are
     * rejected — the determinism argument needs every remote
     * completion to land strictly after the barrier resolving it.
     */
    Cycle quantum = 0;
};

/** Aggregate results of one machine run. */
struct MachineStats
{
    /** Slowest core's cycle count. */
    Cycle cycles = 0;
    /** Barrier quanta executed (diagnostic; schedule-dependent only
     *  on the runUntil() split points, never on host threads). */
    std::uint64_t quanta = 0;
    /** Every core ran to completion. */
    bool finished = false;
    std::vector<RunStats> cores;
    InterconnectStats noc;

    /** Machine-wide roll-up: counters summed, cycles = max. */
    RunStats aggregate() const;
};

/**
 * N elementary processors around a shared banked L2.
 *
 * Basic use: construct (optionally with a per-core memory init
 * hook), then run(host_threads). host_threads = 0 is the sequential
 * reference schedule; T >= 1 simulates cores on T persistent worker
 * threads (core i on thread i mod T) with barrier synchronization —
 * bit-identical results by construction, enforced by test_manycore
 * and the manycore-determinism CI job.
 */
class ManyCoreMachine
{
  public:
    /**
     * Build the machine: per-core private memories loaded with
     * @p prog, per-core processors with the interconnect attached
     * as their remote timing model. @p init, when set, runs once
     * per core after the image is loaded (workload input setup).
     * @throws FatalError on an invalid configuration.
     */
    ManyCoreMachine(
        const Program &prog, const MachineConfig &cfg,
        const std::function<void(int core, MainMemory &mem)> &init =
            {});

    ~ManyCoreMachine();

    ManyCoreMachine(const ManyCoreMachine &) = delete;
    ManyCoreMachine &operator=(const ManyCoreMachine &) = delete;

    /** Simulate until every core finishes (or budget expires). */
    MachineStats run(int host_threads = 0);

    /**
     * Simulate until the machine clock reaches min(@p stop,
     * core.max_cycles) or every core finishes. Split calls are
     * bit-identical to one call (checkpointing relies on it);
     * returns stats so far. The returned clock always sits on a
     * barrier: no remote request is in flight between calls.
     */
    MachineStats runUntil(Cycle stop, int host_threads = 0);

    /** Machine clock: last barrier cycle reached. */
    Cycle now() const { return now_; }

    /** True once every core retired its last instruction. */
    bool finished() const;

    int numCores() const { return static_cast<int>(cores_.size()); }
    const MachineConfig &config() const { return cfg_; }
    /** Effective barrier quantum (resolved from config). */
    Cycle quantum() const { return quantum_; }

    MultithreadedProcessor &core(int i);
    const MultithreadedProcessor &core(int i) const;
    MainMemory &memory(int i);
    const MainMemory &memory(int i) const;
    const Interconnect &interconnect() const { return noc_; }

    /** Current statistics roll-up (final once finished()). */
    MachineStats stats() const;

    /**
     * Serialize the whole machine — clock, interconnect bank state,
     * every core (including its private memory) — so a later
     * restoreCheckpoint() resumes bit-identically. Always called at
     * a barrier (any point between runUntil() calls is one), so
     * there is never an unresolved remote request to save.
     */
    void saveCheckpoint(std::ostream &os) const;

    /**
     * Restore state saved by saveCheckpoint() into this machine,
     * which must have been constructed with the same program and
     * configuration (validated via checkpointFingerprint(); throws
     * std::runtime_error on mismatch or corruption).
     */
    void restoreCheckpoint(std::istream &is);

    /** Fingerprint binding checkpoints to (program, machine
     *  configuration): core count, quantum, interconnect topology
     *  and every core's own (program, config) fingerprint. */
    std::uint64_t checkpointFingerprint() const;

  private:
    /** Per-core RemoteTimingModel: banks trap requests issued by
     *  one core during a quantum, in issue order. */
    class CorePort : public RemoteTimingModel
    {
      public:
        CorePort(ManyCoreMachine &machine, int core)
            : machine_(machine), core_(core)
        {}

        Cycle
        uncontendedLatency(Addr addr) const override
        {
            return machine_.noc_.uncontendedLatency(core_, addr);
        }

        void
        request(int frame, Addr addr, Cycle issued) override
        {
            // Touched only by the host thread simulating this core
            // (inside runUntil) and by the barrier drain — never
            // concurrently.
            pending_.push_back(
                RemoteRequest{issued, core_, frame, addr, seq_++});
        }

        std::vector<RemoteRequest> &pending() { return pending_; }

      private:
        ManyCoreMachine &machine_;
        int core_;
        std::vector<RemoteRequest> pending_;
        /** Monotonic per-core issue sequence; only its relative
         *  order within one core matters (tie-break for requests
         *  issued the same cycle), so it is not checkpointed. */
        std::uint64_t seq_ = 0;
    };

    class WorkerPool;

    /** End cycle of the next quantum given the cores' idle
     *  fast-forward hints (docs/MANYCORE.md). */
    Cycle pickQuantumEnd(Cycle stop) const;
    /** Run every unfinished core to @p target, sequentially or on
     *  the worker pool. */
    void runCoresUntil(Cycle target, int host_threads);
    /** Barrier: fold all banked requests through the interconnect
     *  in canonical order and wake the waiting contexts. */
    void drainRequests();
    void runAssignedCores(int tid, int stride, Cycle target);

    MachineConfig cfg_;
    Cycle quantum_ = 0;
    /** True when the core config has a remote region at all; with
     *  none there is no coupling and quanta collapse to one. */
    bool has_remote_ = false;

    std::vector<std::unique_ptr<MainMemory>> mems_;
    std::vector<std::unique_ptr<MultithreadedProcessor>> cores_;
    std::vector<std::unique_ptr<CorePort>> ports_;
    Interconnect noc_;

    Cycle now_ = 0;
    std::uint64_t quanta_ = 0;

    /** Scratch for the barrier fold (no per-quantum allocation
     *  after warm-up). */
    std::vector<RemoteRequest> drain_scratch_;

    /** Lazily created persistent host-thread pool. */
    std::unique_ptr<WorkerPool> pool_;
};

} // namespace smtsim

#endif // SMTSIM_MACHINE_MANYCORE_HH
