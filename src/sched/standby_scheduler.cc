#include "standby_scheduler.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sched/ddg.hh"

namespace smtsim
{

ScheduleResult
standbySchedule(const std::vector<Insn> &body,
                const StandbySchedulerConfig &cfg)
{
    SMTSIM_ASSERT(cfg.num_slots >= 1, "bad slot count");
    const DepGraph graph(body);
    const int n = graph.size();

    std::vector<int> unscheduled_preds(n, 0);
    std::vector<int> earliest(n, 1);
    for (int i = 0; i < n; ++i)
        unscheduled_preds[i] =
            static_cast<int>(graph.preds(i).size());

    // One thread's fair share of each class: a unit grants this
    // thread once every num_slots * issue_latency / units cycles.
    auto share_window = [&](FuClass cls, int issue_lat) {
        const int units = cfg.fus.count(cls);
        return (cfg.num_slots * issue_lat + units - 1) / units;
    };

    std::vector<int> class_free(kNumFuClasses, 1);
    std::vector<int> standby_busy(kNumFuClasses, 0);

    ScheduleResult result;
    std::vector<char> done(n, 0);
    int cycle = 1;
    int scheduled = 0;

    auto commit = [&](int pick, int exec_at) {
        done[pick] = 1;
        ++scheduled;
        const Insn &insn = graph.insns()[pick];
        const OpMeta &meta = opMeta(insn.op);
        const int cls = static_cast<int>(meta.fu);

        result.order.push_back(insn);
        result.issue_cycle.push_back(cycle);
        class_free[cls] =
            exec_at + share_window(meta.fu, meta.issue_latency);
        result.length = std::max(result.length,
                                 exec_at + meta.result_latency);

        for (int e : graph.succs(pick)) {
            const DepEdge &edge = graph.edge(e);
            earliest[edge.to] = std::max(
                earliest[edge.to], exec_at + edge.min_distance);
            --unscheduled_preds[edge.to];
        }
    };

    while (scheduled < n) {
        // Dependence-ready instructions this cycle.
        int best_free = -1, best_free_cp = -1;
        int best_standby = -1, best_standby_cp = -1;
        for (int i = 0; i < n; ++i) {
            if (done[i] || unscheduled_preds[i] > 0 ||
                earliest[i] > cycle) {
                continue;
            }
            const int cls =
                static_cast<int>(opMeta(graph.insns()[i].op).fu);
            const int cp = graph.criticalPathFrom(i);
            if (class_free[cls] <= cycle) {
                if (cp > best_free_cp) {
                    best_free = i;
                    best_free_cp = cp;
                }
            } else if (cfg.use_standby &&
                       standby_busy[cls] <= cycle) {
                if (cp > best_standby_cp) {
                    best_standby = i;
                    best_standby_cp = cp;
                }
            }
        }

        if (best_free >= 0) {
            commit(best_free, cycle);
        } else if (best_standby >= 0) {
            // All ready instructions conflict; park the best one in
            // a standby station. The reservation table tells us it
            // executes when its class frees up.
            const Insn &insn = graph.insns()[best_standby];
            const int cls = static_cast<int>(opMeta(insn.op).fu);
            const int exec_at = class_free[cls];
            standby_busy[cls] = exec_at;
            commit(best_standby, exec_at);
        } else {
            ++cycle;
            continue;
        }
        ++cycle;    // single issue per cycle
    }

    return result;
}

} // namespace smtsim
