#include "ddg.hh"

#include "base/logging.hh"

namespace smtsim
{

DepGraph::DepGraph(const std::vector<Insn> &body) : insns_(body)
{
    const int n = size();
    succs_.resize(n);
    preds_.resize(n);

    for (const Insn &insn : insns_) {
        if (insn.isBranch() || insn.isThreadCtl()) {
            fatal("DepGraph: control instruction in loop body: ",
                  disassemble(insn));
        }
    }

    auto add_edge = [&](int from, int to, int dist) {
        const int e = static_cast<int>(edges_.size());
        edges_.push_back(DepEdge{from, to, dist});
        succs_[from].push_back(e);
        preds_[to].push_back(e);
    };

    int last_mem = -1;
    for (int j = 0; j < n; ++j) {
        const Insn &cons = insns_[j];
        RegRef srcs[3];
        const int ns = cons.srcs(srcs);

        // True dependences: latest earlier writer of each source.
        for (int s = 0; s < ns; ++s) {
            for (int i = j - 1; i >= 0; --i) {
                if (insns_[i].dst() == srcs[s]) {
                    add_edge(i, j,
                             opMeta(insns_[i].op).result_latency +
                                 1);
                    break;
                }
            }
        }

        const RegRef dst = cons.dst();
        if (dst.valid()) {
            // Output dependence: latest earlier writer. The
            // pipelines block WAW at issue until the earlier write
            // completes, so the distance mirrors a true dependence.
            for (int i = j - 1; i >= 0; --i) {
                if (insns_[i].dst() == dst) {
                    add_edge(i, j,
                             opMeta(insns_[i].op).result_latency +
                                 1);
                    break;
                }
            }
            // Anti dependences: earlier readers since that writer.
            for (int i = j - 1; i >= 0; --i) {
                if (insns_[i].dst() == dst)
                    break;
                RegRef rsrcs[3];
                const int nr = insns_[i].srcs(rsrcs);
                for (int r = 0; r < nr; ++r) {
                    if (rsrcs[r] == dst) {
                        add_edge(i, j, 1);
                        break;
                    }
                }
            }
        }

        // Memory operations stay in program order (the models do
        // not disambiguate addresses).
        if (cons.isMem()) {
            if (last_mem >= 0)
                add_edge(last_mem, j, 1);
            last_mem = j;
        }
    }
}

int
DepGraph::criticalPathFrom(int i) const
{
    if (cp_cache_.empty())
        cp_cache_.assign(size(), -1);
    if (cp_cache_[i] >= 0)
        return cp_cache_[i];

    int best = opMeta(insns_[i].op).result_latency;
    for (int e : succs_[i]) {
        const DepEdge &edge = edges_[e];
        const int via = edge.min_distance + criticalPathFrom(edge.to);
        best = via > best ? via : best;
    }
    cp_cache_[i] = best;
    return best;
}

} // namespace smtsim
