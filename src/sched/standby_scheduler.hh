/**
 * @file
 * "Strategy B" of sections 2.3.2 / 3.4: the paper's new static code
 * scheduling algorithm for loops executed in explicit-rotation mode.
 *
 * Like software pipelining it keeps a resource reservation table,
 * but when every dependence-ready instruction has a resource
 * conflict it does NOT emit a NOP: it consults a standby table (one
 * entry per functional-unit class, mirroring the hardware standby
 * stations) and, if the entry is free, issues the instruction anyway
 * — the hardware will hold it in the standby station until the unit
 * frees up. The reservation table then tells the compiler when that
 * instruction actually executes.
 *
 * Modeling interpretation (documented in DESIGN.md): with S threads
 * running the same schedule under explicit rotation, each thread
 * owns a 1/S share of every functional unit, so an own-thread
 * instruction on class F reserves the unit for S * issue_latency
 * cycles.
 */

#ifndef SMTSIM_SCHED_STANDBY_SCHEDULER_HH
#define SMTSIM_SCHED_STANDBY_SCHEDULER_HH

#include <vector>

#include "isa/insn.hh"
#include "machine/fu_pool.hh"
#include "sched/list_scheduler.hh"

namespace smtsim
{

/** Configuration for the strategy-B scheduler. */
struct StandbySchedulerConfig
{
    /** Number of thread slots sharing the functional units. */
    int num_slots = 1;
    /** Functional-unit inventory of the target machine. */
    FuPoolConfig fus;
    /** Model the standby stations (the paper's key addition). */
    bool use_standby = true;
};

/**
 * Schedule @p body with a resource reservation table and a standby
 * table (strategy B).
 */
ScheduleResult standbySchedule(const std::vector<Insn> &body,
                               const StandbySchedulerConfig &cfg);

} // namespace smtsim

#endif // SMTSIM_SCHED_STANDBY_SCHEDULER_HH
