/**
 * @file
 * Data-dependence graph over a straight-line instruction sequence
 * (one loop body), used by both static code schedulers of section
 * 2.3.2.
 */

#ifndef SMTSIM_SCHED_DDG_HH
#define SMTSIM_SCHED_DDG_HH

#include <vector>

#include "isa/insn.hh"

namespace smtsim
{

/** One dependence edge: @c from must precede @c to. */
struct DepEdge
{
    int from = 0;
    int to = 0;
    /**
     * Minimum issue distance in cycles: result latency + 1 for true
     * dependences (the pipeline's 3-cycle rule for latency-2 ops),
     * 1 for anti/output/memory-order edges.
     */
    int min_distance = 1;
};

/** Dependence graph of a basic block. */
class DepGraph
{
  public:
    /**
     * Build the graph for @p body. Memory operations are kept in
     * program order (no disambiguation), matching both pipeline
     * models.
     */
    explicit DepGraph(const std::vector<Insn> &body);

    int size() const { return static_cast<int>(insns_.size()); }
    const std::vector<Insn> &insns() const { return insns_; }
    const std::vector<DepEdge> &edges() const { return edges_; }

    /** Successor edges of node @p i. */
    const std::vector<int> &succs(int i) const { return succs_[i]; }
    /** Predecessor edges of node @p i. */
    const std::vector<int> &preds(int i) const { return preds_[i]; }
    const DepEdge &edge(int e) const { return edges_[e]; }

    /**
     * Length (in cycles) of the longest dependence path starting at
     * node @p i, the classic list-scheduling priority.
     */
    int criticalPathFrom(int i) const;

  private:
    std::vector<Insn> insns_;
    std::vector<DepEdge> edges_;
    std::vector<std::vector<int>> succs_;   // edge indices
    std::vector<std::vector<int>> preds_;   // edge indices
    mutable std::vector<int> cp_cache_;
};

} // namespace smtsim

#endif // SMTSIM_SCHED_DDG_HH
