#include "list_scheduler.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sched/ddg.hh"

namespace smtsim
{

ScheduleResult
listSchedule(const std::vector<Insn> &body)
{
    const DepGraph graph(body);
    const int n = graph.size();

    std::vector<int> unscheduled_preds(n, 0);
    std::vector<int> earliest(n, 1);   // dependence-ready cycle
    for (int i = 0; i < n; ++i)
        unscheduled_preds[i] =
            static_cast<int>(graph.preds(i).size());

    // Per-FU-class next-accept cycle in the scheduler's one-unit-
    // per-class machine model.
    std::vector<int> fu_free(kNumFuClasses, 1);

    ScheduleResult result;
    std::vector<char> done(n, 0);
    int cycle = 1;
    int scheduled = 0;

    while (scheduled < n) {
        // Ready instructions whose FU is free this cycle, highest
        // critical path first (ties: program order).
        int pick = -1;
        int pick_cp = -1;
        for (int i = 0; i < n; ++i) {
            if (done[i] || unscheduled_preds[i] > 0 ||
                earliest[i] > cycle) {
                continue;
            }
            const int cls =
                static_cast<int>(opMeta(graph.insns()[i].op).fu);
            if (fu_free[cls] > cycle)
                continue;
            const int cp = graph.criticalPathFrom(i);
            if (cp > pick_cp) {
                pick = i;
                pick_cp = cp;
            }
        }

        if (pick < 0) {
            ++cycle;
            continue;
        }

        done[pick] = 1;
        ++scheduled;
        result.order.push_back(graph.insns()[pick]);
        result.issue_cycle.push_back(cycle);
        const OpMeta &meta = opMeta(graph.insns()[pick].op);
        fu_free[static_cast<int>(meta.fu)] =
            cycle + meta.issue_latency;
        result.length =
            std::max(result.length, cycle + meta.result_latency);

        for (int e : graph.succs(pick)) {
            const DepEdge &edge = graph.edge(e);
            earliest[edge.to] =
                std::max(earliest[edge.to],
                         cycle + edge.min_distance);
            --unscheduled_preds[edge.to];
        }
        ++cycle;    // single issue per cycle
    }

    return result;
}

} // namespace smtsim
