/**
 * @file
 * "Strategy A" of section 3.4: a simple list scheduler that reorders
 * a loop body to shorten single-thread processing time, with no
 * control over resource conflicts between threads.
 */

#ifndef SMTSIM_SCHED_LIST_SCHEDULER_HH
#define SMTSIM_SCHED_LIST_SCHEDULER_HH

#include <vector>

#include "isa/insn.hh"

namespace smtsim
{

/** Outcome of a scheduling pass. */
struct ScheduleResult
{
    /** Instructions in their new order. */
    std::vector<Insn> order;
    /** Issue cycle the scheduler's machine model assigned to each
     *  instruction of @c order. */
    std::vector<int> issue_cycle;
    /** Compiler-estimated length of the schedule in cycles. */
    int length = 0;
};

/**
 * List-schedule @p body (data/memory instructions only; the loop's
 * control instructions are appended by the caller afterwards).
 *
 * The machine model assumes one instruction issued per cycle, full
 * operation latencies, and exclusive use of one functional unit of
 * each class — i.e. the single-thread view the paper describes for
 * dynamically scheduled (computer-graphics-like) code.
 */
ScheduleResult listSchedule(const std::vector<Insn> &body);

} // namespace smtsim

#endif // SMTSIM_SCHED_LIST_SCHEDULER_HH
