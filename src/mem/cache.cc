#include "cache.hh"

#include "base/logging.hh"

namespace smtsim
{

namespace
{

constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

int
log2of(Addr v)
{
    int shift = 0;
    while ((Addr{1} << shift) < v)
        ++shift;
    return shift;
}

} // namespace

DirectMappedCache::DirectMappedCache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    SMTSIM_ASSERT(cfg_.enabled(), "constructing a disabled cache");
    SMTSIM_ASSERT(cfg_.line_bytes > 0 &&
                      (cfg_.line_bytes & (cfg_.line_bytes - 1)) ==
                          0,
                  "line size must be a power of two");
    SMTSIM_ASSERT(cfg_.ways >= 1, "need at least one way");
    SMTSIM_ASSERT(cfg_.size_bytes >=
                      cfg_.line_bytes *
                          static_cast<Addr>(cfg_.ways),
                  "cache smaller than one set");
    line_shift_ = log2of(cfg_.line_bytes);
    num_sets_ = static_cast<int>(
        cfg_.size_bytes /
        (cfg_.line_bytes * static_cast<Addr>(cfg_.ways)));
    SMTSIM_ASSERT(num_sets_ >= 1, "no sets");
    ways_.assign(static_cast<size_t>(num_sets_) * cfg_.ways,
                 Way{kInvalidTag, 0});
}

bool
DirectMappedCache::access(Addr addr)
{
    const std::uint64_t line = addr >> line_shift_;
    const size_t set =
        static_cast<size_t>(line % static_cast<std::uint64_t>(
                                       num_sets_)) *
        static_cast<size_t>(cfg_.ways);
    ++tick_;

    size_t victim = set;
    for (int w = 0; w < cfg_.ways; ++w) {
        Way &way = ways_[set + w];
        if (way.tag == line) {
            way.last_used = tick_;
            ++hits_;
            return true;
        }
        if (way.last_used < ways_[victim].last_used)
            victim = set + w;
    }

    ways_[victim].tag = line;
    ways_[victim].last_used = tick_;
    ++misses_;
    return false;
}

void
DirectMappedCache::reset()
{
    ways_.assign(ways_.size(), Way{kInvalidTag, 0});
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
}

} // namespace smtsim
