#include "memory.hh"

#include "base/logging.hh"

namespace smtsim
{

const MainMemory::Page *
MainMemory::findPage(Addr addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : &it->second;
}

MainMemory::Page &
MainMemory::touchPage(Addr addr)
{
    Page &page = pages_[addr / kPageBytes];
    if (page.empty())
        page.assign(kPageBytes, 0);
    return page;
}

std::uint8_t
MainMemory::read8(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr % kPageBytes] : 0;
}

void
MainMemory::write8(Addr addr, std::uint8_t value)
{
    touchPage(addr)[addr % kPageBytes] = value;
}

std::uint32_t
MainMemory::read32(Addr addr) const
{
    // Fast path for accesses that do not straddle a page.
    if (addr % kPageBytes <= kPageBytes - 4) {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        const Addr off = addr % kPageBytes;
        return static_cast<std::uint32_t>((*page)[off]) |
               static_cast<std::uint32_t>((*page)[off + 1]) << 8 |
               static_cast<std::uint32_t>((*page)[off + 2]) << 16 |
               static_cast<std::uint32_t>((*page)[off + 3]) << 24;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(read8(addr + i)) << (8 * i);
    return v;
}

void
MainMemory::write32(Addr addr, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        write8(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

std::uint64_t
MainMemory::read64(Addr addr) const
{
    return static_cast<std::uint64_t>(read32(addr)) |
           static_cast<std::uint64_t>(read32(addr + 4)) << 32;
}

void
MainMemory::write64(Addr addr, std::uint64_t value)
{
    write32(addr, static_cast<std::uint32_t>(value));
    write32(addr + 4, static_cast<std::uint32_t>(value >> 32));
}

void
MainMemory::loadBytes(Addr base, const std::vector<std::uint8_t> &bytes)
{
    for (size_t i = 0; i < bytes.size(); ++i)
        write8(base + static_cast<Addr>(i), bytes[i]);
}

void
MainMemory::loadWords(Addr base, const std::vector<std::uint32_t> &words)
{
    for (size_t i = 0; i < words.size(); ++i)
        write32(base + static_cast<Addr>(4 * i), words[i]);
}

} // namespace smtsim
