/**
 * @file
 * Flat simulated memory with sparse backing storage.
 *
 * The paper's evaluation assumes perfect caches ("attempts to access
 * caches were all hit"), so functional memory plus fixed access
 * latencies in the pipeline models is the faithful reproduction. A
 * remote-region model (RemoteRegion) supports the concurrent-
 * multithreading extension, where accesses to a distinguished address
 * range take a long, configurable latency and trigger the
 * data-absence trap of section 2.1.3.
 */

#ifndef SMTSIM_MEM_MEMORY_HH
#define SMTSIM_MEM_MEMORY_HH

#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace smtsim
{

/**
 * Byte-addressable sparse memory. Pages are allocated (zero-filled)
 * on first touch; unwritten memory reads as zero.
 */
class MainMemory
{
  public:
    static constexpr Addr kPageBytes = 1u << 16;

    std::uint8_t read8(Addr addr) const;
    void write8(Addr addr, std::uint8_t value);

    std::uint32_t read32(Addr addr) const;
    void write32(Addr addr, std::uint32_t value);

    std::uint64_t read64(Addr addr) const;
    void write64(Addr addr, std::uint64_t value);

    double
    readDouble(Addr addr) const
    {
        return std::bit_cast<double>(read64(addr));
    }

    void
    writeDouble(Addr addr, double value)
    {
        write64(addr, std::bit_cast<std::uint64_t>(value));
    }

    /** Copy a block of bytes into memory (program loading). */
    void loadBytes(Addr base, const std::vector<std::uint8_t> &bytes);

    /** Copy a block of 32-bit words into memory (text loading). */
    void loadWords(Addr base, const std::vector<std::uint32_t> &words);

    /** Number of resident pages (for tests). */
    size_t residentPages() const { return pages_.size(); }

    using Page = std::vector<std::uint8_t>;

    /**
     * Checkpoint support: the raw page table. Iteration order is
     * unspecified — serializers must sort by base address to keep
     * checkpoints byte-stable.
     */
    const std::unordered_map<Addr, Page> &pages() const
    {
        return pages_;
    }

    /** Drop every resident page (restore starts from empty). */
    void reset() { pages_.clear(); }

    /**
     * Backing storage of the page containing @p addr, or nullptr
     * while the page is untouched (reads as zero). The pointer
     * stays valid until reset(): pages are unordered_map nodes and
     * never resize. The fastpath engine caches it to keep
     * page-local access runs out of the hash table.
     */
    const std::uint8_t *
    findPageData(Addr addr) const
    {
        const Page *page = findPage(addr);
        return page ? page->data() : nullptr;
    }

    /** Like findPageData, but allocates (zero-filled) on first
     *  touch — the write-side counterpart. */
    std::uint8_t *pageData(Addr addr)
    {
        return touchPage(addr).data();
    }

  private:
    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<Addr, Page> pages_;
};

/**
 * Marks an address range as "remote" for concurrent multithreading:
 * loads/stores inside it miss locally and complete only after
 * @c latency cycles, triggering a context switch in the core model.
 */
struct RemoteRegion
{
    Addr base = 0;
    Addr size = 0;
    Cycle latency = 0;

    bool
    contains(Addr addr) const
    {
        return size > 0 && addr >= base && addr - base < size;
    }
};

} // namespace smtsim

#endif // SMTSIM_MEM_MEMORY_HH
