/**
 * @file
 * Finite cache model (the paper's stated future work: "We are
 * currently working on evaluating finite cache effects").
 *
 * A simple direct-mapped cache with configurable size, line size
 * and miss penalty. It affects timing only: data is always
 * functionally available from MainMemory, and the pipeline models
 * lengthen the access latency on a miss (non-blocking: the unit
 * keeps accepting subsequent accesses).
 */

#ifndef SMTSIM_MEM_CACHE_HH
#define SMTSIM_MEM_CACHE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "base/types.hh"

namespace smtsim
{

/** Finite-cache parameters; size 0 means "perfect cache". */
struct CacheConfig
{
    /** Total capacity in bytes (0 disables the model). */
    Addr size_bytes = 0;
    /** Line size in bytes (power of two). */
    Addr line_bytes = 32;
    /** Associativity (1 = direct-mapped); LRU replacement. */
    int ways = 1;
    /** Extra cycles added to an access that misses. */
    Cycle miss_penalty = 20;

    bool enabled() const { return size_bytes > 0; }
};

/**
 * Set-associative tag store with true-LRU replacement
 * (direct-mapped when ways == 1).
 */
class DirectMappedCache
{
  public:
    explicit DirectMappedCache(const CacheConfig &cfg);

    /**
     * Probe (and on a miss, fill) the line holding @p addr.
     * @return true on a hit.
     */
    bool access(Addr addr);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total == 0 ? 0.0
                          : static_cast<double>(misses_) /
                                static_cast<double>(total);
    }

    const CacheConfig &config() const { return cfg_; }
    int numSets() const { return num_sets_; }

    void reset();

    struct Way
    {
        std::uint64_t tag;
        std::uint64_t last_used;
    };

    /** Checkpoint support: raw tag-store state. */
    const std::vector<Way> &rawWays() const { return ways_; }
    std::uint64_t tick() const { return tick_; }
    void
    restoreRaw(std::vector<Way> ways, std::uint64_t tick,
               std::uint64_t hits, std::uint64_t misses)
    {
        ways_ = std::move(ways);
        tick_ = tick;
        hits_ = hits;
        misses_ = misses;
    }

  private:
    CacheConfig cfg_;
    int line_shift_ = 0;
    int num_sets_ = 0;
    /** num_sets_ x ways entries, row-major. */
    std::vector<Way> ways_;
    std::uint64_t tick_ = 0;    ///< LRU clock
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace smtsim

#endif // SMTSIM_MEM_CACHE_HH
