/**
 * @file
 * Umbrella header for the `smtsim::lab` experiment engine: declare
 * a sweep (spec.hh), run it in parallel with resumable
 * content-addressed caching (executor.hh, cache.hh), export the
 * results (result.hh). See docs/LAB.md.
 */

#ifndef SMTSIM_LAB_LAB_HH
#define SMTSIM_LAB_LAB_HH

#include "lab/cache.hh"
#include "lab/executor.hh"
#include "lab/result.hh"
#include "lab/spec.hh"
#include "lab/spec_json.hh"

#endif // SMTSIM_LAB_LAB_HH
