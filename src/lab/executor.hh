/**
 * @file
 * Parallel experiment executor.
 *
 * Jobs are independent, single-threaded, deterministic simulations
 * (tests/test_lab.cc enforces the determinism), so a sweep is
 * embarrassingly parallel: N worker threads pull job indices from
 * one atomic counter (work stealing degenerates to self-scheduling
 * because jobs never spawn jobs) and write results into
 * pre-allocated slots — the ResultSet is always in job order, no
 * matter the interleaving.
 *
 * Failure isolation: a job that throws, exceeds its cycle budget,
 * fails verification or overruns the wall-clock timeout produces a
 * failed JobResult for that point; the sweep itself always
 * completes.
 */

#ifndef SMTSIM_LAB_EXECUTOR_HH
#define SMTSIM_LAB_EXECUTOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lab/result.hh"
#include "lab/spec.hh"

namespace smtsim::lab
{

/** Snapshot passed to the progress callback after every job. */
struct Progress
{
    std::size_t done = 0;
    std::size_t total = 0;
    std::size_t cache_hits = 0;
    std::size_t failures = 0;
    /** Wall seconds since the sweep started. */
    double elapsed_seconds = 0.0;
    /**
     * Remaining-time estimate from the mean pace so far
     * (cache hits count as work done); < 0 while unknown.
     */
    double eta_seconds = -1.0;
    /** The job that just finished. */
    const JobResult *last = nullptr;
};

/**
 * Called after each job completes, serialized under a mutex (it may
 * write to a terminal or aggregate freely) — keep it cheap, every
 * worker queues behind it.
 */
using ProgressFn = std::function<void(const Progress &)>;

/** Execution policy for one sweep. */
struct LabOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    int num_threads = 0;
    /** Cache directory; empty string disables caching. */
    std::string cache_dir;
    /**
     * Cache size budget in bytes (0 = unbounded). When set, the
     * cache evicts least-recently-used records (cache.hh).
     */
    std::uint64_t cache_max_bytes = 0;
    /**
     * Per-job wall-clock budget in host seconds (0 = none). The
     * simulators cannot be preempted, so enforcement is at the
     * cycle-budget granularity: an overrunning job is *marked*
     * failed ("timeout") when it returns. Pair with max_cycles to
     * bound how long "when it returns" can be.
     */
    double timeout_seconds = 0.0;
    /**
     * Cycle-budget override applied to every job (0 = keep each
     * job's own). Applied before cache keying, so a clamped sweep
     * caches under different addresses than an unclamped one.
     */
    std::uint64_t max_cycles = 0;
    /**
     * Host threads per machine-engine job (0 = the sequential
     * reference schedule). Pure execution policy: the parallel
     * schedule is bit-identical to the sequential one (enforced by
     * test_manycore and the manycore-determinism CI job), so this
     * deliberately does not enter job identity or cache keys.
     */
    int machine_host_threads = 0;
    ProgressFn progress;
};

/**
 * Simulate one job in the calling thread, no cache involvement:
 * instantiate the workload, run the selected engine, verify
 * outputs. Exceptions become a failed JobResult; when
 * @p timeout_seconds > 0 an overrunning job is marked failed
 * ("timeout") on return. Shared by the sweep executor and the
 * service's worker processes (serve/worker.hh).
 * @p machine_host_threads applies to machine-engine jobs only
 * (LabOptions::machine_host_threads semantics).
 */
JobResult simulateJob(const Job &job, double timeout_seconds = 0.0,
                      int machine_host_threads = 0);

/**
 * Run a pre-expanded job list. With @p replay set, core jobs use
 * the functional-first pipeline: one fast-engine pass per
 * (workload, slots, queue depth) group records a trace and
 * verifies outputs, then each cell is timed in verified replay
 * mode (execute-mode fallback on divergence). Results are
 * bit-identical either way — see ExperimentSpec::replay.
 */
ResultSet runJobs(const std::vector<Job> &jobs,
                  const LabOptions &opts = {},
                  bool replay = false);

/** expand() + runJobs(), honoring spec.replay. */
ResultSet runSweep(const ExperimentSpec &spec,
                   const LabOptions &opts = {});

/**
 * Progress printer for interactive use: one \r-rewritten status
 * line on stderr ("[12/33] 4 cached, 0 failed, 3.1s, eta 5.2s").
 */
ProgressFn stderrProgress();

} // namespace smtsim::lab

#endif // SMTSIM_LAB_EXECUTOR_HH
