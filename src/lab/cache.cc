#include "cache.hh"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "base/logging.hh"

namespace fs = std::filesystem;

namespace smtsim::lab
{

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::pathFor(const std::string &key) const
{
    const std::string shard =
        key.size() >= 2 ? key.substr(0, 2) : std::string("xx");
    return (fs::path(dir_) / shard / (key + ".json")).string();
}

bool
ResultCache::load(const Job &job, JobResult *out) const
{
    if (!enabled())
        return false;
    const std::string key = job.cacheKey();
    std::ifstream in(pathFor(key));
    if (!in)
        return false;
    std::ostringstream oss;
    oss << in.rdbuf();
    try {
        const Json record = Json::parse(oss.str());
        if (record.at("schema").asInt() != kCacheSchemaVersion)
            return false;
        if (record.at("canonical").asString() != job.canonical())
            return false;   // FNV collision or stale key scheme
        JobResult r = resultFromJson(record.at("result"));
        if (!r.ok)
            return false;
        r.id = job.id;      // renames must not pin the old label
        r.key = key;
        r.from_cache = true;
        r.wall_seconds = 0.0;
        *out = std::move(r);
        return true;
    } catch (const JsonParseError &) {
        return false;       // torn/corrupt record: treat as miss
    }
}

void
ResultCache::store(const Job &job, const JobResult &result) const
{
    if (!enabled())
        return;
    const std::string key = job.cacheKey();
    Json record = Json::object();
    record.set("schema", Json(kCacheSchemaVersion));
    record.set("key", Json(key));
    record.set("canonical", Json(job.canonical()));
    record.set("result", resultToJson(result));

    static std::atomic<unsigned> counter{0};
    const fs::path path = pathFor(key);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    if (ec)
        return;
    const fs::path tmp =
        path.parent_path() /
        (key + ".tmp." + std::to_string(counter.fetch_add(1)) +
         "." + std::to_string(::getpid()));
    {
        std::ofstream outf(tmp);
        if (!outf)
            return;
        record.write(outf, 2);
        outf << '\n';
        if (!outf)
            return;
    }
    fs::rename(tmp, path, ec);
    if (ec)
        fs::remove(tmp, ec);
}

} // namespace smtsim::lab
