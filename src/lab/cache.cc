#include "cache.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "base/logging.hh"

namespace fs = std::filesystem;

namespace smtsim::lab
{

namespace
{

/** Read a whole record file; empty optional-ish on failure. */
bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream oss;
    oss << in.rdbuf();
    *out = oss.str();
    return true;
}

/** Parse a record and check schema + canonical identity. */
bool
recordMatches(const std::string &text, const Job &job, Json *record)
{
    try {
        Json parsed = Json::parse(text);
        if (parsed.at("schema").asInt() != kCacheSchemaVersion)
            return false;
        if (parsed.at("canonical").asString() != job.canonical())
            return false;   // FNV collision or stale key scheme
        *record = std::move(parsed);
        return true;
    } catch (const JsonParseError &) {
        return false;       // torn/corrupt record: treat as miss
    }
}

} // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes)
{
    if (max_bytes_ > 0) {
        check_interval_ =
            std::max<std::uint64_t>(4096, max_bytes_ / 8);
        enforceLimit();   // trim a pre-existing oversized dir
    }
}

std::string
ResultCache::pathFor(const std::string &key) const
{
    const std::string shard =
        key.size() >= 2 ? key.substr(0, 2) : std::string("xx");
    return (fs::path(dir_) / shard / (key + ".json")).string();
}

bool
ResultCache::load(const Job &job, JobResult *out) const
{
    if (!enabled())
        return false;
    const std::string key = job.cacheKey();
    const std::string path = pathFor(key);
    std::string text;
    if (!readFile(path, &text))
        return false;
    Json record;
    if (!recordMatches(text, job, &record))
        return false;
    try {
        JobResult r = resultFromJson(record.at("result"));
        if (!r.ok)
            return false;
        r.id = job.id;      // renames must not pin the old label
        r.key = key;
        r.from_cache = true;
        r.wall_seconds = 0.0;
        *out = std::move(r);
    } catch (const JsonParseError &) {
        return false;
    }
    if (max_bytes_ > 0) {
        // LRU stamp: a hit makes the record recently-used.
        std::error_code ec;
        fs::last_write_time(path,
                            fs::file_time_type::clock::now(), ec);
    }
    return true;
}

bool
ResultCache::contains(const Job &job) const
{
    if (!enabled())
        return false;
    std::string text;
    if (!readFile(pathFor(job.cacheKey()), &text))
        return false;
    Json record;
    return recordMatches(text, job, &record);
}

void
ResultCache::store(const Job &job, const JobResult &result) const
{
    if (!enabled())
        return;
    const std::string key = job.cacheKey();
    Json record = Json::object();
    record.set("schema", Json(kCacheSchemaVersion));
    record.set("key", Json(key));
    record.set("canonical", Json(job.canonical()));
    record.set("result", resultToJson(result));

    static std::atomic<unsigned> counter{0};
    const fs::path path = pathFor(key);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    if (ec)
        return;
    const fs::path tmp =
        path.parent_path() /
        (key + ".tmp." + std::to_string(counter.fetch_add(1)) +
         "." + std::to_string(::getpid()));
    const std::string text = record.dump(2) + "\n";
    {
        std::ofstream outf(tmp);
        if (!outf)
            return;
        outf << text;
        if (!outf)
            return;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return;
    }

    if (max_bytes_ == 0)
        return;
    bool check = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_bytes_ += text.size();
        if (pending_bytes_ >= check_interval_) {
            pending_bytes_ = 0;
            check = true;
        }
    }
    if (check)
        enforceLimit();
}

std::uint64_t
ResultCache::diskBytes() const
{
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &shard : fs::directory_iterator(dir_, ec)) {
        std::error_code shard_ec;
        for (const auto &entry :
             fs::directory_iterator(shard.path(), shard_ec)) {
            if (entry.path().extension() != ".json")
                continue;
            std::error_code size_ec;
            const auto size = entry.file_size(size_ec);
            if (!size_ec)
                total += size;
        }
    }
    return total;
}

std::size_t
ResultCache::enforceLimit() const
{
    if (!enabled() || max_bytes_ == 0)
        return 0;

    struct Entry
    {
        fs::path path;
        std::uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    const auto now = fs::file_time_type::clock::now();

    std::error_code ec;
    for (const auto &shard : fs::directory_iterator(dir_, ec)) {
        std::error_code shard_ec;
        for (const auto &entry :
             fs::directory_iterator(shard.path(), shard_ec)) {
            std::error_code stat_ec;
            const auto mtime = entry.last_write_time(stat_ec);
            if (stat_ec)
                continue;   // lost a race to another evictor
            if (entry.path().extension() != ".json") {
                // Orphaned temp file from a crashed writer: sweep
                // it once it is clearly abandoned.
                if (entry.path().filename().string().find(".tmp.")
                        != std::string::npos &&
                    now - mtime > std::chrono::hours(1)) {
                    std::error_code rm_ec;
                    fs::remove(entry.path(), rm_ec);
                }
                continue;
            }
            std::error_code size_ec;
            const auto size = entry.file_size(size_ec);
            if (size_ec)
                continue;
            entries.push_back({entry.path(), size, mtime});
            total += size;
        }
    }
    if (total <= max_bytes_)
        return 0;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    // Hysteresis: trim to 7/8 of the budget so back-to-back stores
    // do not re-trigger a full scan immediately.
    const std::uint64_t target = max_bytes_ - max_bytes_ / 8;
    std::size_t evicted = 0;
    for (const Entry &e : entries) {
        if (total <= target)
            break;
        std::error_code rm_ec;
        fs::remove(e.path, rm_ec);
        if (!rm_ec) {
            total -= std::min(total, e.size);
            ++evicted;
        }
    }
    return evicted;
}

} // namespace smtsim::lab
