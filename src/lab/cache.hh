/**
 * @file
 * Content-addressed on-disk result cache.
 *
 * Layout: `<dir>/<k0k1>/<key>.json`, where key is the job's 16-hex
 * FNV-1a content address (spec.hh) and k0k1 its first two digits
 * (256-way sharding keeps directories small for big sweeps). Each
 * record is one pretty-printed JSON object carrying the schema
 * version, the job's canonical serialization (for audit and
 * collision detection) and the full JobResult.
 *
 * Writes go through a per-process unique temp file + atomic rename,
 * so concurrent sweeps — including several processes sharing one
 * cache directory — never observe torn records. Unreadable or
 * mismatching records degrade to cache misses; the cache is always
 * safe to delete wholesale.
 */

#ifndef SMTSIM_LAB_CACHE_HH
#define SMTSIM_LAB_CACHE_HH

#include <string>

#include "lab/result.hh"
#include "lab/spec.hh"

namespace smtsim::lab
{

class ResultCache
{
  public:
    /** @param dir cache root; empty disables the cache entirely. */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * Look up @p job. On a hit, fill @p out (with from_cache set
     * and the job's current id) and return true. Corrupt records,
     * schema mismatches and FNV collisions (canonical text differs)
     * all miss.
     */
    bool load(const Job &job, JobResult *out) const;

    /**
     * Persist a result (creating directories as needed). Only
     * called for ok results: failures are typically environmental
     * (timeout, budget) and must be retried on the next sweep.
     * I/O errors are swallowed — a read-only cache dir degrades to
     * "no caching", it does not fail the sweep.
     */
    void store(const Job &job, const JobResult &result) const;

    /** Record path for a key (exists or not). */
    std::string pathFor(const std::string &key) const;

  private:
    std::string dir_;
};

} // namespace smtsim::lab

#endif // SMTSIM_LAB_CACHE_HH
