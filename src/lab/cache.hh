/**
 * @file
 * Content-addressed on-disk result cache.
 *
 * Layout: `<dir>/<k0k1>/<key>.json`, where key is the job's 16-hex
 * FNV-1a content address (spec.hh) and k0k1 its first two digits
 * (256-way sharding keeps directories small for big sweeps). Each
 * record is one pretty-printed JSON object carrying the schema
 * version, the job's canonical serialization (for audit and
 * collision detection) and the full JobResult.
 *
 * Writes go through a per-process unique temp file + atomic rename,
 * so concurrent sweeps — including several processes sharing one
 * cache directory — never observe torn records. Unreadable or
 * mismatching records degrade to cache misses; the cache is always
 * safe to delete wholesale.
 *
 * Size bounds: an optional byte budget turns the cache into an LRU
 * (approximated by file mtimes: hits touch their record). Stores
 * accumulate a written-bytes counter and trigger a scan-and-evict
 * pass once enough new data has landed, so steady-state overhead is
 * one directory walk per ~max/8 bytes written, not per store.
 * Eviction is multi-process safe: losing a race to unlink a record
 * is harmless, and a record evicted by one process is an ordinary
 * miss in another.
 */

#ifndef SMTSIM_LAB_CACHE_HH
#define SMTSIM_LAB_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "lab/result.hh"
#include "lab/spec.hh"

namespace smtsim::lab
{

class ResultCache
{
  public:
    /**
     * @param dir cache root; empty disables the cache entirely.
     * @param max_bytes total record-size budget; 0 = unbounded.
     *        When bounded, construction runs one eviction pass so a
     *        pre-existing oversized directory is trimmed up front.
     */
    explicit ResultCache(std::string dir,
                         std::uint64_t max_bytes = 0);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }
    std::uint64_t maxBytes() const { return max_bytes_; }

    /**
     * Look up @p job. On a hit, fill @p out (with from_cache set
     * and the job's current id), refresh the record's LRU stamp,
     * and return true. Corrupt records, schema mismatches and FNV
     * collisions (canonical text differs) all miss.
     */
    bool load(const Job &job, JobResult *out) const;

    /**
     * Existence probe without deserializing or touching the LRU
     * stamp — `smtsim-sweep --dry-run` uses this to predict hits.
     * A readable record with matching schema + canonical text
     * counts; anything else is a predicted miss.
     */
    bool contains(const Job &job) const;

    /**
     * Persist a result (creating directories as needed). Only
     * called for ok results: failures are typically environmental
     * (timeout, budget) and must be retried on the next sweep.
     * I/O errors are swallowed — a read-only cache dir degrades to
     * "no caching", it does not fail the sweep.
     */
    void store(const Job &job, const JobResult &result) const;

    /**
     * Scan the cache and evict least-recently-used records until
     * the total is within the budget (no-op when unbounded). Also
     * sweeps up orphaned temp files from crashed writers. Safe to
     * call concurrently from any number of threads or processes.
     * @return number of records evicted.
     */
    std::size_t enforceLimit() const;

    /** Total bytes of records currently on disk (full scan). */
    std::uint64_t diskBytes() const;

    /** Record path for a key (exists or not). */
    std::string pathFor(const std::string &key) const;

  private:
    std::string dir_;
    std::uint64_t max_bytes_ = 0;
    /** Evict after this many bytes of fresh stores. */
    std::uint64_t check_interval_ = 0;

    /** Guards pending_bytes_; file IO itself needs no lock. */
    mutable std::mutex mutex_;
    mutable std::uint64_t pending_bytes_ = 0;
};

} // namespace smtsim::lab

#endif // SMTSIM_LAB_CACHE_HH
