/**
 * @file
 * Declarative experiment descriptions for `smtsim::lab`.
 *
 * The paper's whole evaluation is grid sweeps — thread slots x
 * context frames x load/store units x standby on/off x rotation
 * intervals, per workload. An ExperimentSpec describes such a grid;
 * expand() turns it into a flat vector of Jobs, the unit the
 * executor (executor.hh) runs in parallel and the result cache
 * (cache.hh) keys.
 *
 * Every Job has a *canonical serialization*: a stable text rendering
 * of engine + full configuration + workload identity. The cache key
 * is the FNV-1a hash of that text plus kCacheSchemaVersion, so any
 * config field change — and any deliberate format bump — moves the
 * job to a different cache address.
 */

#ifndef SMTSIM_LAB_SPEC_HH
#define SMTSIM_LAB_SPEC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "baseline/baseline.hh"
#include "core/config.hh"
#include "interconnect/interconnect.hh"
#include "workloads/workloads.hh"

namespace smtsim::lab
{

/**
 * Version of the cache record format *and* of anything that changes
 * simulated results without changing the config (pipeline model
 * fixes, workload generator changes). Bump it to invalidate every
 * cached result.
 */
constexpr int kCacheSchemaVersion = 1;

/**
 * Workload identity as data: a factory kind plus its parameters.
 * Unlike the Workload struct (which holds closures), a WorkloadSpec
 * is comparable, hashable and serializable — it *is* the workload's
 * cache identity.
 */
struct WorkloadSpec
{
    /** Factory name: raytrace, livermore1, matmul, bsearch,
     *  stencil, radiosity, recurrence, listwalk, tokenring. */
    std::string kind;
    /** Factory parameters; keys sorted by std::map => canonical. */
    std::map<std::string, std::int64_t> params;

    // Builders mirroring the factories in workloads.hh (defaults
    // identical to the corresponding params structs).
    static WorkloadSpec rayTrace(int width = 16, int height = 16,
                                 int spheres = 5,
                                 std::uint64_t seed = 42,
                                 bool shadows = true);
    static WorkloadSpec livermore1(int n = 200,
                                   bool parallel = false);
    static WorkloadSpec matmul(int n = 12);
    static WorkloadSpec bsearch(int table_size = 256,
                                int queries_per_thread = 48,
                                std::uint64_t seed = 5);
    static WorkloadSpec stencil(int width = 16, int height = 12,
                                int sweeps = 2);
    static WorkloadSpec radiosity(int num_patches = 24,
                                  std::uint64_t seed = 9);
    static WorkloadSpec recurrence(int n = 128,
                                   RecurrenceVariant variant =
                                       RecurrenceVariant::Sequential);
    static WorkloadSpec listWalk(int num_nodes = 64,
                                 int break_at = -1,
                                 bool eager = false,
                                 std::uint64_t seed = 7);
    static WorkloadSpec tokenRing(int rounds = 32, int bug = 0);

    /**
     * Parse "kind" or "kind:key=value,key=value" (e.g.
     * "raytrace:width=24,height=24"). Unknown kinds or keys throw
     * std::invalid_argument; values use strict integer parsing.
     */
    static WorkloadSpec fromString(const std::string &text);

    /** Stable text identity, e.g. "raytrace{height=24,width=24}". */
    std::string canonical() const;

    bool operator==(const WorkloadSpec &o) const = default;
};

/**
 * Instantiate the runnable Workload a spec describes.
 * @throws std::invalid_argument on an unknown kind or parameter.
 */
Workload instantiate(const WorkloadSpec &spec);

/** Which engine executes a job. */
enum class EngineKind { Core, Baseline, Interp, Machine };

const char *engineName(EngineKind kind);

/**
 * Machine-engine tuning riding on a Job (engine == Machine): core
 * count, interconnect and quantum for the many-core machine; the
 * Job's CoreConfig describes each of its (identical) cores.
 */
struct MachineTuning
{
    /** Simulated cores. */
    int cores = 2;
    /**
     * Overlay the core RemoteRegion onto the workload program's
     * data segment at execution time (base/size come from the
     * instantiated program, so the overlay is part of the job's
     * identity via the workload spec + this flag).
     */
    bool remote_data = true;
    InterconnectConfig noc;
    /** Barrier quantum; 0 = auto (ManyCoreMachine resolves it). */
    Cycle quantum = 0;
};

/** One simulation point: engine + configuration + workload. */
struct Job
{
    /** Display/lookup label; unique within one sweep. */
    std::string id;
    EngineKind engine = EngineKind::Core;
    WorkloadSpec workload;
    CoreConfig core;            ///< used when engine is Core/Machine
    BaselineConfig baseline;    ///< used when engine == Baseline
    int interp_threads = 1;     ///< used when engine == Interp
    MachineTuning machine;      ///< used when engine == Machine

    /**
     * Canonical serialization of everything that determines the
     * result (engine + active config + workload identity + schema
     * version). The id is deliberately excluded: renaming a point
     * must not invalidate its cached result.
     */
    std::string canonical() const;

    /** Content address: 16 hex digits of FNV-1a(canonical()). */
    std::string cacheKey() const;
};

/** Convenience constructors. */
Job coreJob(std::string id, WorkloadSpec workload,
            const CoreConfig &cfg);
Job baselineJob(std::string id, WorkloadSpec workload,
                const BaselineConfig &cfg = {});
Job interpJob(std::string id, WorkloadSpec workload,
              int num_threads = 1);
Job machineJob(std::string id, WorkloadSpec workload,
               const CoreConfig &core,
               const MachineTuning &tuning = {});

/** Canonical config renderings (exposed for tests/debugging). */
std::string canonicalConfig(const CoreConfig &cfg);
std::string canonicalConfig(const BaselineConfig &cfg);
std::string canonicalConfig(const MachineTuning &tuning);

/**
 * A declarative grid sweep: the cross product of the axis vectors,
 * per workload, on the core engine — optionally with one sequential
 * baseline point per workload as the speed-up denominator.
 */
struct ExperimentSpec
{
    std::string name = "sweep";
    std::vector<WorkloadSpec> workloads;

    // Grid axes (cross product). Non-swept CoreConfig fields come
    // from core_template.
    std::vector<int> slots{4};
    std::vector<int> frames{-1};
    std::vector<int> lsu{1};
    std::vector<int> widths{1};
    std::vector<bool> standby{true};
    std::vector<int> rotation_intervals{8};
    /**
     * Machine-size axis. The default {1} keeps the sweep on the
     * single-core engine with its historical ids and cache keys;
     * any other value set turns every grid cell into a many-core
     * machine job ("/cN" id suffix) built from machine_template,
     * including N = 1 (a 1-core machine times remote traffic
     * through the interconnect, unlike the bare core).
     */
    std::vector<int> cores{1};

    CoreConfig core_template;
    /** Interconnect/quantum template for machine jobs (its `cores`
     *  field is overridden by the axis). */
    MachineTuning machine_template;
    /** Add runBaseline point(s) ("<workload>/baseline"). */
    bool include_baseline = false;
    BaselineConfig baseline_template;

    /**
     * Functional-first execution (docs/PERF.md): record each
     * workload's execution trace once with the fast engine, verify
     * its outputs once, then time every core grid cell in verified
     * replay mode. Results are bit-identical to an execute-mode
     * sweep (cells whose control flow is interleaving-dependent
     * fall back to execute mode automatically), so expand() — and
     * therefore every cache key — is unaffected by this flag.
     */
    bool replay = false;

    /**
     * Flatten the grid into jobs, ids like
     * "raytrace/s4/f4/ls2/w1/sb/r8" (axes with one value are still
     * spelled out — ids stay stable when an axis grows). Machine
     * sweeps (cores axis != {1}) append "/cN".
     * @throws std::invalid_argument on an empty axis or duplicate
     * points.
     */
    std::vector<Job> expand() const;
};

} // namespace smtsim::lab

#endif // SMTSIM_LAB_SPEC_HH
