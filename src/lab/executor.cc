#include "executor.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "fastpath/engine.hh"
#include "harness/runner.hh"
#include "lab/cache.hh"

namespace smtsim::lab
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * One shared functional pass for every core cell that times the
 * same (workload, slot count, queue depth) triple — the parameters
 * the recorded trace depends on. Recorded lazily by the first cell
 * that misses the cache, so fully cached groups never execute.
 */
struct TraceGroup
{
    std::once_flag once;
    bool ok = false;
    std::string error;
    fastpath::TracedRun recorded;
};

std::string
traceGroupKey(const Job &job)
{
    return job.workload.canonical() + "/s" +
           std::to_string(job.core.num_slots) + "/qd" +
           std::to_string(job.core.queue_reg_depth);
}

/** Functional pass: execute once (streaming the trace off the
 *  engine thread) and verify the workload's outputs. */
void
recordGroup(const Job &job, TraceGroup &group)
{
    try {
        const Workload workload = instantiate(job.workload);
        MainMemory fmem;
        workload.program.loadInto(fmem);
        if (workload.init)
            workload.init(fmem);
        InterpConfig icfg;
        icfg.num_threads = job.core.num_slots;
        icfg.queue_depth = job.core.queue_reg_depth;
        group.recorded = fastpath::recordTraceStreaming(
            workload.program, fmem, icfg);
        if (!group.recorded.result.completed) {
            group.error = "fast engine did not finish";
            return;
        }
        std::string why;
        if (workload.check && !workload.check(fmem, &why)) {
            group.error = why;
            return;
        }
        group.ok = true;
    } catch (const std::exception &e) {
        group.error = e.what();
    }
}

/** simulateJob's shape for the replay path: time one core cell
 *  against the group's trace (execute-mode fallback inside). */
JobResult
replayJob(const Job &job, const ExecTrace &trace,
          double timeout_seconds, bool *replayed)
{
    JobResult r;
    r.id = job.id;
    r.key = job.cacheKey();
    const auto t0 = Clock::now();
    try {
        const Workload workload = instantiate(job.workload);
        const Outcome outcome =
            timeCoreFromTrace(workload, job.core, trace, replayed);
        r.ok = outcome.ok;
        r.error = outcome.error;
        r.stats = outcome.stats;
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    }
    r.wall_seconds = secondsSince(t0);
    if (timeout_seconds > 0 && r.wall_seconds > timeout_seconds) {
        r.ok = false;
        r.error = "timeout: job took " +
                  std::to_string(r.wall_seconds) + "s (budget " +
                  std::to_string(timeout_seconds) + "s)";
    }
    return r;
}

} // namespace

JobResult
simulateJob(const Job &job, double timeout_seconds,
            int machine_host_threads)
{
    JobResult r;
    r.id = job.id;
    r.key = job.cacheKey();
    const auto t0 = Clock::now();
    try {
        const Workload workload = instantiate(job.workload);
        Outcome outcome;
        switch (job.engine) {
          case EngineKind::Core:
            outcome = runCore(workload, job.core);
            break;
          case EngineKind::Baseline:
            outcome = runBaseline(workload, job.baseline);
            break;
          case EngineKind::Interp:
            outcome = runInterp(workload, job.interp_threads);
            break;
          case EngineKind::Machine: {
            MachineConfig mcfg;
            mcfg.num_cores = job.machine.cores;
            mcfg.core = job.core;
            mcfg.noc = job.machine.noc;
            mcfg.quantum = job.machine.quantum;
            if (job.machine.remote_data) {
                // Couple the cores through every data-segment
                // access; base/size are a pure function of the
                // workload spec, so cache identity is preserved.
                mcfg.core.remote.base = workload.program.data_base;
                mcfg.core.remote.size = static_cast<Addr>(
                    workload.program.data.size());
            }
            const MachineOutcome mo = runMachine(
                workload, mcfg, machine_host_threads);
            outcome.ok = mo.ok;
            outcome.error = mo.error;
            // The cache record stays a single RunStats; machine
            // jobs store the deterministic machine-wide roll-up.
            outcome.stats = mo.stats.aggregate();
            break;
          }
        }
        r.ok = outcome.ok;
        r.error = outcome.error;
        r.stats = outcome.stats;
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    }
    r.wall_seconds = secondsSince(t0);
    if (timeout_seconds > 0 && r.wall_seconds > timeout_seconds) {
        r.ok = false;
        r.error = "timeout: job took " +
                  std::to_string(r.wall_seconds) + "s (budget " +
                  std::to_string(timeout_seconds) + "s)";
    }
    return r;
}

namespace
{

ResultSet
runJobsImpl(const std::vector<Job> &jobs, const LabOptions &opts,
            bool replay)
{
    // Apply the sweep-wide cycle clamp up front so cache keys see
    // the configuration that actually runs.
    std::vector<Job> prepared = jobs;
    if (opts.max_cycles > 0) {
        for (Job &job : prepared) {
            job.core.max_cycles =
                std::min(job.core.max_cycles, opts.max_cycles);
            job.baseline.max_cycles =
                std::min(job.baseline.max_cycles, opts.max_cycles);
        }
    }

    const std::size_t n = prepared.size();
    ResultSet rs;
    rs.results.resize(n);
    if (n == 0)
        return rs;

    // Replay sweeps share one functional pass per trace group.
    std::map<std::string, std::unique_ptr<TraceGroup>> groups;
    if (replay) {
        for (const Job &job : prepared) {
            if (job.engine != EngineKind::Core)
                continue;
            auto &slot = groups[traceGroupKey(job)];
            if (!slot)
                slot = std::make_unique<TraceGroup>();
        }
    }

    const ResultCache cache(opts.cache_dir, opts.cache_max_bytes);
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> failures{0};
    std::atomic<std::size_t> functional_execs{0};
    std::atomic<std::size_t> replays{0};
    std::atomic<std::size_t> replay_fallbacks{0};
    std::mutex progress_mutex;
    const auto t0 = Clock::now();

    auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            const Job &job = prepared[i];
            JobResult result;
            if (!cache.load(job, &result)) {
                TraceGroup *group = nullptr;
                if (replay && job.engine == EngineKind::Core)
                    group = groups.at(traceGroupKey(job)).get();
                if (group) {
                    std::call_once(group->once, [&] {
                        recordGroup(job, *group);
                        functional_execs.fetch_add(
                            1, std::memory_order_relaxed);
                    });
                }
                if (group && group->ok) {
                    bool did_replay = false;
                    result = replayJob(job, group->recorded.trace,
                                       opts.timeout_seconds,
                                       &did_replay);
                    (did_replay ? replays : replay_fallbacks)
                        .fetch_add(1, std::memory_order_relaxed);
                } else {
                    // Execute mode: either a plain sweep, or the
                    // functional pass failed — re-running the cell
                    // reproduces the failure with execute-mode
                    // error reporting.
                    result =
                        simulateJob(job, opts.timeout_seconds,
                                    opts.machine_host_threads);
                }
                if (result.ok)
                    cache.store(job, result);
            }
            if (result.from_cache)
                hits.fetch_add(1, std::memory_order_relaxed);
            if (!result.ok)
                failures.fetch_add(1, std::memory_order_relaxed);
            rs.results[i] = std::move(result);

            const std::size_t finished =
                done.fetch_add(1, std::memory_order_acq_rel) + 1;
            if (opts.progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                Progress p;
                p.done = finished;
                p.total = n;
                p.cache_hits =
                    hits.load(std::memory_order_relaxed);
                p.failures =
                    failures.load(std::memory_order_relaxed);
                p.elapsed_seconds = secondsSince(t0);
                p.eta_seconds =
                    finished ? p.elapsed_seconds /
                                   static_cast<double>(finished) *
                                   static_cast<double>(n - finished)
                             : -1.0;
                p.last = &rs.results[i];
                opts.progress(p);
            }
        }
    };

    int num_threads = opts.num_threads;
    if (num_threads <= 0) {
        num_threads = static_cast<int>(
            std::thread::hardware_concurrency());
        if (num_threads <= 0)
            num_threads = 1;
    }
    num_threads =
        std::min<std::size_t>(num_threads, n) > 0
            ? static_cast<int>(
                  std::min<std::size_t>(num_threads, n))
            : 1;

    if (num_threads == 1) {
        worker();   // in-line: keeps single-core runs overhead-free
    } else {
        std::vector<std::thread> pool;
        pool.reserve(num_threads);
        for (int t = 0; t < num_threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    rs.functional_executions =
        functional_execs.load(std::memory_order_relaxed);
    rs.replays = replays.load(std::memory_order_relaxed);
    rs.replay_fallbacks =
        replay_fallbacks.load(std::memory_order_relaxed);
    return rs;
}

} // namespace

ResultSet
runJobs(const std::vector<Job> &jobs, const LabOptions &opts,
        bool replay)
{
    return runJobsImpl(jobs, opts, replay);
}

ResultSet
runSweep(const ExperimentSpec &spec, const LabOptions &opts)
{
    return runJobsImpl(spec.expand(), opts, spec.replay);
}

ProgressFn
stderrProgress()
{
    return [](const Progress &p) {
        std::fprintf(stderr,
                     "\r[%zu/%zu] %zu cached, %zu failed, %.1fs",
                     p.done, p.total, p.cache_hits, p.failures,
                     p.elapsed_seconds);
        if (p.eta_seconds >= 0 && p.done < p.total)
            std::fprintf(stderr, ", eta %.1fs", p.eta_seconds);
        if (p.done == p.total)
            std::fprintf(stderr, "\n");
        std::fflush(stderr);
    };
}

} // namespace smtsim::lab
