#include "executor.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "harness/runner.hh"
#include "lab/cache.hh"

namespace smtsim::lab
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

JobResult
simulateJob(const Job &job, double timeout_seconds)
{
    JobResult r;
    r.id = job.id;
    r.key = job.cacheKey();
    const auto t0 = Clock::now();
    try {
        const Workload workload = instantiate(job.workload);
        Outcome outcome;
        switch (job.engine) {
          case EngineKind::Core:
            outcome = runCore(workload, job.core);
            break;
          case EngineKind::Baseline:
            outcome = runBaseline(workload, job.baseline);
            break;
          case EngineKind::Interp:
            outcome = runInterp(workload, job.interp_threads);
            break;
        }
        r.ok = outcome.ok;
        r.error = outcome.error;
        r.stats = outcome.stats;
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    }
    r.wall_seconds = secondsSince(t0);
    if (timeout_seconds > 0 && r.wall_seconds > timeout_seconds) {
        r.ok = false;
        r.error = "timeout: job took " +
                  std::to_string(r.wall_seconds) + "s (budget " +
                  std::to_string(timeout_seconds) + "s)";
    }
    return r;
}

ResultSet
runJobs(const std::vector<Job> &jobs, const LabOptions &opts)
{
    // Apply the sweep-wide cycle clamp up front so cache keys see
    // the configuration that actually runs.
    std::vector<Job> prepared = jobs;
    if (opts.max_cycles > 0) {
        for (Job &job : prepared) {
            job.core.max_cycles =
                std::min(job.core.max_cycles, opts.max_cycles);
            job.baseline.max_cycles =
                std::min(job.baseline.max_cycles, opts.max_cycles);
        }
    }

    const std::size_t n = prepared.size();
    ResultSet rs;
    rs.results.resize(n);
    if (n == 0)
        return rs;

    const ResultCache cache(opts.cache_dir, opts.cache_max_bytes);
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> failures{0};
    std::mutex progress_mutex;
    const auto t0 = Clock::now();

    auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            const Job &job = prepared[i];
            JobResult result;
            if (!cache.load(job, &result)) {
                result = simulateJob(job, opts.timeout_seconds);
                if (result.ok)
                    cache.store(job, result);
            }
            if (result.from_cache)
                hits.fetch_add(1, std::memory_order_relaxed);
            if (!result.ok)
                failures.fetch_add(1, std::memory_order_relaxed);
            rs.results[i] = std::move(result);

            const std::size_t finished =
                done.fetch_add(1, std::memory_order_acq_rel) + 1;
            if (opts.progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                Progress p;
                p.done = finished;
                p.total = n;
                p.cache_hits =
                    hits.load(std::memory_order_relaxed);
                p.failures =
                    failures.load(std::memory_order_relaxed);
                p.elapsed_seconds = secondsSince(t0);
                p.eta_seconds =
                    finished ? p.elapsed_seconds /
                                   static_cast<double>(finished) *
                                   static_cast<double>(n - finished)
                             : -1.0;
                p.last = &rs.results[i];
                opts.progress(p);
            }
        }
    };

    int num_threads = opts.num_threads;
    if (num_threads <= 0) {
        num_threads = static_cast<int>(
            std::thread::hardware_concurrency());
        if (num_threads <= 0)
            num_threads = 1;
    }
    num_threads =
        std::min<std::size_t>(num_threads, n) > 0
            ? static_cast<int>(
                  std::min<std::size_t>(num_threads, n))
            : 1;

    if (num_threads == 1) {
        worker();   // in-line: keeps single-core runs overhead-free
    } else {
        std::vector<std::thread> pool;
        pool.reserve(num_threads);
        for (int t = 0; t < num_threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return rs;
}

ResultSet
runSweep(const ExperimentSpec &spec, const LabOptions &opts)
{
    return runJobs(spec.expand(), opts);
}

ProgressFn
stderrProgress()
{
    return [](const Progress &p) {
        std::fprintf(stderr,
                     "\r[%zu/%zu] %zu cached, %zu failed, %.1fs",
                     p.done, p.total, p.cache_hits, p.failures,
                     p.elapsed_seconds);
        if (p.eta_seconds >= 0 && p.done < p.total)
            std::fprintf(stderr, ", eta %.1fs", p.eta_seconds);
        if (p.done == p.total)
            std::fprintf(stderr, "\n");
        std::fflush(stderr);
    };
}

} // namespace smtsim::lab
