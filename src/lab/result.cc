#include "result.hh"

#include <sstream>
#include <stdexcept>

#include "base/strutil.hh"
#include "machine/fu_pool.hh"
#include "machine/run_stats_json.hh"

namespace smtsim::lab
{

const JobResult *
ResultSet::find(const std::string &id) const
{
    for (const JobResult &r : results) {
        if (r.id == id)
            return &r;
    }
    return nullptr;
}

const RunStats &
ResultSet::statsOf(const std::string &id) const
{
    const JobResult *r = find(id);
    if (!r)
        throw std::runtime_error("lab: no result for job \"" + id +
                                 "\"");
    if (!r->ok)
        throw std::runtime_error("lab: job \"" + id +
                                 "\" failed: " + r->error);
    return r->stats;
}

std::size_t
ResultSet::cacheHits() const
{
    std::size_t n = 0;
    for (const JobResult &r : results)
        n += r.from_cache ? 1 : 0;
    return n;
}

std::size_t
ResultSet::failures() const
{
    std::size_t n = 0;
    for (const JobResult &r : results)
        n += r.ok ? 0 : 1;
    return n;
}

double
ResultSet::simSeconds() const
{
    double s = 0.0;
    for (const JobResult &r : results)
        s += r.wall_seconds;
    return s;
}

Json
resultToJson(const JobResult &r)
{
    Json j = Json::object();
    j.set("id", Json(r.id));
    j.set("key", Json(r.key));
    j.set("ok", Json(r.ok));
    j.set("from_cache", Json(r.from_cache));
    j.set("error", Json(r.error));
    j.set("wall_seconds", Json(r.wall_seconds));
    j.set("stats", statsToJson(r.stats));
    return j;
}

JobResult
resultFromJson(const Json &j)
{
    JobResult r;
    r.id = j.at("id").asString();
    r.key = j.at("key").asString();
    r.ok = j.at("ok").asBool();
    r.from_cache = j.at("from_cache").asBool();
    r.error = j.at("error").asString();
    r.wall_seconds = j.at("wall_seconds").asDouble();
    r.stats = statsFromJson(j.at("stats"));
    return r;
}

Json
ResultSet::toJson() const
{
    Json arr = Json::array();
    for (const JobResult &r : results)
        arr.push(resultToJson(r));
    Json j = Json::object();
    j.set("schema", Json(1));
    j.set("jobs", Json(results.size()));
    j.set("cache_hits", Json(cacheHits()));
    j.set("failures", Json(failures()));
    j.set("results", std::move(arr));
    return j;
}

std::string
ResultSet::toCsv() const
{
    std::ostringstream oss;
    oss << "id,ok,cached,cycles,instructions,ipc,branches,loads,"
           "stores";
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        const FuClass fc = static_cast<FuClass>(cls);
        if (fc == FuClass::None)
            continue;
        oss << ",grants_" << fuClassName(fc);
    }
    oss << '\n';
    for (const JobResult &r : results) {
        const double ipc =
            r.stats.cycles
                ? static_cast<double>(r.stats.instructions) /
                      static_cast<double>(r.stats.cycles)
                : 0.0;
        // Job ids contain no quotes/commas; keep cells bare.
        oss << r.id << ',' << (r.ok ? 1 : 0) << ','
            << (r.from_cache ? 1 : 0) << ',' << r.stats.cycles
            << ',' << r.stats.instructions << ','
            << formatDouble(ipc, 4) << ',' << r.stats.branches
            << ',' << r.stats.loads << ',' << r.stats.stores;
        for (int cls = 0; cls < kNumFuClasses; ++cls) {
            if (static_cast<FuClass>(cls) == FuClass::None)
                continue;
            oss << ',' << r.stats.fu_grants[cls];
        }
        oss << '\n';
    }
    return oss.str();
}

TextTable
ResultSet::toTable(const std::string &title) const
{
    TextTable table(title);
    table.addRow({"job", "cycles", "instrs", "ipc", "status",
                  "source"});
    for (const JobResult &r : results) {
        const double ipc =
            r.stats.cycles
                ? static_cast<double>(r.stats.instructions) /
                      static_cast<double>(r.stats.cycles)
                : 0.0;
        table.addRow({r.id, std::to_string(r.stats.cycles),
                      std::to_string(r.stats.instructions),
                      formatDouble(ipc, 3),
                      r.ok ? "ok" : ("FAIL: " + r.error),
                      r.from_cache ? "cache" : "sim"});
    }
    return table;
}

} // namespace smtsim::lab
