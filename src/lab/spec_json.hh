/**
 * @file
 * JSON serialization of experiment descriptions: WorkloadSpec, the
 * engine configurations, Job and ExperimentSpec.
 *
 * This is the wire format of the simulation service (smtsim::serve):
 * clients submit an ExperimentSpec document, the daemon ships
 * individual Jobs to worker processes. The round-trip contract is
 * strict — jobFromJson(jobToJson(j)) reproduces j's cacheKey()
 * exactly, covering every config field — because the daemon's
 * dedup/cache layers key on that address while the worker re-derives
 * it independently (tests/test_serve.cc locks this down).
 *
 * Unknown members are rejected, not ignored: a client sending a
 * config field this build does not understand must get an error
 * rather than a silently different simulation.
 */

#ifndef SMTSIM_LAB_SPEC_JSON_HH
#define SMTSIM_LAB_SPEC_JSON_HH

#include "base/json.hh"
#include "lab/spec.hh"

namespace smtsim::lab
{

Json workloadSpecToJson(const WorkloadSpec &spec);
/** @throws JsonParseError on malformed/unknown-member input. */
WorkloadSpec workloadSpecFromJson(const Json &j);

Json coreConfigToJson(const CoreConfig &cfg);
CoreConfig coreConfigFromJson(const Json &j);

Json baselineConfigToJson(const BaselineConfig &cfg);
BaselineConfig baselineConfigFromJson(const Json &j);

Json jobToJson(const Job &job);
Job jobFromJson(const Json &j);

Json experimentSpecToJson(const ExperimentSpec &spec);
ExperimentSpec experimentSpecFromJson(const Json &j);

} // namespace smtsim::lab

#endif // SMTSIM_LAB_SPEC_JSON_HH
