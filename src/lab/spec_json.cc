#include "spec_json.hh"

#include <initializer_list>
#include <set>
#include <string>

namespace smtsim::lab
{

namespace
{

/** Reject members outside @p known — config typos must not land. */
void
checkMembers(const Json &j, const char *what,
             std::initializer_list<const char *> known)
{
    if (j.type() != Json::Type::Object)
        throw JsonParseError(std::string(what) +
                             ": expected a JSON object");
    for (const auto &kv : j.members()) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || kv.first == k;
        if (!ok)
            throw JsonParseError(std::string(what) +
                                 ": unknown member \"" + kv.first +
                                 "\"");
    }
}

int
asIntField(const Json &j, const char *key)
{
    return static_cast<int>(j.at(key).asInt());
}

Json
intList(const std::vector<int> &values)
{
    Json arr = Json::array();
    for (int v : values)
        arr.push(Json(v));
    return arr;
}

std::vector<int>
intListFromJson(const Json &j, const char *what)
{
    if (j.type() != Json::Type::Array)
        throw JsonParseError(std::string(what) +
                             ": expected an array");
    std::vector<int> out;
    for (std::size_t i = 0; i < j.size(); ++i)
        out.push_back(static_cast<int>(j.at(i).asInt()));
    return out;
}

/**
 * Validate a grid axis at parse time: expand() would throw
 * std::invalid_argument for an empty axis or duplicate grid points,
 * but admission (the serve daemon) wants a JsonParseError with a
 * diagnostic naming the offending axis and value.
 */
void
checkAxis(const std::vector<int> &axis, const char *what)
{
    if (axis.empty())
        throw JsonParseError(std::string(what) +
                             ": grid axis must not be empty");
    std::set<int> seen;
    for (int v : axis)
        if (!seen.insert(v).second)
            throw JsonParseError(std::string(what) +
                                 ": duplicate grid value " +
                                 std::to_string(v));
}

} // namespace

// ----------------------------------------------------------------
// WorkloadSpec
// ----------------------------------------------------------------

Json
workloadSpecToJson(const WorkloadSpec &spec)
{
    Json params = Json::object();
    for (const auto &kv : spec.params)
        params.set(kv.first, Json(kv.second));
    Json j = Json::object();
    j.set("kind", Json(spec.kind));
    j.set("params", std::move(params));
    return j;
}

WorkloadSpec
workloadSpecFromJson(const Json &j)
{
    checkMembers(j, "workload", {"kind", "params"});
    WorkloadSpec spec;
    spec.kind = j.at("kind").asString();
    if (const Json *params = j.find("params")) {
        if (params->type() != Json::Type::Object)
            throw JsonParseError(
                "workload params: expected an object");
        for (const auto &kv : params->members())
            spec.params[kv.first] = kv.second.asInt();
    }
    return spec;
}

// ----------------------------------------------------------------
// Engine configurations
// ----------------------------------------------------------------

namespace
{

Json
fuPoolToJson(const FuPoolConfig &fus)
{
    Json j = Json::object();
    j.set("int_alu", Json(fus.int_alu));
    j.set("shifter", Json(fus.shifter));
    j.set("int_mul", Json(fus.int_mul));
    j.set("fp_add", Json(fus.fp_add));
    j.set("fp_mul", Json(fus.fp_mul));
    j.set("fp_div", Json(fus.fp_div));
    j.set("load_store", Json(fus.load_store));
    return j;
}

FuPoolConfig
fuPoolFromJson(const Json &j)
{
    checkMembers(j, "fus",
                 {"int_alu", "shifter", "int_mul", "fp_add",
                  "fp_mul", "fp_div", "load_store"});
    FuPoolConfig fus;
    fus.int_alu = asIntField(j, "int_alu");
    fus.shifter = asIntField(j, "shifter");
    fus.int_mul = asIntField(j, "int_mul");
    fus.fp_add = asIntField(j, "fp_add");
    fus.fp_mul = asIntField(j, "fp_mul");
    fus.fp_div = asIntField(j, "fp_div");
    fus.load_store = asIntField(j, "load_store");
    return fus;
}

Json
cacheConfigToJson(const CacheConfig &c)
{
    Json j = Json::object();
    j.set("size_bytes", Json(c.size_bytes));
    j.set("line_bytes", Json(c.line_bytes));
    j.set("ways", Json(c.ways));
    j.set("miss_penalty", Json(c.miss_penalty));
    return j;
}

CacheConfig
cacheConfigFromJson(const Json &j)
{
    checkMembers(j, "cache",
                 {"size_bytes", "line_bytes", "ways",
                  "miss_penalty"});
    CacheConfig c;
    c.size_bytes = j.at("size_bytes").asU64();
    c.line_bytes = j.at("line_bytes").asU64();
    c.ways = asIntField(j, "ways");
    c.miss_penalty = j.at("miss_penalty").asU64();
    return c;
}

} // namespace

Json
coreConfigToJson(const CoreConfig &cfg)
{
    Json j = Json::object();
    j.set("num_slots", Json(cfg.num_slots));
    j.set("num_frames", Json(cfg.num_frames));
    j.set("width", Json(cfg.width));
    j.set("fus", fuPoolToJson(cfg.fus));
    j.set("standby_enabled", Json(cfg.standby_enabled));
    j.set("rotation_mode",
          Json(cfg.rotation_mode == RotationMode::Implicit
                   ? "implicit"
                   : "explicit"));
    j.set("rotation_interval", Json(cfg.rotation_interval));
    j.set("private_icache", Json(cfg.private_icache));
    j.set("icache_cycles", Json(cfg.icache_cycles));
    j.set("iqueue_words", Json(cfg.iqueue_words));
    j.set("queue_reg_depth", Json(cfg.queue_reg_depth));
    j.set("branch_gap", Json(cfg.branch_gap));
    j.set("context_switch_cycles", Json(cfg.context_switch_cycles));
    Json remote = Json::object();
    remote.set("base", Json(cfg.remote.base));
    remote.set("size", Json(cfg.remote.size));
    remote.set("latency", Json(cfg.remote.latency));
    j.set("remote", std::move(remote));
    j.set("dcache", cacheConfigToJson(cfg.dcache));
    j.set("icache", cacheConfigToJson(cfg.icache));
    j.set("fast_forward", Json(cfg.fast_forward));
    j.set("max_cycles", Json(cfg.max_cycles));
    return j;
}

CoreConfig
coreConfigFromJson(const Json &j)
{
    checkMembers(j, "core config",
                 {"num_slots", "num_frames", "width", "fus",
                  "standby_enabled", "rotation_mode",
                  "rotation_interval", "private_icache",
                  "icache_cycles", "iqueue_words",
                  "queue_reg_depth", "branch_gap",
                  "context_switch_cycles", "remote", "dcache",
                  "icache", "fast_forward", "max_cycles"});
    CoreConfig cfg;
    cfg.num_slots = asIntField(j, "num_slots");
    cfg.num_frames = asIntField(j, "num_frames");
    cfg.width = asIntField(j, "width");
    cfg.fus = fuPoolFromJson(j.at("fus"));
    cfg.standby_enabled = j.at("standby_enabled").asBool();
    const std::string &mode = j.at("rotation_mode").asString();
    if (mode == "implicit")
        cfg.rotation_mode = RotationMode::Implicit;
    else if (mode == "explicit")
        cfg.rotation_mode = RotationMode::Explicit;
    else
        throw JsonParseError("core config: rotation_mode must be "
                             "\"implicit\" or \"explicit\"");
    cfg.rotation_interval = asIntField(j, "rotation_interval");
    cfg.private_icache = j.at("private_icache").asBool();
    cfg.icache_cycles = asIntField(j, "icache_cycles");
    cfg.iqueue_words = asIntField(j, "iqueue_words");
    cfg.queue_reg_depth = asIntField(j, "queue_reg_depth");
    cfg.branch_gap = asIntField(j, "branch_gap");
    cfg.context_switch_cycles =
        asIntField(j, "context_switch_cycles");
    const Json &remote = j.at("remote");
    checkMembers(remote, "remote", {"base", "size", "latency"});
    cfg.remote.base = remote.at("base").asU64();
    cfg.remote.size = remote.at("size").asU64();
    cfg.remote.latency = remote.at("latency").asU64();
    cfg.dcache = cacheConfigFromJson(j.at("dcache"));
    cfg.icache = cacheConfigFromJson(j.at("icache"));
    cfg.fast_forward = j.at("fast_forward").asBool();
    cfg.max_cycles = j.at("max_cycles").asU64();
    return cfg;
}

Json
baselineConfigToJson(const BaselineConfig &cfg)
{
    Json j = Json::object();
    j.set("width", Json(cfg.width));
    j.set("fus", fuPoolToJson(cfg.fus));
    j.set("branch_gap", Json(cfg.branch_gap));
    j.set("fast_forward", Json(cfg.fast_forward));
    j.set("max_cycles", Json(cfg.max_cycles));
    return j;
}

BaselineConfig
baselineConfigFromJson(const Json &j)
{
    checkMembers(j, "baseline config",
                 {"width", "fus", "branch_gap", "fast_forward",
                  "max_cycles"});
    BaselineConfig cfg;
    cfg.width = asIntField(j, "width");
    cfg.fus = fuPoolFromJson(j.at("fus"));
    cfg.branch_gap = asIntField(j, "branch_gap");
    cfg.fast_forward = j.at("fast_forward").asBool();
    cfg.max_cycles = j.at("max_cycles").asU64();
    return cfg;
}

namespace
{

Json
machineTuningToJson(const MachineTuning &t)
{
    Json j = Json::object();
    j.set("cores", Json(t.cores));
    j.set("remote_data", Json(t.remote_data));
    j.set("l2_banks", Json(t.noc.l2_banks));
    j.set("bank_interleave", Json(t.noc.bank_interleave));
    j.set("mshrs_per_bank", Json(t.noc.mshrs_per_bank));
    j.set("l2_access_cycles", Json(t.noc.l2_access_cycles));
    j.set("bank_conflict_penalty",
          Json(t.noc.bank_conflict_penalty));
    j.set("hop_latency", Json(t.noc.hop_latency));
    j.set("quantum", Json(t.quantum));
    return j;
}

MachineTuning
machineTuningFromJson(const Json &j)
{
    checkMembers(j, "machine",
                 {"cores", "remote_data", "l2_banks",
                  "bank_interleave", "mshrs_per_bank",
                  "l2_access_cycles", "bank_conflict_penalty",
                  "hop_latency", "quantum"});
    MachineTuning t;
    t.cores = asIntField(j, "cores");
    t.remote_data = j.at("remote_data").asBool();
    t.noc.l2_banks = asIntField(j, "l2_banks");
    t.noc.bank_interleave = static_cast<Addr>(
        j.at("bank_interleave").asU64());
    t.noc.mshrs_per_bank = asIntField(j, "mshrs_per_bank");
    t.noc.l2_access_cycles = j.at("l2_access_cycles").asU64();
    t.noc.bank_conflict_penalty =
        j.at("bank_conflict_penalty").asU64();
    t.noc.hop_latency = j.at("hop_latency").asU64();
    t.quantum = j.at("quantum").asU64();
    return t;
}

} // namespace

// ----------------------------------------------------------------
// Job
// ----------------------------------------------------------------

Json
jobToJson(const Job &job)
{
    Json j = Json::object();
    j.set("id", Json(job.id));
    j.set("engine", Json(engineName(job.engine)));
    j.set("workload", workloadSpecToJson(job.workload));
    switch (job.engine) {
      case EngineKind::Core:
        j.set("core", coreConfigToJson(job.core));
        break;
      case EngineKind::Baseline:
        j.set("baseline", baselineConfigToJson(job.baseline));
        break;
      case EngineKind::Interp:
        j.set("interp_threads", Json(job.interp_threads));
        break;
      case EngineKind::Machine:
        j.set("core", coreConfigToJson(job.core));
        j.set("machine", machineTuningToJson(job.machine));
        break;
    }
    return j;
}

Job
jobFromJson(const Json &j)
{
    checkMembers(j, "job",
                 {"id", "engine", "workload", "core", "baseline",
                  "interp_threads", "machine"});
    Job job;
    job.id = j.at("id").asString();
    job.workload = workloadSpecFromJson(j.at("workload"));
    const std::string &engine = j.at("engine").asString();
    if (engine == "core") {
        job.engine = EngineKind::Core;
        job.core = coreConfigFromJson(j.at("core"));
    } else if (engine == "baseline") {
        job.engine = EngineKind::Baseline;
        job.baseline = baselineConfigFromJson(j.at("baseline"));
    } else if (engine == "interp") {
        job.engine = EngineKind::Interp;
        job.interp_threads = asIntField(j, "interp_threads");
    } else if (engine == "machine") {
        job.engine = EngineKind::Machine;
        job.core = coreConfigFromJson(j.at("core"));
        job.machine = machineTuningFromJson(j.at("machine"));
    } else {
        throw JsonParseError("job: unknown engine \"" + engine +
                             "\"");
    }
    return job;
}

// ----------------------------------------------------------------
// ExperimentSpec
// ----------------------------------------------------------------

Json
experimentSpecToJson(const ExperimentSpec &spec)
{
    Json workloads = Json::array();
    for (const WorkloadSpec &wl : spec.workloads)
        workloads.push(workloadSpecToJson(wl));
    Json standby = Json::array();
    for (bool sb : spec.standby)
        standby.push(Json(sb));

    Json j = Json::object();
    j.set("name", Json(spec.name));
    j.set("workloads", std::move(workloads));
    j.set("slots", intList(spec.slots));
    j.set("frames", intList(spec.frames));
    j.set("lsu", intList(spec.lsu));
    j.set("widths", intList(spec.widths));
    j.set("standby", std::move(standby));
    j.set("rotation_intervals",
          intList(spec.rotation_intervals));
    j.set("cores", intList(spec.cores));
    j.set("core_template", coreConfigToJson(spec.core_template));
    j.set("machine_template",
          machineTuningToJson(spec.machine_template));
    j.set("include_baseline", Json(spec.include_baseline));
    j.set("baseline_template",
          baselineConfigToJson(spec.baseline_template));
    j.set("replay", Json(spec.replay));
    return j;
}

ExperimentSpec
experimentSpecFromJson(const Json &j)
{
    checkMembers(j, "experiment spec",
                 {"name", "workloads", "slots", "frames", "lsu",
                  "widths", "standby", "rotation_intervals",
                  "cores", "core_template", "machine_template",
                  "include_baseline", "baseline_template",
                  "replay"});
    ExperimentSpec spec;
    spec.name = j.at("name").asString();
    const Json &workloads = j.at("workloads");
    if (workloads.type() != Json::Type::Array)
        throw JsonParseError("workloads: expected an array");
    spec.workloads.clear();
    for (std::size_t i = 0; i < workloads.size(); ++i)
        spec.workloads.push_back(
            workloadSpecFromJson(workloads.at(i)));
    if (spec.workloads.empty())
        throw JsonParseError("workloads: must not be empty");

    // Axes are optional: absent ones keep the ExperimentSpec
    // defaults, matching the CLI's behavior for omitted options.
    if (const Json *v = j.find("slots"))
        spec.slots = intListFromJson(*v, "slots");
    if (const Json *v = j.find("frames"))
        spec.frames = intListFromJson(*v, "frames");
    if (const Json *v = j.find("lsu"))
        spec.lsu = intListFromJson(*v, "lsu");
    if (const Json *v = j.find("widths"))
        spec.widths = intListFromJson(*v, "widths");
    if (const Json *v = j.find("rotation_intervals"))
        spec.rotation_intervals =
            intListFromJson(*v, "rotation_intervals");
    if (const Json *v = j.find("cores"))
        spec.cores = intListFromJson(*v, "cores");
    if (const Json *v = j.find("standby")) {
        if (v->type() != Json::Type::Array)
            throw JsonParseError("standby: expected an array");
        spec.standby.clear();
        for (std::size_t i = 0; i < v->size(); ++i)
            spec.standby.push_back(v->at(i).asBool());
        if (spec.standby.empty())
            throw JsonParseError(
                "standby: grid axis must not be empty");
        if (spec.standby.size() > 2 ||
            (spec.standby.size() == 2 &&
             spec.standby[0] == spec.standby[1]))
            throw JsonParseError(
                "standby: duplicate grid value");
    }
    checkAxis(spec.slots, "slots");
    checkAxis(spec.frames, "frames");
    checkAxis(spec.lsu, "lsu");
    checkAxis(spec.widths, "widths");
    checkAxis(spec.rotation_intervals, "rotation_intervals");
    checkAxis(spec.cores, "cores");
    if (const Json *v = j.find("core_template"))
        spec.core_template = coreConfigFromJson(*v);
    if (const Json *v = j.find("machine_template"))
        spec.machine_template = machineTuningFromJson(*v);
    if (const Json *v = j.find("include_baseline"))
        spec.include_baseline = v->asBool();
    if (const Json *v = j.find("baseline_template"))
        spec.baseline_template = baselineConfigFromJson(*v);
    if (const Json *v = j.find("replay"))
        spec.replay = v->asBool();
    return spec;
}

} // namespace smtsim::lab
