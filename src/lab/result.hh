/**
 * @file
 * Results of an experiment sweep: one JobResult per grid point,
 * collected into a ResultSet that exports to JSON, CSV and the
 * repo's ASCII table renderer (base/table.hh).
 */

#ifndef SMTSIM_LAB_RESULT_HH
#define SMTSIM_LAB_RESULT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/table.hh"
#include "machine/run_stats.hh"

namespace smtsim::lab
{

/** Outcome of one grid point. */
struct JobResult
{
    std::string id;         ///< Job::id
    std::string key;        ///< Job::cacheKey()
    bool ok = false;        ///< finished + outputs verified
    bool from_cache = false;
    std::string error;      ///< first failure description
    RunStats stats;
    /** Host seconds spent simulating (0 for cache hits). */
    double wall_seconds = 0.0;
};

/** All results of one sweep, in job order. */
struct ResultSet
{
    std::vector<JobResult> results;

    // Functional-first pipeline counters (replay sweeps only; all
    // zero for execute-mode sweeps). Not serialized: sweep results
    // must compare equal however they were produced.
    /** Functional (fast-engine) passes actually executed. */
    std::size_t functional_executions = 0;
    /** Core cells timed in verified replay mode. */
    std::size_t replays = 0;
    /** Core cells that diverged and re-ran in execute mode. */
    std::size_t replay_fallbacks = 0;

    /** Lookup by job id; nullptr when absent. */
    const JobResult *find(const std::string &id) const;

    /**
     * Stats of a point that must have succeeded.
     * @throws std::runtime_error when missing or failed.
     */
    const RunStats &statsOf(const std::string &id) const;

    std::size_t cacheHits() const;
    std::size_t failures() const;
    /** Host seconds spent simulating, summed over all points. */
    double simSeconds() const;

    /** Full export, one object per point (stats included). */
    Json toJson() const;

    /**
     * Flat CSV of the standard columns: id, ok, cached, cycles,
     * instructions, ipc, branches, loads, stores, per-class grants.
     */
    std::string toCsv() const;

    /** Summary table: id, cycles, instrs, ipc, finished, source. */
    TextTable toTable(const std::string &title = "") const;
};

/** Serialize one result record (used by the cache + toJson). */
Json resultToJson(const JobResult &r);

/**
 * Rebuild a result record; inverse of resultToJson.
 * @throws JsonParseError on malformed input.
 */
JobResult resultFromJson(const Json &j);

} // namespace smtsim::lab

#endif // SMTSIM_LAB_RESULT_HH
