#include "spec.hh"

#include <set>
#include <sstream>
#include <stdexcept>

#include "base/hash.hh"
#include "base/strutil.hh"

namespace smtsim::lab
{

// ----------------------------------------------------------------
// WorkloadSpec
// ----------------------------------------------------------------

namespace
{

WorkloadSpec
makeSpec(std::string kind,
         std::initializer_list<
             std::pair<const char *, std::int64_t>> params)
{
    WorkloadSpec spec;
    spec.kind = std::move(kind);
    for (const auto &kv : params)
        spec.params[kv.first] = kv.second;
    return spec;
}

std::int64_t
param(const WorkloadSpec &spec, const std::string &key,
      std::int64_t fallback)
{
    const auto it = spec.params.find(key);
    return it == spec.params.end() ? fallback : it->second;
}

/** Reject parameter keys the factory would silently ignore. */
void
checkKeys(const WorkloadSpec &spec,
          std::initializer_list<const char *> known)
{
    for (const auto &kv : spec.params) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || kv.first == k;
        if (!ok)
            throw std::invalid_argument(
                "workload " + spec.kind +
                ": unknown parameter \"" + kv.first + "\"");
    }
}

} // namespace

WorkloadSpec
WorkloadSpec::rayTrace(int width, int height, int spheres,
                       std::uint64_t seed, bool shadows)
{
    return makeSpec("raytrace",
                    {{"width", width},
                     {"height", height},
                     {"spheres", spheres},
                     {"seed", static_cast<std::int64_t>(seed)},
                     {"shadows", shadows ? 1 : 0}});
}

WorkloadSpec
WorkloadSpec::livermore1(int n, bool parallel)
{
    return makeSpec("livermore1",
                    {{"n", n}, {"parallel", parallel ? 1 : 0}});
}

WorkloadSpec
WorkloadSpec::matmul(int n)
{
    return makeSpec("matmul", {{"n", n}});
}

WorkloadSpec
WorkloadSpec::bsearch(int table_size, int queries_per_thread,
                      std::uint64_t seed)
{
    return makeSpec("bsearch",
                    {{"table_size", table_size},
                     {"queries_per_thread", queries_per_thread},
                     {"seed", static_cast<std::int64_t>(seed)}});
}

WorkloadSpec
WorkloadSpec::stencil(int width, int height, int sweeps)
{
    return makeSpec("stencil", {{"width", width},
                                {"height", height},
                                {"sweeps", sweeps}});
}

WorkloadSpec
WorkloadSpec::radiosity(int num_patches, std::uint64_t seed)
{
    return makeSpec("radiosity",
                    {{"patches", num_patches},
                     {"seed", static_cast<std::int64_t>(seed)}});
}

WorkloadSpec
WorkloadSpec::recurrence(int n, RecurrenceVariant variant)
{
    return makeSpec("recurrence",
                    {{"n", n},
                     {"variant", static_cast<std::int64_t>(variant)}});
}

WorkloadSpec
WorkloadSpec::listWalk(int num_nodes, int break_at, bool eager,
                       std::uint64_t seed)
{
    return makeSpec("listwalk",
                    {{"nodes", num_nodes},
                     {"break_at", break_at},
                     {"eager", eager ? 1 : 0},
                     {"seed", static_cast<std::int64_t>(seed)}});
}

WorkloadSpec
WorkloadSpec::tokenRing(int rounds, int bug)
{
    return makeSpec("tokenring", {{"rounds", rounds}, {"bug", bug}});
}

WorkloadSpec
WorkloadSpec::fromString(const std::string &text)
{
    const auto colon = text.find(':');
    const std::string kind = trim(text.substr(0, colon));

    // Start from the kind's defaults so partial overrides work.
    WorkloadSpec spec;
    if (kind == "raytrace")
        spec = rayTrace();
    else if (kind == "livermore1")
        spec = livermore1();
    else if (kind == "matmul")
        spec = matmul();
    else if (kind == "bsearch")
        spec = bsearch();
    else if (kind == "stencil")
        spec = stencil();
    else if (kind == "radiosity")
        spec = radiosity();
    else if (kind == "recurrence")
        spec = recurrence();
    else if (kind == "listwalk")
        spec = listWalk();
    else if (kind == "tokenring")
        spec = tokenRing();
    else
        throw std::invalid_argument("unknown workload kind \"" +
                                    kind + "\"");

    if (colon == std::string::npos)
        return spec;
    for (const std::string &item :
         split(text.substr(colon + 1), ',')) {
        if (trim(item).empty())
            continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "workload parameter \"" + item +
                "\" is not key=value");
        const std::string key = trim(item.substr(0, eq));
        long long value = 0;
        if (!parseInt(item.substr(eq + 1), &value))
            throw std::invalid_argument(
                "workload parameter \"" + key +
                "\" has non-integer value \"" +
                trim(item.substr(eq + 1)) + "\"");
        if (!spec.params.count(key))
            throw std::invalid_argument(
                "workload " + kind + ": unknown parameter \"" +
                key + "\"");
        spec.params[key] = value;
    }
    return spec;
}

std::string
WorkloadSpec::canonical() const
{
    std::ostringstream oss;
    oss << kind << '{';
    bool first = true;
    for (const auto &kv : params) {
        if (!first)
            oss << ',';
        first = false;
        oss << kv.first << '=' << kv.second;
    }
    oss << '}';
    return oss.str();
}

Workload
instantiate(const WorkloadSpec &spec)
{
    if (spec.kind == "raytrace") {
        checkKeys(spec,
                  {"width", "height", "spheres", "seed", "shadows"});
        RayTraceParams p;
        p.width = static_cast<int>(param(spec, "width", p.width));
        p.height = static_cast<int>(param(spec, "height", p.height));
        p.num_spheres =
            static_cast<int>(param(spec, "spheres", p.num_spheres));
        p.seed = static_cast<std::uint64_t>(
            param(spec, "seed", static_cast<std::int64_t>(p.seed)));
        p.shadows = param(spec, "shadows", 1) != 0;
        return makeRayTrace(p);
    }
    if (spec.kind == "livermore1") {
        checkKeys(spec, {"n", "parallel"});
        Lk1Params p;
        p.n = static_cast<int>(param(spec, "n", p.n));
        p.parallel = param(spec, "parallel", 0) != 0;
        return makeLivermore1(p);
    }
    if (spec.kind == "matmul") {
        checkKeys(spec, {"n"});
        MatmulParams p;
        p.n = static_cast<int>(param(spec, "n", p.n));
        return makeMatmul(p);
    }
    if (spec.kind == "bsearch") {
        checkKeys(spec, {"table_size", "queries_per_thread", "seed"});
        BsearchParams p;
        p.table_size =
            static_cast<int>(param(spec, "table_size", p.table_size));
        p.queries_per_thread = static_cast<int>(
            param(spec, "queries_per_thread", p.queries_per_thread));
        p.seed = static_cast<std::uint64_t>(
            param(spec, "seed", static_cast<std::int64_t>(p.seed)));
        return makeBsearch(p);
    }
    if (spec.kind == "stencil") {
        checkKeys(spec, {"width", "height", "sweeps"});
        StencilParams p;
        p.width = static_cast<int>(param(spec, "width", p.width));
        p.height = static_cast<int>(param(spec, "height", p.height));
        p.sweeps = static_cast<int>(param(spec, "sweeps", p.sweeps));
        return makeStencil(p);
    }
    if (spec.kind == "radiosity") {
        checkKeys(spec, {"patches", "seed"});
        RadiosityParams p;
        p.num_patches =
            static_cast<int>(param(spec, "patches", p.num_patches));
        p.seed = static_cast<std::uint64_t>(
            param(spec, "seed", static_cast<std::int64_t>(p.seed)));
        return makeRadiosity(p);
    }
    if (spec.kind == "recurrence") {
        checkKeys(spec, {"n", "variant"});
        RecurrenceParams p;
        p.n = static_cast<int>(param(spec, "n", p.n));
        p.variant = static_cast<RecurrenceVariant>(
            param(spec, "variant",
                  static_cast<std::int64_t>(p.variant)));
        return makeRecurrence(p);
    }
    if (spec.kind == "listwalk") {
        checkKeys(spec, {"nodes", "break_at", "eager", "seed"});
        ListWalkParams p;
        p.num_nodes =
            static_cast<int>(param(spec, "nodes", p.num_nodes));
        p.break_at =
            static_cast<int>(param(spec, "break_at", p.break_at));
        p.eager = param(spec, "eager", 0) != 0;
        p.seed = static_cast<std::uint64_t>(
            param(spec, "seed", static_cast<std::int64_t>(p.seed)));
        return makeListWalk(p);
    }
    if (spec.kind == "tokenring") {
        checkKeys(spec, {"rounds", "bug"});
        TokenRingParams p;
        p.rounds = static_cast<int>(param(spec, "rounds", p.rounds));
        p.bug = static_cast<int>(param(spec, "bug", p.bug));
        return makeTokenRing(p);
    }
    throw std::invalid_argument("unknown workload kind \"" +
                                spec.kind + "\"");
}

// ----------------------------------------------------------------
// Canonical configuration rendering
// ----------------------------------------------------------------

namespace
{

void
appendFus(std::ostringstream &oss, const FuPoolConfig &fus)
{
    oss << "fus=[" << fus.int_alu << ',' << fus.shifter << ','
        << fus.int_mul << ',' << fus.fp_add << ',' << fus.fp_mul
        << ',' << fus.fp_div << ',' << fus.load_store << ']';
}

void
appendCache(std::ostringstream &oss, const char *name,
            const CacheConfig &c)
{
    oss << name << "=[" << c.size_bytes << ',' << c.line_bytes
        << ',' << c.ways << ',' << c.miss_penalty << ']';
}

} // namespace

std::string
canonicalConfig(const CoreConfig &cfg)
{
    std::ostringstream oss;
    oss << "core{slots=" << cfg.num_slots
        << ";frames=" << cfg.num_frames << ";width=" << cfg.width
        << ';';
    appendFus(oss, cfg.fus);
    oss << ";standby=" << (cfg.standby_enabled ? 1 : 0)
        << ";rotation="
        << (cfg.rotation_mode == RotationMode::Implicit
                ? "implicit"
                : "explicit")
        << ";interval=" << cfg.rotation_interval
        << ";private_icache=" << (cfg.private_icache ? 1 : 0)
        << ";icache_cycles=" << cfg.icache_cycles
        << ";iqueue_words=" << cfg.iqueue_words
        << ";queue_reg_depth=" << cfg.queue_reg_depth
        << ";branch_gap=" << cfg.branch_gap
        << ";context_switch_cycles=" << cfg.context_switch_cycles
        << ";remote=[" << cfg.remote.base << ',' << cfg.remote.size
        << ',' << cfg.remote.latency << "];";
    appendCache(oss, "dcache", cfg.dcache);
    oss << ';';
    appendCache(oss, "icache", cfg.icache);
    oss << ";max_cycles=" << cfg.max_cycles << '}';
    return oss.str();
}

std::string
canonicalConfig(const BaselineConfig &cfg)
{
    std::ostringstream oss;
    oss << "baseline{width=" << cfg.width << ';';
    appendFus(oss, cfg.fus);
    oss << ";branch_gap=" << cfg.branch_gap
        << ";max_cycles=" << cfg.max_cycles << '}';
    return oss.str();
}

std::string
canonicalConfig(const MachineTuning &tuning)
{
    std::ostringstream oss;
    oss << "machine{cores=" << tuning.cores
        << ";remote_data=" << (tuning.remote_data ? 1 : 0)
        << ";banks=" << tuning.noc.l2_banks
        << ";interleave=" << tuning.noc.bank_interleave
        << ";mshrs=" << tuning.noc.mshrs_per_bank
        << ";l2_cycles=" << tuning.noc.l2_access_cycles
        << ";conflict=" << tuning.noc.bank_conflict_penalty
        << ";hop=" << tuning.noc.hop_latency
        << ";quantum=" << tuning.quantum << '}';
    return oss.str();
}

// ----------------------------------------------------------------
// Job
// ----------------------------------------------------------------

const char *
engineName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Core: return "core";
      case EngineKind::Baseline: return "baseline";
      case EngineKind::Interp: return "interp";
      case EngineKind::Machine: return "machine";
    }
    return "?";
}

std::string
Job::canonical() const
{
    std::ostringstream oss;
    oss << "smtsim-lab/v" << kCacheSchemaVersion << '/'
        << engineName(engine) << '/';
    switch (engine) {
      case EngineKind::Core:
        oss << canonicalConfig(core);
        break;
      case EngineKind::Baseline:
        oss << canonicalConfig(baseline);
        break;
      case EngineKind::Interp:
        oss << "interp{threads=" << interp_threads << '}';
        break;
      case EngineKind::Machine:
        oss << canonicalConfig(machine) << '/'
            << canonicalConfig(core);
        break;
    }
    oss << '/' << workload.canonical();
    return oss.str();
}

std::string
Job::cacheKey() const
{
    return hashToHex(fnv1a(canonical()));
}

Job
coreJob(std::string id, WorkloadSpec workload, const CoreConfig &cfg)
{
    Job job;
    job.id = std::move(id);
    job.engine = EngineKind::Core;
    job.workload = std::move(workload);
    job.core = cfg;
    return job;
}

Job
baselineJob(std::string id, WorkloadSpec workload,
            const BaselineConfig &cfg)
{
    Job job;
    job.id = std::move(id);
    job.engine = EngineKind::Baseline;
    job.workload = std::move(workload);
    job.baseline = cfg;
    return job;
}

Job
interpJob(std::string id, WorkloadSpec workload, int num_threads)
{
    Job job;
    job.id = std::move(id);
    job.engine = EngineKind::Interp;
    job.workload = std::move(workload);
    job.interp_threads = num_threads;
    return job;
}

Job
machineJob(std::string id, WorkloadSpec workload,
           const CoreConfig &core, const MachineTuning &tuning)
{
    Job job;
    job.id = std::move(id);
    job.engine = EngineKind::Machine;
    job.workload = std::move(workload);
    job.core = core;
    job.machine = tuning;
    return job;
}

// ----------------------------------------------------------------
// ExperimentSpec
// ----------------------------------------------------------------

std::vector<Job>
ExperimentSpec::expand() const
{
    if (workloads.empty())
        throw std::invalid_argument(name + ": no workloads");
    for (const auto *axis : {&slots, &frames, &lsu, &widths,
                             &rotation_intervals, &cores}) {
        if (axis->empty())
            throw std::invalid_argument(name + ": empty grid axis");
    }
    if (standby.empty())
        throw std::invalid_argument(name + ": empty grid axis");

    // The historical single-core grid keeps its exact ids and cache
    // keys; only a non-default cores axis switches the sweep onto
    // the machine engine.
    const bool many_core = !(cores.size() == 1 && cores[0] == 1);

    std::vector<Job> jobs;
    std::set<std::string> ids;
    auto addJob = [&](Job job) {
        if (!ids.insert(job.id).second)
            throw std::invalid_argument(
                name + ": duplicate grid point \"" + job.id + "\"");
        jobs.push_back(std::move(job));
    };

    for (const WorkloadSpec &wl : workloads) {
        if (include_baseline)
            addJob(baselineJob(wl.kind + "/baseline", wl,
                               baseline_template));
        for (int s : slots) {
            for (int f : frames) {
                for (int l : lsu) {
                    for (int w : widths) {
                        for (bool sb : standby) {
                            for (int r : rotation_intervals) {
                                CoreConfig cfg = core_template;
                                cfg.num_slots = s;
                                cfg.num_frames = f;
                                cfg.fus.load_store = l;
                                cfg.width = w;
                                cfg.standby_enabled = sb;
                                cfg.rotation_interval = r;
                                std::ostringstream id;
                                id << wl.kind << "/s" << s << "/f"
                                   << f << "/ls" << l << "/w" << w
                                   << '/' << (sb ? "sb" : "nosb")
                                   << "/r" << r;
                                if (!many_core) {
                                    addJob(coreJob(id.str(), wl,
                                                   cfg));
                                    continue;
                                }
                                for (int c : cores) {
                                    MachineTuning tuning =
                                        machine_template;
                                    tuning.cores = c;
                                    std::ostringstream mid;
                                    mid << id.str() << "/c" << c;
                                    addJob(machineJob(mid.str(),
                                                      wl, cfg,
                                                      tuning));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return jobs;
}

} // namespace smtsim::lab
