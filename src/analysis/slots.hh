/**
 * @file
 * Per-slot projections of an SPMD program.
 *
 * fastfork starts every other thread slot at the parent's next pc
 * with a copy of the parent's register file, and the TID/NSLOT
 * instructions are the only way slots diverge afterwards. That makes
 * the per-slot behavior statically computable: project the shared
 * CFG once per logical processor by running a conditional
 * constant propagation whose only "inputs" are TID (the slot index)
 * and NSLOT (the slot count). Branches whose operands fold to
 * constants restrict each slot to its feasible sub-CFG, which is
 * what the cross-slot concurrency rules (analysis/concurrency.hh)
 * reason about: which slots ever push or pop, and whether a slot
 * can reach a push before its first blocking pop.
 *
 * The projection is deliberately modest: integer registers only
 * (branches cannot test FP values), loads and queue pops go straight
 * to Bottom, and any reachable indirect jump makes the whole
 * analysis refuse (analyzable = false) rather than guess.
 */

#ifndef SMTSIM_ANALYSIS_SLOTS_HH
#define SMTSIM_ANALYSIS_SLOTS_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/queue.hh"

namespace smtsim::analysis
{

/** Constant-propagation lattice for one integer register. */
struct SlotValue
{
    enum class Kind : std::uint8_t
    {
        Top,    ///< no path has defined it yet (optimistic)
        Const,  ///< same value on every feasible path
        Bottom  ///< run-time dependent
    };

    Kind kind = Kind::Top;
    std::uint32_t val = 0;

    static SlotValue constant(std::uint32_t v)
    {
        return {Kind::Const, v};
    }
    static SlotValue bottom() { return {Kind::Bottom, 0}; }

    bool isConst() const { return kind == Kind::Const; }
    bool operator==(const SlotValue &o) const = default;
};

/** Integer register file lattice state (r0 pinned to 0). */
struct SlotState
{
    SlotValue regs[kNumRegs];

    bool operator==(const SlotState &o) const;
};

/** One slot's feasible view of the program. */
struct SlotProjection
{
    int slot = 0;

    /** Slot ever starts running (slot 0 always; siblings only when
     *  a feasible fastfork exists). */
    bool active = false;

    /** Per-block: feasibly reachable by this slot. */
    std::vector<bool> feasible;

    /** Converged in-state per feasible block. */
    std::vector<SlotState> in;

    /** Per block, bit k set = successor edge k is feasible (branch
     *  conditions folded against the block's out-state). */
    std::vector<std::uint32_t> edge_feasible;

    /** Blocks this slot starts at (entry / feasible fork sites). */
    std::vector<std::uint32_t> start_blocks;

    /** Queue traffic visible to this slot (~0u = none). */
    std::uint32_t first_pop_insn = ~0u;
    std::uint32_t first_push_insn = ~0u;
    bool hasPops() const { return first_pop_insn != ~0u; }
    bool hasPushes() const { return first_push_insn != ~0u; }

    /**
     * True when some feasible path from the slot's start reaches a
     * push, a halt, or the end of its code without first popping.
     * False (with hasPops()) means the slot's first queue action is
     * unavoidably a pop: it blocks with nothing pushed.
     */
    bool pop_free_escape = true;
};

/** Projections for every slot, plus global analyzability. */
struct SlotAnalysis
{
    int slots = 0;

    /**
     * False when the program defeats projection: a reachable
     * indirect jump (unknown targets), a reachable KILLT (a kill
     * can rescue statically-blocked peers), a branch to a bad
     * target, or code that can fall off the text end. Consumers
     * must stay silent rather than diagnose over a refused
     * projection.
     */
    bool analyzable = false;

    std::vector<SlotProjection> per_slot;

    bool
    slotActive(int s) const
    {
        return s >= 0 && s < static_cast<int>(per_slot.size()) &&
               per_slot[s].active;
    }
};

/**
 * Project @p cfg onto @p slots logical processors. @p qs supplies
 * the queue mapping (mapped reads pop, mapped writes push; both
 * make the folded value Bottom).
 */
SlotAnalysis analyzeSlots(const Cfg &cfg, const QueueSummary &qs,
                          int slots);

/** Value of integer register @p idx in @p st under the projection's
 *  read rules (r0 = 0, queue-mapped names = Bottom). */
SlotValue readRegValue(const SlotState &st, RegIndex idx,
                       const QueueSummary &qs);

/** Apply one instruction's transfer function to @p st, for slot
 *  @p slot of @p slots. */
void transferInsn(const Insn &insn, SlotState &st,
                  const QueueSummary &qs, int slot, int slots);

} // namespace smtsim::analysis

#endif // SMTSIM_ANALYSIS_SLOTS_HH
