/**
 * @file
 * Queue-register protocol analysis (the paper's section 2.3.1).
 *
 * QEN/QENF map a (read, write) register pair onto the ring of
 * inter-LP FIFO queues: reads of the read-register pop from the
 * upstream link, writes of the write-register push to the
 * downstream link, and both block when the queue is empty/full.
 * fastfork copies thread state, so every LP normally runs the same
 * code and the ring is symmetric: each thread's pops are fed by an
 * identical peer's pushes. Under that model a per-thread push/pop
 * balance is meaningful, and several deadlocks are statically
 * visible:
 *
 *  - a loop that pops more than it pushes starves the ring;
 *  - a program that pops but never pushes reads a port no peer
 *    ever feeds;
 *  - more pushes than the queue depth before the first pop fills
 *    every link while every peer is equally blocked pushing;
 *  - every path popping before the first push leaves all peers
 *    blocked on empty queues.
 *
 * Balances are tracked as intervals [lo, hi] with join
 * [min, max] and widening on loops, so bounded dips (a consumer
 * popping its seed) and leftovers (a final in-flight value at
 * halt) do not alarm.
 */

#ifndef SMTSIM_ANALYSIS_QUEUE_HH
#define SMTSIM_ANALYSIS_QUEUE_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"

namespace smtsim::analysis
{

/** One reachable QEN/QENF site. */
struct QueueMapping
{
    std::uint32_t insn;
    RF file;                ///< Int for qen, Fp for qenf
    RegIndex read_reg;      ///< pops
    RegIndex write_reg;     ///< pushes
    bool illegal;           ///< operands the hardware rejects
};

/** An architectural access to a register shadowed by a mapping:
 *  reading the write-register or writing the read-register. */
struct ShadowedAccess
{
    std::uint32_t insn;
    RegRef reg;
    bool is_read;
};

struct QueueSummary
{
    std::vector<QueueMapping> mappings;
    RegSet mapped_read;     ///< legal read-registers, all mappings
    RegSet mapped_write;    ///< legal write-registers, all mappings
    bool has_qdis = false;

    bool pops_exist = false;
    bool pushes_exist = false;

    /** First insn popping inside a loop whose net balance is
     *  negative (widened to -inf); ~0u when none. */
    std::uint32_t negative_loop_insn = ~0u;

    /** HALT sites whose incoming balance is entirely negative
     *  (hi < 0): the thread definitely popped more than it fed. */
    std::vector<std::uint32_t> negative_halt_insns;

    /** Push site exceeding queue_depth pushes with no prior pop on
     *  an acyclic path; ~0u when none (or only via a widened
     *  loop, which the prefix analysis does not trust). */
    std::uint32_t overflow_insn = ~0u;

    /** True when some reachable push can execute before any pop
     *  (the ring can be primed). Meaningful only when both
     *  pops_exist and pushes_exist. */
    bool push_before_pop_possible = false;

    std::vector<ShadowedAccess> shadowed;
};

/** Run the protocol analysis over reachable blocks. */
QueueSummary analyzeQueues(const Cfg &cfg, int queue_depth);

} // namespace smtsim::analysis

#endif // SMTSIM_ANALYSIS_QUEUE_HH
