#include "analysis/dataflow.hh"

#include <deque>

namespace smtsim::analysis
{

namespace
{

/** Apply one instruction's register writes to @p state. */
void
transfer(const Insn &insn, const RegSet &exclude, InitState &state)
{
    const RegRef dst = insn.dst();
    if (!dst.valid() || exclude.has(dst))
        return;
    if (dst.file == RF::Int && dst.idx == 0)
        return;     // r0 is hardwired; the write is discarded
    state.must.add(dst);
    state.may.add(dst);
}

} // namespace

InitDataflow
runInitDataflow(const Cfg &cfg, const RegSet &exclude)
{
    const std::size_t nb = cfg.blocks.size();
    InitDataflow df;
    df.in.assign(nb, {});
    df.reached.assign(nb, false);

    // Entry state: r0 alone (hardwired zero counts as initialized;
    // everything else starts as the architectural zero, which the
    // may-set deliberately does not contain).
    InitState entry;
    entry.must.add({RF::Int, 0});
    entry.may.add({RF::Int, 0});
    df.in[cfg.entry_block] = entry;
    df.reached[cfg.entry_block] = true;

    auto outOf = [&](std::uint32_t b) {
        InitState s = df.in[b];
        const BasicBlock &bb = cfg.blocks[b];
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            transfer(cfg.insns[i], exclude, s);
        }
        return s;
    };

    std::deque<std::uint32_t> work{cfg.entry_block};
    std::vector<bool> queued(nb, false);
    queued[cfg.entry_block] = true;
    while (!work.empty()) {
        const std::uint32_t b = work.front();
        work.pop_front();
        queued[b] = false;
        const InitState out = outOf(b);
        for (const Edge &edge : cfg.blocks[b].succs) {
            const std::uint32_t s = edge.block;
            InitState merged;
            if (!df.reached[s]) {
                merged = out;
            } else {
                merged.must = df.in[s].must & out.must;
                merged.may = df.in[s].may | out.may;
            }
            if (!df.reached[s] || !(merged == df.in[s])) {
                df.in[s] = merged;
                df.reached[s] = true;
                if (!queued[s]) {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
    }

    // Reporting pass: walk each reached block with its converged
    // in-state and collect inconsistently initialized reads.
    for (std::uint32_t b = 0; b < nb; ++b) {
        if (!df.reached[b])
            continue;
        InitState s = df.in[b];
        const BasicBlock &bb = cfg.blocks[b];
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            const Insn &insn = cfg.insns[i];
            RegRef srcs[3];
            const int n = insn.srcs(srcs);
            RegSet seen;
            for (int k = 0; k < n; ++k) {
                const RegRef r = srcs[k];
                if (exclude.has(r) || seen.has(r))
                    continue;
                seen.add(r);
                if (s.may.has(r) && !s.must.has(r))
                    df.maybe_uninit.push_back({i, r});
            }
            transfer(insn, exclude, s);
        }
    }
    return df;
}

} // namespace smtsim::analysis
