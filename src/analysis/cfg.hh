/**
 * @file
 * Control-flow graph over an assembled program's text segment.
 *
 * The graph is built once per program and shared by every analysis
 * pass (init dataflow, queue-protocol checking, structural lints).
 * Blocks partition the text segment completely: unreachable words
 * still get blocks so the lint pass can report them.
 */

#ifndef SMTSIM_ANALYSIS_CFG_HH
#define SMTSIM_ANALYSIS_CFG_HH

#include <cstdint>
#include <vector>

#include "asmr/program.hh"
#include "base/types.hh"
#include "isa/insn.hh"

namespace smtsim::analysis
{

/** How control reaches a successor block. */
enum class EdgeKind : std::uint8_t
{
    Fall,   ///< sequential fall-through (incl. branch not-taken)
    Taken,  ///< conditional branch taken
    Jump,   ///< unconditional direct jump (j)
    Call,   ///< jal target (paired with a Fall return edge)
    Fork,   ///< fastfork: sibling slots start at the next insn
};

struct Edge
{
    std::uint32_t block;    ///< successor block index
    EdgeKind kind;
};

struct BasicBlock
{
    std::uint32_t first = 0;    ///< index of the first instruction
    std::uint32_t count = 0;    ///< number of instructions
    std::vector<Edge> succs;
    std::vector<std::uint32_t> preds;
    bool reachable = false;     ///< from the program entry
};

/**
 * The CFG proper. Instruction "indices" are word offsets into the
 * text segment; addrOf() converts back to addresses.
 */
struct Cfg
{
    Addr text_base = 0;
    std::vector<Insn> insns;
    std::vector<BasicBlock> blocks;         ///< in address order
    std::vector<std::uint32_t> block_of;    ///< insn index -> block

    std::uint32_t entry_block = 0;

    /** Branches/jumps whose target is outside the text segment or
     *  misaligned (no edge is recorded for them). */
    std::vector<std::uint32_t> bad_target_insns;

    /** jr / jalr sites: targets unknown statically. jalr gets a
     *  Fall successor (call-return assumption); jr gets none. */
    std::vector<std::uint32_t> indirect_insns;

    /** Reachable blocks whose execution can run sequentially past
     *  the last text word (index of the offending last insn). */
    std::vector<std::uint32_t> fall_off_insns;

    Addr
    addrOf(std::uint32_t insn_idx) const
    {
        return text_base + static_cast<Addr>(insn_idx) * kInsnBytes;
    }

    const BasicBlock &
    blockOfInsn(std::uint32_t insn_idx) const
    {
        return blocks[block_of[insn_idx]];
    }

    /**
     * Per-block reachability from a seed set, following every edge
     * kind. Used by the lints that reason about code running after
     * a fastfork (seeded with forkTargets()).
     */
    std::vector<bool> reachableFrom(
        const std::vector<std::uint32_t> &seeds) const;

    /** Blocks targeted by a Fork edge out of a reachable block. */
    std::vector<std::uint32_t> forkTargets() const;
};

/** Decode @p prog and build its CFG. */
Cfg buildCfg(const Program &prog);

} // namespace smtsim::analysis

#endif // SMTSIM_ANALYSIS_CFG_HH
