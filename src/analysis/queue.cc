#include "analysis/queue.hh"

#include <algorithm>
#include <deque>

namespace smtsim::analysis
{

namespace
{

constexpr long kNegInf = -(1L << 40);
constexpr long kPosInf = 1L << 40;
constexpr int kWidenAfter = 12;

struct Interval
{
    long lo = 0;
    long hi = 0;

    bool operator==(const Interval &o) const = default;
};

/** Pop/push counts of one instruction under the current mapping. */
struct QueueTraffic
{
    int pops = 0;
    int pushes = 0;
};

QueueTraffic
trafficOf(const Insn &insn, const QueueSummary &qs)
{
    QueueTraffic t;
    RegRef srcs[3];
    const int n = insn.srcs(srcs);
    for (int k = 0; k < n; ++k) {
        if (qs.mapped_read.has(srcs[k]))
            ++t.pops;
    }
    const RegRef dst = insn.dst();
    if (dst.valid() && qs.mapped_write.has(dst))
        ++t.pushes;
    return t;
}

} // namespace

QueueSummary
analyzeQueues(const Cfg &cfg, int queue_depth)
{
    QueueSummary qs;

    // --- Collect reachable mappings -------------------------------
    for (const BasicBlock &bb : cfg.blocks) {
        if (!bb.reachable)
            continue;
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            const Insn &insn = cfg.insns[i];
            if (insn.op == Op::QDIS) {
                qs.has_qdis = true;
                continue;
            }
            if (insn.op != Op::QEN && insn.op != Op::QENF)
                continue;
            QueueMapping m;
            m.insn = i;
            m.file = insn.op == Op::QEN ? RF::Int : RF::Fp;
            m.read_reg = insn.rs;
            m.write_reg = insn.rt;
            // The hardware rejects self-links, and r0 cannot be
            // remapped (reads are hardwired, writes discarded).
            m.illegal =
                insn.rs == insn.rt ||
                (insn.op == Op::QEN &&
                 (insn.rs == 0 || insn.rt == 0));
            qs.mappings.push_back(m);
            if (!m.illegal) {
                qs.mapped_read.add({m.file, m.read_reg});
                qs.mapped_write.add({m.file, m.write_reg});
            }
        }
    }
    if (qs.mappings.empty())
        return qs;

    // --- Classify per-insn traffic and shadowed accesses ----------
    for (const BasicBlock &bb : cfg.blocks) {
        if (!bb.reachable)
            continue;
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            const Insn &insn = cfg.insns[i];
            RegRef srcs[3];
            const int n = insn.srcs(srcs);
            for (int k = 0; k < n; ++k) {
                if (qs.mapped_read.has(srcs[k]))
                    qs.pops_exist = true;
                else if (qs.mapped_write.has(srcs[k]))
                    qs.shadowed.push_back({i, srcs[k], true});
            }
            const RegRef dst = insn.dst();
            if (dst.valid()) {
                if (qs.mapped_write.has(dst))
                    qs.pushes_exist = true;
                else if (qs.mapped_read.has(dst))
                    qs.shadowed.push_back({i, dst, false});
            }
        }
    }

    // --- Balance intervals with widening --------------------------
    const std::size_t nb = cfg.blocks.size();
    std::vector<Interval> in(nb);
    std::vector<bool> reached(nb, false), queued(nb, false);
    std::vector<int> visits(nb, 0);
    reached[cfg.entry_block] = true;
    std::deque<std::uint32_t> work{cfg.entry_block};
    queued[cfg.entry_block] = true;

    auto outOf = [&](std::uint32_t b) {
        Interval v = in[b];
        const BasicBlock &bb = cfg.blocks[b];
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            const QueueTraffic t = trafficOf(cfg.insns[i], qs);
            const long d = t.pushes - t.pops;
            // Infinities are sticky: once a bound is widened away
            // it must not decay back into the finite range through
            // per-instruction arithmetic.
            if (v.lo > kNegInf)
                v.lo = std::max(kNegInf, v.lo + d);
            if (v.hi < kPosInf)
                v.hi = std::min(kPosInf, v.hi + d);
        }
        return v;
    };

    auto firstPopInsn = [&](std::uint32_t b) {
        const BasicBlock &bb = cfg.blocks[b];
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            if (trafficOf(cfg.insns[i], qs).pops > 0)
                return i;
        }
        return bb.first;
    };

    while (!work.empty()) {
        const std::uint32_t b = work.front();
        work.pop_front();
        queued[b] = false;
        const Interval out = outOf(b);
        for (const Edge &edge : cfg.blocks[b].succs) {
            const std::uint32_t s = edge.block;
            Interval merged = out;
            if (reached[s]) {
                merged.lo = std::min(in[s].lo, out.lo);
                merged.hi = std::max(in[s].hi, out.hi);
            }
            if (reached[s] && merged == in[s])
                continue;
            if (++visits[s] > kWidenAfter) {
                if (merged.lo < in[s].lo)
                    merged.lo = kNegInf;
                if (merged.hi > in[s].hi)
                    merged.hi = kPosInf;
            }
            in[s] = merged;
            reached[s] = true;
            if (!queued[s]) {
                queued[s] = true;
                work.push_back(s);
            }
        }
    }

    // --- Starving loops -------------------------------------------
    // A widened-to-minus-infinity lower bound alone is not enough:
    // in a ring where slots play different roles (one seeds tokens,
    // one retires them), a single-thread balance sees a may-negative
    // path even though the slots' contributions cancel across the
    // ring -- but then the seeding path widens the UPPER bound too.
    // Only when the balance can sink without bound while no path
    // ever replenishes it (hi stays finite) is the loop certainly
    // net-negative on every iteration.
    for (std::uint32_t b = 0; b < nb; ++b) {
        if (reached[b] && in[b].lo <= kNegInf &&
            in[b].hi < kPosInf) {
            qs.negative_loop_insn = firstPopInsn(b);
            break;
        }
    }

    // --- Definitely-negative balance at halt ----------------------
    for (std::uint32_t b = 0; b < nb; ++b) {
        if (!reached[b])
            continue;
        Interval v = in[b];
        const BasicBlock &bb = cfg.blocks[b];
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            if (cfg.insns[i].op == Op::HALT && v.hi < 0)
                qs.negative_halt_insns.push_back(i);
            const QueueTraffic t = trafficOf(cfg.insns[i], qs);
            v.lo += t.pushes - t.pops;
            v.hi += t.pushes - t.pops;
        }
    }

    // --- Pop-free prefix pushes (acyclic paths only) --------------
    // Back edges are ignored so a bounded seeding loop contributes
    // one iteration's worth; the goal is catching straight-line
    // over-priming, not loop bounds.
    std::vector<int> color(nb, 0);      // 0 new, 1 on stack, 2 done
    std::vector<std::uint32_t> rpo;
    std::vector<std::vector<std::uint32_t>> fwd_succs(nb);
    {
        std::vector<std::pair<std::uint32_t, std::size_t>> stack;
        stack.push_back({cfg.entry_block, 0});
        color[cfg.entry_block] = 1;
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            if (next < cfg.blocks[b].succs.size()) {
                const std::uint32_t s =
                    cfg.blocks[b].succs[next++].block;
                if (color[s] == 0) {
                    fwd_succs[b].push_back(s);
                    color[s] = 1;
                    stack.push_back({s, 0});
                } else if (color[s] == 2) {
                    fwd_succs[b].push_back(s);
                }
                // color 1: back edge, dropped.
            } else {
                color[b] = 2;
                rpo.push_back(b);
                stack.pop_back();
            }
        }
        std::reverse(rpo.begin(), rpo.end());
    }

    std::vector<int> prefix(nb, -1);    // -1: no pop-free path
    prefix[cfg.entry_block] = 0;
    for (std::uint32_t b : rpo) {
        int p = prefix[b];
        if (p < 0)
            continue;
        const BasicBlock &bb = cfg.blocks[b];
        for (std::uint32_t i = bb.first;
             p >= 0 && i < bb.first + bb.count; ++i) {
            const QueueTraffic t = trafficOf(cfg.insns[i], qs);
            if (t.pushes > 0) {
                qs.push_before_pop_possible = true;
                p += t.pushes;
                if (p > queue_depth && qs.overflow_insn == ~0u)
                    qs.overflow_insn = i;
            }
            if (t.pops > 0)
                p = -1;
        }
        if (p < 0)
            continue;
        for (std::uint32_t s : fwd_succs[b])
            prefix[s] = std::max(prefix[s], p);
    }

    std::sort(qs.shadowed.begin(), qs.shadowed.end(),
              [](const ShadowedAccess &a, const ShadowedAccess &b) {
                  return a.insn < b.insn;
              });
    return qs;
}

} // namespace smtsim::analysis
