/**
 * @file
 * Static verifier for guest programs: runs the CFG, dataflow and
 * queue-protocol analyses and turns their results into diagnostics
 * with stable IDs (catalog in docs/ANALYSIS.md).
 */

#ifndef SMTSIM_ANALYSIS_LINT_HH
#define SMTSIM_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "asmr/program.hh"
#include "base/json.hh"
#include "base/types.hh"

namespace smtsim::analysis
{

enum class Severity { Warning, Error };

struct Diagnostic
{
    const char *id;         ///< stable catalog ID, e.g. "Q001"
    const char *name;       ///< kebab-case rule name
    Severity severity;
    Addr pc;                ///< address of the offending insn
    SrcLoc loc;             ///< source position when known
    std::string message;
};

struct LintOptions
{
    /** Ring FIFO depth assumed by the overflow check (the
     *  interpreter's InterpConfig::queue_depth default). */
    int queue_depth = 4;

    /**
     * Logical-processor count the cross-slot rules project the
     * program onto (slot s pushes to slot (s+1) mod slots). The
     * default matches the engines' default thread-slot count;
     * smtsim-run's --lint gate passes the run's actual --threads.
     */
    int slots = 4;
};

struct LintReport
{
    std::vector<Diagnostic> diags;

    int
    errorCount() const
    {
        int n = 0;
        for (const Diagnostic &d : diags)
            n += d.severity == Severity::Error;
        return n;
    }

    int
    warningCount() const
    {
        return static_cast<int>(diags.size()) - errorCount();
    }

    bool hasErrors() const { return errorCount() > 0; }
};

/** Analyze @p prog; diagnostics come back sorted by pc then ID. */
LintReport lint(const Program &prog, const LintOptions &opts = {});

/**
 * Render as gcc-style "<source>:<line>:<col>: <severity>: <ID>
 * <name>: <message>" lines (pc-based location when the program
 * carries no source positions). Empty string for a clean report.
 */
std::string formatText(const LintReport &report,
                       const std::string &source_name);

/** {"diagnostics": [{id, name, severity, pc, line, col, message}],
 *   "errors": N, "warnings": N} */
Json toJson(const LintReport &report);

/**
 * Render as a SARIF 2.1.0 log (one run, tool "smtsim-lint") for CI
 * code-scanning annotations. @p source_name becomes the artifact
 * URI; diagnostics without source positions anchor to line 1.
 */
Json toSarif(const LintReport &report,
             const std::string &source_name);

} // namespace smtsim::analysis

#endif // SMTSIM_ANALYSIS_LINT_HH
