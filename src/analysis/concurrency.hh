/**
 * @file
 * Cross-slot concurrency verification over per-slot projections
 * (analysis/slots.hh).
 *
 * The queue registers couple slot s to slot (s+1) mod S: writes of
 * the mapped write-register push onto the downstream link, reads of
 * the mapped read-register pop the upstream link, and both block.
 * Three whole-ring properties are checked statically:
 *
 *  - wait-for cycle: every slot's first queue action is
 *    unavoidably a pop. All links start empty, so all S slots block
 *    simultaneously and nothing ever unblocks them (Q009).
 *  - link never fed: a slot pops a link whose producer slot never
 *    pushes (or never even starts because no fastfork runs): the
 *    first pop on that link blocks forever (Q010).
 *  - per-iteration rate mismatch: producer and consumer share a
 *    loop but push/pop different (statically determinate) counts
 *    per iteration, so the link starves (Q011) or fills until the
 *    producer wedges (Q012). This assumes matched trip counts —
 *    see docs/ANALYSIS.md for the precision caveats.
 *
 * Independently, a memory-flag spin wait (single-block load/branch
 * self-loop on a statically-resolvable address) that no reachable
 * store can ever satisfy is reported as S001 — the static face of
 * the remote/many-core flag-polling idiom.
 */

#ifndef SMTSIM_ANALYSIS_CONCURRENCY_HH
#define SMTSIM_ANALYSIS_CONCURRENCY_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/queue.hh"
#include "analysis/slots.hh"

namespace smtsim::analysis
{

/** All S slots block popping before any push (static deadlock). */
struct WaitCycle
{
    std::uint32_t insn;     ///< earliest blocking pop site
};

/** Slot @c consumer pops the link out of @c producer, a running
 *  slot that never pushes. */
struct NeverFedLink
{
    std::uint32_t insn;     ///< consumer's first pop
    int producer;
    int consumer;
};

/** Producer/consumer per-iteration rate mismatch on one link. */
struct RateMismatch
{
    std::uint32_t insn;     ///< pop (starved) / push (overrun) site
    int producer;
    int consumer;
    long pushes;            ///< producer pushes per iteration
    long pops;              ///< consumer pops per iteration
};

/** Spin wait on a flag address no store can ever satisfy. */
struct DeadSpin
{
    std::uint32_t insn;     ///< the polling load
    int slot;               ///< first slot that can spin here
    Addr addr;              ///< resolved flag address
};

struct ConcurrencyReport
{
    /** False when the projection refused the program (indirect
     *  jumps, KILLT, structural errors): nothing was checked. */
    bool ran = false;

    std::vector<WaitCycle> wait_cycles;     ///< 0 or 1 entry
    std::vector<NeverFedLink> never_fed;
    std::vector<RateMismatch> starved;      ///< pops > pushes
    std::vector<RateMismatch> overrun;      ///< pushes > pops
    std::vector<DeadSpin> dead_spins;
};

/** Run every cross-slot check. @p prog supplies the data segment's
 *  initial values for the spin-wait rule. */
ConcurrencyReport analyzeConcurrency(const Program &prog,
                                     const Cfg &cfg,
                                     const QueueSummary &qs,
                                     const SlotAnalysis &sa);

} // namespace smtsim::analysis

#endif // SMTSIM_ANALYSIS_CONCURRENCY_HH
