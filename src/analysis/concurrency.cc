#include "analysis/concurrency.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "isa/semantics.hh"

namespace smtsim::analysis
{

namespace
{

void
insnTraffic(const Insn &insn, const QueueSummary &qs, int &pops,
            int &pushes)
{
    pops = pushes = 0;
    RegRef srcs[3];
    const int n = insn.srcs(srcs);
    for (int k = 0; k < n; ++k) {
        if (qs.mapped_read.has(srcs[k]))
            ++pops;
    }
    const RegRef dst = insn.dst();
    if (dst.valid() && qs.mapped_write.has(dst))
        ++pushes;
}

void
blockTraffic(const Cfg &cfg, const QueueSummary &qs,
             std::uint32_t b, int &pops, int &pushes)
{
    pops = pushes = 0;
    const BasicBlock &bb = cfg.blocks[b];
    for (std::uint32_t i = bb.first; i < bb.first + bb.count; ++i) {
        int p, q;
        insnTraffic(cfg.insns[i], qs, p, q);
        pops += p;
        pushes += q;
    }
}

// --- Dominators and natural loops ---------------------------------

/** Immediate dominators over reachable blocks (Cooper-Harvey-
 *  Kennedy); ~0u for unreachable blocks. */
std::vector<std::uint32_t>
computeIdoms(const Cfg &cfg)
{
    const std::uint32_t nb =
        static_cast<std::uint32_t>(cfg.blocks.size());
    std::vector<std::uint32_t> idom(nb, ~0u);

    // Reverse post-order over reachable blocks.
    std::vector<std::uint32_t> rpo;
    std::vector<int> color(nb, 0);
    {
        std::vector<std::pair<std::uint32_t, std::size_t>> stack;
        stack.push_back({cfg.entry_block, 0});
        color[cfg.entry_block] = 1;
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            if (next < cfg.blocks[b].succs.size()) {
                const std::uint32_t s =
                    cfg.blocks[b].succs[next++].block;
                if (color[s] == 0) {
                    color[s] = 1;
                    stack.push_back({s, 0});
                }
            } else {
                rpo.push_back(b);
                stack.pop_back();
            }
        }
        std::reverse(rpo.begin(), rpo.end());
    }

    std::vector<std::uint32_t> rpo_index(nb, ~0u);
    for (std::uint32_t k = 0;
         k < static_cast<std::uint32_t>(rpo.size()); ++k)
        rpo_index[rpo[k]] = k;

    auto intersect = [&](std::uint32_t a, std::uint32_t b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = idom[a];
            while (rpo_index[b] > rpo_index[a])
                b = idom[b];
        }
        return a;
    };

    idom[cfg.entry_block] = cfg.entry_block;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t b : rpo) {
            if (b == cfg.entry_block)
                continue;
            std::uint32_t new_idom = ~0u;
            for (std::uint32_t p : cfg.blocks[b].preds) {
                if (idom[p] == ~0u)
                    continue;
                new_idom = new_idom == ~0u
                               ? p
                               : intersect(new_idom, p);
            }
            if (new_idom != ~0u && idom[b] != new_idom) {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
dominates(const std::vector<std::uint32_t> &idom, std::uint32_t a,
          std::uint32_t b, std::uint32_t entry)
{
    while (true) {
        if (b == a)
            return true;
        if (b == entry || idom[b] == ~0u)
            return false;
        b = idom[b];
    }
}

struct NaturalLoop
{
    std::uint32_t header;
    std::set<std::uint32_t> body;       ///< includes the header
    std::set<std::uint32_t> latches;    ///< back-edge sources
};

/** Natural loops of the reachable CFG, merged per header. */
std::vector<NaturalLoop>
findLoops(const Cfg &cfg, const std::vector<std::uint32_t> &idom)
{
    std::map<std::uint32_t, NaturalLoop> by_header;
    for (std::uint32_t u = 0;
         u < static_cast<std::uint32_t>(cfg.blocks.size()); ++u) {
        if (!cfg.blocks[u].reachable || idom[u] == ~0u)
            continue;
        for (const Edge &e : cfg.blocks[u].succs) {
            const std::uint32_t h = e.block;
            if (idom[h] == ~0u ||
                !dominates(idom, h, u, cfg.entry_block))
                continue;
            NaturalLoop &loop = by_header[h];
            loop.header = h;
            loop.latches.insert(u);
            // Standard body construction: everything that reaches
            // the latch without passing through the header.
            loop.body.insert(h);
            std::deque<std::uint32_t> work;
            if (loop.body.insert(u).second)
                work.push_back(u);
            while (!work.empty()) {
                const std::uint32_t v = work.front();
                work.pop_front();
                for (std::uint32_t p : cfg.blocks[v].preds) {
                    if (cfg.blocks[p].reachable &&
                        loop.body.insert(p).second)
                        work.push_back(p);
                }
            }
        }
    }
    std::vector<NaturalLoop> loops;
    loops.reserve(by_header.size());
    for (auto &[h, loop] : by_header)
        loops.push_back(std::move(loop));
    return loops;
}

// --- Per-slot per-loop iteration rates ----------------------------

struct LoopRate
{
    bool determinate = false;
    long pushes = 0;
    long pops = 0;
    std::uint32_t first_pop_insn = ~0u;
    std::uint32_t first_push_insn = ~0u;
};

/**
 * Min/max queue traffic along one slot's feasible paths from the
 * loop header back to a latch. Inner cycles are condensed into
 * SCCs: a traffic-free inner loop contributes nothing per outer
 * iteration, while an inner cycle that pushes or pops makes the
 * count trip-dependent and the rate indeterminate.
 */
LoopRate
slotLoopRate(const Cfg &cfg, const QueueSummary &qs,
             const SlotProjection &proj, const NaturalLoop &loop)
{
    LoopRate rate;
    const std::uint32_t h = loop.header;
    if (!proj.feasible[h])
        return rate;

    // Feasible latches: the slot actually iterates.
    std::vector<std::uint32_t> latches;
    for (std::uint32_t u : loop.latches) {
        if (!proj.feasible[u])
            continue;
        const BasicBlock &bb = cfg.blocks[u];
        for (std::size_t k = 0; k < bb.succs.size(); ++k) {
            if (bb.succs[k].block == h &&
                (proj.edge_feasible[u] & (1u << k))) {
                latches.push_back(u);
                break;
            }
        }
    }
    if (latches.empty())
        return rate;

    // Feasible body nodes and intra-body edges (edges into the
    // header removed, so the remainder is one iteration).
    std::vector<std::uint32_t> nodes;
    for (std::uint32_t v : loop.body) {
        if (proj.feasible[v])
            nodes.push_back(v);
    }
    std::map<std::uint32_t, std::uint32_t> node_index;
    for (std::uint32_t k = 0;
         k < static_cast<std::uint32_t>(nodes.size()); ++k)
        node_index[nodes[k]] = k;
    const std::uint32_t nn =
        static_cast<std::uint32_t>(nodes.size());
    std::vector<std::vector<std::uint32_t>> succs(nn);
    for (std::uint32_t k = 0; k < nn; ++k) {
        const std::uint32_t u = nodes[k];
        const BasicBlock &bb = cfg.blocks[u];
        for (std::size_t e = 0; e < bb.succs.size(); ++e) {
            const std::uint32_t v = bb.succs[e].block;
            if (v == h || !(proj.edge_feasible[u] & (1u << e)))
                continue;
            auto it = node_index.find(v);
            if (it != node_index.end())
                succs[k].push_back(it->second);
        }
    }

    // Tarjan SCC (iterative).
    std::vector<std::uint32_t> scc_of(nn, ~0u);
    std::uint32_t scc_count = 0;
    {
        std::vector<std::uint32_t> low(nn, 0), num(nn, ~0u);
        std::vector<bool> on_stack(nn, false);
        std::vector<std::uint32_t> stack;
        std::uint32_t counter = 0;
        struct Frame
        {
            std::uint32_t v;
            std::size_t next;
        };
        for (std::uint32_t root = 0; root < nn; ++root) {
            if (num[root] != ~0u)
                continue;
            std::vector<Frame> frames{{root, 0}};
            num[root] = low[root] = counter++;
            stack.push_back(root);
            on_stack[root] = true;
            while (!frames.empty()) {
                Frame &f = frames.back();
                if (f.next < succs[f.v].size()) {
                    const std::uint32_t w = succs[f.v][f.next++];
                    if (num[w] == ~0u) {
                        num[w] = low[w] = counter++;
                        stack.push_back(w);
                        on_stack[w] = true;
                        frames.push_back({w, 0});
                    } else if (on_stack[w]) {
                        low[f.v] = std::min(low[f.v], num[w]);
                    }
                } else {
                    if (low[f.v] == num[f.v]) {
                        while (true) {
                            const std::uint32_t w = stack.back();
                            stack.pop_back();
                            on_stack[w] = false;
                            scc_of[w] = scc_count;
                            if (w == f.v)
                                break;
                        }
                        ++scc_count;
                    }
                    const std::uint32_t v = f.v;
                    frames.pop_back();
                    if (!frames.empty())
                        low[frames.back().v] =
                            std::min(low[frames.back().v], low[v]);
                }
            }
        }
    }

    // SCC traffic; a cyclic SCC with traffic is trip-dependent.
    std::vector<long> scc_pops(scc_count, 0),
        scc_pushes(scc_count, 0);
    std::vector<std::uint32_t> scc_size(scc_count, 0);
    std::vector<bool> scc_self(scc_count, false);
    for (std::uint32_t k = 0; k < nn; ++k) {
        int p, q;
        blockTraffic(cfg, qs, nodes[k], p, q);
        scc_pops[scc_of[k]] += p;
        scc_pushes[scc_of[k]] += q;
        ++scc_size[scc_of[k]];
        for (std::uint32_t w : succs[k]) {
            if (w == k)
                scc_self[scc_of[k]] = true;
        }
    }
    for (std::uint32_t c = 0; c < scc_count; ++c) {
        if ((scc_size[c] > 1 || scc_self[c]) &&
            (scc_pops[c] > 0 || scc_pushes[c] > 0))
            return rate;    // inner loop carries queue traffic
    }

    // Tarjan numbers SCCs in reverse topological order, so iterate
    // from high to low for a forward DP. Min/max (pushes, pops)
    // from the header's SCC; cyclic traffic-free SCCs contribute 0.
    constexpr long kUnset = -1;
    struct Range
    {
        long min_pushes = kUnset, max_pushes = kUnset;
        long min_pops = kUnset, max_pops = kUnset;
    };
    std::vector<Range> in(scc_count);
    std::vector<std::vector<std::uint32_t>> scc_succs(scc_count);
    for (std::uint32_t k = 0; k < nn; ++k) {
        for (std::uint32_t w : succs[k]) {
            if (scc_of[w] != scc_of[k])
                scc_succs[scc_of[k]].push_back(scc_of[w]);
        }
    }
    const std::uint32_t hs = scc_of[node_index[h]];
    in[hs] = {0, 0, 0, 0};
    for (std::uint32_t c = scc_count; c-- > 0;) {
        if (in[c].min_pushes == kUnset)
            continue;
        const long out_min_pushes = in[c].min_pushes + scc_pushes[c];
        const long out_max_pushes = in[c].max_pushes + scc_pushes[c];
        const long out_min_pops = in[c].min_pops + scc_pops[c];
        const long out_max_pops = in[c].max_pops + scc_pops[c];
        for (std::uint32_t w : scc_succs[c]) {
            Range &r = in[w];
            if (r.min_pushes == kUnset) {
                r = {out_min_pushes, out_max_pushes, out_min_pops,
                     out_max_pops};
            } else {
                r.min_pushes = std::min(r.min_pushes,
                                        out_min_pushes);
                r.max_pushes = std::max(r.max_pushes,
                                        out_max_pushes);
                r.min_pops = std::min(r.min_pops, out_min_pops);
                r.max_pops = std::max(r.max_pops, out_max_pops);
            }
        }
    }

    long min_pushes = kUnset, max_pushes = 0, min_pops = 0,
         max_pops = 0;
    for (std::uint32_t u : latches) {
        const std::uint32_t c = scc_of[node_index[u]];
        if (in[c].min_pushes == kUnset)
            return rate;    // latch not on a header path: give up
        const long tp = in[c].min_pushes + scc_pushes[c];
        const long tq = in[c].max_pushes + scc_pushes[c];
        const long rp = in[c].min_pops + scc_pops[c];
        const long rq = in[c].max_pops + scc_pops[c];
        if (min_pushes == kUnset) {
            min_pushes = tp;
            max_pushes = tq;
            min_pops = rp;
            max_pops = rq;
        } else {
            min_pushes = std::min(min_pushes, tp);
            max_pushes = std::max(max_pushes, tq);
            min_pops = std::min(min_pops, rp);
            max_pops = std::max(max_pops, rq);
        }
    }
    if (min_pushes != max_pushes || min_pops != max_pops)
        return rate;

    rate.determinate = true;
    rate.pushes = min_pushes;
    rate.pops = min_pops;
    for (std::uint32_t v : nodes) {
        const BasicBlock &bb = cfg.blocks[v];
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            int p, q;
            insnTraffic(cfg.insns[i], qs, p, q);
            if (p > 0 && rate.first_pop_insn == ~0u)
                rate.first_pop_insn = i;
            if (q > 0 && rate.first_push_insn == ~0u)
                rate.first_push_insn = i;
        }
    }
    return rate;
}

// --- Spin-wait pairing --------------------------------------------

/** Byte extent of one store/flag access. */
struct MemRange
{
    Addr lo;
    Addr hi;

    bool
    overlaps(const MemRange &o) const
    {
        return lo < o.hi && o.lo < hi;
    }
};

Addr
accessBytes(Op op)
{
    return op == Op::SF || op == Op::PSTF || op == Op::LF ? 8 : 4;
}

/**
 * Scan a feasible block of @p proj for stores; returns false (via
 * @p may_alias) only when every store's address resolves to a
 * constant range disjoint from @p flag.
 */
void
scanBlockStores(const Cfg &cfg, const QueueSummary &qs,
                const SlotProjection &proj, int slot, int slots,
                std::uint32_t b, const MemRange &flag,
                bool &may_alias)
{
    SlotState st = proj.in[b];
    const BasicBlock &bb = cfg.blocks[b];
    for (std::uint32_t i = bb.first;
         !may_alias && i < bb.first + bb.count; ++i) {
        const Insn &insn = cfg.insns[i];
        if (isStoreOp(insn.op)) {
            const SlotValue base = readRegValue(st, insn.rs, qs);
            if (!base.isConst()) {
                may_alias = true;   // unknown target: could hit it
                break;
            }
            const Addr a =
                base.val + static_cast<std::uint32_t>(insn.imm);
            if (flag.overlaps({a, a + accessBytes(insn.op)})) {
                may_alias = true;
                break;
            }
        }
        transferInsn(insn, st, qs, slot, slots);
    }
}

struct SpinCandidate
{
    std::uint32_t block;
    std::uint32_t load_insn;
    Addr addr;
};

/**
 * Recognize `spin: lw rX, imm(rB); b.. rX, spin` shapes in slot
 * @p s: a feasible single-block self-loop whose branch tests a
 * value freshly loaded from a statically-known address, with no
 * store and no queue traffic inside the block. Returns candidates
 * that the data segment's initial value does not already satisfy.
 */
std::vector<SpinCandidate>
findSpins(const Program &prog, const Cfg &cfg,
          const QueueSummary &qs, const SlotProjection &proj,
          int slots)
{
    std::vector<SpinCandidate> out;
    for (std::uint32_t b = 0;
         b < static_cast<std::uint32_t>(cfg.blocks.size()); ++b) {
        if (!proj.feasible[b])
            continue;
        const BasicBlock &bb = cfg.blocks[b];
        const Insn &last = cfg.insns[bb.first + bb.count - 1];
        if (!isCondBranchOp(last.op))
            continue;

        // A feasible edge back to this very block?
        EdgeKind self_kind{};
        bool has_self = false;
        for (std::size_t k = 0; k < bb.succs.size(); ++k) {
            if (bb.succs[k].block == b &&
                (proj.edge_feasible[b] & (1u << k))) {
                self_kind = bb.succs[k].kind;
                has_self = true;
                break;
            }
        }
        if (!has_self)
            continue;

        // Walk the block: track the last load into each register
        // and refuse blocks with stores or queue traffic.
        SlotState st = proj.in[b];
        std::uint32_t load_of[kNumRegs];
        Addr addr_of[kNumRegs];
        std::fill(std::begin(load_of), std::end(load_of), ~0u);
        bool refuse = false;
        for (std::uint32_t i = bb.first;
             i < bb.first + bb.count && !refuse; ++i) {
            const Insn &insn = cfg.insns[i];
            int pops, pushes;
            insnTraffic(insn, qs, pops, pushes);
            if (isStoreOp(insn.op) || pops > 0 || pushes > 0) {
                refuse = true;
                break;
            }
            if (insn.op == Op::LW) {
                const SlotValue base =
                    readRegValue(st, insn.rs, qs);
                load_of[insn.rt] = ~0u;
                if (base.isConst()) {
                    load_of[insn.rt] = i;
                    addr_of[insn.rt] =
                        base.val +
                        static_cast<std::uint32_t>(insn.imm);
                }
            } else {
                const RegRef dst = insn.dst();
                if (dst.file == RF::Int && dst.idx < kNumRegs)
                    load_of[dst.idx] = ~0u;     // clobbered
            }
            transferInsn(insn, st, qs, proj.slot, slots);
        }
        if (refuse)
            continue;

        // The branch must test exactly one freshly-loaded value
        // against a constant (or r0).
        const bool br2 = opMeta(last.op).format == Format::BR2;
        std::uint32_t load_insn = ~0u;
        Addr flag_addr = 0;
        std::uint32_t other_val = 0;
        bool loaded_is_rs = true;
        if (load_of[last.rs] != ~0u) {
            const SlotValue o =
                br2 ? readRegValue(st, last.rt, qs)
                    : SlotValue::constant(0);
            if (o.isConst()) {
                load_insn = load_of[last.rs];
                flag_addr = addr_of[last.rs];
                other_val = o.val;
            }
        } else if (br2 && load_of[last.rt] != ~0u) {
            const SlotValue o = readRegValue(st, last.rs, qs);
            if (o.isConst()) {
                load_insn = load_of[last.rt];
                flag_addr = addr_of[last.rt];
                other_val = o.val;
                loaded_is_rs = false;
            }
        }
        if (load_insn == ~0u)
            continue;

        // Does the initial memory value already end the spin?
        std::uint32_t w0 = 0;
        if (flag_addr >= prog.data_base &&
            flag_addr + 4 <= prog.data_base + prog.data.size()) {
            const std::size_t off = flag_addr - prog.data_base;
            w0 = static_cast<std::uint32_t>(prog.data[off]) |
                 static_cast<std::uint32_t>(prog.data[off + 1])
                     << 8 |
                 static_cast<std::uint32_t>(prog.data[off + 2])
                     << 16 |
                 static_cast<std::uint32_t>(prog.data[off + 3])
                     << 24;
        }
        const bool taken0 =
            evalBranch(last.op, loaded_is_rs ? w0 : other_val,
                       loaded_is_rs ? other_val : w0);
        const bool spins0 =
            self_kind == EdgeKind::Taken ? taken0 : !taken0;
        if (!spins0)
            continue;   // exits on the first iteration already

        out.push_back({b, load_insn, flag_addr});
    }
    return out;
}

} // namespace

ConcurrencyReport
analyzeConcurrency(const Program &prog, const Cfg &cfg,
                   const QueueSummary &qs, const SlotAnalysis &sa)
{
    ConcurrencyReport cr;
    if (!sa.analyzable || sa.slots < 1)
        return cr;
    cr.ran = true;

    const int S = sa.slots;
    const bool queue_rules =
        S >= 2 && !qs.mappings.empty() && !qs.has_qdis;

    // --- Q009: whole-ring wait-for cycle --------------------------
    if (queue_rules) {
        bool cycle = true;
        std::uint32_t site = ~0u;
        for (int s = 0; s < S; ++s) {
            const SlotProjection &p =
                sa.per_slot[static_cast<std::size_t>(s)];
            if (!p.active || !p.hasPops() || p.pop_free_escape) {
                cycle = false;
                break;
            }
            site = std::min(site, p.first_pop_insn);
        }
        if (cycle)
            cr.wait_cycles.push_back({site});
    }

    // --- Q010: links whose producer never pushes ------------------
    // Both ends must be running slots: a program that never forks
    // is a legitimate 1-LP self-ring (the link wraps straight back
    // to the only thread), so inactive producers are a
    // configuration question, not a static bug.
    if (queue_rules && cr.wait_cycles.empty()) {
        for (int c = 0; c < S; ++c) {
            const SlotProjection &pc =
                sa.per_slot[static_cast<std::size_t>(c)];
            if (!pc.active || !pc.hasPops())
                continue;
            const int p = (c + S - 1) % S;
            const SlotProjection &pp =
                sa.per_slot[static_cast<std::size_t>(p)];
            if (pp.active && !pp.hasPushes())
                cr.never_fed.push_back(
                    {pc.first_pop_insn, p, c});
        }
    }

    // --- Q011/Q012: per-iteration rate mismatches -----------------
    if (queue_rules && cr.wait_cycles.empty()) {
        const std::vector<std::uint32_t> idom = computeIdoms(cfg);
        const std::vector<NaturalLoop> loops = findLoops(cfg, idom);
        for (const NaturalLoop &loop : loops) {
            std::vector<LoopRate> rates(
                static_cast<std::size_t>(S));
            for (int s = 0; s < S; ++s) {
                const SlotProjection &p =
                    sa.per_slot[static_cast<std::size_t>(s)];
                if (p.active)
                    rates[static_cast<std::size_t>(s)] =
                        slotLoopRate(cfg, qs, p, loop);
            }
            for (int s = 0; s < S; ++s) {
                const int c = (s + 1) % S;
                const LoopRate &rp =
                    rates[static_cast<std::size_t>(s)];
                const LoopRate &rc =
                    rates[static_cast<std::size_t>(c)];
                // Compare only links where both sides move data
                // every iteration: a slot that merely drains
                // seeds (or seeds outside the loop) has no
                // meaningful per-iteration rate on this link.
                if (!rp.determinate || !rc.determinate ||
                    rp.pushes <= 0 || rc.pops <= 0)
                    continue;
                if (rc.pops > rp.pushes) {
                    cr.starved.push_back({rc.first_pop_insn, s, c,
                                          rp.pushes, rc.pops});
                } else if (rp.pushes > rc.pops) {
                    cr.overrun.push_back({rp.first_push_insn, s, c,
                                          rp.pushes, rc.pops});
                }
            }
        }
    }

    // --- S001: spin waits no store can satisfy --------------------
    {
        std::set<std::uint32_t> reported;
        for (int s = 0; s < S; ++s) {
            const SlotProjection &ps =
                sa.per_slot[static_cast<std::size_t>(s)];
            if (!ps.active)
                continue;
            for (const SpinCandidate &cand :
                 findSpins(prog, cfg, qs, ps, S)) {
                if (reported.count(cand.load_insn))
                    continue;
                const MemRange flag{cand.addr, cand.addr + 4};
                bool may_alias = false;

                // Other slots run freely while this one spins.
                for (int t = 0; t < S && !may_alias; ++t) {
                    if (t == s)
                        continue;
                    const SlotProjection &pt =
                        sa.per_slot[static_cast<std::size_t>(t)];
                    if (!pt.active)
                        continue;
                    for (std::uint32_t b = 0;
                         !may_alias &&
                         b < static_cast<std::uint32_t>(
                                 cfg.blocks.size());
                         ++b) {
                        if (pt.feasible[b])
                            scanBlockStores(cfg, qs, pt, t, S, b,
                                            flag, may_alias);
                    }
                }

                // The spinning slot itself only reaches stores
                // that execute before (or while) it spins: sever
                // the spin block's exit edges and rescan.
                if (!may_alias) {
                    std::vector<bool> seen(cfg.blocks.size(),
                                           false);
                    std::deque<std::uint32_t> work;
                    for (std::uint32_t sb : ps.start_blocks) {
                        if (ps.feasible[sb] && !seen[sb]) {
                            seen[sb] = true;
                            work.push_back(sb);
                        }
                    }
                    while (!work.empty() && !may_alias) {
                        const std::uint32_t b = work.front();
                        work.pop_front();
                        scanBlockStores(cfg, qs, ps, s, S, b, flag,
                                        may_alias);
                        if (b == cand.block)
                            continue;   // exits severed
                        const BasicBlock &bb = cfg.blocks[b];
                        for (std::size_t k = 0;
                             k < bb.succs.size(); ++k) {
                            if (!(ps.edge_feasible[b] &
                                  (1u << k)))
                                continue;
                            const std::uint32_t v =
                                bb.succs[k].block;
                            if (!seen[v]) {
                                seen[v] = true;
                                work.push_back(v);
                            }
                        }
                    }
                }

                if (!may_alias) {
                    reported.insert(cand.load_insn);
                    cr.dead_spins.push_back(
                        {cand.load_insn, s, cand.addr});
                }
            }
        }
    }

    return cr;
}

} // namespace smtsim::analysis
