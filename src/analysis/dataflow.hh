/**
 * @file
 * Forward register-initialization dataflow over the CFG.
 *
 * Tracks, per register bank, which registers must / may have been
 * written on the paths reaching each block. Registers are
 * architecturally zero-initialized, so a read of a never-written
 * register is defined behavior (the common "known zero" idiom) and
 * is NOT reported; what the pass surfaces is the inconsistent case:
 * registers written on some paths but not all (may-init minus
 * must-init), where the value read depends on which path ran.
 *
 * fastfork copies the parent's register file into every sibling
 * slot, so the Fork edge propagates state exactly like Fall.
 */

#ifndef SMTSIM_ANALYSIS_DATAFLOW_HH
#define SMTSIM_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"

namespace smtsim::analysis
{

/** Bitset over both register banks (32 int + 32 fp). */
struct RegSet
{
    std::uint32_t ints = 0;
    std::uint32_t fps = 0;

    bool
    has(RegRef r) const
    {
        const std::uint32_t bit = 1u << (r.idx & 31);
        return r.file == RF::Int ? (ints & bit) != 0
                                 : r.file == RF::Fp && (fps & bit);
    }

    void
    add(RegRef r)
    {
        const std::uint32_t bit = 1u << (r.idx & 31);
        if (r.file == RF::Int)
            ints |= bit;
        else if (r.file == RF::Fp)
            fps |= bit;
    }

    RegSet
    operator&(const RegSet &o) const
    {
        return {ints & o.ints, fps & o.fps};
    }

    RegSet
    operator|(const RegSet &o) const
    {
        return {ints | o.ints, fps | o.fps};
    }

    bool operator==(const RegSet &o) const = default;
};

/** Lattice element: initialized-on-all-paths / on-some-path. */
struct InitState
{
    RegSet must;
    RegSet may;

    bool operator==(const InitState &o) const = default;
};

struct UninitRead
{
    std::uint32_t insn;     ///< insn index of the read
    RegRef reg;
};

struct InitDataflow
{
    /** Converged in-state per block (meaningless if unreached). */
    std::vector<InitState> in;
    std::vector<bool> reached;

    /** Reads of may-but-not-must initialized registers, in
     *  address order, deduplicated per (insn, register). */
    std::vector<UninitRead> maybe_uninit;
};

/**
 * Run the analysis. Registers in @p exclude (queue-mapped names,
 * whose reads pop and writes push rather than touching the register
 * file) participate neither as definitions nor as uses.
 */
InitDataflow runInitDataflow(const Cfg &cfg, const RegSet &exclude);

} // namespace smtsim::analysis

#endif // SMTSIM_ANALYSIS_DATAFLOW_HH
