#include "analysis/lint.hh"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/concurrency.hh"
#include "analysis/dataflow.hh"
#include "analysis/queue.hh"
#include "analysis/slots.hh"

namespace smtsim::analysis
{

namespace
{

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

std::string
regName(RegRef r)
{
    return (r.file == RF::Fp ? "f" : "r") + std::to_string(r.idx);
}

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

class Reporter
{
  public:
    Reporter(const Program &prog, const Cfg &cfg,
             std::vector<Diagnostic> &out)
        : prog_(prog), cfg_(cfg), out_(out)
    {}

    void
    add(const char *id, const char *name, Severity sev,
        std::uint32_t insn_idx, std::string message)
    {
        const Addr pc = cfg_.addrOf(insn_idx);
        out_.push_back({id, name, sev, pc, prog_.locAt(pc),
                        std::move(message)});
    }

  private:
    const Program &prog_;
    const Cfg &cfg_;
    std::vector<Diagnostic> &out_;
};

} // namespace

LintReport
lint(const Program &prog, const LintOptions &opts)
{
    LintReport report;
    const Cfg cfg = buildCfg(prog);
    Reporter rep(prog, cfg, report.diags);

    if (cfg.insns.empty())
        return report;

    // --- Structural (C) -------------------------------------------
    for (const BasicBlock &bb : cfg.blocks) {
        if (!bb.reachable && bb.count > 0) {
            rep.add("C001", "unreachable-code", Severity::Error,
                    bb.first,
                    std::to_string(bb.count) +
                        " instruction(s) unreachable from the "
                        "entry point");
        }
    }
    for (std::uint32_t i : cfg.fall_off_insns) {
        rep.add("C002", "fall-off-text-end", Severity::Error, i,
                "execution can run sequentially past the last "
                "text word into unmapped memory");
    }
    for (std::uint32_t i : cfg.bad_target_insns) {
        if (!cfg.blockOfInsn(i).reachable)
            continue;       // already covered by C001
        rep.add("C003", "branch-target-outside-text",
                Severity::Error, i,
                "control transfer targets an address outside "
                "the text segment");
    }

    // --- Queue protocol (Q) ---------------------------------------
    const QueueSummary qs = analyzeQueues(cfg, opts.queue_depth);
    for (const QueueMapping &m : qs.mappings) {
        if (!m.illegal)
            continue;
        const bool self = m.read_reg == m.write_reg;
        rep.add("Q003", "illegal-queue-pair", Severity::Error,
                m.insn,
                self ? "queue mapping links a register to itself "
                       "(every pop would consume the thread's own "
                       "push)"
                     : "queue mapping names r0, which cannot be "
                       "remapped");
    }
    {   // Q008: several distinct mappings for one register file.
        const QueueMapping *first_int = nullptr;
        const QueueMapping *first_fp = nullptr;
        for (const QueueMapping &m : qs.mappings) {
            if (m.illegal)
                continue;
            const QueueMapping *&first =
                m.file == RF::Int ? first_int : first_fp;
            if (!first) {
                first = &m;
            } else if (m.read_reg != first->read_reg ||
                       m.write_reg != first->write_reg) {
                rep.add("Q008", "inconsistent-queue-mapping",
                        Severity::Warning, m.insn,
                        "remaps the " +
                            std::string(m.file == RF::Int
                                            ? "integer"
                                            : "floating-point") +
                            " queue registers already mapped at " +
                            hexAddr(cfg.addrOf(first->insn)));
            }
        }
    }

    // The flow-dependent queue rules assume mappings live for the
    // whole run; a program that uses qdis re-architects the named
    // registers mid-flight, which the summary cannot track.
    const bool flow_rules = !qs.mappings.empty() && !qs.has_qdis;
    if (flow_rules) {
        auto firstTraffic = [&](bool pops) -> std::uint32_t {
            for (const BasicBlock &bb : cfg.blocks) {
                if (!bb.reachable)
                    continue;
                for (std::uint32_t i = bb.first;
                     i < bb.first + bb.count; ++i) {
                    const Insn &insn = cfg.insns[i];
                    if (pops) {
                        RegRef srcs[3];
                        const int n = insn.srcs(srcs);
                        for (int k = 0; k < n; ++k) {
                            if (qs.mapped_read.has(srcs[k]))
                                return i;
                        }
                    } else {
                        const RegRef dst = insn.dst();
                        if (dst.valid() &&
                            qs.mapped_write.has(dst))
                            return i;
                    }
                }
            }
            return 0;
        };

        if (qs.pops_exist && !qs.pushes_exist) {
            rep.add("Q002", "pop-never-fed", Severity::Error,
                    firstTraffic(true),
                    "thread pops from its queue port but no "
                    "thread ever pushes; the ring runs the same "
                    "code in every slot, so the read blocks "
                    "forever");
        }
        if (qs.pushes_exist && !qs.pops_exist) {
            rep.add("Q006", "push-never-popped", Severity::Warning,
                    firstTraffic(false),
                    "thread pushes to its queue port but nothing "
                    "ever pops; the link fills and later pushes "
                    "block");
        }
        // The balance rules presume a ring that is actually
        // exchanging; one-sided traffic is already fully described
        // by Q002/Q006 above.
        if (qs.pops_exist && qs.pushes_exist) {
            if (!qs.push_before_pop_possible) {
                rep.add("Q007", "pop-before-any-push",
                        Severity::Error, firstTraffic(true),
                        "every path pops before the first push; "
                        "all slots run this code, so every thread "
                        "blocks on an empty queue");
            }
            if (qs.negative_loop_insn != ~0u) {
                rep.add("Q001", "unbalanced-queue-loop",
                        Severity::Error, qs.negative_loop_insn,
                        "queue exchange loop pops more than it "
                        "pushes per iteration; the ring starves");
            }
            for (std::uint32_t i : qs.negative_halt_insns) {
                rep.add("Q001", "unbalanced-queue-loop",
                        Severity::Error, i,
                        "thread reaches halt having popped "
                        "strictly more values than it pushed on "
                        "every path");
            }
            if (qs.overflow_insn != ~0u) {
                rep.add("Q004", "queue-overflow", Severity::Error,
                        qs.overflow_insn,
                        "path pushes more than the queue depth "
                        "(" + std::to_string(opts.queue_depth) +
                            ") values before the first pop; "
                            "every slot blocks pushing "
                            "simultaneously");
            }
        }
        for (const ShadowedAccess &sa : qs.shadowed) {
            rep.add("Q005", "shadowed-queue-register",
                    Severity::Warning, sa.insn,
                    std::string(sa.is_read ? "read of "
                                           : "write to ") +
                        regName(sa.reg) +
                        (sa.is_read
                             ? ", which is mapped as a queue "
                               "write port (the architectural "
                               "register is shadowed)"
                             : ", which is mapped as a queue "
                               "read port (the architectural "
                               "register is shadowed)"));
        }
    }

    // --- Dataflow (D) ---------------------------------------------
    RegSet exclude = qs.mapped_read | qs.mapped_write;
    const InitDataflow df = runInitDataflow(cfg, exclude);
    for (const UninitRead &ur : df.maybe_uninit) {
        rep.add("D001", "maybe-uninit-read", Severity::Error,
                ur.insn,
                "read of " + regName(ur.reg) +
                    ", which is written on some paths to this "
                    "instruction but not all");
    }
    for (const BasicBlock &bb : cfg.blocks) {
        if (!bb.reachable)
            continue;
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            const RegRef dst = cfg.insns[i].dst();
            if (dst.file == RF::Int && dst.idx == 0 &&
                cfg.insns[i].op != Op::JAL) {
                rep.add("D002", "write-to-r0", Severity::Warning,
                        i,
                        "destination r0 is hardwired to zero; "
                        "the result is discarded");
            }
        }
    }

    // --- Cross-slot concurrency (Q009+, S001) ---------------------
    // Project the program per logical processor and compare the
    // slots' queue behavior around the ring. Each new rule defers
    // to the older single-slot rule that already explains the same
    // program (Q007/Q002/Q001), so one bug gets one diagnostic.
    if (opts.slots >= 1) {
        const auto fired = [&](const char *id) {
            for (const Diagnostic &d : report.diags) {
                if (std::strcmp(d.id, id) == 0)
                    return true;
            }
            return false;
        };

        const SlotAnalysis sa =
            analyzeSlots(cfg, qs, opts.slots);
        const ConcurrencyReport cr =
            analyzeConcurrency(prog, cfg, qs, sa);

        if (!fired("Q007") && !fired("Q002")) {
            for (const WaitCycle &wc : cr.wait_cycles) {
                rep.add("Q009", "queue-wait-cycle",
                        Severity::Error, wc.insn,
                        "wait-for cycle across all " +
                            std::to_string(opts.slots) +
                            " slots: every slot's first queue "
                            "action is a pop, so all links stay "
                            "empty and every slot blocks forever");
            }
        }
        // SPMD rings hit one source site for several links; report
        // each offending instruction once (the first link found).
        std::set<std::uint32_t> seen_site;
        if (!fired("Q002")) {
            for (const NeverFedLink &nf : cr.never_fed) {
                if (!seen_site.insert(nf.insn).second)
                    continue;
                rep.add("Q010", "queue-link-never-fed",
                        Severity::Error, nf.insn,
                        "slot " + std::to_string(nf.consumer) +
                            " pops the link out of slot " +
                            std::to_string(nf.producer) +
                            ", which never pushes; the pop "
                            "blocks forever");
            }
        }
        if (!fired("Q001")) {
            seen_site.clear();
            for (const RateMismatch &rm : cr.starved) {
                if (!seen_site.insert(rm.insn).second)
                    continue;
                rep.add("Q011", "queue-rate-starvation",
                        Severity::Error, rm.insn,
                        "slot " + std::to_string(rm.consumer) +
                            " pops " + std::to_string(rm.pops) +
                            " value(s) per loop iteration but "
                            "slot " + std::to_string(rm.producer) +
                            " pushes only " +
                            std::to_string(rm.pushes) +
                            "; the link starves and the consumer "
                            "blocks");
            }
            seen_site.clear();
            for (const RateMismatch &rm : cr.overrun) {
                if (!seen_site.insert(rm.insn).second)
                    continue;
                rep.add("Q012", "queue-rate-overrun",
                        Severity::Error, rm.insn,
                        "slot " + std::to_string(rm.producer) +
                            " pushes " + std::to_string(rm.pushes) +
                            " value(s) per loop iteration but "
                            "slot " + std::to_string(rm.consumer) +
                            " pops only " +
                            std::to_string(rm.pops) +
                            "; the link fills and the producer "
                            "blocks");
            }
        }
        for (const DeadSpin &ds : cr.dead_spins) {
            rep.add("S001", "spin-wait-never-satisfied",
                    Severity::Error, ds.insn,
                    "spin wait polls the word at " +
                        hexAddr(ds.addr) +
                        " but no reachable store in any slot can "
                        "write it, and the initial value keeps "
                        "the loop spinning");
        }
    }

    // --- Thread control (T) ---------------------------------------
    {
        const std::vector<std::uint32_t> forks = cfg.forkTargets();
        if (!forks.empty()) {
            const std::vector<bool> post_fork =
                cfg.reachableFrom(forks);
            for (std::uint32_t b = 0; b < cfg.blocks.size(); ++b) {
                if (!post_fork[b])
                    continue;
                const BasicBlock &bb = cfg.blocks[b];
                for (std::uint32_t i = bb.first;
                     i < bb.first + bb.count; ++i) {
                    const Op op = cfg.insns[i].op;
                    if (op == Op::SETRMODE) {
                        rep.add("T001", "setrmode-after-fork",
                                Severity::Warning, i,
                                "setrmode executes in every "
                                "forked slot but selects a "
                                "machine-global rotation mode");
                    } else if (op == Op::FASTFORK) {
                        rep.add("T002", "fork-after-fork",
                                Severity::Warning, i,
                                "fastfork is reachable from "
                                "forked code; sibling slots are "
                                "already active, so this fork "
                                "does nothing");
                    }
                }
            }
        }
    }

    std::sort(report.diags.begin(), report.diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.pc != b.pc)
                      return a.pc < b.pc;
                  return std::strcmp(a.id, b.id) < 0;
              });
    return report;
}

std::string
formatText(const LintReport &report,
           const std::string &source_name)
{
    std::ostringstream os;
    for (const Diagnostic &d : report.diags) {
        os << source_name;
        if (d.loc.valid())
            os << ":" << d.loc.line << ":" << d.loc.col;
        os << ": " << severityName(d.severity) << ": " << d.id
           << " " << d.name << ": " << d.message << " [pc "
           << hexAddr(d.pc) << "]\n";
    }
    return os.str();
}

Json
toJson(const LintReport &report)
{
    Json root = Json::object();
    Json arr = Json::array();
    for (const Diagnostic &d : report.diags) {
        Json j = Json::object();
        j.set("id", d.id);
        j.set("name", d.name);
        j.set("severity", severityName(d.severity));
        j.set("pc", static_cast<std::uint64_t>(d.pc));
        j.set("line", d.loc.line);
        j.set("col", d.loc.col);
        j.set("message", d.message);
        arr.push(std::move(j));
    }
    root.set("diagnostics", std::move(arr));
    root.set("errors", report.errorCount());
    root.set("warnings", report.warningCount());
    return root;
}

Json
toSarif(const LintReport &report, const std::string &source_name)
{
    const auto level = [](Severity s) {
        return s == Severity::Error ? "error" : "warning";
    };

    // One reportingDescriptor per distinct rule, in report order.
    Json rules = Json::array();
    std::vector<const char *> rule_ids;
    for (const Diagnostic &d : report.diags) {
        bool known = false;
        for (const char *id : rule_ids)
            known = known || std::strcmp(id, d.id) == 0;
        if (known)
            continue;
        rule_ids.push_back(d.id);
        Json rule = Json::object();
        rule.set("id", d.id);
        rule.set("name", d.name);
        Json cfg = Json::object();
        cfg.set("level", level(d.severity));
        rule.set("defaultConfiguration", std::move(cfg));
        rules.push(std::move(rule));
    }

    Json results = Json::array();
    for (const Diagnostic &d : report.diags) {
        Json region = Json::object();
        region.set("startLine",
                   d.loc.valid() ? d.loc.line : 1u);
        region.set("startColumn",
                   d.loc.valid() ? d.loc.col : 1u);
        Json artifact = Json::object();
        artifact.set("uri", source_name);
        Json phys = Json::object();
        phys.set("artifactLocation", std::move(artifact));
        phys.set("region", std::move(region));
        Json loc = Json::object();
        loc.set("physicalLocation", std::move(phys));
        Json locs = Json::array();
        locs.push(std::move(loc));

        Json msg = Json::object();
        msg.set("text", std::string(d.name) + ": " + d.message +
                            " [pc " + hexAddr(d.pc) + "]");

        Json result = Json::object();
        result.set("ruleId", d.id);
        result.set("level", level(d.severity));
        result.set("message", std::move(msg));
        result.set("locations", std::move(locs));
        results.push(std::move(result));
    }

    Json driver = Json::object();
    driver.set("name", "smtsim-lint");
    driver.set("rules", std::move(rules));
    Json tool = Json::object();
    tool.set("driver", std::move(driver));
    Json run = Json::object();
    run.set("tool", std::move(tool));
    run.set("results", std::move(results));
    Json runs = Json::array();
    runs.push(std::move(run));

    Json root = Json::object();
    root.set("$schema",
             "https://json.schemastore.org/sarif-2.1.0.json");
    root.set("version", "2.1.0");
    root.set("runs", std::move(runs));
    return root;
}

} // namespace smtsim::analysis
