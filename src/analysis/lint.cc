#include "analysis/lint.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/queue.hh"

namespace smtsim::analysis
{

namespace
{

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

std::string
regName(RegRef r)
{
    return (r.file == RF::Fp ? "f" : "r") + std::to_string(r.idx);
}

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

class Reporter
{
  public:
    Reporter(const Program &prog, const Cfg &cfg,
             std::vector<Diagnostic> &out)
        : prog_(prog), cfg_(cfg), out_(out)
    {}

    void
    add(const char *id, const char *name, Severity sev,
        std::uint32_t insn_idx, std::string message)
    {
        const Addr pc = cfg_.addrOf(insn_idx);
        out_.push_back({id, name, sev, pc, prog_.locAt(pc),
                        std::move(message)});
    }

  private:
    const Program &prog_;
    const Cfg &cfg_;
    std::vector<Diagnostic> &out_;
};

} // namespace

LintReport
lint(const Program &prog, const LintOptions &opts)
{
    LintReport report;
    const Cfg cfg = buildCfg(prog);
    Reporter rep(prog, cfg, report.diags);

    if (cfg.insns.empty())
        return report;

    // --- Structural (C) -------------------------------------------
    for (const BasicBlock &bb : cfg.blocks) {
        if (!bb.reachable && bb.count > 0) {
            rep.add("C001", "unreachable-code", Severity::Error,
                    bb.first,
                    std::to_string(bb.count) +
                        " instruction(s) unreachable from the "
                        "entry point");
        }
    }
    for (std::uint32_t i : cfg.fall_off_insns) {
        rep.add("C002", "fall-off-text-end", Severity::Error, i,
                "execution can run sequentially past the last "
                "text word into unmapped memory");
    }
    for (std::uint32_t i : cfg.bad_target_insns) {
        if (!cfg.blockOfInsn(i).reachable)
            continue;       // already covered by C001
        rep.add("C003", "branch-target-outside-text",
                Severity::Error, i,
                "control transfer targets an address outside "
                "the text segment");
    }

    // --- Queue protocol (Q) ---------------------------------------
    const QueueSummary qs = analyzeQueues(cfg, opts.queue_depth);
    for (const QueueMapping &m : qs.mappings) {
        if (!m.illegal)
            continue;
        const bool self = m.read_reg == m.write_reg;
        rep.add("Q003", "illegal-queue-pair", Severity::Error,
                m.insn,
                self ? "queue mapping links a register to itself "
                       "(every pop would consume the thread's own "
                       "push)"
                     : "queue mapping names r0, which cannot be "
                       "remapped");
    }
    {   // Q008: several distinct mappings for one register file.
        const QueueMapping *first_int = nullptr;
        const QueueMapping *first_fp = nullptr;
        for (const QueueMapping &m : qs.mappings) {
            if (m.illegal)
                continue;
            const QueueMapping *&first =
                m.file == RF::Int ? first_int : first_fp;
            if (!first) {
                first = &m;
            } else if (m.read_reg != first->read_reg ||
                       m.write_reg != first->write_reg) {
                rep.add("Q008", "inconsistent-queue-mapping",
                        Severity::Warning, m.insn,
                        "remaps the " +
                            std::string(m.file == RF::Int
                                            ? "integer"
                                            : "floating-point") +
                            " queue registers already mapped at " +
                            hexAddr(cfg.addrOf(first->insn)));
            }
        }
    }

    // The flow-dependent queue rules assume mappings live for the
    // whole run; a program that uses qdis re-architects the named
    // registers mid-flight, which the summary cannot track.
    const bool flow_rules = !qs.mappings.empty() && !qs.has_qdis;
    if (flow_rules) {
        auto firstTraffic = [&](bool pops) -> std::uint32_t {
            for (const BasicBlock &bb : cfg.blocks) {
                if (!bb.reachable)
                    continue;
                for (std::uint32_t i = bb.first;
                     i < bb.first + bb.count; ++i) {
                    const Insn &insn = cfg.insns[i];
                    if (pops) {
                        RegRef srcs[3];
                        const int n = insn.srcs(srcs);
                        for (int k = 0; k < n; ++k) {
                            if (qs.mapped_read.has(srcs[k]))
                                return i;
                        }
                    } else {
                        const RegRef dst = insn.dst();
                        if (dst.valid() &&
                            qs.mapped_write.has(dst))
                            return i;
                    }
                }
            }
            return 0;
        };

        if (qs.pops_exist && !qs.pushes_exist) {
            rep.add("Q002", "pop-never-fed", Severity::Error,
                    firstTraffic(true),
                    "thread pops from its queue port but no "
                    "thread ever pushes; the ring runs the same "
                    "code in every slot, so the read blocks "
                    "forever");
        }
        if (qs.pushes_exist && !qs.pops_exist) {
            rep.add("Q006", "push-never-popped", Severity::Warning,
                    firstTraffic(false),
                    "thread pushes to its queue port but nothing "
                    "ever pops; the link fills and later pushes "
                    "block");
        }
        // The balance rules presume a ring that is actually
        // exchanging; one-sided traffic is already fully described
        // by Q002/Q006 above.
        if (qs.pops_exist && qs.pushes_exist) {
            if (!qs.push_before_pop_possible) {
                rep.add("Q007", "pop-before-any-push",
                        Severity::Error, firstTraffic(true),
                        "every path pops before the first push; "
                        "all slots run this code, so every thread "
                        "blocks on an empty queue");
            }
            if (qs.negative_loop_insn != ~0u) {
                rep.add("Q001", "unbalanced-queue-loop",
                        Severity::Error, qs.negative_loop_insn,
                        "queue exchange loop pops more than it "
                        "pushes per iteration; the ring starves");
            }
            for (std::uint32_t i : qs.negative_halt_insns) {
                rep.add("Q001", "unbalanced-queue-loop",
                        Severity::Error, i,
                        "thread reaches halt having popped "
                        "strictly more values than it pushed on "
                        "every path");
            }
            if (qs.overflow_insn != ~0u) {
                rep.add("Q004", "queue-overflow", Severity::Error,
                        qs.overflow_insn,
                        "path pushes more than the queue depth "
                        "(" + std::to_string(opts.queue_depth) +
                            ") values before the first pop; "
                            "every slot blocks pushing "
                            "simultaneously");
            }
        }
        for (const ShadowedAccess &sa : qs.shadowed) {
            rep.add("Q005", "shadowed-queue-register",
                    Severity::Warning, sa.insn,
                    std::string(sa.is_read ? "read of "
                                           : "write to ") +
                        regName(sa.reg) +
                        (sa.is_read
                             ? ", which is mapped as a queue "
                               "write port (the architectural "
                               "register is shadowed)"
                             : ", which is mapped as a queue "
                               "read port (the architectural "
                               "register is shadowed)"));
        }
    }

    // --- Dataflow (D) ---------------------------------------------
    RegSet exclude = qs.mapped_read | qs.mapped_write;
    const InitDataflow df = runInitDataflow(cfg, exclude);
    for (const UninitRead &ur : df.maybe_uninit) {
        rep.add("D001", "maybe-uninit-read", Severity::Error,
                ur.insn,
                "read of " + regName(ur.reg) +
                    ", which is written on some paths to this "
                    "instruction but not all");
    }
    for (const BasicBlock &bb : cfg.blocks) {
        if (!bb.reachable)
            continue;
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            const RegRef dst = cfg.insns[i].dst();
            if (dst.file == RF::Int && dst.idx == 0 &&
                cfg.insns[i].op != Op::JAL) {
                rep.add("D002", "write-to-r0", Severity::Warning,
                        i,
                        "destination r0 is hardwired to zero; "
                        "the result is discarded");
            }
        }
    }

    // --- Thread control (T) ---------------------------------------
    {
        const std::vector<std::uint32_t> forks = cfg.forkTargets();
        if (!forks.empty()) {
            const std::vector<bool> post_fork =
                cfg.reachableFrom(forks);
            for (std::uint32_t b = 0; b < cfg.blocks.size(); ++b) {
                if (!post_fork[b])
                    continue;
                const BasicBlock &bb = cfg.blocks[b];
                for (std::uint32_t i = bb.first;
                     i < bb.first + bb.count; ++i) {
                    const Op op = cfg.insns[i].op;
                    if (op == Op::SETRMODE) {
                        rep.add("T001", "setrmode-after-fork",
                                Severity::Warning, i,
                                "setrmode executes in every "
                                "forked slot but selects a "
                                "machine-global rotation mode");
                    } else if (op == Op::FASTFORK) {
                        rep.add("T002", "fork-after-fork",
                                Severity::Warning, i,
                                "fastfork is reachable from "
                                "forked code; sibling slots are "
                                "already active, so this fork "
                                "does nothing");
                    }
                }
            }
        }
    }

    std::sort(report.diags.begin(), report.diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.pc != b.pc)
                      return a.pc < b.pc;
                  return std::strcmp(a.id, b.id) < 0;
              });
    return report;
}

std::string
formatText(const LintReport &report,
           const std::string &source_name)
{
    std::ostringstream os;
    for (const Diagnostic &d : report.diags) {
        os << source_name;
        if (d.loc.valid())
            os << ":" << d.loc.line << ":" << d.loc.col;
        os << ": " << severityName(d.severity) << ": " << d.id
           << " " << d.name << ": " << d.message << " [pc "
           << hexAddr(d.pc) << "]\n";
    }
    return os.str();
}

Json
toJson(const LintReport &report)
{
    Json root = Json::object();
    Json arr = Json::array();
    for (const Diagnostic &d : report.diags) {
        Json j = Json::object();
        j.set("id", d.id);
        j.set("name", d.name);
        j.set("severity", severityName(d.severity));
        j.set("pc", static_cast<std::uint64_t>(d.pc));
        j.set("line", d.loc.line);
        j.set("col", d.loc.col);
        j.set("message", d.message);
        arr.push(std::move(j));
    }
    root.set("diagnostics", std::move(arr));
    root.set("errors", report.errorCount());
    root.set("warnings", report.warningCount());
    return root;
}

} // namespace smtsim::analysis
