#include "analysis/cfg.hh"

#include <algorithm>
#include <deque>

namespace smtsim::analysis
{

namespace
{

/** Branch target (BR1/BR2): pc-relative, word-scaled. */
Addr
branchTarget(Addr pc, const Insn &insn)
{
    return static_cast<Addr>(static_cast<std::int64_t>(pc) +
                             kInsnBytes +
                             static_cast<std::int64_t>(insn.imm) *
                                 kInsnBytes);
}

/** Jump target (JF): absolute word index. */
Addr
jumpTarget(const Insn &insn)
{
    return static_cast<Addr>(
               static_cast<std::uint32_t>(insn.imm))
           << 2;
}

/** Ends a basic block (the next insn, if any, is a leader). */
bool
endsBlock(const Insn &insn)
{
    const OpEffects &fx = opEffects(insn.op);
    return fx.control || fx.terminates || fx.forks;
}

/** Can execution continue sequentially past this instruction? */
bool
fallsThrough(const Insn &insn)
{
    switch (insn.op) {
      case Op::J:
      case Op::JR:
      case Op::JALR:    // transfers to the register target
      case Op::HALT:
        return false;
      default:
        return true;
    }
}

} // namespace

Cfg
buildCfg(const Program &prog)
{
    Cfg cfg;
    cfg.text_base = prog.text_base;
    cfg.insns.reserve(prog.text.size());
    for (std::uint32_t word : prog.text)
        cfg.insns.push_back(decode(word));

    const std::uint32_t n =
        static_cast<std::uint32_t>(cfg.insns.size());
    if (n == 0) {
        cfg.blocks.push_back({});
        return cfg;
    }

    auto insnIndexOf = [&](Addr target) -> std::int64_t {
        if (!prog.holdsInsn(target))
            return -1;
        return static_cast<std::int64_t>(
            (target - prog.text_base) / kInsnBytes);
    };

    // --- Leaders --------------------------------------------------
    std::vector<bool> leader(n, false);
    leader[0] = true;
    if (const std::int64_t e = insnIndexOf(prog.entry); e >= 0)
        leader[static_cast<std::size_t>(e)] = true;

    for (std::uint32_t i = 0; i < n; ++i) {
        const Insn &insn = cfg.insns[i];
        if (endsBlock(insn) && i + 1 < n)
            leader[i + 1] = true;
        const Format f = opMeta(insn.op).format;
        Addr target = 0;
        if (f == Format::BR1 || f == Format::BR2)
            target = branchTarget(cfg.addrOf(i), insn);
        else if (f == Format::JF)
            target = jumpTarget(insn);
        else
            continue;
        if (const std::int64_t t = insnIndexOf(target); t >= 0)
            leader[static_cast<std::size_t>(t)] = true;
        else
            cfg.bad_target_insns.push_back(i);
    }

    // --- Blocks ---------------------------------------------------
    cfg.block_of.assign(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (leader[i]) {
            BasicBlock bb;
            bb.first = i;
            cfg.blocks.push_back(bb);
        }
        cfg.block_of[i] =
            static_cast<std::uint32_t>(cfg.blocks.size() - 1);
        ++cfg.blocks.back().count;
    }

    // --- Edges ----------------------------------------------------
    auto addEdge = [&](std::uint32_t from, std::uint32_t to_insn,
                       EdgeKind kind) {
        const std::uint32_t to = cfg.block_of[to_insn];
        cfg.blocks[from].succs.push_back({to, kind});
        cfg.blocks[to].preds.push_back(from);
    };

    for (std::uint32_t b = 0; b < cfg.blocks.size(); ++b) {
        BasicBlock &bb = cfg.blocks[b];
        const std::uint32_t last = bb.first + bb.count - 1;
        const Insn &insn = cfg.insns[last];
        const Format f = opMeta(insn.op).format;
        const OpEffects &fx = opEffects(insn.op);

        // Direct targets.
        if (f == Format::BR1 || f == Format::BR2 ||
            f == Format::JF) {
            const Addr target = f == Format::JF
                                    ? jumpTarget(insn)
                                    : branchTarget(cfg.addrOf(last),
                                                   insn);
            if (const std::int64_t t = insnIndexOf(target); t >= 0) {
                const auto ti = static_cast<std::uint32_t>(t);
                if (insn.op == Op::J)
                    addEdge(b, ti, EdgeKind::Jump);
                else if (insn.op == Op::JAL)
                    addEdge(b, ti, EdgeKind::Call);
                else
                    addEdge(b, ti, EdgeKind::Taken);
            }
        }
        if (insn.op == Op::JR || insn.op == Op::JALR)
            cfg.indirect_insns.push_back(last);

        if (fx.forks && last + 1 < n)
            addEdge(b, last + 1, EdgeKind::Fork);

        // Sequential successor: jal continues after return; jalr is
        // modeled the same way (call-return assumption).
        const bool sequential =
            fallsThrough(insn) || insn.op == Op::JALR;
        if (sequential) {
            if (last + 1 < n)
                addEdge(b, last + 1, EdgeKind::Fall);
            else
                cfg.fall_off_insns.push_back(last);
        }
    }

    // --- Reachability from the entry ------------------------------
    {
        const std::int64_t e = insnIndexOf(prog.entry);
        cfg.entry_block =
            e >= 0 ? cfg.block_of[static_cast<std::size_t>(e)] : 0;
        std::deque<std::uint32_t> work{cfg.entry_block};
        cfg.blocks[cfg.entry_block].reachable = true;
        while (!work.empty()) {
            const std::uint32_t b = work.front();
            work.pop_front();
            for (const Edge &edge : cfg.blocks[b].succs) {
                if (!cfg.blocks[edge.block].reachable) {
                    cfg.blocks[edge.block].reachable = true;
                    work.push_back(edge.block);
                }
            }
        }
    }

    // Only reachable blocks can actually run off the end.
    std::erase_if(cfg.fall_off_insns, [&](std::uint32_t i) {
        return !cfg.blockOfInsn(i).reachable;
    });

    return cfg;
}

std::vector<bool>
Cfg::reachableFrom(const std::vector<std::uint32_t> &seeds) const
{
    std::vector<bool> seen(blocks.size(), false);
    std::deque<std::uint32_t> work;
    for (std::uint32_t b : seeds) {
        if (!seen[b]) {
            seen[b] = true;
            work.push_back(b);
        }
    }
    while (!work.empty()) {
        const std::uint32_t b = work.front();
        work.pop_front();
        for (const Edge &edge : blocks[b].succs) {
            if (!seen[edge.block]) {
                seen[edge.block] = true;
                work.push_back(edge.block);
            }
        }
    }
    return seen;
}

std::vector<std::uint32_t>
Cfg::forkTargets() const
{
    std::vector<std::uint32_t> targets;
    for (const BasicBlock &bb : blocks) {
        if (!bb.reachable)
            continue;
        for (const Edge &edge : bb.succs) {
            if (edge.kind == EdgeKind::Fork)
                targets.push_back(edge.block);
        }
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    return targets;
}

} // namespace smtsim::analysis
