#include "analysis/slots.hh"

#include <algorithm>
#include <deque>

#include "isa/semantics.hh"

namespace smtsim::analysis
{

namespace
{

/** Lattice join of two values that both flowed along real paths. */
SlotValue
join(const SlotValue &a, const SlotValue &b)
{
    if (a.kind == SlotValue::Kind::Top)
        return b;
    if (b.kind == SlotValue::Kind::Top)
        return a;
    if (a == b)
        return a;
    return SlotValue::bottom();
}

SlotValue
readRegImpl(const SlotState &st, RegIndex idx,
            const QueueSummary &qs)
{
    if (idx == 0)
        return SlotValue::constant(0);
    const RegRef r{RF::Int, idx};
    // A queue-mapped read pops a run-time value; reading the
    // shadowed write-port name is architecturally unspecified.
    if (qs.mapped_read.has(r) || qs.mapped_write.has(r))
        return SlotValue::bottom();
    return st.regs[idx];
}

/** Apply one instruction to @p st. */
void
transferImpl(const Insn &insn, SlotState &st,
             const QueueSummary &qs, int slot, int slots)
{
    const RegRef dst = insn.dst();
    if (!dst.valid())
        return;

    SlotValue out = SlotValue::bottom();
    switch (opMeta(insn.op).format) {
      case Format::R3:
      case Format::I:
      case Format::LUIF:
      case Format::SHI: {
        const SlotValue a = readRegImpl(st, insn.rs, qs);
        const SlotValue b = readRegImpl(st, insn.rt, qs);
        const bool needs_rt = opMeta(insn.op).format == Format::R3;
        if (a.isConst() && (!needs_rt || b.isConst()))
            out = SlotValue::constant(execIntOp(insn, a.val, b.val));
        break;
      }
      case Format::THR1D:
        if (insn.op == Op::TID)
            out = SlotValue::constant(
                static_cast<std::uint32_t>(slot));
        else if (insn.op == Op::NSLOT)
            out = SlotValue::constant(
                static_cast<std::uint32_t>(slots));
        break;
      default:
        break;    // loads, FP->int, links: Bottom
    }

    if (dst.file != RF::Int || dst.idx == 0)
        return;
    // Writing a queue-mapped name pushes instead of updating the
    // architectural register.
    if (qs.mapped_write.has(dst) || qs.mapped_read.has(dst))
        return;
    st.regs[dst.idx] = out;
}

struct Projector
{
    const Cfg &cfg;
    const QueueSummary &qs;
    const int slot;
    const int slots;
    SlotProjection &proj;

    SlotValue
    readReg(const SlotState &st, RegIndex idx) const
    {
        return readRegImpl(st, idx, qs);
    }

    void
    transfer(const Insn &insn, SlotState &st) const
    {
        transferImpl(insn, st, qs, slot, slots);
    }

    /** Three-valued branch outcome over the block's exit state. */
    void
    branchFeasibility(const Insn &insn, const SlotState &st,
                      bool &may_taken, bool &may_fall) const
    {
        may_taken = may_fall = true;
        if (!isCondBranchOp(insn.op))
            return;
        const SlotValue a = readReg(st, insn.rs);
        const Format f = opMeta(insn.op).format;
        if (f == Format::BR2) {
            const SlotValue b = readReg(st, insn.rt);
            if (a.isConst() && b.isConst()) {
                const bool t = evalBranch(insn.op, a.val, b.val);
                may_taken = t;
                may_fall = !t;
            }
        } else if (a.isConst()) {
            const bool t = evalBranch(insn.op, a.val, 0);
            may_taken = t;
            may_fall = !t;
        }
    }

    /**
     * Run to fixpoint from @p seeds (block, entry state). Values
     * only descend and feasibility only grows, so this terminates.
     */
    void
    run(const std::vector<std::pair<std::uint32_t, SlotState>>
            &seeds)
    {
        const std::size_t nb = cfg.blocks.size();
        proj.feasible.assign(nb, false);
        proj.in.assign(nb, SlotState{});
        proj.edge_feasible.assign(nb, 0);
        proj.active = !seeds.empty();

        std::deque<std::uint32_t> work;
        std::vector<bool> queued(nb, false);
        auto inject = [&](std::uint32_t b, const SlotState &st) {
            bool changed = !proj.feasible[b];
            if (changed) {
                proj.in[b] = st;
                proj.feasible[b] = true;
            } else {
                for (int r = 1; r < kNumRegs; ++r) {
                    const SlotValue v =
                        join(proj.in[b].regs[r], st.regs[r]);
                    if (!(v == proj.in[b].regs[r])) {
                        proj.in[b].regs[r] = v;
                        changed = true;
                    }
                }
            }
            if (changed && !queued[b]) {
                queued[b] = true;
                work.push_back(b);
            }
        };
        for (const auto &[b, st] : seeds)
            inject(b, st);

        while (!work.empty()) {
            const std::uint32_t b = work.front();
            work.pop_front();
            queued[b] = false;

            SlotState st = proj.in[b];
            const BasicBlock &bb = cfg.blocks[b];
            for (std::uint32_t i = bb.first;
                 i < bb.first + bb.count; ++i)
                transfer(cfg.insns[i], st);

            const Insn &last = cfg.insns[bb.first + bb.count - 1];
            bool may_taken, may_fall;
            branchFeasibility(last, st, may_taken, may_fall);

            std::uint32_t bits = 0;
            for (std::size_t k = 0; k < bb.succs.size(); ++k) {
                const Edge &e = bb.succs[k];
                // Fork edges model sibling starts, not this slot's
                // control flow (siblings are seeded separately; a
                // nested fork is a no-op, see T002).
                if (e.kind == EdgeKind::Fork)
                    continue;
                if (e.kind == EdgeKind::Taken && !may_taken)
                    continue;
                if (e.kind == EdgeKind::Fall &&
                    isCondBranchOp(last.op) && !may_fall)
                    continue;
                bits |= 1u << k;
                inject(e.block, st);
            }
            proj.edge_feasible[b] = bits;
        }
    }
};

/** Pop/push counts of one insn under the mapping (same rules as
 *  queue.cc's trafficOf; duplicated to keep that one file-local). */
void
insnTraffic(const Insn &insn, const QueueSummary &qs, int &pops,
            int &pushes)
{
    pops = pushes = 0;
    RegRef srcs[3];
    const int n = insn.srcs(srcs);
    for (int k = 0; k < n; ++k) {
        if (qs.mapped_read.has(srcs[k]))
            ++pops;
    }
    const RegRef dst = insn.dst();
    if (dst.valid() && qs.mapped_write.has(dst))
        ++pushes;
}

/** Fill the projection's derived queue facts. */
void
summarizeTraffic(const Cfg &cfg, const QueueSummary &qs,
                 SlotProjection &proj,
                 const std::vector<std::uint32_t> &starts)
{
    for (std::uint32_t b = 0;
         b < static_cast<std::uint32_t>(cfg.blocks.size()); ++b) {
        if (!proj.feasible[b])
            continue;
        const BasicBlock &bb = cfg.blocks[b];
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            int pops, pushes;
            insnTraffic(cfg.insns[i], qs, pops, pushes);
            if (pops > 0 && proj.first_pop_insn == ~0u)
                proj.first_pop_insn = i;
            if (pushes > 0 && proj.first_push_insn == ~0u)
                proj.first_push_insn = i;
        }
    }

    // Pop-free escape: can the slot push, halt, or run out of code
    // before its first pop? Block-granular BFS; a block is handled
    // identically on every path, so a visited set is enough.
    proj.pop_free_escape = false;
    std::vector<bool> seen(cfg.blocks.size(), false);
    std::deque<std::uint32_t> work;
    for (std::uint32_t b : starts) {
        if (!seen[b]) {
            seen[b] = true;
            work.push_back(b);
        }
    }
    while (!work.empty() && !proj.pop_free_escape) {
        const std::uint32_t b = work.front();
        work.pop_front();
        const BasicBlock &bb = cfg.blocks[b];
        bool blocked = false;
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            const Insn &insn = cfg.insns[i];
            int pops, pushes;
            insnTraffic(insn, qs, pops, pushes);
            if (pops > 0) {     // reads pop before the write pushes
                blocked = true;
                break;
            }
            if (pushes > 0 || insn.op == Op::HALT) {
                proj.pop_free_escape = true;
                break;
            }
        }
        if (blocked || proj.pop_free_escape)
            continue;
        bool any_succ = false;
        const std::uint32_t bits = proj.edge_feasible[b];
        for (std::size_t k = 0; k < bb.succs.size(); ++k) {
            if (!(bits & (1u << k)))
                continue;
            any_succ = true;
            const std::uint32_t s = bb.succs[k].block;
            if (!seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
        if (!any_succ)
            proj.pop_free_escape = true;    // code simply ends
    }
}

} // namespace

bool
SlotState::operator==(const SlotState &o) const
{
    return std::equal(std::begin(regs), std::end(regs),
                      std::begin(o.regs));
}

SlotValue
readRegValue(const SlotState &st, RegIndex idx,
             const QueueSummary &qs)
{
    return readRegImpl(st, idx, qs);
}

void
transferInsn(const Insn &insn, SlotState &st,
             const QueueSummary &qs, int slot, int slots)
{
    transferImpl(insn, st, qs, slot, slots);
}

SlotAnalysis
analyzeSlots(const Cfg &cfg, const QueueSummary &qs, int slots)
{
    SlotAnalysis sa;
    sa.slots = slots;
    if (cfg.insns.empty() || slots < 1)
        return sa;

    // Refuse programs the projection cannot follow faithfully.
    if (!cfg.fall_off_insns.empty())
        return sa;
    for (std::uint32_t i : cfg.indirect_insns) {
        if (cfg.blockOfInsn(i).reachable)
            return sa;
    }
    for (std::uint32_t i : cfg.bad_target_insns) {
        if (cfg.blockOfInsn(i).reachable)
            return sa;
    }
    for (const BasicBlock &bb : cfg.blocks) {
        if (!bb.reachable)
            continue;
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i) {
            // A reachable kill can rescue statically-blocked peers,
            // so no deadlock verdict over this program is sound.
            if (cfg.insns[i].op == Op::KILLT)
                return sa;
        }
    }
    sa.analyzable = true;

    sa.per_slot.resize(static_cast<std::size_t>(slots));

    // Slot 0 runs from the entry with the architecturally
    // zero-initialized register file.
    SlotProjection &p0 = sa.per_slot[0];
    p0.slot = 0;
    {
        SlotState entry;
        for (int r = 0; r < kNumRegs; ++r)
            entry.regs[r] = SlotValue::constant(0);
        Projector pr{cfg, qs, 0, slots, p0};
        pr.run({{cfg.entry_block, entry}});
        p0.start_blocks = {cfg.entry_block};
        summarizeTraffic(cfg, qs, p0, p0.start_blocks);
    }

    // Sibling slots start at every feasible fastfork site with a
    // copy of slot 0's state after the fork instruction.
    std::vector<std::pair<std::uint32_t, SlotState>> fork_seeds;
    std::vector<std::uint32_t> fork_starts;
    for (std::uint32_t b = 0;
         b < static_cast<std::uint32_t>(cfg.blocks.size()); ++b) {
        if (!p0.feasible[b])
            continue;
        const BasicBlock &bb = cfg.blocks[b];
        if (cfg.insns[bb.first + bb.count - 1].op != Op::FASTFORK)
            continue;
        SlotState st = p0.in[b];
        Projector pr{cfg, qs, 0, slots, p0};
        for (std::uint32_t i = bb.first; i < bb.first + bb.count;
             ++i)
            pr.transfer(cfg.insns[i], st);
        for (const Edge &e : bb.succs) {
            if (e.kind == EdgeKind::Fork) {
                fork_seeds.push_back({e.block, st});
                fork_starts.push_back(e.block);
            }
        }
    }

    for (int s = 1; s < slots; ++s) {
        SlotProjection &p = sa.per_slot[static_cast<std::size_t>(s)];
        p.slot = s;
        Projector pr{cfg, qs, s, slots, p};
        pr.run(fork_seeds);
        p.start_blocks = fork_starts;
        summarizeTraffic(cfg, qs, p, fork_starts);
    }

    return sa;
}

} // namespace smtsim::analysis
