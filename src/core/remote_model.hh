/**
 * @file
 * The core's window onto an external inter-core memory model.
 *
 * A lone MultithreadedProcessor charges its RemoteRegion's fixed
 * latency for every remote access (the paper's stub). Inside a
 * many-core machine the same accesses instead traverse a shared
 * banked L2 over an interconnect (src/interconnect/), whose
 * contention the core cannot compute locally — the machine owns
 * that state. This interface splits the two timing questions a
 * core ever asks:
 *
 *  - uncontendedLatency(): the latency an *inline* remote wait
 *    (explicit-rotation mode, which suppresses data-absence
 *    context switches) charges at grant time. Modeling decision:
 *    inline waits pay the topology latency but do not contend for
 *    bank MSHRs — their completion must be known at grant time,
 *    before the machine's barrier folds the cycle-ordered request
 *    sequence (docs/MANYCORE.md).
 *
 *  - request(): a data-absence trap's access, resolved later. The
 *    core parks the context with ready_at = kNeverCycle; the
 *    machine answers at its next quantum barrier via
 *    MultithreadedProcessor::completeRemote().
 */

#ifndef SMTSIM_CORE_REMOTE_MODEL_HH
#define SMTSIM_CORE_REMOTE_MODEL_HH

#include "base/types.hh"

namespace smtsim
{

/** Implemented by the many-core machine; not owned by the core. */
class RemoteTimingModel
{
  public:
    virtual ~RemoteTimingModel() = default;

    /** Latency of an inline (non-trapping) remote access. */
    virtual Cycle uncontendedLatency(Addr addr) const = 0;

    /**
     * Record a trapped remote access issued at @p issued for
     * context frame @p frame. The owner later resolves it with
     * completeRemote(frame, completion); completion must land
     * strictly after the quantum that issued it.
     */
    virtual void request(int frame, Addr addr, Cycle issued) = 0;
};

} // namespace smtsim

#endif // SMTSIM_CORE_REMOTE_MODEL_HH
