#include "schedule.hh"

#include <algorithm>

#include "base/logging.hh"

namespace smtsim
{

ScheduleUnit::ScheduleUnit(FuClass cls, int num_units, int num_slots)
    : cls_(cls), units_(static_cast<size_t>(num_units), 0),
      standby_(static_cast<size_t>(num_slots))
{
}

bool
ScheduleUnit::slotBusy(int slot) const
{
    if (standby_[slot].has_value())
        return true;
    for (const IssuedOp &op : incoming_) {
        if (op.slot == slot)
            return true;
    }
    return false;
}

void
ScheduleUnit::submit(IssuedOp op)
{
    SMTSIM_ASSERT(!slotBusy(op.slot),
                  "double submit to one standby station");
    incoming_.push_back(std::move(op));
}

std::vector<Grant>
ScheduleUnit::select(Cycle c, const std::vector<int> &priority_order)
{
    std::vector<Grant> grants;
    select(c, priority_order, grants);
    return grants;
}

void
ScheduleUnit::select(Cycle c, const std::vector<int> &priority_order,
                     std::vector<Grant> &grants)
{
    grants.clear();

    // Latch newly arriving instructions into their standby stations.
    for (auto it = incoming_.begin(); it != incoming_.end();) {
        if (it->arrive <= c) {
            SMTSIM_ASSERT(!standby_[it->slot].has_value(),
                          "standby station collision");
            standby_[it->slot] = std::move(*it);
            ++standby_occupied_;
            it = incoming_.erase(it);
        } else {
            ++it;
        }
    }

    // Grant in priority order while units can accept.
    for (int slot : priority_order) {
        if (!standby_[slot].has_value())
            continue;
        int unit = -1;
        for (size_t u = 0; u < units_.size(); ++u) {
            if (units_[u] <= c) {
                unit = static_cast<int>(u);
                break;
            }
        }
        if (unit < 0)
            break;      // every unit busy: lower priorities wait too
        IssuedOp op = std::move(*standby_[slot]);
        standby_[slot].reset();
        --standby_occupied_;
        units_[unit] =
            c + static_cast<Cycle>(opMeta(op.insn.op).issue_latency);
        grants.push_back(Grant{std::move(op), unit});
    }
}

Cycle
ScheduleUnit::nextEventCycle() const
{
    Cycle ev = kNeverCycle;
    if (standby_occupied_ > 0) {
        // A waiting instruction is granted as soon as any unit
        // frees up (select() never leaves a unit idle while a
        // standby station is occupied, so the free times here are
        // all in the future).
        for (Cycle u : units_)
            ev = std::min(ev, u);
    }
    // Arrival latches an instruction into its standby station.
    for (const IssuedOp &op : incoming_)
        ev = std::min(ev, op.arrive);
    return ev;
}

void
ScheduleUnit::flushSlot(int slot)
{
    if (standby_[slot].has_value())
        --standby_occupied_;
    standby_[slot].reset();
    for (auto it = incoming_.begin(); it != incoming_.end();) {
        if (it->slot == slot)
            it = incoming_.erase(it);
        else
            ++it;
    }
}

} // namespace smtsim
