#include "schedule.hh"

#include <algorithm>

#include "base/logging.hh"

namespace smtsim
{

ScheduleUnit::ScheduleUnit(FuClass cls, int num_units, int num_slots)
    : cls_(cls), units_(static_cast<size_t>(num_units), 0),
      standby_(static_cast<size_t>(num_slots))
{
}

bool
ScheduleUnit::slotBusy(int slot) const
{
    if (standby_[slot].has_value())
        return true;
    for (const IssuedOp &op : incoming_) {
        if (op.slot == slot)
            return true;
    }
    return false;
}

void
ScheduleUnit::submit(IssuedOp op)
{
    SMTSIM_ASSERT(!slotBusy(op.slot),
                  "double submit to one standby station");
    incoming_.push_back(std::move(op));
}

std::vector<Grant>
ScheduleUnit::select(Cycle c, const std::vector<int> &priority_order)
{
    std::vector<Grant> grants;
    select(c, priority_order, grants);
    return grants;
}

void
ScheduleUnit::select(Cycle c, const std::vector<int> &priority_order,
                     std::vector<Grant> &grants)
{
    grants.clear();

    // Latch newly arriving instructions into their standby stations.
    for (auto it = incoming_.begin(); it != incoming_.end();) {
        if (it->arrive <= c) {
            SMTSIM_ASSERT(!standby_[it->slot].has_value(),
                          "standby station collision");
            if (sink_) {
                obs::Event ev;
                ev.cycle = c;
                ev.kind = obs::EventKind::Park;
                ev.slot = static_cast<std::int8_t>(it->slot);
                ev.fu = static_cast<std::int8_t>(cls_);
                ev.pc = it->pc;
                ev.insn = encode(it->insn);
                sink_->event(ev);
            }
            standby_[it->slot] = std::move(*it);
            ++standby_occupied_;
            it = incoming_.erase(it);
        } else {
            ++it;
        }
    }

    // Grant in priority order while units can accept.
    for (int slot : priority_order) {
        if (!standby_[slot].has_value())
            continue;
        int unit = -1;
        for (size_t u = 0; u < units_.size(); ++u) {
            if (units_[u] <= c) {
                unit = static_cast<int>(u);
                break;
            }
        }
        if (unit < 0)
            break;      // every unit busy: lower priorities wait too
        IssuedOp op = std::move(*standby_[slot]);
        standby_[slot].reset();
        --standby_occupied_;
        units_[unit] =
            c + static_cast<Cycle>(opMeta(op.insn.op).issue_latency);
        grants.push_back(Grant{std::move(op), unit});
    }
}

Cycle
ScheduleUnit::nextEventCycle() const
{
    Cycle ev = kNeverCycle;
    if (standby_occupied_ > 0) {
        // A waiting instruction is granted as soon as any unit
        // frees up (select() never leaves a unit idle while a
        // standby station is occupied, so the free times here are
        // all in the future).
        for (Cycle u : units_)
            ev = std::min(ev, u);
    }
    // Arrival latches an instruction into its standby station.
    for (const IssuedOp &op : incoming_)
        ev = std::min(ev, op.arrive);
    return ev;
}

void
ScheduleUnit::snapshotTo(obs::EventSink &sink, Cycle c) const
{
    for (std::size_t s = 0; s < standby_.size(); ++s) {
        if (!standby_[s].has_value())
            continue;
        obs::Event ev;
        ev.cycle = c;
        ev.kind = obs::EventKind::Park;
        ev.slot = static_cast<std::int8_t>(s);
        ev.fu = static_cast<std::int8_t>(cls_);
        ev.pc = standby_[s]->pc;
        ev.insn = encode(standby_[s]->insn);
        sink.event(ev);
    }
}

namespace
{

void
writeIssuedOp(obs::ByteWriter &w, const IssuedOp &op)
{
    // Insn fields are written directly (not via encode()) so the
    // checkpoint never depends on an encode/decode round trip.
    w.u16(static_cast<std::uint16_t>(op.insn.op));
    w.u8(op.insn.rd);
    w.u8(op.insn.rs);
    w.u8(op.insn.rt);
    w.i32(op.insn.imm);
    w.u32(op.pc);
    w.i32(op.slot);
    w.u32(op.ops.rs_i);
    w.u32(op.ops.rt_i);
    w.f64(op.ops.rs_f);
    w.f64(op.ops.rt_f);
    w.u64(op.arrive);
    w.b(op.queue_write);
}

IssuedOp
readIssuedOp(obs::ByteReader &r)
{
    IssuedOp op;
    op.insn.op = static_cast<Op>(r.u16());
    op.insn.rd = r.u8();
    op.insn.rs = r.u8();
    op.insn.rt = r.u8();
    op.insn.imm = r.i32();
    op.pc = r.u32();
    op.slot = r.i32();
    op.ops.rs_i = r.u32();
    op.ops.rt_i = r.u32();
    op.ops.rs_f = r.f64();
    op.ops.rt_f = r.f64();
    op.arrive = r.u64();
    op.queue_write = r.b();
    return op;
}

} // namespace

void
ScheduleUnit::serialize(obs::ByteWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(units_.size()));
    for (Cycle u : units_)
        w.u64(u);
    w.u32(static_cast<std::uint32_t>(standby_.size()));
    for (const auto &station : standby_) {
        w.b(station.has_value());
        if (station.has_value())
            writeIssuedOp(w, *station);
    }
    w.u32(static_cast<std::uint32_t>(incoming_.size()));
    for (const IssuedOp &op : incoming_)
        writeIssuedOp(w, op);
}

void
ScheduleUnit::deserialize(obs::ByteReader &r)
{
    const std::uint32_t nu = r.u32();
    SMTSIM_ASSERT(nu == units_.size(),
                  "checkpoint schedule-unit shape mismatch");
    for (Cycle &u : units_)
        u = r.u64();
    const std::uint32_t ns = r.u32();
    SMTSIM_ASSERT(ns == standby_.size(),
                  "checkpoint standby shape mismatch");
    standby_occupied_ = 0;
    for (auto &station : standby_) {
        station.reset();
        if (r.b()) {
            station = readIssuedOp(r);
            ++standby_occupied_;
        }
    }
    incoming_.clear();
    const std::uint32_t ni = r.u32();
    for (std::uint32_t i = 0; i < ni; ++i)
        incoming_.push_back(readIssuedOp(r));
}

void
ScheduleUnit::flushSlot(int slot)
{
    if (standby_[slot].has_value())
        --standby_occupied_;
    standby_[slot].reset();
    for (auto it = incoming_.begin(); it != incoming_.end();) {
        if (it->slot == slot)
            it = incoming_.erase(it);
        else
            ++it;
    }
}

} // namespace smtsim
