#include "queue_ring.hh"

#include "base/logging.hh"

namespace smtsim
{

QueueRing::QueueRing(int num_slots, int depth)
    : links_(static_cast<size_t>(num_slots)), depth_(depth)
{
    SMTSIM_ASSERT(num_slots >= 1 && depth >= 1,
                  "bad queue ring shape");
}

const QueueRing::Link &
QueueRing::linkInto(int consumer_slot) const
{
    const int n = static_cast<int>(links_.size());
    return links_[(consumer_slot + n - 1) % n];
}

QueueRing::Link &
QueueRing::linkInto(int consumer_slot)
{
    const int n = static_cast<int>(links_.size());
    return links_[(consumer_slot + n - 1) % n];
}

bool
QueueRing::canPop(int consumer_slot, int count) const
{
    return static_cast<int>(linkInto(consumer_slot).fifo.size()) >=
           count;
}

std::uint64_t
QueueRing::pop(int consumer_slot)
{
    Link &link = linkInto(consumer_slot);
    SMTSIM_ASSERT(!link.fifo.empty(), "pop from empty queue link");
    const std::uint64_t v = link.fifo.front();
    link.fifo.pop_front();
    return v;
}

bool
QueueRing::canReserve(int producer_slot) const
{
    const Link &link = links_[producer_slot];
    return static_cast<int>(link.fifo.size()) + link.reserved <
           depth_;
}

void
QueueRing::reserve(int producer_slot)
{
    Link &link = links_[producer_slot];
    SMTSIM_ASSERT(static_cast<int>(link.fifo.size()) + link.reserved <
                      depth_,
                  "queue link over-reserved");
    ++link.reserved;
}

void
QueueRing::push(int producer_slot, std::uint64_t value)
{
    Link &link = links_[producer_slot];
    SMTSIM_ASSERT(link.reserved > 0, "push without reservation");
    --link.reserved;
    link.fifo.push_back(value);
}

void
QueueRing::unreserve(int producer_slot)
{
    Link &link = links_[producer_slot];
    SMTSIM_ASSERT(link.reserved > 0, "unreserve without reservation");
    --link.reserved;
}

void
QueueRing::clear()
{
    for (Link &link : links_) {
        link.fifo.clear();
        link.reserved = 0;
    }
}

void
QueueRing::serialize(obs::ByteWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(links_.size()));
    for (const Link &link : links_) {
        w.u32(static_cast<std::uint32_t>(link.fifo.size()));
        for (std::uint64_t v : link.fifo)
            w.u64(v);
        w.i32(link.reserved);
    }
}

void
QueueRing::deserialize(obs::ByteReader &r)
{
    const std::uint32_t n = r.u32();
    SMTSIM_ASSERT(n == links_.size(),
                  "checkpoint queue-ring shape mismatch");
    for (Link &link : links_) {
        link.fifo.clear();
        const std::uint32_t m = r.u32();
        for (std::uint32_t i = 0; i < m; ++i)
            link.fifo.push_back(r.u64());
        link.reserved = r.i32();
    }
}

} // namespace smtsim
