#include "processor.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"
#include "isa/semantics.hh"
#include "obs/sinks.hh"

namespace smtsim
{

namespace
{

inline bool
inMask(std::uint32_t mask, RegIndex idx)
{
    return (mask >> idx) & 1u;
}

inline void
addMask(std::uint32_t &mask, RegIndex idx)
{
    mask |= 1u << idx;
}

} // namespace

MultithreadedProcessor::MultithreadedProcessor(const Program &prog,
                                               MainMemory &mem,
                                               const CoreConfig &cfg)
    : prog_(prog), mem_(mem), cfg_(cfg), text_(prog),
      ring_regs_(cfg.num_slots, cfg.queue_reg_depth),
      rotation_mode_(cfg.rotation_mode),
      rotation_interval_(cfg.rotation_interval)
{
    stall_branch_operands_ =
        &detail_.counter("stall.branch_operands");
    stall_priority_ = &detail_.counter("stall.priority");
    stall_waw_ = &detail_.counter("stall.waw");
    stall_standby_ = &detail_.counter("stall.standby");
    stall_no_standby_ = &detail_.counter("stall.no_standby");
    stall_memorder_ = &detail_.counter("stall.memorder");
    stall_operands_ = &detail_.counter("stall.operands");
    stall_queue_full_ = &detail_.counter("stall.queue_full");

    SMTSIM_ASSERT(cfg_.num_slots >= 1, "need at least one slot");
    SMTSIM_ASSERT(cfg_.frames() >= cfg_.num_slots,
                  "need at least one frame per slot");
    SMTSIM_ASSERT(cfg_.width >= 1, "width must be positive");

    contexts_.resize(cfg_.frames());
    slots_.resize(cfg_.num_slots);
    for (int s = 0; s < cfg_.num_slots; ++s)
        ring_.push_back(s);

    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        const FuClass fc = static_cast<FuClass>(cls);
        if (fc == FuClass::None)
            continue;
        sched_units_.emplace_back(fc, cfg_.fus.count(fc),
                                  cfg_.num_slots);
        stats_.unit_busy[cls].assign(cfg_.fus.count(fc), 0);
    }

    ports_.resize(cfg_.private_icache ? cfg_.num_slots : 1);

    if (cfg_.dcache.enabled())
        dcache_.emplace(cfg_.dcache);
    if (cfg_.icache.enabled())
        icache_.emplace(cfg_.icache);

    // The entry thread occupies context frame 0 and thread slot 0.
    contexts_[0].state = CtxState::Ready;
    contexts_[0].resume_pc = prog_.entry;
    bindContext(0, 0, 0);
}

void
MultithreadedProcessor::setReplayTrace(const ExecTrace *trace)
{
    replay_ = trace;
    if (!trace)
        return;
    SMTSIM_ASSERT(now_ == 0,
                  "replay must be armed before the first cycle");
    for (int f = 1; f < cfg_.frames(); ++f) {
        SMTSIM_ASSERT(contexts_[f].state == CtxState::Unused,
                      "replay is incompatible with spawnContext");
    }
    contexts_[0].trace_tid = 0;
    contexts_[0].next_branch = 0;
    contexts_[0].next_mem = 0;
}

void
MultithreadedProcessor::setRemoteModel(RemoteTimingModel *model)
{
    SMTSIM_ASSERT(now_ == 0,
                  "remote model must be attached before the first "
                  "cycle");
    remote_model_ = model;
}

void
MultithreadedProcessor::completeRemote(int frame, Cycle ready_at)
{
    SMTSIM_ASSERT(remote_model_ != nullptr,
                  "completeRemote without an attached remote model");
    SMTSIM_ASSERT(frame >= 0 && frame < cfg_.frames(),
                  "completeRemote: bad frame");
    Context &ctx = contexts_[static_cast<std::size_t>(frame)];
    SMTSIM_ASSERT(ctx.state == CtxState::WaitRemote,
                  "completeRemote: frame is not waiting on a remote "
                  "access");
    SMTSIM_ASSERT(ctx.ready_at == kNeverCycle,
                  "completeRemote: frame's access already resolved");
    SMTSIM_ASSERT(ready_at > now_,
                  "completeRemote: completion not in the future");
    ctx.ready_at = ready_at;
    last_activity_ = std::max(last_activity_, ready_at);
}

void
MultithreadedProcessor::replayBranch(Context &ctx, Addr pc,
                                     Addr evaluated)
{
    if (ctx.trace_tid < 0 ||
        static_cast<std::size_t>(ctx.trace_tid) >=
            replay_->threads.size()) {
        throw ReplayDivergence(
            "replay: branch on a thread the trace does not know");
    }
    const auto &recs =
        replay_->threads[static_cast<std::size_t>(ctx.trace_tid)]
            .branches;
    if (ctx.next_branch >= recs.size())
        throw ReplayDivergence("replay: branch stream exhausted");
    const BranchRec &rec = recs[ctx.next_branch];
    if (rec.pc != pc)
        throw ReplayDivergence("replay: branch pc mismatch");
    if (rec.next != evaluated) {
        throw ReplayDivergence(
            "replay: branch outcome diverged from recording");
    }
    ++ctx.next_branch;
}

void
MultithreadedProcessor::replayMemAddr(const Context &ctx, Addr pc,
                                      Addr addr) const
{
    if (ctx.trace_tid < 0 ||
        static_cast<std::size_t>(ctx.trace_tid) >=
            replay_->threads.size()) {
        throw ReplayDivergence(
            "replay: memory op on a thread the trace does not know");
    }
    const auto &recs =
        replay_->threads[static_cast<std::size_t>(ctx.trace_tid)]
            .mems;
    if (ctx.next_mem >= recs.size())
        throw ReplayDivergence("replay: memory stream exhausted");
    const MemRec &rec = recs[ctx.next_mem];
    if (rec.pc != pc)
        throw ReplayDivergence("replay: memory pc mismatch");
    if (rec.addr != addr) {
        throw ReplayDivergence(
            "replay: memory address diverged from recording");
    }
}

void
MultithreadedProcessor::checkReplayDrained() const
{
    for (std::size_t tid = 0; tid < replay_->threads.size();
         ++tid) {
        const ThreadTrace &tt = replay_->threads[tid];
        const Context *claimed = nullptr;
        for (const Context &ctx : contexts_) {
            if (ctx.trace_tid == static_cast<int>(tid)) {
                claimed = &ctx;
                break;
            }
        }
        if (!claimed) {
            if (!tt.branches.empty() || !tt.mems.empty())
                throw ReplayDivergence(
                    "replay: recorded thread never started");
            continue;
        }
        if (claimed->next_branch != tt.branches.size() ||
            claimed->next_mem != tt.mems.size()) {
            throw ReplayDivergence(
                "replay: records left over at completion");
        }
    }
}

int
MultithreadedProcessor::spawnContext(
    Addr entry, const std::array<std::uint32_t, kNumRegs> &iregs,
    const std::array<double, kNumRegs> &fregs)
{
    if (replay_)
        fatal("spawnContext: unsupported in replay mode");
    for (int f = 0; f < cfg_.frames(); ++f) {
        if (contexts_[f].state == CtxState::Unused) {
            contexts_[f].state = CtxState::Ready;
            contexts_[f].resume_pc = entry;
            contexts_[f].iregs = iregs;
            contexts_[f].fregs = fregs;
            ready_fifo_.push_back(f);
            return f;
        }
    }
    fatal("spawnContext: no free context frame");
}

std::uint32_t
MultithreadedProcessor::intReg(int frame, RegIndex idx) const
{
    return contexts_.at(frame).iregs[idx];
}

double
MultithreadedProcessor::fpReg(int frame, RegIndex idx) const
{
    return contexts_.at(frame).fregs[idx];
}

MultithreadedProcessor::Context &
MultithreadedProcessor::ctxOf(int slot_id)
{
    const int frame = slots_[slot_id].frame;
    SMTSIM_ASSERT(frame >= 0, "slot has no bound context");
    return contexts_[frame];
}

const MultithreadedProcessor::Context &
MultithreadedProcessor::ctxOf(int slot_id) const
{
    const int frame = slots_[slot_id].frame;
    SMTSIM_ASSERT(frame >= 0, "slot has no bound context");
    return contexts_[frame];
}

// ---------------------------------------------------------------
// Priority handling
// ---------------------------------------------------------------

bool
MultithreadedProcessor::slotActive(int slot_id) const
{
    const Slot &slot = slots_[slot_id];
    return slot.frame >= 0 && !slot.trap_pending &&
           contexts_[slot.frame].state == CtxState::Running;
}

bool
MultithreadedProcessor::hasTopPriority(int slot_id) const
{
    for (int s : ring_) {
        if (slotActive(s))
            return s == slot_id;
    }
    return false;
}

void
MultithreadedProcessor::rotateRing()
{
    if (ring_.size() > 1) {
        ring_.push_back(ring_.front());
        ring_.erase(ring_.begin());
    }
}

// ---------------------------------------------------------------
// Scoreboard
// ---------------------------------------------------------------

Cycle &
MultithreadedProcessor::sbOf(Slot &slot, RegRef ref)
{
    // thread_local: simulations run concurrently under smtsim::lab.
    thread_local Cycle dummy;
    if (ref.file == RF::Fp)
        return slot.fsb[ref.idx];
    if (ref.idx == 0) {
        dummy = 0;
        return dummy;
    }
    return slot.isb[ref.idx];
}

Cycle
MultithreadedProcessor::sbOf(const Slot &slot, RegRef ref) const
{
    if (ref.file == RF::Fp)
        return slot.fsb[ref.idx];
    return ref.idx == 0 ? 0 : slot.isb[ref.idx];
}

bool
MultithreadedProcessor::operandsReady(const Slot &slot,
                                      const Context &ctx,
                                      const Insn &insn, Cycle c,
                                      std::uint32_t pw_int,
                                      std::uint32_t pw_fp) const
{
    RegRef srcs[3];
    const int n = insn.srcs(srcs);
    int pops = 0;
    for (int i = 0; i < n; ++i) {
        const RegRef &src = srcs[i];
        const bool mapped =
            (src.file == RF::Int && ctx.q_read_int &&
             *ctx.q_read_int == src.idx) ||
            (src.file == RF::Fp && ctx.q_read_fp &&
             *ctx.q_read_fp == src.idx);
        if (mapped) {
            ++pops;
            continue;
        }
        if (sbOf(slot, src) > c)
            return false;
        if (inMask(src.file == RF::Fp ? pw_fp : pw_int, src.idx))
            return false;
    }
    // The slot that issued this instruction is the consumer side of
    // its incoming queue link.
    int slot_id = static_cast<int>(&slot - slots_.data());
    return pops == 0 || ring_regs_.canPop(slot_id, pops);
}

int
MultithreadedProcessor::queuePopCount(const Context &ctx,
                                      const Insn &insn) const
{
    RegRef srcs[3];
    const int n = insn.srcs(srcs);
    int pops = 0;
    for (int i = 0; i < n; ++i) {
        const RegRef &src = srcs[i];
        if ((src.file == RF::Int && ctx.q_read_int &&
             *ctx.q_read_int == src.idx) ||
            (src.file == RF::Fp && ctx.q_read_fp &&
             *ctx.q_read_fp == src.idx)) {
            ++pops;
        }
    }
    return pops;
}

OperandValues
MultithreadedProcessor::readOperands(int slot_id, const Insn &insn)
{
    Context &ctx = ctxOf(slot_id);
    auto q_pop = [&]() -> std::uint64_t {
        const std::uint64_t v = ring_regs_.pop(slot_id);
        if (sink_) {
            obs::Event ev;
            ev.cycle = now_;
            ev.kind = obs::EventKind::QueuePop;
            ev.slot = static_cast<std::int8_t>(slot_id);
            ev.a = v;
            sink_->event(ev);
        }
        return v;
    };
    auto rd_int = [&](RegIndex r) -> std::uint32_t {
        if (ctx.q_read_int && *ctx.q_read_int == r && r != 0)
            return static_cast<std::uint32_t>(q_pop());
        return r == 0 ? 0 : ctx.iregs[r];
    };
    auto rd_fp = [&](RegIndex r) -> double {
        if (ctx.q_read_fp && *ctx.q_read_fp == r)
            return std::bit_cast<double>(q_pop());
        return ctx.fregs[r];
    };

    OperandValues ops;
    switch (opMeta(insn.op).format) {
      case Format::R3:
        ops.rs_i = rd_int(insn.rs);
        ops.rt_i = rd_int(insn.rt);
        break;
      case Format::R2:
      case Format::SHI:
      case Format::I:
        ops.rs_i = rd_int(insn.rs);
        break;
      case Format::LUIF:
        break;
      case Format::FR3:
      case Format::FCMP:
        ops.rs_f = rd_fp(insn.rs);
        ops.rt_f = rd_fp(insn.rt);
        break;
      case Format::FR2:
      case Format::FTOIF:
        ops.rs_f = rd_fp(insn.rs);
        break;
      case Format::ITOFF:
        ops.rs_i = rd_int(insn.rs);
        break;
      case Format::MEM:
        ops.rs_i = rd_int(insn.rs);
        if (isStoreOp(insn.op)) {
            if (isFpFormatOp(insn.op))
                ops.rt_f = rd_fp(insn.rt);
            else
                ops.rt_i = rd_int(insn.rt);
        }
        break;
      case Format::BR2:
        ops.rs_i = rd_int(insn.rs);
        ops.rt_i = rd_int(insn.rt);
        break;
      case Format::BR1:
      case Format::JRF:
      case Format::JALRF:
        ops.rs_i = rd_int(insn.rs);
        break;
      default:
        break;
    }
    return ops;
}

// ---------------------------------------------------------------
// Fetch engine
// ---------------------------------------------------------------

MultithreadedProcessor::FetchPort &
MultithreadedProcessor::portOf(int slot_id)
{
    return ports_[cfg_.private_icache ? slot_id : 0];
}

Cycle
MultithreadedProcessor::icacheDelay(Addr addr, int words)
{
    if (!icache_ || words <= 0)
        return 0;
    Cycle delay = 0;
    const Addr line = cfg_.icache.line_bytes;
    const Addr first = addr & ~(line - 1);
    const Addr last =
        (addr + static_cast<Addr>(words) * kInsnBytes - 1) &
        ~(line - 1);
    for (Addr a = first; a <= last; a += line) {
        if (icache_->access(a)) {
            ++stats_.icache_hits;
        } else {
            ++stats_.icache_misses;
            delay += cfg_.icache.miss_penalty;
        }
    }
    return delay;
}

void
MultithreadedProcessor::cancelFetches(int slot_id)
{
    FetchPort &port = portOf(slot_id);
    bool removed = false;
    for (auto it = port.inflight.begin();
         it != port.inflight.end();) {
        if (it->slot == slot_id) {
            it = port.inflight.erase(it);
            removed = true;
        } else {
            ++it;
        }
    }
    slots_[slot_id].fetch_inflight = false;
    if (removed) {
        Cycle free_at = 0;
        for (const FetchOp &op : port.inflight)
            free_at = std::max(free_at, op.done_at);
        port.free_at = free_at;
    }
}

Cycle
MultithreadedProcessor::scheduleRedirect(int slot_id, Addr target,
                                         Cycle earliest)
{
    cancelFetches(slot_id);
    FetchPort &port = portOf(slot_id);
    const Cycle s = std::max(earliest, port.free_at);
    const Cycle cache = static_cast<Cycle>(cfg_.icache_cycles);

    FetchOp op;
    op.slot = slot_id;
    op.addr = target;
    const Addr end = prog_.textEnd();
    const int avail =
        target < end ? static_cast<int>((end - target) / kInsnBytes)
                     : 0;
    op.words = std::min(cfg_.fetchBlockWords(), avail);
    op.redirect = true;
    const Cycle miss_delay = icacheDelay(target, op.words);
    op.done_at = s + cache + miss_delay;
    port.inflight.push_back(op);
    slots_[slot_id].fetch_inflight = true;
    port.free_at = s + cache + miss_delay;
    // Subsequent sequential refills continue past this block.
    slots_[slot_id].fetch_addr =
        target + static_cast<Addr>(op.words) * kInsnBytes;
    return s;
}

void
MultithreadedProcessor::fetchPhase(Cycle c)
{
    const Addr end = prog_.textEnd();
    for (size_t pi = 0; pi < ports_.size(); ++pi) {
        FetchPort &port = ports_[pi];

        // Deliveries.
        for (auto it = port.inflight.begin();
             it != port.inflight.end();) {
            if (it->done_at > c) {
                ++it;
                continue;
            }
            Slot &slot = slots_[it->slot];
            if (slot.frame >= 0 && !slot.trap_pending) {
                int space = cfg_.iqueueWords() -
                            static_cast<int>(slot.iqueue.size());
                int n = std::min(space, it->words);
                for (int k = 0; k < n; ++k) {
                    const Addr a =
                        it->addr + static_cast<Addr>(k) * kInsnBytes;
                    if (a < end)
                        slot.iqueue.push_back(a);
                }
                if (sink_ && n > 0) {
                    obs::Event ev;
                    ev.cycle = c;
                    ev.kind = obs::EventKind::Fetch;
                    ev.slot = static_cast<std::int8_t>(it->slot);
                    ev.pc = it->addr;
                    ev.a = static_cast<std::uint64_t>(n);
                    sink_->event(ev);
                }
                // Words that did not fit are refetched: the stream
                // position rewinds to the first undelivered word.
                if (n < it->words && !it->redirect) {
                    slot.fetch_addr =
                        it->addr + static_cast<Addr>(n) * kInsnBytes;
                }
            }
            slots_[it->slot].fetch_inflight = false;
            it = port.inflight.erase(it);
        }

        // Start a new fetch if the port is idle.
        if (port.free_at > c)
            continue;
        const int num_slots = cfg_.num_slots;
        for (int k = 0; k < num_slots; ++k) {
            const int s = (port.rr_next + k) % num_slots;
            if (cfg_.private_icache && s != static_cast<int>(pi))
                continue;
            if (!cfg_.private_icache && &portOf(s) != &port)
                continue;
            Slot &slot = slots_[s];
            if (slot.frame < 0 || slot.trap_pending ||
                slot.fetch_inflight) {
                continue;
            }
            const int space =
                cfg_.iqueueWords() -
                static_cast<int>(slot.iqueue.size());
            if (space <= 0 || slot.fetch_addr >= end)
                continue;

            FetchOp op;
            op.slot = s;
            op.addr = slot.fetch_addr;
            op.words = std::min(
                cfg_.fetchBlockWords(),
                static_cast<int>((end - slot.fetch_addr) /
                                 kInsnBytes));
            op.redirect = false;
            op.done_at = c +
                         static_cast<Cycle>(cfg_.icache_cycles) +
                         icacheDelay(op.addr, op.words);
            slot.fetch_addr +=
                static_cast<Addr>(op.words) * kInsnBytes;
            port.inflight.push_back(op);
            slot.fetch_inflight = true;
            port.free_at = op.done_at;
            port.rr_next = (s + 1) % num_slots;
            break;
        }
    }
}

// ---------------------------------------------------------------
// Thread management
// ---------------------------------------------------------------

void
MultithreadedProcessor::flushFrontEnd(int slot_id)
{
    Slot &slot = slots_[slot_id];
    slot.iqueue.clear();
    slot.window.clear();
    cancelFetches(slot_id);
}

void
MultithreadedProcessor::bindContext(int frame, int slot_id, Cycle c)
{
    Slot &slot = slots_[slot_id];
    SMTSIM_ASSERT(slot.frame < 0, "binding to an occupied slot");
    Context &ctx = contexts_[frame];

    slot.frame = frame;
    slot.trap_pending = false;
    slot.iqueue.clear();
    slot.window.clear();
    slot.isb.fill(0);
    slot.fsb.fill(0);
    slot.ungranted_total = 0;
    slot.ungranted_class.fill(0);
    slot.ungranted_mem = 0;
    slot.queue_push_pending = 0;
    slot.wb_ring.fill({});

    ctx.state = CtxState::Running;

    // Access-requirement-buffer entries are re-decoded first.
    for (const ReplayEntry &e : ctx.replay)
        slot.window.push_back(WindowEntry{e.insn, e.pc, true});
    ctx.replay.clear();

    if (sink_) {
        obs::Event ev;
        ev.cycle = c;
        ev.kind = obs::EventKind::SlotBind;
        ev.slot = static_cast<std::int8_t>(slot_id);
        ev.unit = static_cast<std::int16_t>(frame);
        ev.pc = ctx.resume_pc;
        sink_->event(ev);
    }
    slot.fetch_addr = ctx.resume_pc;
    const Cycle s = scheduleRedirect(slot_id, ctx.resume_pc, c + 1);
    slot.d2_allowed =
        std::max(s + static_cast<Cycle>(cfg_.branch_gap),
                 c + 1 + static_cast<Cycle>(
                             cfg_.context_switch_cycles));
}

void
MultithreadedProcessor::unbindSlot(int slot_id)
{
    Slot &slot = slots_[slot_id];
    if (sink_) {
        obs::Event ev;
        ev.cycle = now_;
        ev.kind = obs::EventKind::SlotUnbind;
        ev.slot = static_cast<std::int8_t>(slot_id);
        ev.unit = static_cast<std::int16_t>(slot.frame);
        sink_->event(ev);
    }
    flushFrontEnd(slot_id);
    slot.frame = -1;
    slot.trap_pending = false;
}

Addr
MultithreadedProcessor::nextUnissuedPc(int slot_id) const
{
    const Slot &slot = slots_[slot_id];
    if (!slot.window.empty())
        return slot.window.front().pc;
    if (!slot.iqueue.empty())
        return slot.iqueue.front();
    // fetch_addr has already advanced past any in-flight fetch
    // block; resuming there would skip the block's instructions
    // once the switch-out cancels the fetch.
    if (slot.fetch_inflight) {
        const FetchPort &port =
            ports_[cfg_.private_icache ? slot_id : 0];
        for (const FetchOp &op : port.inflight) {
            if (op.slot == slot_id)
                return op.addr;
        }
    }
    return slot.fetch_addr;
}

void
MultithreadedProcessor::killOtherThreads(int killer_slot, Cycle c)
{
    (void)c;
    const int killer_frame = slots_[killer_slot].frame;
    for (int f = 0; f < cfg_.frames(); ++f) {
        Context &ctx = contexts_[f];
        if (f == killer_frame || ctx.state == CtxState::Unused ||
            ctx.state == CtxState::Finished) {
            continue;
        }
        ctx.state = CtxState::Finished;
    }
    for (int s = 0; s < cfg_.num_slots; ++s) {
        if (s == killer_slot || slots_[s].frame < 0)
            continue;
        for (ScheduleUnit &su : sched_units_)
            su.flushSlot(s);
        Slot &slot = slots_[s];
        slot.ungranted_total = 0;
        slot.ungranted_class.fill(0);
        slot.ungranted_mem = 0;
        slot.queue_push_pending = 0;
        unbindSlot(s);
    }
    // Kill-threads resets the queue-register network.
    ring_regs_.clear();
    pending_pushes_.clear();
    slots_[killer_slot].queue_push_pending = 0;
    ready_fifo_.clear();
    if (sink_) {
        for (int l = 0; l < ring_regs_.numLinks(); ++l) {
            obs::Event ev;
            ev.cycle = now_;
            ev.kind = obs::EventKind::QueueState;
            ev.slot = static_cast<std::int8_t>(l);
            ev.a = 0;
            sink_->event(ev);
        }
    }
}

// ---------------------------------------------------------------
// Grant-time execution
// ---------------------------------------------------------------

void
MultithreadedProcessor::writeResult(int slot_id, const IssuedOp &op,
                                    bool is_fp, std::uint32_t ival,
                                    double fval, Cycle clear_at)
{
    Slot &slot = slots_[slot_id];
    Context &ctx = ctxOf(slot_id);

    if (op.queue_write) {
        PendingPush push;
        push.at = clear_at;
        push.slot = slot_id;
        push.value = is_fp ? std::bit_cast<std::uint64_t>(fval)
                           : std::uint64_t{ival};
        pending_pushes_.push_back(push);
    } else if (op.insn.dst().file == RF::Int &&
               op.insn.dst().idx == 0) {
        // Writes to r0 vanish; no write port needed.
    } else {
        const RegRef dst = op.insn.dst();
        SMTSIM_ASSERT(dst.valid(), "writeResult without destination");
        if (dst.file == RF::Fp)
            ctx.fregs[dst.idx] = fval;
        else if (dst.idx != 0)
            ctx.iregs[dst.idx] = ival;
        sbOf(slot, dst) = clear_at;

        // Each register bank has one write port; two results
        // retiring in the same cycle for one slot is a structural
        // conflict (reported as a statistic; the paper leaves its
        // resolution open).
        Slot::WbBin &bin =
            slot.wb_ring[clear_at % slot.wb_ring.size()];
        if (bin.at == clear_at) {
            if (++bin.count > 1)
                ++stats_.writeback_conflicts;
        } else {
            bin.at = clear_at;
            bin.count = 1;
        }
    }
    last_activity_ = std::max(last_activity_, clear_at);
}

void
MultithreadedProcessor::takeRemoteTrap(const IssuedOp &op, Cycle c,
                                       Addr addr)
{
    Slot &slot = slots_[op.slot];
    Context &ctx = ctxOf(op.slot);
    SMTSIM_ASSERT(!op.queue_write,
                  "remote access with queue-register destination");

    ++stats_.context_switches;
    if (sink_) {
        obs::Event ev;
        ev.cycle = c;
        ev.kind = obs::EventKind::Trap;
        ev.slot = static_cast<std::int8_t>(op.slot);
        ev.pc = addr;
        ev.insn = encode(op.insn);
        ev.a = remote_model_ ? 0 : cfg_.remote.latency;
        sink_->event(ev);
    }
    ctx.state = CtxState::WaitRemote;
    if (remote_model_) {
        // Completion depends on machine-wide interconnect state the
        // core cannot see; park the context unwakeably and let the
        // machine resolve it at its next quantum barrier.
        ctx.ready_at = kNeverCycle;
        remote_model_->request(slot.frame, addr, c);
    } else {
        ctx.ready_at = c + cfg_.remote.latency;
    }
    ctx.satisfied_addr = addr;
    ctx.replay.push_back(ReplayEntry{op.insn, op.pc});
    ctx.resume_pc = nextUnissuedPc(op.slot);

    flushFrontEnd(op.slot);
    slot.trap_pending = true;
}

void
MultithreadedProcessor::performGrant(const Grant &grant, Cycle c)
{
    const IssuedOp &op = grant.op;
    Slot &slot = slots_[op.slot];
    const OpMeta &meta = opMeta(op.insn.op);
    const int cls = static_cast<int>(meta.fu);

    --slot.ungranted_total;
    --slot.ungranted_class[cls];
    if (op.insn.isMem())
        --slot.ungranted_mem;

    ++stats_.fu_grants[cls];
    stats_.fu_busy[cls] += meta.issue_latency;
    stats_.unit_busy[cls][grant.unit] += meta.issue_latency;

    if (sink_) {
        obs::Event ev;
        ev.cycle = c;
        ev.kind = obs::EventKind::Grant;
        ev.slot = static_cast<std::int8_t>(op.slot);
        ev.fu = static_cast<std::int8_t>(cls);
        ev.unit = static_cast<std::int16_t>(grant.unit);
        ev.pc = op.pc;
        ev.insn = encode(op.insn);
        sink_->event(ev);
    }

    Context &ctx = ctxOf(op.slot);

    if (op.insn.isMem()) {
        const Addr addr =
            op.ops.rs_i + static_cast<std::uint32_t>(op.insn.imm);
        // Replay mode checks the address against the recording; the
        // record is consumed only once the access completes, so a
        // trapped op re-checks the same record when it resumes.
        if (replay_)
            replayMemAddr(ctx, op.pc, addr);
        Cycle result_lat =
            static_cast<Cycle>(meta.result_latency);

        const bool satisfied =
            ctx.satisfied_addr && *ctx.satisfied_addr == addr;
        if (cfg_.remote.contains(addr) && !satisfied) {
            if (rotation_mode_ == RotationMode::Implicit) {
                takeRemoteTrap(op, c, addr);
                return;
            }
            // Explicit-rotation mode suppresses data-absence
            // context switches (section 2.3.1); the thread simply
            // waits out the latency. Under a machine-level model the
            // wait charges the uncontended topology latency — known
            // at grant time, unlike bank contention.
            result_lat = remote_model_
                             ? remote_model_->uncontendedLatency(addr)
                             : cfg_.remote.latency;
        }
        if (replay_)
            ++ctx.next_mem;
        if (satisfied)
            ctx.satisfied_addr.reset();

        // Finite data cache: a miss lengthens the access latency
        // (non-blocking; the unit keeps accepting work).
        if (dcache_) {
            if (dcache_->access(addr)) {
                ++stats_.dcache_hits;
            } else {
                ++stats_.dcache_misses;
                result_lat += cfg_.dcache.miss_penalty;
            }
        }

        switch (op.insn.op) {
          case Op::LW:
            writeResult(op.slot, op, false, mem_.read32(addr), 0.0,
                        c + result_lat);
            ++stats_.loads;
            break;
          case Op::LF:
            writeResult(op.slot, op, true, 0,
                        mem_.readDouble(addr), c + result_lat);
            ++stats_.loads;
            break;
          case Op::SW:
          case Op::PSTW:
            mem_.write32(addr, op.ops.rt_i);
            ++stats_.stores;
            last_activity_ =
                std::max(last_activity_, c + result_lat);
            break;
          case Op::SF:
          case Op::PSTF:
            mem_.writeDouble(addr, op.ops.rt_f);
            ++stats_.stores;
            last_activity_ =
                std::max(last_activity_, c + result_lat);
            break;
          default:
            panic("performGrant: unexpected memory op");
        }
    } else {
        const DataResult r = execDataOp(op.insn, op.ops);
        writeResult(op.slot, op, r.is_fp, r.ival, r.fval,
                    c + static_cast<Cycle>(meta.result_latency));
    }

    ++ctx.insns;
    ++stats_.instructions;
}

void
MultithreadedProcessor::schedulePhase(Cycle c)
{
    // Queue-register deposits land at the producer's write-back.
    for (auto it = pending_pushes_.begin();
         it != pending_pushes_.end();) {
        if (it->at <= c) {
            ring_regs_.push(it->slot, it->value);
            --slots_[it->slot].queue_push_pending;
            if (sink_) {
                obs::Event ev;
                ev.cycle = c;
                ev.kind = obs::EventKind::QueuePush;
                ev.slot = static_cast<std::int8_t>(it->slot);
                ev.a = it->value;
                sink_->event(ev);
            }
            it = pending_pushes_.erase(it);
        } else {
            ++it;
        }
    }

    for (ScheduleUnit &su : sched_units_) {
        if (su.idle())
            continue;
        su.select(c, ring_, grants_scratch_);
        for (const Grant &grant : grants_scratch_)
            performGrant(grant, c);
    }
}

// ---------------------------------------------------------------
// Context phase (concurrent multithreading)
// ---------------------------------------------------------------

void
MultithreadedProcessor::contextPhase(Cycle c)
{
    // Remote accesses that completed make their contexts ready.
    for (int f = 0; f < cfg_.frames(); ++f) {
        Context &ctx = contexts_[f];
        if (ctx.state == CtxState::WaitRemote && ctx.ready_at <= c) {
            ctx.state = CtxState::Ready;
            ready_fifo_.push_back(f);
        }
    }

    // Switch-outs complete once every granted-op drain finishes.
    for (int s = 0; s < cfg_.num_slots; ++s) {
        Slot &slot = slots_[s];
        if (slot.frame >= 0 && slot.trap_pending &&
            slot.ungranted_total == 0) {
            unbindSlot(s);
        }
    }

    // Bind ready contexts to free slots, FIFO.
    for (int s = 0; s < cfg_.num_slots; ++s) {
        if (slots_[s].frame >= 0)
            continue;
        // Skip stale fifo entries (e.g. killed while queued).
        while (!ready_fifo_.empty() &&
               contexts_[ready_fifo_.front()].state !=
                   CtxState::Ready) {
            ready_fifo_.erase(ready_fifo_.begin());
        }
        if (ready_fifo_.empty())
            break;
        const int frame = ready_fifo_.front();
        ready_fifo_.erase(ready_fifo_.begin());
        bindContext(frame, s, c);
    }
}

// ---------------------------------------------------------------
// Decode phase
// ---------------------------------------------------------------

MultithreadedProcessor::ControlOutcome
MultithreadedProcessor::handleControl(int slot_id,
                                      const WindowEntry &entry,
                                      Cycle c)
{
    Slot &slot = slots_[slot_id];
    Context &ctx = ctxOf(slot_id);
    const Insn &insn = entry.insn;

    if (insn.isBranch()) {
        if (!operandsReady(slot, ctx, insn, c, 0, 0)) {
            ++*stall_branch_operands_;
            return ControlOutcome::Blocked;
        }
        // Link-writing jumps respect the write-after-write
        // interlock on their destination.
        if (insn.op == Op::JAL && slot.isb[31] > c)
            return ControlOutcome::Blocked;
        if (insn.op == Op::JALR && insn.rd != 0 &&
            slot.isb[insn.rd] > c) {
            return ControlOutcome::Blocked;
        }
        const OperandValues ops = readOperands(slot_id, insn);
        Addr next = entry.pc + kInsnBytes;
        switch (insn.op) {
          case Op::J:
            next = (entry.pc & 0xf0000000u) |
                   (static_cast<std::uint32_t>(insn.imm) << 2);
            break;
          case Op::JAL:
            ctx.iregs[31] = entry.pc + kInsnBytes;
            slot.isb[31] = c;
            next = (entry.pc & 0xf0000000u) |
                   (static_cast<std::uint32_t>(insn.imm) << 2);
            break;
          case Op::JR:
            next = ops.rs_i;
            if (replay_)
                replayBranch(ctx, entry.pc, next);
            break;
          case Op::JALR:
            if (insn.rd != 0) {
                ctx.iregs[insn.rd] = entry.pc + kInsnBytes;
                slot.isb[insn.rd] = c;
            }
            next = ops.rs_i;
            if (replay_)
                replayBranch(ctx, entry.pc, next);
            break;
          default:
            if (evalBranch(insn.op, ops.rs_i, ops.rt_i)) {
                next = entry.pc + kInsnBytes +
                       static_cast<Addr>(insn.imm * 4);
            }
            if (replay_)
                replayBranch(ctx, entry.pc, next);
            break;
        }
        ++stats_.branches;
        ++stats_.instructions;
        ++ctx.insns;
        if (sink_) {
            obs::Event ev;
            ev.cycle = c;
            ev.kind = obs::EventKind::Issue;
            ev.slot = static_cast<std::int8_t>(slot_id);
            ev.pc = entry.pc;
            ev.insn = encode(insn);
            sink_->event(ev);
        }

        // Untaken conditional branches keep the sequential stream:
        // the fetch request sent at the end of D1 was already
        // fetching fall-through instructions (predict-not-taken).
        // Taken branches flush and redirect, paying the 5-cycle
        // gap of section 2.1.2 (plus fetch-unit contention).
        if (next == entry.pc + kInsnBytes)
            return ControlOutcome::Issued;

        if (sink_) {
            obs::Event ev;
            ev.cycle = c;
            ev.kind = obs::EventKind::Branch;
            ev.slot = static_cast<std::int8_t>(slot_id);
            ev.pc = entry.pc;
            ev.insn = encode(insn);
            ev.a = next;
            sink_->event(ev);
        }
        flushFrontEnd(slot_id);
        slot.fetch_addr = next;
        const Cycle s = scheduleRedirect(slot_id, next, c);
        slot.d2_allowed =
            s + static_cast<Cycle>(cfg_.branch_gap);
        return ControlOutcome::Flushed;
    }

    // Thread-control instruction.
    switch (insn.op) {
      case Op::NOP:
        break;
      case Op::HALT:
        ++stats_.instructions;
        ++ctx.insns;
        if (sink_) {
            obs::Event ev;
            ev.cycle = c;
            ev.kind = obs::EventKind::Issue;
            ev.slot = static_cast<std::int8_t>(slot_id);
            ev.pc = entry.pc;
            ev.insn = encode(insn);
            sink_->event(ev);
            ev.kind = obs::EventKind::Halt;
            sink_->event(ev);
        }
        ctx.state = CtxState::Finished;
        flushFrontEnd(slot_id);
        slot.trap_pending = true;   // drain, then unbind
        return ControlOutcome::Flushed;
      case Op::FASTFORK: {
        for (int j = 0; j < cfg_.num_slots; ++j) {
            if (j == slot_id || slots_[j].frame >= 0)
                continue;
            int frame = -1;
            for (int f = 0; f < cfg_.frames(); ++f) {
                if (contexts_[f].state == CtxState::Unused) {
                    frame = f;
                    break;
                }
            }
            if (frame < 0)
                break;
            contexts_[frame].iregs = ctx.iregs;
            contexts_[frame].fregs = ctx.fregs;
            contexts_[frame].q_read_int = ctx.q_read_int;
            contexts_[frame].q_write_int = ctx.q_write_int;
            contexts_[frame].q_read_fp = ctx.q_read_fp;
            contexts_[frame].q_write_fp = ctx.q_write_fp;
            contexts_[frame].resume_pc = entry.pc + kInsnBytes;
            contexts_[frame].state = CtxState::Ready;
            // Thread i of the recording engine starts on slot i
            // (the FASTFORK convention), so the forked context
            // plays back trace thread j.
            if (replay_) {
                contexts_[frame].trace_tid = j;
                contexts_[frame].next_branch = 0;
                contexts_[frame].next_mem = 0;
            }
            bindContext(frame, j, c);
        }
        break;
      }
      case Op::CHGPRI:
        if (!hasTopPriority(slot_id)) {
            ++*stall_priority_;
            return ControlOutcome::Blocked;
        }
        rotate_requested_ = true;
        break;
      case Op::KILLT:
        if (!hasTopPriority(slot_id)) {
            ++*stall_priority_;
            return ControlOutcome::Blocked;
        }
        // The kill point is timing-dependent: the victims' record
        // streams cannot be lined up with a functional recording,
        // so KILLT programs are not replayable.
        if (replay_)
            throw ReplayDivergence("replay: KILLT is not "
                                   "replayable (timing-dependent "
                                   "kill point)");
        killOtherThreads(slot_id, c);
        break;
      case Op::TID:
      case Op::NSLOT: {
        const RegRef dst = insn.dst();
        if (sbOf(slot, dst) > c) {
            ++*stall_waw_;
            return ControlOutcome::Blocked;
        }
        if (dst.idx != 0) {
            ctx.iregs[dst.idx] =
                insn.op == Op::TID
                    ? static_cast<std::uint32_t>(slot_id)
                    : static_cast<std::uint32_t>(cfg_.num_slots);
            sbOf(slot, dst) = c;
        }
        break;
      }
      case Op::QEN:
        if (insn.rs == 0 || insn.rt == 0 || insn.rs == insn.rt)
            fatal("qen: bad register pair");
        ctx.q_read_int = insn.rs;
        ctx.q_write_int = insn.rt;
        break;
      case Op::QENF:
        if (insn.rs == insn.rt)
            fatal("qenf: read and write register identical");
        ctx.q_read_fp = insn.rs;
        ctx.q_write_fp = insn.rt;
        break;
      case Op::QDIS:
        ctx.q_read_int.reset();
        ctx.q_write_int.reset();
        ctx.q_read_fp.reset();
        ctx.q_write_fp.reset();
        break;
      case Op::SETRMODE:
        rotation_mode_ = insn.rt == 1 ? RotationMode::Explicit
                                      : RotationMode::Implicit;
        if (insn.imm > 0)
            rotation_interval_ = insn.imm;
        break;
      default:
        panic("handleControl: unexpected op ",
              opMeta(insn.op).mnemonic);
    }
    ++stats_.instructions;
    ++ctx.insns;
    if (sink_) {
        obs::Event ev;
        ev.cycle = c;
        ev.kind = obs::EventKind::Issue;
        ev.slot = static_cast<std::int8_t>(slot_id);
        ev.pc = entry.pc;
        ev.insn = encode(insn);
        sink_->event(ev);
    }
    return ControlOutcome::Issued;
}

void
MultithreadedProcessor::decodeSlot(int slot_id, Cycle c)
{
    Slot &slot = slots_[slot_id];
    if (slot.frame < 0 || slot.trap_pending)
        return;

    if (c >= slot.d2_allowed && !slot.window.empty()) {
        int issues = 0;
        bool mem_blocked = false;
        bool queue_write_blocked = false;
        bool queue_read_blocked = false;
        bool flushed = false;
        std::uint32_t pr_int = 0, pr_fp = 0;
        std::uint32_t pw_int = 0, pw_fp = 0;
        // assign() reuses the slot's scratch capacity: no heap
        // allocation on the per-cycle path after warm-up.
        slot.decode_done.assign(slot.window.size(), 0);
        std::vector<char> &done = slot.decode_done;

        for (size_t i = 0;
             i < slot.window.size() && issues < cfg_.width; ++i) {
            const WindowEntry &entry = slot.window[i];
            const Insn &insn = entry.insn;
            const bool front = pr_int == 0 && pr_fp == 0 &&
                               pw_int == 0 && pw_fp == 0 &&
                               !mem_blocked && !queue_write_blocked;

            if (insn.isBranch() || insn.isThreadCtl()) {
                if (!front)
                    break;
                // Control instructions also wait for the slot's own
                // in-flight instructions when they change global
                // state (fork, kill, priority, halt).
                // CHGPRI drains too: an iteration is acknowledged
                // (and priority handed over) only once its issued
                // instructions have executed, which keeps priority
                // stores of successive iterations in order.
                const bool needs_drain =
                    insn.op == Op::KILLT || insn.op == Op::HALT ||
                    insn.op == Op::FASTFORK ||
                    insn.op == Op::CHGPRI;
                if (needs_drain && slot.ungranted_total > 0)
                    break;
                const ControlOutcome outcome =
                    handleControl(slot_id, entry, c);
                if (outcome == ControlOutcome::Blocked)
                    break;
                ++issues;
                if (outcome == ControlOutcome::Flushed) {
                    flushed = true;
                    break;
                }
                done[i] = 1;
                continue;
            }

            // ----- data / memory instruction ---------------------
            Context &ctx = ctxOf(slot_id);
            bool issuable = true;

            if (isPriorityStoreOp(insn.op) &&
                !hasTopPriority(slot_id)) {
                ++*stall_priority_;
                issuable = false;
            }

            const FuClass cls = insn.fu();
            if (issuable) {
                if (cfg_.standby_enabled) {
                    if (slot.ungranted_class[static_cast<int>(
                            cls)] > 0) {
                        ++stats_.standby_stalls;
                        ++*stall_standby_;
                        issuable = false;
                    }
                } else if (slot.ungranted_total > 0) {
                    ++stats_.standby_stalls;
                    ++*stall_no_standby_;
                    issuable = false;
                }
            }

            if (issuable && insn.isMem() &&
                (slot.ungranted_mem > 0 || mem_blocked)) {
                ++*stall_memorder_;
                issuable = false;
            }

            // Queue-register reads dequeue, so they must stay in
            // program order: a younger pop may not overtake an
            // older instruction still waiting in the window.
            if (issuable && queue_read_blocked &&
                queuePopCount(ctx, insn) > 0) {
                ++*stall_operands_;
                issuable = false;
            }

            if (issuable &&
                !operandsReady(slot, ctx, insn, c, pw_int, pw_fp)) {
                ++*stall_operands_;
                issuable = false;
            }

            const RegRef dst = insn.dst();
            bool queue_write = false;
            if (issuable && dst.valid()) {
                queue_write =
                    (dst.file == RF::Int && ctx.q_write_int &&
                     *ctx.q_write_int == dst.idx) ||
                    (dst.file == RF::Fp && ctx.q_write_fp &&
                     *ctx.q_write_fp == dst.idx);
                if (queue_write) {
                    if (queue_write_blocked ||
                        slot.queue_push_pending > 0 ||
                        !ring_regs_.canReserve(slot_id)) {
                        ++*stall_queue_full_;
                        issuable = false;
                    }
                } else if (sbOf(slot, dst) > c ||
                           inMask(dst.file == RF::Fp ? pr_fp
                                                     : pr_int,
                                  dst.idx) ||
                           inMask(dst.file == RF::Fp ? pw_fp
                                                     : pw_int,
                                  dst.idx)) {
                    ++*stall_waw_;
                    issuable = false;
                }
            }

            if (issuable) {
                IssuedOp op;
                op.insn = insn;
                op.pc = entry.pc;
                op.slot = slot_id;
                op.ops = readOperands(slot_id, insn);
                op.arrive = c + 1;
                op.queue_write = queue_write;

                if (queue_write) {
                    ring_regs_.reserve(slot_id);
                    ++slot.queue_push_pending;
                } else if (dst.valid()) {
                    sbOf(slot, dst) = kNeverCycle;
                }
                if (sink_) {
                    obs::Event ev;
                    ev.cycle = c;
                    ev.kind = obs::EventKind::Issue;
                    ev.slot = static_cast<std::int8_t>(slot_id);
                    ev.fu = static_cast<std::int8_t>(cls);
                    ev.pc = entry.pc;
                    ev.insn = encode(insn);
                    sink_->event(ev);
                }
                sched_units_[static_cast<int>(cls)].submit(
                    std::move(op));
                ++slot.ungranted_total;
                ++slot.ungranted_class[static_cast<int>(cls)];
                if (insn.isMem())
                    ++slot.ungranted_mem;
                ++issues;
                done[i] = 1;
            } else {
                RegRef srcs[3];
                const int n = insn.srcs(srcs);
                for (int s = 0; s < n; ++s) {
                    if (srcs[s].file == RF::Fp)
                        addMask(pr_fp, srcs[s].idx);
                    else
                        addMask(pr_int, srcs[s].idx);
                }
                if (dst.valid()) {
                    if (dst.file == RF::Fp)
                        addMask(pw_fp, dst.idx);
                    else if (dst.idx != 0)
                        addMask(pw_int, dst.idx);
                }
                if (insn.isMem())
                    mem_blocked = true;
                // Conservatively keep queue writes and reads in
                // order even when we cannot cheaply tell the
                // mapping here.
                queue_write_blocked = true;
                queue_read_blocked = true;
            }
        }

        if (!flushed) {
            size_t w = 0;
            for (size_t i = 0; i < slot.window.size(); ++i) {
                if (!done[i])
                    slot.window[w++] = slot.window[i];
            }
            slot.window.resize(w);
        }
    }

    // D1: move instructions from the queue unit into the window.
    if (slot.frame >= 0 && !slot.trap_pending) {
        while (static_cast<int>(slot.window.size()) < cfg_.width &&
               !slot.iqueue.empty()) {
            const Addr a = slot.iqueue.front();
            slot.iqueue.pop_front();
            slot.window.push_back(
                WindowEntry{text_.at(a), a, false});
        }
    }
}

void
MultithreadedProcessor::decodePhase(Cycle c)
{
    // Decode in current priority order; determinism matters for the
    // queue-register network. The order is snapshotted into a
    // reused buffer (decodeSlot must not observe a mid-phase ring
    // change, and a fresh vector per cycle would churn the heap).
    decode_order_.assign(ring_.begin(), ring_.end());
    for (int s : decode_order_)
        decodeSlot(s, c);
}

void
MultithreadedProcessor::rotationPhase(Cycle c)
{
    bool rotated = false;
    if (rotation_mode_ == RotationMode::Implicit &&
        rotation_interval_ > 0 &&
        c % static_cast<Cycle>(rotation_interval_) == 0) {
        rotateRing();
        rotated = true;
    }
    if (rotate_requested_) {
        rotateRing();
        rotate_requested_ = false;
        rotated = true;
    }
    if (rotated && sink_)
        emitRing(c);
}

bool
MultithreadedProcessor::allDone() const
{
    for (const Context &ctx : contexts_) {
        if (ctx.state != CtxState::Unused &&
            ctx.state != CtxState::Finished) {
            return false;
        }
    }
    for (const Slot &slot : slots_) {
        if (slot.frame >= 0 && slot.ungranted_total > 0)
            return false;
    }
    return true;
}

void
MultithreadedProcessor::dumpState(std::ostream &os) const
{
    os << "cycle " << now_ << " ring:";
    for (int s : ring_)
        os << ' ' << s;
    os << '\n';
    for (int s = 0; s < cfg_.num_slots; ++s) {
        const Slot &slot = slots_[s];
        os << "slot " << s << ": frame=" << slot.frame
           << " trap=" << slot.trap_pending
           << " iq=" << slot.iqueue.size()
           << " win=" << slot.window.size()
           << " ungranted=" << slot.ungranted_total
           << " qpush=" << slot.queue_push_pending
           << " d2_allowed=" << slot.d2_allowed;
        if (!slot.window.empty()) {
            os << " front='"
               << disassemble(slot.window.front().insn) << "' @"
               << slot.window.front().pc;
        }
        os << '\n';
    }
    for (size_t f = 0; f < contexts_.size(); ++f) {
        const Context &ctx = contexts_[f];
        os << "ctx " << f << ": state="
           << static_cast<int>(ctx.state)
           << " resume=" << ctx.resume_pc << '\n';
    }
}

// ---------------------------------------------------------------
// Idle-cycle fast-forward (docs/PERF.md)
// ---------------------------------------------------------------

Cycle
MultithreadedProcessor::nextEventCycle(Cycle c) const
{
    Cycle ev = kNeverCycle;
    const Addr end = prog_.textEnd();

    // Fetch deliveries land at their done_at.
    for (const FetchPort &port : ports_) {
        for (const FetchOp &op : port.inflight)
            ev = std::min(ev, op.done_at);
    }

    bool free_slot = false;
    for (int s = 0; s < cfg_.num_slots; ++s) {
        const Slot &slot = slots_[s];
        if (slot.frame < 0) {
            free_slot = true;
            continue;
        }
        if (slot.trap_pending) {
            // A drained switch-out unbinds in the next contextPhase.
            if (slot.ungranted_total == 0)
                return c + 1;
            continue;   // remaining drain comes via grant events
        }
        // A new fetch starts once this slot's port is idle.
        if (!slot.fetch_inflight &&
            cfg_.iqueueWords() >
                static_cast<int>(slot.iqueue.size()) &&
            slot.fetch_addr < end) {
            const FetchPort &port =
                ports_[cfg_.private_icache ? s : 0];
            ev = std::min(ev, std::max(c + 1, port.free_at));
        }
        // A non-empty window is (re)examined by D2 once the refill
        // bubble expires — even a fruitless attempt bumps stall
        // counters, so it can never be skipped over.
        if (!slot.window.empty())
            ev = std::min(ev, std::max(c + 1, slot.d2_allowed));
        // D1 moves queued instructions into free window space.
        if (static_cast<int>(slot.window.size()) < cfg_.width &&
            !slot.iqueue.empty()) {
            return c + 1;
        }
    }

    // Queue-register deposits land at the producer's write-back.
    for (const PendingPush &push : pending_pushes_)
        ev = std::min(ev, push.at);

    // Standby latches and grants.
    for (const ScheduleUnit &su : sched_units_)
        ev = std::min(ev, su.nextEventCycle());

    // Context wake-ups and binds.
    if (free_slot && !ready_fifo_.empty())
        return c + 1;
    for (const Context &ctx : contexts_) {
        if (ctx.state == CtxState::WaitRemote)
            ev = std::min(ev, ctx.ready_at);
    }

    return std::max(ev, c + 1);
}

void
MultithreadedProcessor::fastForward(Cycle stop)
{
    // Cheap gate: when any slot can attempt a decode or refill its
    // window next cycle, nothing is skippable — bail before the
    // full event scan below touches ports, schedule units and
    // contexts. On busy workloads this loop is the entire cost of
    // having fast-forward enabled.
    for (const Slot &slot : slots_) {
        if (slot.frame < 0 || slot.trap_pending)
            continue;
        if (!slot.window.empty() && slot.d2_allowed <= now_ + 1)
            return;
        if (static_cast<int>(slot.window.size()) < cfg_.width &&
            !slot.iqueue.empty())
            return;
    }
    const Cycle next = nextEventCycle(now_);
    if (next <= now_ + 1)
        return;
    // Skip cycles now_+1 .. target-1; the loop increment then lands
    // on the event cycle (or past the stop cycle when nothing is
    // pending, matching the naive loop's budget exhaustion). The
    // clamp to `stop` keeps runUntil() bit-identical to run():
    // skipped cycles are no-ops and the batched rotation below is
    // linear in the cycle count, so splitting the jump at a
    // checkpoint boundary changes nothing.
    const Cycle target = std::min(next, stop + 1);
    if (rotation_mode_ == RotationMode::Implicit &&
        rotation_interval_ > 0 && ring_.size() > 1) {
        // Batch-apply the implicit rotations the skipped cycles
        // would have performed: one per multiple of the interval.
        const Cycle ival = static_cast<Cycle>(rotation_interval_);
        const std::uint64_t rotations =
            (target - 1) / ival - now_ / ival;
        const std::size_t r = rotations % ring_.size();
        if (r > 0) {
            std::rotate(ring_.begin(),
                        ring_.begin() + static_cast<long>(r),
                        ring_.end());
            if (sink_)
                emitRing(target - 1);
        }
    }
    now_ = target - 1;
}

RunStats
MultithreadedProcessor::run()
{
    return runUntil(cfg_.max_cycles);
}

RunStats
MultithreadedProcessor::runUntil(Cycle stop)
{
    stop = std::min(stop, cfg_.max_cycles);
    if (finished_)
        return stats_;
    if (snapshot_pending_)
        emitStateSnapshot();

    while (now_ < stop) {
        ++now_;
        fetchPhase(now_);
        schedulePhase(now_);
        contextPhase(now_);
        decodePhase(now_);
        rotationPhase(now_);
        if (allDone()) {
            // Replay sanity: a finished run must have consumed
            // every record of every claimed stream, or the timing
            // it produced came from the wrong dynamic path.
            if (replay_)
                checkReplayDrained();
            stats_.cycles = std::max(now_, last_activity_);
            stats_.finished = true;
            finished_ = true;
            if (sink_) {
                obs::Event ev;
                ev.cycle = stats_.cycles;
                ev.kind = obs::EventKind::RunEnd;
                ev.a = stats_.instructions;
                sink_->event(ev);
                sink_->flush();
            }
            return stats_;
        }
        if (cfg_.fast_forward)
            fastForward(stop);
    }
    if (now_ >= cfg_.max_cycles) {
        stats_.cycles = cfg_.max_cycles;
        stats_.finished = false;
        if (sink_) {
            obs::Event ev;
            ev.cycle = stats_.cycles;
            ev.kind = obs::EventKind::RunEnd;
            ev.a = stats_.instructions;
            sink_->event(ev);
            sink_->flush();
        }
    }
    return stats_;
}

void
MultithreadedProcessor::setEventSink(obs::EventSink *sink)
{
    sink_ = sink;
    owned_sink_.reset();
    for (ScheduleUnit &su : sched_units_)
        su.setSink(sink_);
    snapshot_pending_ = sink_ != nullptr;
}

void
MultithreadedProcessor::setPipeTrace(std::ostream *os)
{
    if (!os) {
        setEventSink(nullptr);
        return;
    }
    setEventSink(nullptr);
    owned_sink_ = std::make_unique<obs::TextSink>(*os);
    sink_ = owned_sink_.get();
    for (ScheduleUnit &su : sched_units_)
        su.setSink(sink_);
    snapshot_pending_ = true;
}

void
MultithreadedProcessor::emitRing(Cycle c)
{
    obs::Event ev;
    ev.cycle = c;
    ev.kind = obs::EventKind::RingState;
    ev.unit = static_cast<std::int16_t>(ring_.size());
    ev.a = obs::packRing(ring_.data(),
                         static_cast<int>(ring_.size()));
    sink_->event(ev);
}

void
MultithreadedProcessor::emitStateSnapshot()
{
    snapshot_pending_ = false;
    if (!sink_)
        return;

    obs::Event ev;
    ev.cycle = now_;
    ev.kind = obs::EventKind::Snapshot;
    ev.a = stats_.instructions;
    sink_->event(ev);

    emitRing(now_);

    for (int s = 0; s < cfg_.num_slots; ++s) {
        const Slot &slot = slots_[s];
        if (slot.frame < 0)
            continue;
        obs::Event bind;
        bind.cycle = now_;
        bind.kind = obs::EventKind::SlotBind;
        bind.slot = static_cast<std::int8_t>(s);
        bind.unit = static_cast<std::int16_t>(slot.frame);
        bind.pc = contexts_[slot.frame].resume_pc;
        sink_->event(bind);
    }

    for (int l = 0; l < ring_regs_.numLinks(); ++l) {
        obs::Event qs;
        qs.cycle = now_;
        qs.kind = obs::EventKind::QueueState;
        qs.slot = static_cast<std::int8_t>(l);
        qs.a = static_cast<std::uint64_t>(ring_regs_.sizeOf(l));
        sink_->event(qs);
    }

    for (const ScheduleUnit &su : sched_units_)
        su.snapshotTo(*sink_, now_);
}

} // namespace smtsim
