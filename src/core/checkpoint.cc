/**
 * @file
 * Full machine checkpoints for the multithreaded core: every piece
 * of state that run()/runUntil() reads — contexts, thread slots,
 * fetch ports, schedule units + standby stations, the queue-register
 * ring, caches, statistics and the backing memory image — is
 * serialized so a restored processor continues bit-identically (the
 * determinism tests compare final statistics, registers and memory
 * against an unsnapshotted run). docs/OBSERVABILITY.md documents the
 * format; bump kCheckpointVersion on any layout change.
 */

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "base/hash.hh"
#include "core/processor.hh"
#include "obs/serial.hh"

namespace smtsim
{

namespace
{

/** "SMTCKPT1" read as a little-endian u64. */
constexpr std::uint64_t kCheckpointMagic = 0x3154504b43544d53ull;
constexpr std::uint32_t kCheckpointVersion = 1;

void
fail(const std::string &what)
{
    throw std::runtime_error("checkpoint: " + what);
}

void
writeInsn(obs::ByteWriter &w, const Insn &insn)
{
    // Fields directly, never via encode(): the checkpoint must not
    // depend on an encode/decode round trip.
    w.u16(static_cast<std::uint16_t>(insn.op));
    w.u8(insn.rd);
    w.u8(insn.rs);
    w.u8(insn.rt);
    w.i32(insn.imm);
}

Insn
readInsn(obs::ByteReader &r)
{
    Insn insn;
    insn.op = static_cast<Op>(r.u16());
    insn.rd = r.u8();
    insn.rs = r.u8();
    insn.rt = r.u8();
    insn.imm = r.i32();
    return insn;
}

void
writeOptReg(obs::ByteWriter &w, const std::optional<RegIndex> &v)
{
    w.b(v.has_value());
    w.u8(v.value_or(0));
}

std::optional<RegIndex>
readOptReg(obs::ByteReader &r)
{
    const bool has = r.b();
    const RegIndex idx = r.u8();
    return has ? std::optional<RegIndex>(idx) : std::nullopt;
}

void
writeCache(obs::ByteWriter &w,
           const std::optional<DirectMappedCache> &cache)
{
    w.b(cache.has_value());
    if (!cache.has_value())
        return;
    const auto &ways = cache->rawWays();
    w.u32(static_cast<std::uint32_t>(ways.size()));
    for (const auto &way : ways) {
        w.u64(way.tag);
        w.u64(way.last_used);
    }
    w.u64(cache->tick());
    w.u64(cache->hits());
    w.u64(cache->misses());
}

void
readCache(obs::ByteReader &r,
          std::optional<DirectMappedCache> &cache)
{
    const bool present = r.b();
    if (present != cache.has_value())
        fail("cache presence mismatch");
    if (!present)
        return;
    const std::uint32_t n = r.u32();
    if (n != cache->rawWays().size())
        fail("cache shape mismatch");
    std::vector<DirectMappedCache::Way> ways(n);
    for (auto &way : ways) {
        way.tag = r.u64();
        way.last_used = r.u64();
    }
    const std::uint64_t tick = r.u64();
    const std::uint64_t hits = r.u64();
    const std::uint64_t misses = r.u64();
    cache->restoreRaw(std::move(ways), tick, hits, misses);
}

void
writeRunStats(obs::ByteWriter &w, const RunStats &s)
{
    w.u64(s.cycles);
    w.u64(s.instructions);
    w.b(s.finished);
    for (std::uint64_t v : s.fu_grants)
        w.u64(v);
    for (std::uint64_t v : s.fu_busy)
        w.u64(v);
    for (const auto &units : s.unit_busy) {
        w.u32(static_cast<std::uint32_t>(units.size()));
        for (std::uint64_t v : units)
            w.u64(v);
    }
    w.u64(s.branches);
    w.u64(s.loads);
    w.u64(s.stores);
    w.u64(s.standby_stalls);
    w.u64(s.context_switches);
    w.u64(s.writeback_conflicts);
    w.u64(s.dcache_hits);
    w.u64(s.dcache_misses);
    w.u64(s.icache_hits);
    w.u64(s.icache_misses);
}

void
readRunStats(obs::ByteReader &r, RunStats &s)
{
    s.cycles = r.u64();
    s.instructions = r.u64();
    s.finished = r.b();
    for (std::uint64_t &v : s.fu_grants)
        v = r.u64();
    for (std::uint64_t &v : s.fu_busy)
        v = r.u64();
    for (auto &units : s.unit_busy) {
        const std::uint32_t n = r.u32();
        units.assign(n, 0);
        for (std::uint64_t &v : units)
            v = r.u64();
    }
    s.branches = r.u64();
    s.loads = r.u64();
    s.stores = r.u64();
    s.standby_stalls = r.u64();
    s.context_switches = r.u64();
    s.writeback_conflicts = r.u64();
    s.dcache_hits = r.u64();
    s.dcache_misses = r.u64();
    s.icache_hits = r.u64();
    s.icache_misses = r.u64();
}

void
writeMemory(obs::ByteWriter &w, const MainMemory &mem)
{
    // pages() iterates in unordered_map order; sort by base address
    // so checkpoints of identical machine states are byte-stable.
    std::vector<std::pair<Addr, const MainMemory::Page *>> pages;
    pages.reserve(mem.pages().size());
    for (const auto &[index, page] : mem.pages())
        pages.emplace_back(index, &page);
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    w.u32(static_cast<std::uint32_t>(pages.size()));
    for (const auto &[index, page] : pages) {
        // The page table is keyed by page index; the stream stores
        // the byte base address.
        w.u32(index * MainMemory::kPageBytes);
        w.u32(static_cast<std::uint32_t>(page->size()));
        w.bytes(page->data(), page->size());
    }
}

void
readMemory(obs::ByteReader &r, MainMemory &mem)
{
    mem.reset();
    const std::uint32_t n = r.u32();
    std::vector<std::uint8_t> bytes;
    for (std::uint32_t i = 0; i < n; ++i) {
        const Addr base = r.u32();
        const std::uint32_t len = r.u32();
        if (len > MainMemory::kPageBytes)
            fail("implausible page size");
        bytes.resize(len);
        r.bytes(bytes.data(), len);
        mem.loadBytes(base, bytes);
    }
}

} // namespace

std::uint64_t
MultithreadedProcessor::checkpointFingerprint() const
{
    Fnv1a h;
    auto add = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            const unsigned char byte =
                static_cast<unsigned char>(v >> (8 * i));
            h.add(&byte, 1);
        }
    };
    h.add("smtsim-ckpt-fp-v1");

    // Program image: a checkpoint is only meaningful against the
    // exact text/data it was taken from.
    add(prog_.text_base);
    add(prog_.text.size());
    for (std::uint32_t word : prog_.text)
        add(word);
    add(prog_.data_base);
    add(prog_.data.size());
    if (!prog_.data.empty())
        h.add(prog_.data.data(), prog_.data.size());
    add(prog_.entry);

    // Every configuration field that shapes the machine state or
    // its timing (max_cycles and fast_forward are excluded: both
    // are bit-identical knobs of the same trajectory).
    add(static_cast<std::uint64_t>(cfg_.num_slots));
    add(static_cast<std::uint64_t>(cfg_.frames()));
    add(static_cast<std::uint64_t>(cfg_.width));
    add(static_cast<std::uint64_t>(cfg_.fus.int_alu));
    add(static_cast<std::uint64_t>(cfg_.fus.shifter));
    add(static_cast<std::uint64_t>(cfg_.fus.int_mul));
    add(static_cast<std::uint64_t>(cfg_.fus.fp_add));
    add(static_cast<std::uint64_t>(cfg_.fus.fp_mul));
    add(static_cast<std::uint64_t>(cfg_.fus.fp_div));
    add(static_cast<std::uint64_t>(cfg_.fus.load_store));
    add(cfg_.standby_enabled ? 1 : 0);
    add(static_cast<std::uint64_t>(cfg_.rotation_mode));
    add(static_cast<std::uint64_t>(cfg_.rotation_interval));
    add(cfg_.private_icache ? 1 : 0);
    add(static_cast<std::uint64_t>(cfg_.icache_cycles));
    add(static_cast<std::uint64_t>(cfg_.iqueueWords()));
    add(static_cast<std::uint64_t>(cfg_.queue_reg_depth));
    add(static_cast<std::uint64_t>(cfg_.branch_gap));
    add(static_cast<std::uint64_t>(cfg_.context_switch_cycles));
    add(cfg_.remote.base);
    add(cfg_.remote.size);
    add(cfg_.remote.latency);
    for (const CacheConfig *cc : {&cfg_.dcache, &cfg_.icache}) {
        add(cc->size_bytes);
        add(cc->line_bytes);
        add(static_cast<std::uint64_t>(cc->ways));
        add(cc->miss_penalty);
    }
    return h.digest();
}

void
MultithreadedProcessor::saveCheckpoint(std::ostream &os) const
{
    obs::ByteWriter w(os);
    w.u64(kCheckpointMagic);
    w.u32(kCheckpointVersion);
    w.u64(checkpointFingerprint());
    w.u64(now_);

    // --- contexts ------------------------------------------------
    w.u32(static_cast<std::uint32_t>(contexts_.size()));
    for (const Context &ctx : contexts_) {
        w.u8(static_cast<std::uint8_t>(ctx.state));
        w.u32(ctx.resume_pc);
        for (std::uint32_t reg : ctx.iregs)
            w.u32(reg);
        for (double reg : ctx.fregs)
            w.f64(reg);
        writeOptReg(w, ctx.q_read_int);
        writeOptReg(w, ctx.q_write_int);
        writeOptReg(w, ctx.q_read_fp);
        writeOptReg(w, ctx.q_write_fp);
        w.u32(static_cast<std::uint32_t>(ctx.replay.size()));
        for (const ReplayEntry &e : ctx.replay) {
            writeInsn(w, e.insn);
            w.u32(e.pc);
        }
        w.u64(ctx.ready_at);
        w.b(ctx.satisfied_addr.has_value());
        w.u32(ctx.satisfied_addr.value_or(0));
        w.u64(ctx.insns);
    }

    // --- thread slots --------------------------------------------
    w.u32(static_cast<std::uint32_t>(slots_.size()));
    for (const Slot &slot : slots_) {
        w.i32(slot.frame);
        w.b(slot.trap_pending);
        w.u32(static_cast<std::uint32_t>(slot.iqueue.size()));
        for (Addr a : slot.iqueue)
            w.u32(a);
        w.u32(slot.fetch_addr);
        w.b(slot.fetch_inflight);
        w.u32(static_cast<std::uint32_t>(slot.window.size()));
        for (const WindowEntry &e : slot.window) {
            writeInsn(w, e.insn);
            w.u32(e.pc);
            w.b(e.replay);
        }
        w.u64(slot.d2_allowed);
        for (Cycle c : slot.isb)
            w.u64(c);
        for (Cycle c : slot.fsb)
            w.u64(c);
        w.i32(slot.ungranted_total);
        for (int v : slot.ungranted_class)
            w.i32(v);
        w.i32(slot.ungranted_mem);
        w.i32(slot.queue_push_pending);
        for (const Slot::WbBin &bin : slot.wb_ring) {
            w.u64(bin.at);
            w.i32(bin.count);
        }
    }

    // --- fetch engine --------------------------------------------
    w.u32(static_cast<std::uint32_t>(ports_.size()));
    for (const FetchPort &port : ports_) {
        w.u64(port.free_at);
        w.u32(static_cast<std::uint32_t>(port.inflight.size()));
        for (const FetchOp &op : port.inflight) {
            w.i32(op.slot);
            w.u32(op.addr);
            w.i32(op.words);
            w.b(op.redirect);
            w.u64(op.done_at);
        }
        w.i32(port.rr_next);
    }

    // --- schedule units + queue ring -----------------------------
    w.u32(static_cast<std::uint32_t>(sched_units_.size()));
    for (const ScheduleUnit &su : sched_units_)
        su.serialize(w);
    ring_regs_.serialize(w);
    w.u32(static_cast<std::uint32_t>(pending_pushes_.size()));
    for (const PendingPush &push : pending_pushes_) {
        w.u64(push.at);
        w.i32(push.slot);
        w.u64(push.value);
    }

    // --- priority ring + run-loop scalars ------------------------
    w.u32(static_cast<std::uint32_t>(ring_.size()));
    for (int s : ring_)
        w.i32(s);
    w.b(rotate_requested_);
    // SETRMODE mutates the rotation mode/interval at runtime, so
    // the live values are state, not configuration.
    w.u8(static_cast<std::uint8_t>(rotation_mode_));
    w.i32(rotation_interval_);
    w.u64(last_activity_);
    w.u64(now_);
    w.b(finished_);
    w.u32(static_cast<std::uint32_t>(ready_fifo_.size()));
    for (int frame : ready_fifo_)
        w.i32(frame);

    // --- statistics ----------------------------------------------
    writeRunStats(w, stats_);
    w.u32(static_cast<std::uint32_t>(detail_.all().size()));
    for (const auto &[name, value] : detail_.all()) {
        w.str(name);
        w.u64(value);
    }

    // --- caches + memory -----------------------------------------
    writeCache(w, dcache_);
    writeCache(w, icache_);
    writeMemory(w, mem_);

    os.flush();
    if (!w.ok())
        fail("write failed");
}

void
MultithreadedProcessor::restoreCheckpoint(std::istream &is)
{
    obs::ByteReader r(is);
    obs::expectU64(r, kCheckpointMagic, "checkpoint magic");
    obs::expectU32(r, kCheckpointVersion, "checkpoint version");
    obs::expectU64(r, checkpointFingerprint(),
                   "checkpoint fingerprint (program/config "
                   "mismatch)");
    r.u64();    // header copy of now_ (peekable without parsing)

    // --- contexts ------------------------------------------------
    const std::uint32_t nctx = r.u32();
    if (nctx != contexts_.size())
        fail("context-frame count mismatch");
    for (Context &ctx : contexts_) {
        const std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(CtxState::Finished))
            fail("bad context state");
        ctx.state = static_cast<CtxState>(state);
        ctx.resume_pc = r.u32();
        for (std::uint32_t &reg : ctx.iregs)
            reg = r.u32();
        for (double &reg : ctx.fregs)
            reg = r.f64();
        ctx.q_read_int = readOptReg(r);
        ctx.q_write_int = readOptReg(r);
        ctx.q_read_fp = readOptReg(r);
        ctx.q_write_fp = readOptReg(r);
        ctx.replay.clear();
        const std::uint32_t nreplay = r.u32();
        for (std::uint32_t i = 0; i < nreplay; ++i) {
            ReplayEntry e;
            e.insn = readInsn(r);
            e.pc = r.u32();
            ctx.replay.push_back(e);
        }
        ctx.ready_at = r.u64();
        const bool has_sat = r.b();
        const Addr sat = r.u32();
        ctx.satisfied_addr =
            has_sat ? std::optional<Addr>(sat) : std::nullopt;
        ctx.insns = r.u64();
    }

    // --- thread slots --------------------------------------------
    const std::uint32_t nslots = r.u32();
    if (nslots != slots_.size())
        fail("thread-slot count mismatch");
    for (Slot &slot : slots_) {
        slot.frame = r.i32();
        slot.trap_pending = r.b();
        slot.iqueue.clear();
        const std::uint32_t niq = r.u32();
        for (std::uint32_t i = 0; i < niq; ++i)
            slot.iqueue.push_back(r.u32());
        slot.fetch_addr = r.u32();
        slot.fetch_inflight = r.b();
        slot.window.clear();
        const std::uint32_t nwin = r.u32();
        for (std::uint32_t i = 0; i < nwin; ++i) {
            WindowEntry e;
            e.insn = readInsn(r);
            e.pc = r.u32();
            e.replay = r.b();
            slot.window.push_back(e);
        }
        slot.d2_allowed = r.u64();
        for (Cycle &c : slot.isb)
            c = r.u64();
        for (Cycle &c : slot.fsb)
            c = r.u64();
        slot.ungranted_total = r.i32();
        for (int &v : slot.ungranted_class)
            v = r.i32();
        slot.ungranted_mem = r.i32();
        slot.queue_push_pending = r.i32();
        for (Slot::WbBin &bin : slot.wb_ring) {
            bin.at = r.u64();
            bin.count = r.i32();
        }
        slot.decode_done.clear();   // per-cycle scratch
    }

    // --- fetch engine --------------------------------------------
    const std::uint32_t nports = r.u32();
    if (nports != ports_.size())
        fail("fetch-port count mismatch");
    for (FetchPort &port : ports_) {
        port.free_at = r.u64();
        port.inflight.clear();
        const std::uint32_t nops = r.u32();
        for (std::uint32_t i = 0; i < nops; ++i) {
            FetchOp op;
            op.slot = r.i32();
            op.addr = r.u32();
            op.words = r.i32();
            op.redirect = r.b();
            op.done_at = r.u64();
            port.inflight.push_back(op);
        }
        port.rr_next = r.i32();
    }

    // --- schedule units + queue ring -----------------------------
    const std::uint32_t nsched = r.u32();
    if (nsched != sched_units_.size())
        fail("schedule-unit count mismatch");
    for (ScheduleUnit &su : sched_units_)
        su.deserialize(r);
    ring_regs_.deserialize(r);
    pending_pushes_.clear();
    const std::uint32_t npush = r.u32();
    for (std::uint32_t i = 0; i < npush; ++i) {
        PendingPush push;
        push.at = r.u64();
        push.slot = r.i32();
        push.value = r.u64();
        pending_pushes_.push_back(push);
    }

    // --- priority ring + run-loop scalars ------------------------
    const std::uint32_t nring = r.u32();
    if (nring != ring_.size())
        fail("priority-ring size mismatch");
    for (int &s : ring_)
        s = r.i32();
    rotate_requested_ = r.b();
    const std::uint8_t rmode = r.u8();
    if (rmode > static_cast<std::uint8_t>(RotationMode::Explicit))
        fail("bad rotation mode");
    rotation_mode_ = static_cast<RotationMode>(rmode);
    rotation_interval_ = r.i32();
    last_activity_ = r.u64();
    now_ = r.u64();
    finished_ = r.b();
    ready_fifo_.clear();
    const std::uint32_t nready = r.u32();
    for (std::uint32_t i = 0; i < nready; ++i)
        ready_fifo_.push_back(r.i32());

    // --- statistics ----------------------------------------------
    readRunStats(r, stats_);
    // Zero existing counters, then apply the saved values through
    // counter(): reset() would invalidate the stall-counter
    // pointers resolved at construction (std::map nodes are stable;
    // the checkpoint may simply lack counters never bumped so far).
    for (const auto &[name, value] : detail_.all()) {
        (void)value;
        detail_.counter(name) = 0;
    }
    const std::uint32_t ndetail = r.u32();
    for (std::uint32_t i = 0; i < ndetail; ++i) {
        const std::string name = r.str();
        const std::uint64_t value = r.u64();
        detail_.counter(name) = value;
    }

    // --- caches + memory -----------------------------------------
    readCache(r, dcache_);
    readCache(r, icache_);
    readMemory(r, mem_);

    // An attached event stream must be self-contained from here on.
    snapshot_pending_ = sink_ != nullptr;
    grants_scratch_.clear();
}

} // namespace smtsim
