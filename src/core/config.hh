/**
 * @file
 * Configuration of the multithreaded processor (the paper's machine
 * model, section 2.1).
 */

#ifndef SMTSIM_CORE_CONFIG_HH
#define SMTSIM_CORE_CONFIG_HH

#include <cstdint>

#include "base/types.hh"
#include "machine/fu_pool.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"

namespace smtsim
{

/** Instruction-schedule-unit priority rotation mode (section 2.2). */
enum class RotationMode
{
    Implicit,   ///< rotate every rotation_interval cycles
    Explicit    ///< rotate on change-priority instructions only
};

/** Multithreaded-core configuration. */
struct CoreConfig
{
    /** Number of thread slots S (logical processors). */
    int num_slots = 4;
    /**
     * Number of context frames (register banks). -1 means "equal to
     * num_slots"; larger values enable concurrent multithreading.
     */
    int num_frames = -1;
    /** Per-slot issue width D (Table 3's hybrid processors). */
    int width = 1;
    /** Functional-unit inventory (shared by all slots). */
    FuPoolConfig fus;
    /** Standby stations present (Table 2 ablation). */
    bool standby_enabled = true;

    RotationMode rotation_mode = RotationMode::Implicit;
    /** Rotation interval in cycles (paper sweeps 2^n, default 8). */
    int rotation_interval = 8;

    /** Private per-slot instruction cache + fetch unit (3.2). */
    bool private_icache = false;
    /** Instruction/data cache access cycles C (paper: 2). */
    int icache_cycles = 2;
    /**
     * Instruction-queue capacity in words. -1 selects the paper's
     * "at least B = S * C" (scaled by the issue width D) plus one
     * cache access worth of slack, which covers the fetch latency
     * so a lone thread is not starved.
     */
    int iqueue_words = -1;

    /** Queue-register FIFO depth (Figure 5 shows 4 entries). */
    int queue_reg_depth = 4;

    /**
     * Cycle gap between a branch resolving in decode and the next
     * instruction of the same thread reaching decode, absent fetch
     * contention (paper: 5 = D1 + 2-cycle cache + 2 IF stages).
     */
    int branch_gap = 5;

    /** Pipeline refill cost when binding a context to a slot. */
    int context_switch_cycles = 2;

    /** Remote-memory region for concurrent multithreading (off by
     *  default, matching the paper's all-hit assumption). */
    RemoteRegion remote;

    /**
     * Finite cache models (the paper's future work; disabled by
     * default, matching its all-hit simulation). The data cache
     * adds miss_penalty cycles to a missing access's result
     * latency; the instruction cache delays fetch-block delivery
     * per missing line. Both are shared by all thread slots.
     */
    CacheConfig dcache;
    CacheConfig icache;

    /**
     * Idle-cycle fast-forward: when a cycle provably admits no
     * state change (every slot drained or stalled on a known-future
     * event), jump straight to the next event cycle instead of
     * walking every phase. Simulated cycle counts, statistics and
     * rotation phase are bit-identical either way (docs/PERF.md);
     * the flag exists so the naive loop stays available as the
     * oracle for the cycle-exactness tests.
     */
    bool fast_forward = true;

    std::uint64_t max_cycles = 2'000'000'000ull;

    int
    frames() const
    {
        return num_frames < 0 ? num_slots : num_frames;
    }

    /** One fetch operation brings at most this many words (B). */
    int
    fetchBlockWords() const
    {
        return num_slots * icache_cycles * width;
    }

    int
    iqueueWords() const
    {
        return iqueue_words < 0
                   ? fetchBlockWords() + icache_cycles * width
                   : iqueue_words;
    }
};

} // namespace smtsim

#endif // SMTSIM_CORE_CONFIG_HH
