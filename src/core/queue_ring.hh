/**
 * @file
 * Queue registers (section 2.3.1): a ring of FIFO links between
 * logical processors, used to pass loop-carried values without going
 * through memory. Link i carries data from logical processor i to
 * logical processor (i+1) mod S. Full/empty state acts as the
 * scoreboard bits that interlock the decode units.
 */

#ifndef SMTSIM_CORE_QUEUE_RING_HH
#define SMTSIM_CORE_QUEUE_RING_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "base/types.hh"
#include "obs/serial.hh"

namespace smtsim
{

/** The ring of queue-register FIFOs. */
class QueueRing
{
  public:
    QueueRing(int num_slots, int depth);

    /** Can @p consumer_slot pop @p count values this cycle? */
    bool canPop(int consumer_slot, int count) const;

    /** Pop the next value arriving at @p consumer_slot. */
    std::uint64_t pop(int consumer_slot);

    /**
     * Will the producer's link accept one more value, counting
     * reservations of in-flight writers?
     */
    bool canReserve(int producer_slot) const;

    /** Reserve one entry on the producer's link (at issue time). */
    void reserve(int producer_slot);

    /** Deposit a value, consuming one reservation (at write-back). */
    void push(int producer_slot, std::uint64_t value);

    /** Drop one reservation without pushing (flush of a writer). */
    void unreserve(int producer_slot);

    /** Empty all links and reservations (kill-threads semantics). */
    void clear();

    int depth() const { return depth_; }

    /** Number of links (== number of slots). */
    int numLinks() const { return static_cast<int>(links_.size()); }

    /** Values resident on link @p link (slot link -> link+1). */
    int
    sizeOf(int link) const
    {
        return static_cast<int>(links_[link].fifo.size());
    }

    /** Checkpoint support (docs/OBSERVABILITY.md). */
    void serialize(obs::ByteWriter &w) const;
    void deserialize(obs::ByteReader &r);

  private:
    struct Link
    {
        std::deque<std::uint64_t> fifo;
        int reserved = 0;
    };

    /** Link feeding @p consumer_slot (its ring predecessor's link). */
    const Link &linkInto(int consumer_slot) const;
    Link &linkInto(int consumer_slot);

    std::vector<Link> links_;   ///< links_[i]: slot i -> slot i+1
    int depth_;
};

} // namespace smtsim

#endif // SMTSIM_CORE_QUEUE_RING_HH
