/**
 * @file
 * The multithreaded processor of section 2: several thread slots
 * (instruction queue unit + decode unit pairs) sharing one fetch
 * unit and one pool of functional units, with simultaneous issuing
 * from multiple threads arbitrated by rotating-priority instruction
 * schedule units and standby stations.
 *
 * Timing contract implemented here (see DESIGN.md):
 *  - logical-processor pipeline IF1 IF2 D1 D2 S EX* W;
 *  - an instruction issued from D2 in cycle t reaches S in t+1; if
 *    granted in cycle g its result is usable by a D2 check in cycle
 *    g + result_latency (dependent ALU ops are 3 cycles apart);
 *  - branches execute in the decode unit; the next instruction of
 *    the same thread decodes branch_gap (5) cycles later, more if
 *    the shared fetch unit is busy with another thread;
 *  - instructions that lose schedule-unit arbitration wait in a
 *    depth-1 standby station per (FU class x slot); with standby
 *    stations disabled the whole decode unit stalls instead;
 *  - loads/stores have issue latency 2 (2-cycle data cache, always
 *    hitting unless a RemoteRegion is configured).
 */

#ifndef SMTSIM_CORE_PROCESSOR_HH
#define SMTSIM_CORE_PROCESSOR_HH

#include <array>
#include <cstdint>
#include <deque>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "asmr/program.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "core/config.hh"
#include "core/queue_ring.hh"
#include "core/remote_model.hh"
#include "core/schedule.hh"
#include "isa/insn.hh"
#include "machine/run_stats.hh"
#include "mem/memory.hh"
#include "obs/event.hh"
#include "trace/exec_trace.hh"

namespace smtsim
{

/**
 * Cycle-accurate model of the multithreaded core.
 *
 * Basic use: construct, optionally spawnContext() extra threads
 * (concurrent multithreading), then run(). The program's entry
 * thread starts on thread slot 0; FASTFORK inside the program
 * activates the remaining slots.
 */
class MultithreadedProcessor
{
  public:
    MultithreadedProcessor(const Program &prog, MainMemory &mem,
                           const CoreConfig &cfg = {});

    /**
     * Queue an additional software thread (context) to execute,
     * starting at @p entry. It runs when a context frame and thread
     * slot become available. Returns the context-frame id.
     */
    int spawnContext(Addr entry,
                     const std::array<std::uint32_t, kNumRegs> &iregs =
                         {},
                     const std::array<double, kNumRegs> &fregs = {});

    /** Simulate until every context finishes (or budget expires). */
    RunStats run();

    /**
     * Simulate until the last completed cycle reaches
     * min(@p stop, max_cycles) or the program finishes, whichever
     * comes first. Calling runUntil(k1), runUntil(k2), ... run() is
     * bit-identical to one run() — the checkpoint machinery and
     * tests rely on it. Returns the statistics so far; cycles /
     * finished are only final once finished() is true or the
     * budget is exhausted.
     */
    RunStats runUntil(Cycle stop);

    /** Last completed cycle (0 before the first). */
    Cycle now() const { return now_; }

    /** True once run()/runUntil() retired the last instruction. */
    bool finished() const { return finished_; }

    /** Post-run architectural state of a context frame. */
    std::uint32_t intReg(int frame, RegIndex idx) const;
    double fpReg(int frame, RegIndex idx) const;

    /** Detailed counters (stall breakdown etc.). */
    const stats::Group &detail() const { return detail_; }

    /** Dump slot/context/queue state (debugging aid). */
    void dumpState(std::ostream &os) const;

    /**
     * Attach a structured event sink (issue, grant, park, branch,
     * queue push/pop, rotation, trap, bind — the cycle-by-cycle
     * view of Figure 4). Pass nullptr to disable (the default);
     * disabled emission costs one branch per would-be event. The
     * sink is not owned. On the next run()/runUntil() the
     * processor emits a state snapshot so streams attached mid-run
     * (or after a checkpoint restore) are self-contained.
     */
    void setEventSink(obs::EventSink *sink);

    /**
     * Convenience shim for the classic pipe trace: attaches an
     * owned TextSink writing one human-readable line per event to
     * @p os (nullptr detaches).
     */
    void setPipeTrace(std::ostream *os);

    /**
     * Serialize the complete machine state — contexts, thread
     * slots, fetch ports, schedule units + standby stations, queue
     * ring, caches, statistics and the backing memory — so a later
     * restoreCheckpoint() resumes bit-identically
     * (docs/OBSERVABILITY.md documents the format).
     */
    void saveCheckpoint(std::ostream &os) const;

    /**
     * Restore state saved by saveCheckpoint() into this processor,
     * which must have been constructed with the same program and
     * configuration (validated via a fingerprint; throws
     * std::runtime_error on mismatch or corruption). The backing
     * memory is replaced by the checkpointed image.
     */
    void restoreCheckpoint(std::istream &is);

    /** Fingerprint binding checkpoints to (program, config). */
    std::uint64_t checkpointFingerprint() const;

    /**
     * Arm verified trace replay (the timing half of the
     * functional-first pipeline, docs/PERF.md): the run executes
     * normally, but every data-dependent decision — resolved branch
     * targets and memory effective addresses — is checked against
     * @p trace, and the run throws ReplayDivergence at the first
     * disagreement. A run that completes is therefore certified to
     * have executed exactly the recorded instruction streams, and
     * its cycles and statistics are bit-identical to an
     * execute-mode run by construction. Divergence fires precisely
     * when per-thread control flow is interleaving-dependent
     * (memory spin-waits, and KILLT, whose kill point is
     * timing-dependent) — the cases where a recorded trace cannot
     * stand in for execution. Callers catch ReplayDivergence and
     * fall back to execute mode.
     *
     * Must be called on a freshly constructed processor, before the
     * first cycle; @p trace must outlive the run and its thread
     * vector is indexed by thread slot (thread i of the recording
     * engine = slot i, the FASTFORK convention). Pass nullptr to
     * disarm. Incompatible with spawnContext() and checkpoints.
     */
    void setReplayTrace(const ExecTrace *trace);

    /**
     * Attach the many-core machine's inter-core timing model
     * (src/core/remote_model.hh). With a model attached, a
     * data-absence trap no longer charges the RemoteRegion's fixed
     * latency: the context parks with ready_at = kNeverCycle and the
     * access is handed to the model; the owner must later resolve it
     * with completeRemote(). Inline (explicit-rotation) remote waits
     * charge the model's uncontendedLatency() instead of the stub
     * latency. Must be called before the first cycle; pass nullptr
     * to detach. The model is not owned.
     */
    void setRemoteModel(RemoteTimingModel *model);

    /**
     * Resolve a remote access previously handed to the attached
     * RemoteTimingModel: context frame @p frame wakes at
     * @p ready_at, which must be in this core's future. Called by
     * the many-core machine at quantum barriers.
     */
    void completeRemote(int frame, Cycle ready_at);

    /**
     * Earliest cycle after now() at which this core can do work
     * (kNeverCycle when drained — e.g. every runnable context is
     * parked on an unresolved remote access). The many-core machine
     * uses this to pick quantum boundaries; it is exactly the idle
     * fast-forward event bound.
     */
    Cycle nextEventHint() const { return nextEventCycle(now_); }

    /** Statistics accumulated so far (final once finished()). */
    const RunStats &stats() const { return stats_; }

  private:
    // ----- contexts (section 2.1.3) ------------------------------
    enum class CtxState
    {
        Unused,
        Ready,      ///< waiting for a free thread slot
        Running,    ///< bound to a slot
        WaitRemote, ///< switched out on a data-absence trap
        Finished
    };

    /** Access-requirement-buffer entry replayed after a resume. */
    struct ReplayEntry
    {
        Insn insn;
        Addr pc = 0;
    };

    struct Context
    {
        CtxState state = CtxState::Unused;
        Addr resume_pc = 0;
        std::array<std::uint32_t, kNumRegs> iregs{};
        std::array<double, kNumRegs> fregs{};
        std::optional<RegIndex> q_read_int, q_write_int;
        std::optional<RegIndex> q_read_fp, q_write_fp;
        std::vector<ReplayEntry> replay;
        Cycle ready_at = 0;
        /** Remote line now present; next access to it hits. */
        std::optional<Addr> satisfied_addr;
        std::uint64_t insns = 0;

        /** Replay mode: which recorded thread this context plays
         *  back (-1 = none), and the per-stream read cursors. Not
         *  checkpointed — replay and checkpoints are exclusive. */
        int trace_tid = -1;
        std::size_t next_branch = 0;
        std::size_t next_mem = 0;
    };

    // ----- thread slots ------------------------------------------
    struct WindowEntry
    {
        Insn insn;
        Addr pc = 0;
        bool replay = false;
    };

    struct Slot
    {
        int frame = -1;             ///< bound context, -1 = free
        bool trap_pending = false;  ///< draining for a switch-out

        std::deque<Addr> iqueue;    ///< instruction queue unit
        Addr fetch_addr = 0;        ///< next address to fetch
        /** A FetchOp for this slot is in flight (at most one ever
         *  is; spares fetchPhase an O(inflight) scan per port). */
        bool fetch_inflight = false;
        std::vector<WindowEntry> window;
        Cycle d2_allowed = 0;       ///< front-end refill bubble

        /** Scoreboard: result-clear cycle per register; kNeverCycle
         *  while the producing instruction waits to be granted. */
        std::array<Cycle, kNumRegs> isb{};
        std::array<Cycle, kNumRegs> fsb{};

        int ungranted_total = 0;
        std::array<int, kNumFuClasses> ungranted_class{};
        int ungranted_mem = 0;
        /** Queue-register writes reserved but not yet deposited. */
        int queue_push_pending = 0;

        /** One {clear-cycle, count} bin of the write-back conflict
         *  tracker (each bank has one write port). */
        struct WbBin
        {
            Cycle at = 0;
            int count = 0;
        };

        /**
         * Write-back cycles seen recently, for the 1-write-port
         * conflict statistic, binned modulo the ring size. Live
         * clear-at values span at most the maximum result latency
         * (12 cycles), far below the ring size, so distinct live
         * cycles never share a bin; stale bins are simply
         * overwritten. Replaces a std::map whose node churn cost a
         * malloc/free pair per retired instruction.
         */
        std::array<WbBin, 64> wb_ring{};

        /** Scratch for decodeSlot's issued-entry marks; a member so
         *  the per-cycle loop never heap-allocates after warm-up. */
        std::vector<char> decode_done;
    };

    // ----- fetch engine ------------------------------------------
    struct FetchOp
    {
        int slot = -1;
        Addr addr = 0;
        int words = 0;
        bool redirect = false;
        Cycle done_at = 0;
    };

    struct FetchPort
    {
        Cycle free_at = 0;
        std::vector<FetchOp> inflight;
        int rr_next = 0;            ///< round-robin refill pointer
    };

    struct PendingPush
    {
        Cycle at = 0;
        int slot = -1;
        std::uint64_t value = 0;
    };

    // ----- per-phase helpers --------------------------------------
    void fetchPhase(Cycle c);
    void schedulePhase(Cycle c);
    void contextPhase(Cycle c);
    void decodePhase(Cycle c);
    void rotationPhase(Cycle c);
    bool allDone() const;

    // idle-cycle fast-forward (docs/PERF.md)
    /**
     * Earliest cycle after @p c at which any pipeline state can
     * change: fetch deliveries/starts, schedule-unit latches and
     * grants, queue-register deposits, context wake-ups/binds, and
     * decode attempts. Returns c + 1 whenever the very next cycle
     * may do work and kNeverCycle when the machine is drained.
     */
    Cycle nextEventCycle(Cycle c) const;
    /** Jump now_ to just before the next event (clamped to
     *  @p stop), batch-applying the implicit priority rotations of
     *  the skipped cycles. */
    void fastForward(Cycle stop);

    // decode helpers
    enum class ControlOutcome { Blocked, Issued, Flushed };

    void decodeSlot(int slot_id, Cycle c);
    ControlOutcome handleControl(int slot_id,
                                 const WindowEntry &entry, Cycle c);
    OperandValues readOperands(int slot_id, const Insn &insn);
    bool operandsReady(const Slot &slot, const Context &ctx,
                       const Insn &insn, Cycle c,
                       std::uint32_t pw_int,
                       std::uint32_t pw_fp) const;
    /** Queue-register pops @p insn performs under @p ctx's current
     *  queue mappings (0 = reads no queue register). */
    int queuePopCount(const Context &ctx, const Insn &insn) const;
    Cycle &sbOf(Slot &slot, RegRef ref);
    Cycle sbOf(const Slot &slot, RegRef ref) const;

    // grant-time execution
    void performGrant(const Grant &grant, Cycle c);
    void writeResult(int slot_id, const IssuedOp &op, bool is_fp,
                     std::uint32_t ival, double fval, Cycle c);
    void takeRemoteTrap(const IssuedOp &op, Cycle c, Addr addr);

    // verified trace replay
    /** Consume the context's next branch record; @p pc and the
     *  @p evaluated resolved target must both match it. */
    void replayBranch(Context &ctx, Addr pc, Addr evaluated);
    /** Check the context's next memory record against @p pc /
     *  @p addr without consuming it (a data-absence trap re-checks
     *  the same record on resume). */
    void replayMemAddr(const Context &ctx, Addr pc,
                       Addr addr) const;
    /** Throw unless every claimed record stream is fully drained. */
    void checkReplayDrained() const;

    // thread management
    void bindContext(int frame, int slot_id, Cycle c);
    void unbindSlot(int slot_id);
    void flushFrontEnd(int slot_id);
    void killOtherThreads(int killer_slot, Cycle c);
    Addr nextUnissuedPc(int slot_id) const;

    // fetch helpers
    FetchPort &portOf(int slot_id);
    Cycle scheduleRedirect(int slot_id, Addr target, Cycle earliest);
    void cancelFetches(int slot_id);
    /** Extra fetch cycles from instruction-cache misses. */
    Cycle icacheDelay(Addr addr, int words);

    // priority
    bool slotActive(int slot_id) const;
    bool hasTopPriority(int slot_id) const;
    void rotateRing();

    Context &ctxOf(int slot_id);
    const Context &ctxOf(int slot_id) const;

    const Program &prog_;
    MainMemory &mem_;
    CoreConfig cfg_;
    /** Text segment decoded once; every window fill indexes it. */
    PredecodedText text_;

    std::vector<Context> contexts_;
    std::vector<Slot> slots_;
    std::optional<DirectMappedCache> dcache_;
    std::optional<DirectMappedCache> icache_;
    std::vector<ScheduleUnit> sched_units_;
    std::vector<FetchPort> ports_;
    QueueRing ring_regs_;
    std::vector<PendingPush> pending_pushes_;

    /** Thread-slot priority order, highest first. */
    std::vector<int> ring_;
    bool rotate_requested_ = false;
    RotationMode rotation_mode_;
    int rotation_interval_;

    Cycle last_activity_ = 0;
    /** Last completed cycle; run loops execute cycle now_ + 1. */
    Cycle now_ = 0;
    bool finished_ = false;
    std::vector<int> ready_fifo_;   ///< Ready contexts, FIFO order

    RunStats stats_;
    stats::Group detail_{"core"};

    /** Armed execution trace for replay mode (not owned). */
    const ExecTrace *replay_ = nullptr;

    /** Inter-core timing model for remote accesses (not owned);
     *  nullptr = the fixed-latency RemoteRegion stub. */
    RemoteTimingModel *remote_model_ = nullptr;

    obs::EventSink *sink_ = nullptr;
    /** Backing storage for the setPipeTrace() TextSink shim. */
    std::unique_ptr<obs::EventSink> owned_sink_;
    /** Emit a state snapshot at the next run()/runUntil() entry. */
    bool snapshot_pending_ = false;

    /** Reused per-cycle buffers (no per-cycle heap traffic). */
    std::vector<Grant> grants_scratch_;
    std::vector<int> decode_order_;

    /**
     * Issue-path stall counters resolved once at construction;
     * detail_'s string-keyed export surface is unchanged (std::map
     * node references are stable).
     */
    std::uint64_t *stall_branch_operands_ = nullptr;
    std::uint64_t *stall_priority_ = nullptr;
    std::uint64_t *stall_waw_ = nullptr;
    std::uint64_t *stall_standby_ = nullptr;
    std::uint64_t *stall_no_standby_ = nullptr;
    std::uint64_t *stall_memorder_ = nullptr;
    std::uint64_t *stall_operands_ = nullptr;
    std::uint64_t *stall_queue_full_ = nullptr;

    /** Emit the synthetic machine-state events a fresh stream
     *  needs to be self-contained (snapshot, ring, binds, queue
     *  depths, parked ops). */
    void emitStateSnapshot();
    /** Emit the current priority-ring order at cycle @p c. */
    void emitRing(Cycle c);
};

} // namespace smtsim

#endif // SMTSIM_CORE_PROCESSOR_HH
