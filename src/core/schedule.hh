/**
 * @file
 * Instruction schedule units and standby stations (sections 2.1.1
 * and 2.2).
 *
 * One ScheduleUnit manages every functional unit of a class. Each
 * cycle it selects, in rotating thread-priority order, up to as many
 * waiting instructions as units can accept. Losers stay in their
 * depth-1 standby station (one per functional-unit class per thread
 * slot), which lets the owning decode unit keep issuing instructions
 * bound for *other* units — the paper's bounded out-of-order
 * execution.
 */

#ifndef SMTSIM_CORE_SCHEDULE_HH
#define SMTSIM_CORE_SCHEDULE_HH

#include <optional>
#include <vector>

#include "base/types.hh"
#include "isa/dataop.hh"
#include "isa/insn.hh"
#include "obs/event.hh"
#include "obs/serial.hh"

namespace smtsim
{

/** An instruction in flight between decode (D2) and execution. */
struct IssuedOp
{
    Insn insn;
    Addr pc = 0;
    int slot = -1;
    /** Operand values captured at issue (register-read model). */
    OperandValues ops;
    /** Cycle the op reaches the schedule (S) stage. */
    Cycle arrive = 0;
    /** Destination is a queue-register mapping (push, not write). */
    bool queue_write = false;
};

/** One granted instruction with its assigned functional unit. */
struct Grant
{
    IssuedOp op;
    int unit = 0;
};

/** Schedule unit for one functional-unit class. */
class ScheduleUnit
{
  public:
    ScheduleUnit(FuClass cls, int num_units, int num_slots);

    /** True while @p slot has an instruction waiting here. */
    bool slotBusy(int slot) const;

    /** Accept an instruction issued by a decode unit. */
    void submit(IssuedOp op);

    /**
     * Run the selection for cycle @p c. @p priority_order lists the
     * thread slots from highest to lowest priority.
     */
    std::vector<Grant> select(Cycle c,
                              const std::vector<int> &priority_order);

    /** Allocation-free variant: grants are appended to @p out
     *  (cleared first) so the caller can reuse one buffer. */
    void select(Cycle c, const std::vector<int> &priority_order,
                std::vector<Grant> &out);

    /**
     * Earliest cycle at which this unit can act on its current
     * contents — an incoming instruction latching into its standby
     * station, or a waiting instruction being granted once a unit
     * frees up. kNeverCycle when empty. Used by the idle-cycle
     * fast-forward; callers clamp the result to "next cycle".
     */
    Cycle nextEventCycle() const;

    /** Discard any waiting instruction of @p slot (thread killed). */
    void flushSlot(int slot);

    /**
     * Nothing in flight anywhere in this unit: no arriving
     * instructions, no occupied standby station. An idle unit's
     * select() is a guaranteed no-op, so the per-cycle schedule
     * phase skips it (hot-path profile, docs/PERF.md).
     */
    bool
    idle() const
    {
        return incoming_.empty() && standby_occupied_ == 0;
    }

    int numUnits() const { return static_cast<int>(units_.size()); }
    FuClass fuClass() const { return cls_; }

    /** Attach/detach the event sink (Park events from select()). */
    void setSink(obs::EventSink *sink) { sink_ = sink; }

    /** Emit Park events for every occupied standby station, part
     *  of the processor's state snapshot at trace start. */
    void snapshotTo(obs::EventSink &sink, Cycle c) const;

    /** Checkpoint support (docs/OBSERVABILITY.md). */
    void serialize(obs::ByteWriter &w) const;
    void deserialize(obs::ByteReader &r);

  private:
    FuClass cls_;
    obs::EventSink *sink_ = nullptr;
    /** Earliest cycle each unit accepts a new instruction. */
    std::vector<Cycle> units_;
    /** Standby stations, one per thread slot, depth 1. */
    std::vector<std::optional<IssuedOp>> standby_;
    /** Count of occupied standby stations (backs idle()). */
    int standby_occupied_ = 0;
    /** Instructions issued this cycle, arriving at S next cycle. */
    std::vector<IssuedOp> incoming_;
};

} // namespace smtsim

#endif // SMTSIM_CORE_SCHEDULE_HH
