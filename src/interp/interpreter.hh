/**
 * @file
 * Functional reference interpreter (golden model).
 *
 * Executes programs architecturally, with full support for the
 * multithreading primitives (fast-fork, queue registers, priority
 * rotation, kill-threads, priority stores), but without any timing.
 * Both pipeline models are validated against it: for every workload,
 * final memory contents and halted-register state must match.
 */

#ifndef SMTSIM_INTERP_INTERPRETER_HH
#define SMTSIM_INTERP_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "asmr/program.hh"
#include "base/types.hh"
#include "isa/insn.hh"
#include "mem/memory.hh"

namespace smtsim
{

/** Interpreter configuration. */
struct InterpConfig
{
    /** Number of logical processors (thread slots). */
    int num_threads = 1;
    /** Queue-register FIFO depth (paper's Figure 5 shows 4). */
    int queue_depth = 4;
    /** Step budget; exceeding it is reported as a failure. */
    std::uint64_t max_steps = 500'000'000;
};

/** Outcome of a functional run. */
struct InterpResult
{
    bool completed = false;     ///< every thread halted or was killed
    std::uint64_t steps = 0;    ///< total instructions executed
    std::vector<std::uint64_t> per_thread_steps;
};

/**
 * The functional engine. Architectural state lives in the
 * interpreter; memory is shared with the caller.
 */
class Interpreter
{
  public:
    Interpreter(const Program &prog, MainMemory &mem,
                const InterpConfig &cfg = {});

    /** Run until all threads finish; returns statistics. */
    InterpResult run();

    /** Architectural integer register of a thread (post-run). */
    std::uint32_t intReg(int thread, RegIndex idx) const;
    /** Architectural FP register of a thread (post-run). */
    double fpReg(int thread, RegIndex idx) const;

    /** Called after each executed instruction (trace recording). */
    using TraceHook =
        std::function<void(int tid, Addr pc, const Insn &insn)>;
    void setTraceHook(TraceHook hook) { trace_hook_ = std::move(hook); }

  private:
    enum class ThreadState
    {
        Inactive,   ///< slot not started (before fast-fork)
        Running,
        Halted,     ///< executed HALT
        Killed      ///< terminated by another thread's KILLT
    };

    struct Thread
    {
        ThreadState state = ThreadState::Inactive;
        Addr pc = 0;
        std::array<std::uint32_t, kNumRegs> iregs{};
        std::array<double, kNumRegs> fregs{};
        /** Queue-register mappings (section 2.3.1). */
        std::optional<RegIndex> q_read_int, q_write_int;
        std::optional<RegIndex> q_read_fp, q_write_fp;
        std::uint64_t steps = 0;
    };

    /**
     * Step one instruction on thread @p tid.
     * @return true if the thread made progress (false = blocked).
     */
    bool step(int tid);

    bool hasTopPriority(int tid) const;
    void rotatePriority();
    void removeFromRing(int tid);

    /** Queue from LP @p src to its ring successor. */
    std::deque<std::uint64_t> &queueFrom(int src);
    std::deque<std::uint64_t> &queueInto(int dst);

    /** Read an int source, honoring queue-register mappings. */
    bool readInt(Thread &t, int tid, RegIndex idx,
                 std::uint32_t &out);
    bool readFp(Thread &t, int tid, RegIndex idx, double &out);
    bool writeInt(Thread &t, int tid, RegIndex idx,
                  std::uint32_t value);
    bool writeFp(Thread &t, int tid, RegIndex idx, double value);

    const Program &prog_;
    MainMemory &mem_;
    InterpConfig cfg_;
    /** Text segment decoded once; step() indexes it. */
    PredecodedText text_;

    std::vector<Thread> threads_;
    /** Per-link FIFO: queues_[i] carries LP i -> LP i+1 data. */
    std::vector<std::deque<std::uint64_t>> queues_;
    /** Priority ring, highest priority first (alive threads only). */
    std::vector<int> ring_;
    TraceHook trace_hook_;
};

} // namespace smtsim

#endif // SMTSIM_INTERP_INTERPRETER_HH
