#include "interpreter.hh"

#include <bit>

#include "base/logging.hh"
#include "isa/semantics.hh"

namespace smtsim
{

Interpreter::Interpreter(const Program &prog, MainMemory &mem,
                         const InterpConfig &cfg)
    : prog_(prog), mem_(mem), cfg_(cfg), text_(prog)
{
    SMTSIM_ASSERT(cfg_.num_threads >= 1, "need at least one thread");
    threads_.resize(cfg_.num_threads);
    queues_.resize(cfg_.num_threads);

    threads_[0].state = ThreadState::Running;
    threads_[0].pc = prog_.entry;
    ring_.push_back(0);
}

std::uint32_t
Interpreter::intReg(int thread, RegIndex idx) const
{
    return threads_.at(thread).iregs[idx];
}

double
Interpreter::fpReg(int thread, RegIndex idx) const
{
    return threads_.at(thread).fregs[idx];
}

bool
Interpreter::hasTopPriority(int tid) const
{
    return !ring_.empty() && ring_.front() == tid;
}

void
Interpreter::rotatePriority()
{
    if (ring_.size() > 1) {
        ring_.push_back(ring_.front());
        ring_.erase(ring_.begin());
    }
}

void
Interpreter::removeFromRing(int tid)
{
    for (auto it = ring_.begin(); it != ring_.end(); ++it) {
        if (*it == tid) {
            ring_.erase(it);
            return;
        }
    }
}

std::deque<std::uint64_t> &
Interpreter::queueFrom(int src)
{
    return queues_[src];
}

std::deque<std::uint64_t> &
Interpreter::queueInto(int dst)
{
    return queues_[(dst + cfg_.num_threads - 1) % cfg_.num_threads];
}

bool
Interpreter::readInt(Thread &t, int tid, RegIndex idx,
                     std::uint32_t &out)
{
    if (t.q_read_int && *t.q_read_int == idx) {
        auto &q = queueInto(tid);
        if (q.empty())
            return false;
        out = static_cast<std::uint32_t>(q.front());
        q.pop_front();
        return true;
    }
    out = idx == 0 ? 0 : t.iregs[idx];
    return true;
}

bool
Interpreter::readFp(Thread &t, int tid, RegIndex idx, double &out)
{
    if (t.q_read_fp && *t.q_read_fp == idx) {
        auto &q = queueInto(tid);
        if (q.empty())
            return false;
        out = std::bit_cast<double>(q.front());
        q.pop_front();
        return true;
    }
    out = t.fregs[idx];
    return true;
}

bool
Interpreter::writeInt(Thread &t, int tid, RegIndex idx,
                      std::uint32_t value)
{
    if (t.q_write_int && *t.q_write_int == idx) {
        auto &q = queueFrom(tid);
        if (static_cast<int>(q.size()) >= cfg_.queue_depth)
            return false;
        q.push_back(value);
        return true;
    }
    if (idx != 0)
        t.iregs[idx] = value;
    return true;
}

bool
Interpreter::writeFp(Thread &t, int tid, RegIndex idx, double value)
{
    if (t.q_write_fp && *t.q_write_fp == idx) {
        auto &q = queueFrom(tid);
        if (static_cast<int>(q.size()) >= cfg_.queue_depth)
            return false;
        q.push_back(std::bit_cast<std::uint64_t>(value));
        return true;
    }
    t.fregs[idx] = value;
    return true;
}

bool
Interpreter::step(int tid)
{
    Thread &t = threads_[tid];
    const Addr insn_pc = t.pc;
    const Insn &insn = text_.at(insn_pc);
    const Op op = insn.op;

    // --- Blocking pre-checks -------------------------------------
    // An instruction must either execute completely or not at all,
    // so availability of every queue-register operand is verified
    // before any FIFO is mutated.
    {
        RegRef srcs[3];
        const int n = insn.srcs(srcs);
        int need_from_queue = 0;
        for (int i = 0; i < n; ++i) {
            const bool mapped =
                (srcs[i].file == RF::Int && t.q_read_int &&
                 *t.q_read_int == srcs[i].idx) ||
                (srcs[i].file == RF::Fp && t.q_read_fp &&
                 *t.q_read_fp == srcs[i].idx);
            if (mapped)
                ++need_from_queue;
        }
        if (need_from_queue >
            static_cast<int>(queueInto(tid).size())) {
            return false;
        }
        const RegRef dst = insn.dst();
        const bool dst_mapped =
            (dst.file == RF::Int && t.q_write_int &&
             *t.q_write_int == dst.idx) ||
            (dst.file == RF::Fp && t.q_write_fp &&
             *t.q_write_fp == dst.idx);
        if (dst_mapped && static_cast<int>(queueFrom(tid).size()) >=
                              cfg_.queue_depth) {
            return false;
        }
    }

    if ((op == Op::CHGPRI || op == Op::KILLT ||
         isPriorityStoreOp(op)) &&
        !hasTopPriority(tid)) {
        return false;
    }

    // --- Execute --------------------------------------------------
    Addr next_pc = t.pc + kInsnBytes;

    if (isThreadCtlOp(op)) {
        switch (op) {
          case Op::NOP:
          case Op::SETRMODE:
            break;
          case Op::HALT:
            t.state = ThreadState::Halted;
            removeFromRing(tid);
            break;
          case Op::FASTFORK:
            for (int j = 0; j < cfg_.num_threads; ++j) {
                if (j == tid ||
                    threads_[j].state != ThreadState::Inactive) {
                    continue;
                }
                threads_[j] = t;
                threads_[j].state = ThreadState::Running;
                threads_[j].pc = next_pc;
                threads_[j].steps = 0;
                ring_.push_back(j);
            }
            break;
          case Op::CHGPRI:
            rotatePriority();
            break;
          case Op::KILLT:
            for (int j = 0; j < cfg_.num_threads; ++j) {
                if (j != tid &&
                    threads_[j].state == ThreadState::Running) {
                    threads_[j].state = ThreadState::Killed;
                    removeFromRing(j);
                }
            }
            break;
          case Op::TID:
            if (insn.rd != 0)
                t.iregs[insn.rd] = static_cast<std::uint32_t>(tid);
            break;
          case Op::NSLOT:
            if (insn.rd != 0)
                t.iregs[insn.rd] =
                    static_cast<std::uint32_t>(cfg_.num_threads);
            break;
          case Op::QEN:
            if (insn.rs == 0 || insn.rt == 0 || insn.rs == insn.rt)
                fatal("qen: bad register pair");
            t.q_read_int = insn.rs;
            t.q_write_int = insn.rt;
            break;
          case Op::QENF:
            if (insn.rs == insn.rt)
                fatal("qenf: read and write register identical");
            t.q_read_fp = insn.rs;
            t.q_write_fp = insn.rt;
            break;
          case Op::QDIS:
            t.q_read_int.reset();
            t.q_write_int.reset();
            t.q_read_fp.reset();
            t.q_write_fp.reset();
            break;
          default:
            panic("unhandled thread-control op");
        }
    } else if (insn.isBranch()) {
        std::uint32_t a = 0, b = 0;
        if (op != Op::J && op != Op::JAL) {
            if (!readInt(t, tid, insn.rs, a))
                panic("queue precheck missed a branch source");
        }
        if (op == Op::BEQ || op == Op::BNE) {
            if (!readInt(t, tid, insn.rt, b))
                panic("queue precheck missed a branch source");
        }
        switch (op) {
          case Op::J:
            next_pc = (t.pc & 0xf0000000u) |
                      (static_cast<std::uint32_t>(insn.imm) << 2);
            break;
          case Op::JAL:
            t.iregs[31] = t.pc + kInsnBytes;
            next_pc = (t.pc & 0xf0000000u) |
                      (static_cast<std::uint32_t>(insn.imm) << 2);
            break;
          case Op::JR:
            next_pc = a;
            break;
          case Op::JALR:
            if (insn.rd != 0)
                t.iregs[insn.rd] = t.pc + kInsnBytes;
            next_pc = a;
            break;
          default:
            if (evalBranch(op, a, b)) {
                next_pc = t.pc + kInsnBytes +
                          static_cast<Addr>(insn.imm * 4);
            }
            break;
        }
    } else if (insn.isMem()) {
        std::uint32_t base = 0;
        if (!readInt(t, tid, insn.rs, base))
            panic("queue precheck missed a base register");
        const Addr addr =
            base + static_cast<std::uint32_t>(insn.imm);
        switch (op) {
          case Op::LW: {
            if (!writeInt(t, tid, insn.rt, mem_.read32(addr)))
                panic("queue precheck missed a load destination");
            break;
          }
          case Op::LF: {
            if (!writeFp(t, tid, insn.rt, mem_.readDouble(addr)))
                panic("queue precheck missed a load destination");
            break;
          }
          case Op::SW:
          case Op::PSTW: {
            std::uint32_t v = 0;
            if (!readInt(t, tid, insn.rt, v))
                panic("queue precheck missed a store source");
            mem_.write32(addr, v);
            break;
          }
          case Op::SF:
          case Op::PSTF: {
            double v = 0;
            if (!readFp(t, tid, insn.rt, v))
                panic("queue precheck missed a store source");
            mem_.writeDouble(addr, v);
            break;
          }
          default:
            panic("unhandled memory op");
        }
    } else if (isFpFormatOp(op) || op == Op::FCMPLT ||
               op == Op::FCMPLE || op == Op::FCMPEQ ||
               op == Op::FTOI) {
        switch (opMeta(op).format) {
          case Format::FR3: {
            double a = 0, b = 0;
            if (!readFp(t, tid, insn.rs, a) ||
                !readFp(t, tid, insn.rt, b)) {
                panic("queue precheck missed an FP source");
            }
            if (!writeFp(t, tid, insn.rd, execFpOp(op, a, b)))
                panic("queue precheck missed an FP destination");
            break;
          }
          case Format::FR2: {
            double a = 0;
            if (!readFp(t, tid, insn.rs, a))
                panic("queue precheck missed an FP source");
            if (!writeFp(t, tid, insn.rd, execFpOp(op, a, 0.0)))
                panic("queue precheck missed an FP destination");
            break;
          }
          case Format::FCMP: {
            double a = 0, b = 0;
            if (!readFp(t, tid, insn.rs, a) ||
                !readFp(t, tid, insn.rt, b)) {
                panic("queue precheck missed an FP source");
            }
            if (!writeInt(t, tid, insn.rd,
                          execFpToIntOp(op, a, b))) {
                panic("queue precheck missed a cmp destination");
            }
            break;
          }
          case Format::ITOFF: {
            std::uint32_t a = 0;
            if (!readInt(t, tid, insn.rs, a))
                panic("queue precheck missed an itof source");
            const double v = static_cast<double>(
                static_cast<std::int32_t>(a));
            if (!writeFp(t, tid, insn.rd, v))
                panic("queue precheck missed an itof destination");
            break;
          }
          case Format::FTOIF: {
            double a = 0;
            if (!readFp(t, tid, insn.rs, a))
                panic("queue precheck missed an ftoi source");
            if (!writeInt(t, tid, insn.rd,
                          execFpToIntOp(op, a, 0.0))) {
                panic("queue precheck missed an ftoi destination");
            }
            break;
          }
          default:
            panic("unhandled FP format");
        }
    } else {
        // Integer ALU / shifter / multiplier.
        std::uint32_t a = 0, b = 0;
        if (!readInt(t, tid, insn.rs, a))
            panic("queue precheck missed an int source");
        const Format fmt = opMeta(op).format;
        if (fmt == Format::R3) {
            if (!readInt(t, tid, insn.rt, b))
                panic("queue precheck missed an int source");
        }
        const std::uint32_t result = execIntOp(insn, a, b);
        const RegRef dst = insn.dst();
        if (!writeInt(t, tid, dst.idx, result))
            panic("queue precheck missed an int destination");
    }

    if (t.state == ThreadState::Running)
        t.pc = next_pc;
    ++t.steps;
    if (trace_hook_)
        trace_hook_(tid, insn_pc, insn);
    return true;
}

InterpResult
Interpreter::run()
{
    InterpResult result;
    std::uint64_t total = 0;

    while (total < cfg_.max_steps) {
        bool any_running = false;
        bool progressed = false;
        for (int tid = 0; tid < cfg_.num_threads; ++tid) {
            if (threads_[tid].state != ThreadState::Running)
                continue;
            any_running = true;
            if (step(tid)) {
                progressed = true;
                ++total;
            }
            if (total >= cfg_.max_steps)
                break;
        }
        if (!any_running)
            break;
        if (!progressed)
            fatal("interpreter deadlock: all running threads "
                  "blocked");
    }

    result.completed = true;
    for (const Thread &t : threads_) {
        if (t.state == ThreadState::Running)
            result.completed = false;
        result.per_thread_steps.push_back(t.steps);
    }
    result.steps = total;
    return result;
}

} // namespace smtsim
