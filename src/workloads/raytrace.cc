#include "workloads.hh"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "asmr/assembler.hh"
#include "base/logging.hh"
#include "base/random.hh"

namespace smtsim
{

namespace
{

/** One sphere, in the exact layout the kernel reads. */
struct Sphere
{
    double cx, cy, cz;
    double cc;      ///< c.c - r^2 (precomputed)
    double inv_r;
    double albedo;
    double r2;
};

/** Scene constants (offsets match the kernel; see sceneLayout). */
struct Scene
{
    int width, height;
    int num_spheres;
    int shadows;
    double half_w, half_h, inv_w;
    double lx, ly, lz;
    double ambient, scale, eps, big, shadow_dim, bg;
    std::vector<Sphere> spheres;
};

// Sphere records form a linked list (next pointer at +56), as the
// object lists of contemporary ray tracers did; the kernel chases
// the pointers rather than striding an array.
constexpr Addr kSphereBytes = 64;
constexpr Addr kSpheresOffset = 120;

Scene
buildScene(const RayTraceParams &p)
{
    Scene s;
    s.width = p.width;
    s.height = p.height;
    s.num_spheres = p.num_spheres;
    s.shadows = p.shadows ? 1 : 0;
    s.half_w = p.width / 2.0;
    s.half_h = p.height / 2.0;
    s.inv_w = 1.0 / p.width;

    const double llen =
        std::sqrt(0.5 * 0.5 + 0.8 * 0.8 + 0.33 * 0.33);
    s.lx = 0.5 / llen;
    s.ly = 0.8 / llen;
    s.lz = -0.33 / llen;

    s.ambient = 0.1;
    s.scale = 255.0;
    s.eps = 1e-9;
    s.big = 1e30;
    s.shadow_dim = 0.3;
    s.bg = 20.0;

    Rng rng(p.seed);
    for (int i = 0; i < p.num_spheres; ++i) {
        Sphere sp;
        sp.cx = rng.nextRange(-1.6, 1.6);
        sp.cy = rng.nextRange(-1.6, 1.6);
        sp.cz = rng.nextRange(3.0, 8.0);
        const double r = rng.nextRange(0.4, 1.1);
        sp.r2 = r * r;
        sp.cc = sp.cx * sp.cx + sp.cy * sp.cy + sp.cz * sp.cz -
                sp.r2;
        sp.inv_r = 1.0 / r;
        sp.albedo = rng.nextRange(0.6, 1.0);
        s.spheres.push_back(sp);
    }
    return s;
}

void
writeScene(MainMemory &mem, Addr base, const Scene &s)
{
    mem.write32(base + 0, static_cast<std::uint32_t>(s.width));
    mem.write32(base + 4, static_cast<std::uint32_t>(s.height));
    mem.write32(base + 8,
                static_cast<std::uint32_t>(s.num_spheres));
    mem.write32(base + 12, static_cast<std::uint32_t>(s.shadows));
    mem.writeDouble(base + 16, s.half_w);
    mem.writeDouble(base + 24, s.half_h);
    mem.writeDouble(base + 32, s.inv_w);
    mem.writeDouble(base + 40, s.lx);
    mem.writeDouble(base + 48, s.ly);
    mem.writeDouble(base + 56, s.lz);
    mem.writeDouble(base + 64, s.ambient);
    mem.writeDouble(base + 72, s.scale);
    mem.writeDouble(base + 80, s.eps);
    mem.writeDouble(base + 88, s.big);
    mem.writeDouble(base + 96, s.shadow_dim);
    mem.writeDouble(base + 104, s.bg);
    Addr a = base + kSpheresOffset;
    for (size_t i = 0; i < s.spheres.size(); ++i) {
        const Sphere &sp = s.spheres[i];
        mem.writeDouble(a + 0, sp.cx);
        mem.writeDouble(a + 8, sp.cy);
        mem.writeDouble(a + 16, sp.cz);
        mem.writeDouble(a + 24, sp.cc);
        mem.writeDouble(a + 32, sp.inv_r);
        mem.writeDouble(a + 40, sp.albedo);
        mem.writeDouble(a + 48, sp.r2);
        mem.write32(a + 56, i + 1 < s.spheres.size()
                                ? a + kSphereBytes
                                : 0);
        a += kSphereBytes;
    }
}

/**
 * Reference renderer: mirrors the kernel operation-for-operation so
 * IEEE doubles agree bit-exactly with the simulated machines.
 */
std::vector<std::uint32_t>
renderReference(const Scene &s)
{
    std::vector<std::uint32_t> image(
        static_cast<size_t>(s.width) * s.height);
    const int nsph = s.num_spheres;

    for (int idx = 0; idx < s.width * s.height; ++idx) {
        const int x = idx % s.width;
        const int y = idx / s.width;

        double dx = static_cast<double>(x);
        double dy = static_cast<double>(y);
        double dz = 1.0;
        dx = dx - s.half_w;
        dy = dy - s.half_h;
        dx = dx * s.inv_w;
        dy = dy * s.inv_w;

        double t0 = dx * dx;
        double t1 = dy * dy;
        double t2 = dz * dz;
        t0 = t0 + t1;
        t0 = t0 + t2;
        t0 = std::sqrt(t0);
        const double inv = dz / t0;     // dz still 1.0 here
        dx = dx * inv;
        dy = dy * inv;
        dz = dz * inv;

        double best_t = s.big;
        int best = -1;
        for (int i = 0; i < nsph; ++i) {
            const Sphere &sp = s.spheres[i];
            double a0 = dx * sp.cx;
            double a1 = dy * sp.cy;
            double a2 = dz * sp.cz;
            a0 = a0 + a1;
            const double b = a0 + a2;
            double bb = b * b;
            const double disc = bb - sp.cc;
            if (disc < 0.0)
                continue;
            const double t = b - std::sqrt(disc);
            if (!(s.eps < t))
                continue;
            if (!(t < best_t))
                continue;
            best_t = t;
            best = i;
        }

        std::uint32_t pixel;
        if (best < 0) {
            pixel = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(s.bg));
        } else {
            const Sphere &sp = s.spheres[best];
            const double px = best_t * dx;
            const double py = best_t * dy;
            const double pz = best_t * dz;
            double nx = px - sp.cx;
            double ny = py - sp.cy;
            double nz = pz - sp.cz;
            nx = nx * sp.inv_r;
            ny = ny * sp.inv_r;
            nz = nz * sp.inv_r;
            double d0 = nx * s.lx;
            double d1 = ny * s.ly;
            double d2 = nz * s.lz;
            d0 = d0 + d1;
            double diff = d0 + d2;
            if (diff < 0.0)
                diff = 0.0;

            if (s.shadows) {
                for (int i = 0; i < nsph; ++i) {
                    if (i == best)
                        continue;
                    const Sphere &sp2 = s.spheres[i];
                    const double ocx = sp2.cx - px;
                    const double ocy = sp2.cy - py;
                    const double ocz = sp2.cz - pz;
                    double b0 = ocx * s.lx;
                    double b1 = ocy * s.ly;
                    b0 = b0 + b1;
                    double b2v = ocz * s.lz;
                    const double b2 = b0 + b2v;
                    if (!(0.0 < b2))
                        continue;
                    double o0 = ocx * ocx;
                    double o1 = ocy * ocy;
                    o0 = o0 + o1;
                    double o2 = ocz * ocz;
                    o0 = o0 + o2;
                    o0 = o0 - sp2.r2;
                    const double bsq = b2 * b2;
                    if (o0 < bsq) {
                        diff = diff * s.shadow_dim;
                        break;
                    }
                }
            }

            double val = diff * sp.albedo;
            val = val + s.ambient;
            val = val * s.scale;
            pixel = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(val));
        }
        image[static_cast<size_t>(idx)] = pixel;
    }
    return image;
}

std::string
kernelSource(const RayTraceParams &p)
{
    const int scene_bytes =
        static_cast<int>(kSpheresOffset) +
        p.num_spheres * static_cast<int>(kSphereBytes);
    // The kernel mimics what a late-80s optimizing compiler emitted
    // for a C ray tracer: spheres live on a linked list that is
    // pointer-chased per ray, and per-pixel values (ray direction,
    // best hit, hit point) live in a stack frame that is spilled
    // and reloaded around the loops. This keeps the instruction mix
    // as memory-bound as the paper's traced workload. The FP
    // arithmetic order is identical to renderReference().
    std::ostringstream src;
    src << R"(
        .text
main:   la   r1, scene
        la   r2, image
        lw   r5, 0(r1)          # W
        lw   r16, 4(r1)         # H
        mul  r4, r5, r16        # total pixels
        lw   r15, 12(r1)        # shadow flag
        lf   f20, 16(r1)        # halfW
        lf   f21, 24(r1)        # halfH
        lf   f22, 32(r1)        # invW
        lf   f23, 40(r1)        # lx
        lf   f24, 48(r1)        # ly
        lf   f25, 56(r1)        # lz
        lf   f26, 64(r1)        # ambient
        lf   f27, 72(r1)        # 255.0
        lf   f28, 80(r1)        # eps
        lf   f29, 88(r1)        # big
        lf   f30, 96(r1)        # shadow dim
        lf   f31, 104(r1)       # background
        li   r21, 1
        la   r23, tstack
        fastfork
        tid  r20
        nslot r7
        sll  r10, r20, 6        # 64-byte stack frame per thread
        add  r23, r23, r10
        mv   r3, r20            # idx = tid
pixloop:
        slt  r10, r3, r4
        beq  r10, r0, done
        remq r8, r3, r5         # x
        divq r9, r3, r5         # y
        itof f1, r8
        itof f2, r9
        fsub f1, f1, f20
        fsub f2, f2, f21
        fmul f1, f1, f22
        fmul f2, f2, f22
        itof f3, r21            # dz = 1.0
        fmul f4, f1, f1
        fmul f5, f2, f2
        fmul f6, f3, f3
        fadd f4, f4, f5
        fadd f4, f4, f6
        fsqrt f4, f4
        fdiv f5, f3, f4         # 1/len (f3 is still 1.0)
        fmul f1, f1, f5
        fmul f2, f2, f5
        fmul f3, f3, f5
        sf   f1, 0(r23)         # spill ray direction
        sf   f2, 8(r23)
        sf   f3, 16(r23)
        sf   f29, 24(r23)       # best_t = big
        sw   r0, 56(r23)        # best sphere = NULL
        addi r12, r1, )" << kSpheresOffset << R"(
sphloop:
        beq  r12, r0, shade     # end of object list
        lf   f11, 0(r12)        # cx
        lf   f12, 8(r12)        # cy
        lf   f13, 16(r12)       # cz
        lf   f14, 24(r12)       # cc = c.c - r^2
        lf   f1, 0(r23)         # reload ray direction
        lf   f2, 8(r23)
        lf   f3, 16(r23)
        fmul f4, f1, f11
        fmul f5, f2, f12
        fmul f6, f3, f13
        fadd f4, f4, f5
        fadd f8, f4, f6         # b = d.c
        fmul f5, f8, f8
        fsub f9, f5, f14        # disc
        fcmplt r14, f9, f0
        bne  r14, r0, sphnext
        fsqrt f5, f9
        fsub f10, f8, f5        # t = b - sqrt(disc)
        fcmplt r14, f28, f10
        beq  r14, r0, sphnext
        lf   f7, 24(r23)        # reload best_t
        fcmplt r14, f10, f7
        beq  r14, r0, sphnext
        sf   f10, 24(r23)       # new best hit
        sw   r12, 56(r23)
sphnext:
        lw   r12, 56(r12)       # node = node->next
        j    sphloop
shade:
        lw   r13, 56(r23)       # best sphere
        beq  r13, r0, miss
        lf   f11, 0(r13)
        lf   f12, 8(r13)
        lf   f13, 16(r13)
        lf   f15, 32(r13)       # 1/r
        lf   f16, 40(r13)       # albedo
        lf   f7, 24(r23)        # best_t
        lf   f1, 0(r23)         # ray direction
        lf   f2, 8(r23)
        lf   f3, 16(r23)
        fmul f17, f7, f1        # p = t*d
        fmul f18, f7, f2
        fmul f19, f7, f3
        sf   f17, 32(r23)       # spill hit point
        sf   f18, 40(r23)
        sf   f19, 48(r23)
        fsub f4, f17, f11       # n = (p-c)/r
        fsub f5, f18, f12
        fsub f6, f19, f13
        fmul f4, f4, f15
        fmul f5, f5, f15
        fmul f6, f6, f15
        fmul f4, f4, f23        # n.l
        fmul f5, f5, f24
        fmul f6, f6, f25
        fadd f4, f4, f5
        fadd f4, f4, f6         # diff
        fcmplt r14, f4, f0
        beq  r14, r0, posdiff
        fmov f4, f0
posdiff:
        beq  r15, r0, noshadow
        addi r19, r1, )" << kSpheresOffset << R"(
shloop: beq  r19, r0, noshadow
        beq  r19, r13, shnext   # skip the hit sphere itself
        lf   f11, 0(r19)
        lf   f12, 8(r19)
        lf   f13, 16(r19)
        lf   f14, 48(r19)       # r^2
        lf   f17, 32(r23)       # reload hit point
        lf   f18, 40(r23)
        lf   f19, 48(r23)
        fsub f11, f11, f17      # oc = c - p
        fsub f12, f12, f18
        fsub f13, f13, f19
        fmul f5, f11, f23
        fmul f6, f12, f24
        fadd f5, f5, f6
        fmul f6, f13, f25
        fadd f8, f5, f6         # b2 = oc.l
        fcmplt r14, f0, f8
        beq  r14, r0, shnext
        fmul f5, f11, f11
        fmul f6, f12, f12
        fadd f5, f5, f6
        fmul f6, f13, f13
        fadd f5, f5, f6         # |oc|^2
        fsub f5, f5, f14
        fmul f6, f8, f8
        fcmplt r14, f5, f6      # |oc|^2 - r^2 < b2^2 ?
        beq  r14, r0, shnext
        fmul f4, f4, f30        # shadowed
        j    noshadow
shnext: lw   r19, 56(r19)       # node = node->next
        j    shloop
noshadow:
        fmul f4, f4, f16
        fadd f4, f4, f26
        fmul f4, f4, f27
        ftoi r16, f4
        j    store
miss:   ftoi r16, f31
store:  sll  r10, r3, 2
        add  r17, r2, r10
        sw   r16, 0(r17)
        add  r3, r3, r7
        j    pixloop
done:   halt
        .data
        .align 8
scene:  .space )" << scene_bytes << R"(
        .align 8
tstack: .space 1024             # 64-byte frame x 16 thread slots
        .align 8
image:  .space )" << (p.width * p.height * 4) << "\n";
    return src.str();
}

} // namespace

Workload
makeRayTrace(const RayTraceParams &params)
{
    SMTSIM_ASSERT(params.num_spheres >= 1 && params.width >= 1 &&
                      params.height >= 1,
                  "bad ray-trace parameters");
    const Scene scene = buildScene(params);
    Program prog = assemble(kernelSource(params));
    const Addr scene_addr = prog.symbol("scene");
    const Addr image_addr = prog.symbol("image");
    const int pixels = params.width * params.height;

    Workload w;
    w.name = "raytrace";
    w.program = std::move(prog);
    w.init = [scene, scene_addr](MainMemory &mem) {
        writeScene(mem, scene_addr, scene);
    };
    w.check = [scene, image_addr, pixels](const MainMemory &mem,
                                          std::string *why) {
        const std::vector<std::uint32_t> expect =
            renderReference(scene);
        for (int i = 0; i < pixels; ++i) {
            const std::uint32_t got =
                mem.read32(image_addr + static_cast<Addr>(4 * i));
            if (got != expect[static_cast<size_t>(i)]) {
                if (why) {
                    std::ostringstream oss;
                    oss << "pixel " << i << ": got " << got
                        << ", expected "
                        << expect[static_cast<size_t>(i)];
                    *why = oss.str();
                }
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace smtsim
