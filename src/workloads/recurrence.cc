#include "workloads.hh"

#include <sstream>

#include "asmr/assembler.hh"
#include "base/logging.hh"

namespace smtsim
{

namespace
{

constexpr double kSeed = 1.5;

double
yValue(int k)
{
    return 0.25 * (k % 9) - 0.8;
}

// X[0] is the seed; iteration k computes X[k+1] = X[k] + Y[k].
// flags[k] says X[k] is available (flags[0] preset).

const char *kSequentialText = R"(
        .text
main:   la   r1, y
        la   r2, x
        li   r4, %N%
        lf   f1, 0(r2)          # X[0]
loop:   lf   f2, 0(r1)          # Y[k]
        fadd f1, f1, f2
        sf   f1, 8(r2)          # X[k+1]
        addi r1, r1, 8
        addi r2, r2, 8
        addi r4, r4, -1
        bgtz r4, loop
        halt
)";

/**
 * Doacross through queue registers (the paper's mechanism): the
 * running value is relayed from logical processor to logical
 * processor at the register-transfer level.
 */
const char *kQueueText = R"(
        .text
main:   setrmode explicit, 0
        la   r1, y
        la   r2, x
        li   r5, %N%
        qenf f20, f21
        fastfork
        tid  r10
        nslot r7
        sll  r6, r10, 3
        add  r1, r1, r6
        add  r2, r2, r6
        sll  r8, r7, 3
        sub  r4, r5, r10        # count = ceil((N - tid) / S)
        add  r4, r4, r7
        addi r4, r4, -1
        divq r4, r4, r7
        blez r4, fin
        bne  r10, r0, recv
        lf   f1, 0(r2)          # thread 0 seeds from X[0]
        j    body
recv:   fmov f1, f20            # receive X[k] from predecessor
body:   lf   f2, 0(r1)          # Y[k]
        fadd f1, f1, f2         # X[k+1]
        fmov f21, f1            # relay to successor
        sf   f1, 8(r2)
        add  r1, r1, r8
        add  r2, r2, r8
        addi r4, r4, -1
        chgpri
        bgtz r4, recv
fin:    halt
)";

/**
 * Doacross through memory: the producer stores X[k+1] and then a
 * flag word; the consumer spin-waits on the flag. The alternative
 * the paper rejects because of its communication overhead.
 */
const char *kMemoryText = R"(
        .text
main:   la   r1, y
        la   r2, x
        la   r3, flags
        li   r5, %N%
        fastfork
        tid  r10
        nslot r7
        sll  r6, r10, 3
        add  r1, r1, r6
        add  r2, r2, r6
        sll  r11, r10, 2
        add  r3, r3, r11
        sll  r8, r7, 3          # x/y stride
        sll  r9, r7, 2          # flag stride
        sub  r4, r5, r10
        add  r4, r4, r7
        addi r4, r4, -1
        divq r4, r4, r7
        blez r4, fin
        li   r12, 1
loop:
spin:   lw   r13, 0(r3)         # flags[k]
        beq  r13, r0, spin
        lf   f1, 0(r2)          # X[k]
        lf   f2, 0(r1)          # Y[k]
        fadd f1, f1, f2
        sf   f1, 8(r2)          # X[k+1] ...
        sw   r12, 4(r3)         # ... then flags[k+1]
        add  r1, r1, r8
        add  r2, r2, r8
        add  r3, r3, r9
        addi r4, r4, -1
        bgtz r4, loop
fin:    halt
)";

const char *kDataText = R"(
        .data
        .align 8
x:      .space %XBYTES%
        .align 8
y:      .space %YBYTES%
flags:  .space %FBYTES%
)";

} // namespace

Workload
makeRecurrence(const RecurrenceParams &params)
{
    const int n = params.n;
    SMTSIM_ASSERT(n >= 1, "recurrence: need at least 1 iteration");

    const char *text = nullptr;
    const char *name = nullptr;
    switch (params.variant) {
      case RecurrenceVariant::Sequential:
        text = kSequentialText;
        name = "recurrence.seq";
        break;
      case RecurrenceVariant::DoacrossQueue:
        text = kQueueText;
        name = "recurrence.queue";
        break;
      case RecurrenceVariant::DoacrossMemory:
        text = kMemoryText;
        name = "recurrence.mem";
        break;
    }

    std::string source = std::string(text) + kDataText;
    auto replace_all = [&source](const std::string &key,
                                 const std::string &value) {
        size_t at;
        while ((at = source.find(key)) != std::string::npos)
            source.replace(at, key.size(), value);
    };
    replace_all("%N%", std::to_string(n));
    replace_all("%XBYTES%", std::to_string(8 * (n + 1)));
    replace_all("%YBYTES%", std::to_string(8 * n));
    replace_all("%FBYTES%", std::to_string(4 * (n + 1)));

    Program prog = assemble(source);
    const Addr x = prog.symbol("x");
    const Addr y = prog.symbol("y");
    const Addr flags = prog.symbol("flags");

    Workload w;
    w.name = name;
    w.program = std::move(prog);
    w.init = [n, x, y, flags](MainMemory &mem) {
        mem.writeDouble(x, kSeed);
        mem.write32(flags, 1);      // X[0] is available
        for (int k = 0; k < n; ++k)
            mem.writeDouble(y + static_cast<Addr>(8 * k),
                            yValue(k));
    };
    w.check = [n, x](const MainMemory &mem, std::string *why) {
        double running = kSeed;
        for (int k = 0; k < n; ++k) {
            running = running + yValue(k);
            const double got = mem.readDouble(
                x + static_cast<Addr>(8 * (k + 1)));
            if (got != running) {
                if (why) {
                    std::ostringstream oss;
                    oss << "X[" << k + 1 << "] = " << got
                        << ", expected " << running;
                    *why = oss.str();
                }
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace smtsim
