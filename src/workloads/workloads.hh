/**
 * @file
 * The paper's workloads, reproduced as assembly programs for the
 * smtsim ISA:
 *
 *  - a ray tracer (section 3.2's application; parallelized per
 *    pixel exactly as the paper describes),
 *  - Livermore Kernel 1 (section 3.4's static-scheduling study),
 *  - the linked-list while loop of Figure 6 (section 3.5's eager
 *    execution study).
 *
 * Each factory returns a Workload: the program, a data initializer
 * to run after Program::loadInto, and a result checker that
 * recomputes the expected answer in plain C++.
 */

#ifndef SMTSIM_WORKLOADS_WORKLOADS_HH
#define SMTSIM_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asmr/program.hh"
#include "isa/insn.hh"
#include "mem/memory.hh"

namespace smtsim
{

/** A runnable, checkable workload. */
struct Workload
{
    std::string name;
    Program program;
    /** Writes input data; call after Program::loadInto. */
    std::function<void(MainMemory &)> init;
    /**
     * Verifies outputs; on failure returns false and, if @p why is
     * non-null, describes the first mismatch.
     */
    std::function<bool(const MainMemory &, std::string *why)> check;
};

// ----------------------------------------------------------------
// Ray tracer
// ----------------------------------------------------------------

/** Scene/rendering parameters. */
struct RayTraceParams
{
    int width = 16;
    int height = 16;
    int num_spheres = 5;
    bool shadows = true;
    std::uint64_t seed = 42;
};

/**
 * Sphere-scene ray tracer with Lambertian shading and shadow rays.
 * The single program serves both machines: on the multithreaded
 * core FASTFORK spreads pixels over all thread slots; on the
 * baseline the fork degenerates and one thread renders everything.
 */
Workload makeRayTrace(const RayTraceParams &params);

// ----------------------------------------------------------------
// Livermore Kernel 1
// ----------------------------------------------------------------

/** Parameters for X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11)). */
struct Lk1Params
{
    int n = 200;
    /** Spread iterations over the thread slots (doall, explicit
     *  rotation with change-priority per iteration). */
    bool parallel = false;
};

/** Canonical (non-optimized) loop body, for the static schedulers. */
std::vector<Insn> lk1LoopBody();

/**
 * Build the kernel. If @p body is non-null it replaces the
 * canonical loop body (it must be a permutation produced by one of
 * the schedulers).
 */
Workload makeLivermore1(const Lk1Params &params,
                        const std::vector<Insn> *body = nullptr);

// ----------------------------------------------------------------
// Additional applications (the paper's concluding remarks ask for
// "many other application programs"; these cover the corners the
// ray tracer does not)
// ----------------------------------------------------------------

/** Dense matrix multiply parameters (C = A * B, doubles). */
struct MatmulParams
{
    int n = 12;     ///< matrices are n x n
};

/**
 * Dense matrix multiply, parallel over rows (doall). FP-heavy with
 * regular control flow and plenty of fine-grained parallelism —
 * the workload class where the paper predicts standby stations
 * help most.
 */
Workload makeMatmul(const MatmulParams &params);

/** Binary-search parameters. */
struct BsearchParams
{
    int table_size = 256;       ///< sorted table entries
    int queries_per_thread = 48;
    std::uint64_t seed = 5;
};

/**
 * Batched binary search over a sorted table, parallel over query
 * slices. Integer, memory- and branch-bound with data-dependent
 * branch outcomes — the intro's "past performance ... does not
 * help in predicting" workload.
 */
Workload makeBsearch(const BsearchParams &params);

/** Stencil-smoothing parameters. */
struct StencilParams
{
    int width = 16;
    int height = 12;
    int sweeps = 2;
};

/**
 * Five-point stencil smoothing over an image grid (Jacobi sweeps,
 * parallel over rows; threads resynchronize between sweeps through
 * the kill/fork-free double-buffer structure). Regular FP code
 * with a memory footprint that streams — the image-processing
 * class of the paper's visualization system.
 */
Workload makeStencil(const StencilParams &params);

/** Radiosity-sweep parameters. */
struct RadiosityParams
{
    int num_patches = 24;
    std::uint64_t seed = 9;
};

/**
 * One Jacobi sweep of a radiosity solver: for every patch, gather
 * energy from every other patch through a geometric form factor
 * (dot products, a division, two data-dependent visibility
 * branches). The paper names radiosity alongside ray tracing as
 * its target workloads.
 */
Workload makeRadiosity(const RadiosityParams &params);

// ----------------------------------------------------------------
// Doacross recurrence (section 2.3.1's queue-register use case)
// ----------------------------------------------------------------

/** How the loop-carried value travels between logical processors. */
enum class RecurrenceVariant
{
    Sequential,     ///< single thread, baseline
    DoacrossQueue,  ///< queue registers (the paper's mechanism)
    DoacrossMemory  ///< store + flag spin-wait through memory
};

/** Parameters for X[k+1] = X[k] + Y[k]. */
struct RecurrenceParams
{
    int n = 128;
    RecurrenceVariant variant = RecurrenceVariant::Sequential;
};

/**
 * First-order linear recurrence executed doacross: iteration k
 * needs X[k] from iteration k-1 (iteration difference one, the case
 * the paper's ring topology targets). The queue variant relays X
 * through FP queue registers; the memory variant stores X and
 * spins on a flag word, the alternative the paper dismisses as
 * having too much overhead.
 */
Workload makeRecurrence(const RecurrenceParams &params);

// ----------------------------------------------------------------
// Token ring (cross-slot communication exerciser)
// ----------------------------------------------------------------

/** Parameters for the ring relay. */
struct TokenRingParams
{
    int rounds = 32;
    /**
     * Injected concurrency bug, for the static verifier's soundness
     * tests: 0 = clean, 1 = queue wait-for cycle (no slot ever
     * seeds the ring), 2 = rate-skewed ring (followers pop two per
     * iteration but receive one).
     */
    int bug = 0;
};

/**
 * Token relay around the queue-register ring: slot 0 seeds a token,
 * every slot increments and forwards it, and after the configured
 * number of rounds slot 0 publishes token, nslot and an ok flag.
 * The checker recomputes rounds * nslot from the stored nslot, so
 * one program verifies at any slot count. The buggy variants are
 * deliberately broken inputs for lint/serve admission tests.
 */
Workload makeTokenRing(const TokenRingParams &params);

// ----------------------------------------------------------------
// Linked-list walk (Figure 6)
// ----------------------------------------------------------------

/** Parameters for the while-loop workload. */
struct ListWalkParams
{
    int num_nodes = 64;
    /**
     * Index of the node whose tmp goes negative (the loop's break);
     * -1 walks the whole list to NULL.
     */
    int break_at = -1;
    /** Eager multi-slot version (queue registers + kill). */
    bool eager = false;
    std::uint64_t seed = 7;
};

/** The paper's pointer-chasing while loop. */
Workload makeListWalk(const ListWalkParams &params);

} // namespace smtsim

#endif // SMTSIM_WORKLOADS_WORKLOADS_HH
