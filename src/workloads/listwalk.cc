#include "workloads.hh"

#include <sstream>

#include "asmr/assembler.hh"
#include "base/logging.hh"

namespace smtsim
{

namespace
{

constexpr double kA = 1.0;
constexpr double kB = 2.0;
constexpr double kC = -1.0;

double
xValue(int i, int break_at)
{
    if (i == break_at)
        return -5.0;
    return 0.5 + 0.25 * (i % 7);
}

double
yValue(int i, int break_at)
{
    if (i == break_at)
        return 0.0;
    return 0.3 + 0.2 * (i % 5);
}

/** tmp value of iteration @p i, mirroring the kernel's op order. */
double
tmpValue(int i, int break_at)
{
    double t0 = kA * xValue(i, break_at);
    double t1 = kB * yValue(i, break_at);
    t0 = t0 + t1;
    return t0 + kC;
}

const char *kSequentialText = R"(
        .text
main:   la   r9, consts
        lf   f10, 0(r9)         # a
        lf   f11, 8(r9)         # b
        lf   f12, 16(r9)        # c
        la   r22, tmp
        la   r1, header
        lw   r1, 0(r1)
loop:   beq  r1, r0, done
        lw   r2, 0(r1)          # ptr->point
        lf   f1, 0(r2)          # ->x
        lf   f2, 8(r2)          # ->y
        fmul f3, f10, f1
        fmul f4, f11, f2
        fadd f5, f3, f4
        fadd f6, f5, f12        # tmp
        sf   f6, 0(r22)
        fcmplt r4, f6, f0
        bne  r4, r0, done       # tmp < 0: break
        lw   r1, 4(r1)          # ptr = ptr->next
        j    loop
done:   halt
)";

/**
 * Eager execution (Figure 7): one iteration per logical processor,
 * ptr relayed through queue registers; the loop-exiting thread
 * kills the speculative ones. The ptr->next load writes straight
 * into the queue register so successors start as early as possible.
 */
const char *kEagerText = R"(
        .text
main:   setrmode explicit, 0    # before any implicit rotation
        la   r9, consts
        lf   f10, 0(r9)
        lf   f11, 8(r9)
        lf   f12, 16(r9)
        la   r22, tmp
        qen  r20, r21
        fastfork
        tid  r10
        bne  r10, r0, recv
        la   r1, header         # thread 0 seeds iteration 0
        lw   r1, 0(r1)
        j    body
recv:   mv   r1, r20            # receive ptr from predecessor
body:   beq  r1, r0, exit
        lw   r21, 4(r1)         # pass ptr->next to successor
        lw   r2, 0(r1)
        lf   f1, 0(r2)
        lf   f2, 8(r2)
        fmul f3, f10, f1
        fmul f4, f11, f2
        fadd f5, f3, f4
        fadd f6, f5, f12        # tmp
        pstf f6, 0(r22)         # ordered store (highest prio only)
        fcmplt r4, f6, f0
        bne  r4, r0, exit
        chgpri
        j    recv
exit:   killt
        halt
)";

const char *kDataText = R"(
        .data
        .align 8
consts: .space 24
tmp:    .float 0.0
header: .word 0
        .align 8
nodes:  .space %NODES%
        .align 8
points: .space %POINTS%
)";

} // namespace

Workload
makeListWalk(const ListWalkParams &params)
{
    const int n = params.num_nodes;
    SMTSIM_ASSERT(n >= 1, "listwalk: need at least one node");
    SMTSIM_ASSERT(params.break_at < n, "listwalk: break_at >= n");

    std::string data(kDataText);
    auto replace = [&data](const std::string &key, int value) {
        const size_t at = data.find(key);
        SMTSIM_ASSERT(at != std::string::npos, "missing key");
        data.replace(at, key.size(), std::to_string(value));
    };
    replace("%NODES%", 8 * n);
    replace("%POINTS%", 16 * n);

    const std::string source =
        std::string(params.eager ? kEagerText : kSequentialText) +
        data;
    Program prog = assemble(source);

    const Addr consts = prog.symbol("consts");
    const Addr tmp = prog.symbol("tmp");
    const Addr header = prog.symbol("header");
    const Addr nodes = prog.symbol("nodes");
    const Addr points = prog.symbol("points");
    const int break_at = params.break_at;

    Workload w;
    w.name = params.eager ? "listwalk.eager" : "listwalk.seq";
    w.program = std::move(prog);
    w.init = [=](MainMemory &mem) {
        mem.writeDouble(consts + 0, kA);
        mem.writeDouble(consts + 8, kB);
        mem.writeDouble(consts + 16, kC);
        mem.write32(header, nodes);
        for (int i = 0; i < n; ++i) {
            const Addr node = nodes + static_cast<Addr>(8 * i);
            const Addr point = points + static_cast<Addr>(16 * i);
            mem.write32(node + 0, point);
            mem.write32(node + 4,
                        i + 1 < n
                            ? nodes + static_cast<Addr>(8 * (i + 1))
                            : 0);
            mem.writeDouble(point + 0, xValue(i, break_at));
            mem.writeDouble(point + 8, yValue(i, break_at));
        }
    };
    w.check = [=](const MainMemory &mem, std::string *why) {
        // Walk the list sequentially to find the final tmp.
        const int last =
            (break_at >= 0 && break_at < n) ? break_at : n - 1;
        const double expect = tmpValue(last, break_at);
        const double got = mem.readDouble(tmp);
        if (got != expect) {
            if (why) {
                std::ostringstream oss;
                oss << "tmp = " << got << ", expected " << expect
                    << " (node " << last << ")";
                *why = oss.str();
            }
            return false;
        }
        return true;
    };
    return w;
}

} // namespace smtsim
