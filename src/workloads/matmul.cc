#include "workloads.hh"

#include <sstream>
#include <vector>

#include "asmr/assembler.hh"
#include "base/logging.hh"

namespace smtsim
{

namespace
{

double
aValue(int i, int j)
{
    return 0.1 * (i + 1) + 0.01 * j;
}

double
bValue(int i, int j)
{
    return 0.5 - 0.02 * i + 0.003 * (j + 1);
}

const char *kText = R"(
        .text
main:   la   r1, mat_a
        la   r2, mat_b
        la   r3, mat_c
        li   r4, %N%
        sll  r18, r4, 3         # row stride in bytes
        fastfork
        tid  r10
        nslot r7
        mv   r5, r10            # i = tid
rowloop:
        slt  r11, r5, r4
        beq  r11, r0, done
        mul  r12, r5, r4
        sll  r12, r12, 3
        add  r13, r1, r12       # &A[i][0]
        add  r14, r3, r12       # &C[i][0]
        li   r6, 0              # j
colloop:
        slt  r11, r6, r4
        beq  r11, r0, rownext
        fmov f1, f0             # s = 0.0
        sll  r15, r6, 3
        add  r15, r2, r15       # &B[0][j]
        mv   r16, r13           # &A[i][k]
        mv   r17, r4            # k = N
kloop:  lf   f2, 0(r16)
        lf   f3, 0(r15)
        fmul f4, f2, f3
        fadd f1, f1, f4
        addi r16, r16, 8
        add  r15, r15, r18
        addi r17, r17, -1
        bgtz r17, kloop
        sll  r19, r6, 3
        add  r19, r14, r19
        sf   f1, 0(r19)         # C[i][j] = s
        addi r6, r6, 1
        j    colloop
rownext:
        add  r5, r5, r7         # i += nslot
        j    rowloop
done:   halt
        .data
        .align 8
mat_a:  .space %BYTES%
mat_b:  .space %BYTES%
mat_c:  .space %BYTES%
)";

} // namespace

Workload
makeMatmul(const MatmulParams &params)
{
    const int n = params.n;
    SMTSIM_ASSERT(n >= 1, "matmul: bad size");

    std::string source(kText);
    auto replace_all = [&source](const std::string &key,
                                 const std::string &value) {
        size_t at;
        while ((at = source.find(key)) != std::string::npos)
            source.replace(at, key.size(), value);
    };
    replace_all("%N%", std::to_string(n));
    replace_all("%BYTES%", std::to_string(8 * n * n));

    Program prog = assemble(source);
    const Addr a = prog.symbol("mat_a");
    const Addr b = prog.symbol("mat_b");
    const Addr c = prog.symbol("mat_c");

    Workload w;
    w.name = "matmul";
    w.program = std::move(prog);
    w.init = [n, a, b](MainMemory &mem) {
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                mem.writeDouble(
                    a + static_cast<Addr>(8 * (i * n + j)),
                    aValue(i, j));
                mem.writeDouble(
                    b + static_cast<Addr>(8 * (i * n + j)),
                    bValue(i, j));
            }
        }
    };
    w.check = [n, c](const MainMemory &mem, std::string *why) {
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                double s = 0.0;
                for (int k = 0; k < n; ++k) {
                    const double prod =
                        aValue(i, k) * bValue(k, j);
                    s = s + prod;
                }
                const double got = mem.readDouble(
                    c + static_cast<Addr>(8 * (i * n + j)));
                if (got != s) {
                    if (why) {
                        std::ostringstream oss;
                        oss << "C[" << i << "][" << j
                            << "] = " << got << ", expected " << s;
                        *why = oss.str();
                    }
                    return false;
                }
            }
        }
        return true;
    };
    return w;
}

} // namespace smtsim
