#include "workloads.hh"

#include <sstream>

#include "asmr/assembler.hh"
#include "base/logging.hh"

namespace smtsim
{

namespace
{

/**
 * Clean ring relay. Slot 0 is the ring master: it pushes the token
 * first, then pops the value that travelled the whole ring (each
 * follower adds one, and so does the master after the pop), so the
 * link occupancy returns to zero every round and the first queue
 * action of slot 0 is a push — no wait-for cycle. After the last
 * round the master publishes token, nslot and an ok flag; the
 * checker recomputes rounds * nslot from the stored nslot, so the
 * same program verifies at any thread-slot count.
 */
const char *kCleanText = R"(
        .text
main:   qen  r20, r21
        fastfork
        tid  r10
        nslot r7
        li   r4, %R%
        bne  r10, r0, floop
        addi r3, r0, 0          # token
mloop:  addi r21, r3, 0         # master pushes first...
        add  r3, r20, r0        # ...then pops the round-trip value
        addi r3, r3, 1
        addi r4, r4, -1
        bgtz r4, mloop
        la   r1, result
        sw   r3, 0(r1)          # token = rounds * nslot
        sw   r7, 4(r1)          # nslot, for the checker
        li   r2, 1
        sw   r2, 8(r1)          # ok flag
        halt
floop:  add  r3, r20, r0        # followers pop...
        addi r3, r3, 1
        addi r21, r3, 0         # ...and relay
        addi r4, r4, -1
        bgtz r4, floop
        halt
)";

/**
 * Injected wait-for cycle (bug = 1): the seeding push is guarded by
 * tid == nslot, which is never true in any slot, so every slot's
 * first real queue action is a pop and all slots block on empty
 * links forever. The guard makes a push-first path exist in the
 * CFG, so the path-insensitive Q007 rule stays silent — only the
 * per-slot projection (Q009) sees the deadlock.
 */
const char *kWaitCycleText = R"(
        .text
main:   qen  r20, r21
        fastfork
        tid  r10
        nslot r11
        li   r4, %R%
        beq  r10, r11, seed     # dead: tid < nslot in every slot
loop:   add  r3, r20, r0        # every live slot pops first
        addi r3, r3, 1
        addi r21, r3, 0
        addi r4, r4, -1
        bgtz r4, loop
        halt
seed:   addi r21, r0, 0
        j    loop
)";

/**
 * Injected rate skew (bug = 2): slot 0 pops one and pushes two per
 * iteration while the followers pop two and push one, so the links
 * between followers starve (Q011) and the ring wedges.
 */
const char *kRateSkewText = R"(
        .text
main:   qen  r20, r21
        fastfork
        tid  r10
        addi r21, r0, 1         # seed one value downstream
        li   r4, %R%
loop:   bne  r10, r0, follow
        add  r3, r20, r0        # slot 0: pop 1
        addi r21, r3, 1         # push 2
        addi r21, r3, 2
        j    latch
follow: add  r3, r20, r0        # followers: pop 2
        add  r5, r20, r0
        addi r21, r5, 1         # push 1
latch:  addi r4, r4, -1
        bgtz r4, loop
        halt
)";

const char *kDataText = R"(
        .data
        .align 4
result: .space 12
)";

} // namespace

Workload
makeTokenRing(const TokenRingParams &params)
{
    const int rounds = params.rounds;
    SMTSIM_ASSERT(rounds >= 1, "tokenring: need at least 1 round");
    SMTSIM_ASSERT(params.bug >= 0 && params.bug <= 2,
                  "tokenring: bug must be 0, 1 or 2");

    const char *text = kCleanText;
    const char *name = "tokenring";
    if (params.bug == 1) {
        text = kWaitCycleText;
        name = "tokenring.waitcycle";
    } else if (params.bug == 2) {
        text = kRateSkewText;
        name = "tokenring.rateskew";
    }

    std::string source = std::string(text) + kDataText;
    const std::string key = "%R%";
    size_t at;
    while ((at = source.find(key)) != std::string::npos)
        source.replace(at, key.size(), std::to_string(rounds));

    Program prog = assemble(source);
    const Addr result = prog.symbol("result");

    Workload w;
    w.name = name;
    w.program = std::move(prog);
    w.init = [](MainMemory &) {};
    w.check = [rounds, result](const MainMemory &mem,
                               std::string *why) {
        const std::uint32_t token = mem.read32(result);
        const std::uint32_t nslot = mem.read32(result + 4);
        const std::uint32_t ok = mem.read32(result + 8);
        if (ok != 1) {
            if (why)
                *why = "ok flag not set (ring never completed)";
            return false;
        }
        const std::uint32_t expect =
            static_cast<std::uint32_t>(rounds) * nslot;
        if (nslot < 1 || token != expect) {
            if (why) {
                std::ostringstream oss;
                oss << "token = " << token << ", expected "
                    << expect << " (" << rounds << " rounds x "
                    << nslot << " slots)";
                *why = oss.str();
            }
            return false;
        }
        return true;
    };
    return w;
}

} // namespace smtsim
