#include "workloads.hh"

#include <sstream>
#include <vector>

#include "base/logging.hh"

namespace smtsim
{

namespace
{

// Register conventions of the generated kernel.
constexpr RegIndex kRZ = 1;     // &Z[k]
constexpr RegIndex kRY = 2;     // &Y[k]
constexpr RegIndex kRX = 3;     // &X[k]
constexpr RegIndex kRCount = 4; // remaining iterations
constexpr RegIndex kRStride = 5;
constexpr RegIndex kROfs = 6;
constexpr RegIndex kRTid = 7;
constexpr RegIndex kRSlots = 8;
constexpr RegIndex kRBase = 9;
constexpr RegIndex kRN = 10;

/** lui/ori pair loading a 32-bit constant. */
void
emitLi(std::vector<Insn> &out, RegIndex r, std::uint32_t v)
{
    out.push_back(Insn{Op::LUI, 0, 0, r,
                       static_cast<std::int32_t>(v >> 16)});
    out.push_back(Insn{Op::ORI, 0, r, r,
                       static_cast<std::int32_t>(v & 0xffff)});
}

double
zValue(int i)
{
    return 0.002 * (i % 53) + 1.0;
}

double
yValue(int i)
{
    return 0.01 * (i % 31) + 0.5;
}

constexpr double kQ = 0.5;
constexpr double kR = 2.0 / 3.0;
constexpr double kT = 1.0 / 7.0;

} // namespace

std::vector<Insn>
lk1LoopBody()
{
    // X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11)), plus the address
    // updates; branch and priority control stay outside.
    std::vector<Insn> body;
    body.push_back(Insn{Op::LF, 0, kRZ, 1, 80});    // f1 = Z[k+10]
    body.push_back(Insn{Op::LF, 0, kRZ, 2, 88});    // f2 = Z[k+11]
    body.push_back(Insn{Op::LF, 0, kRY, 3, 0});     // f3 = Y[k]
    body.push_back(Insn{Op::FMUL, 4, 10, 1, 0});    // f4 = R*f1
    body.push_back(Insn{Op::FMUL, 5, 11, 2, 0});    // f5 = T*f2
    body.push_back(Insn{Op::FADD, 6, 4, 5, 0});     // f6 = f4+f5
    body.push_back(Insn{Op::FMUL, 7, 3, 6, 0});     // f7 = f3*f6
    body.push_back(Insn{Op::FADD, 8, 12, 7, 0});    // f8 = Q+f7
    body.push_back(Insn{Op::SF, 0, kRX, 8, 0});     // X[k] = f8
    body.push_back(Insn{Op::ADD, kRZ, kRZ, kRStride, 0});
    body.push_back(Insn{Op::ADD, kRY, kRY, kRStride, 0});
    body.push_back(Insn{Op::ADD, kRX, kRX, kRStride, 0});
    return body;
}

Workload
makeLivermore1(const Lk1Params &params, const std::vector<Insn> *body)
{
    const int n = params.n;
    SMTSIM_ASSERT(n >= 1, "lk1: need at least one iteration");

    // Data layout: consts | Z[n+11] | Y[n] | X[n], all doubles.
    const Addr consts_addr = kDefaultDataBase;
    const Addr z_addr = consts_addr + 24;
    const Addr y_addr = z_addr + static_cast<Addr>(8 * (n + 11));
    const Addr x_addr = y_addr + static_cast<Addr>(8 * n);

    const std::vector<Insn> loop_body =
        body ? *body : lk1LoopBody();

    std::vector<Insn> code;
    if (params.parallel) {
        // Explicit rotation, selected before any implicit rotation
        // can disturb the priority-order = iteration-order
        // invariant the doall scheme relies on.
        code.push_back(Insn{Op::SETRMODE, 0, 0, 1, 0});
    }
    // Prologue: constants.
    emitLi(code, kRBase, consts_addr);
    code.push_back(Insn{Op::LF, 0, kRBase, 10, 0});   // f10 = R
    code.push_back(Insn{Op::LF, 0, kRBase, 11, 8});   // f11 = T
    code.push_back(Insn{Op::LF, 0, kRBase, 12, 16});  // f12 = Q
    emitLi(code, kRZ, z_addr);
    emitLi(code, kRY, y_addr);
    emitLi(code, kRX, x_addr);
    emitLi(code, kRN, static_cast<std::uint32_t>(n));

    if (params.parallel) {
        code.push_back(Insn{Op::FASTFORK, 0, 0, 0, 0});
        code.push_back(Insn{Op::TID, kRTid, 0, 0, 0});
        code.push_back(Insn{Op::NSLOT, kRSlots, 0, 0, 0});
        // stride = slots * 8; base offset = tid * 8
        code.push_back(Insn{Op::SLL, kRStride, kRSlots, 0, 3});
        code.push_back(Insn{Op::SLL, kROfs, kRTid, 0, 3});
        code.push_back(Insn{Op::ADD, kRZ, kRZ, kROfs, 0});
        code.push_back(Insn{Op::ADD, kRY, kRY, kROfs, 0});
        code.push_back(Insn{Op::ADD, kRX, kRX, kROfs, 0});
        // count = ceil((n - tid) / slots)
        code.push_back(Insn{Op::SUB, kRCount, kRN, kRTid, 0});
        code.push_back(
            Insn{Op::ADD, kRCount, kRCount, kRSlots, 0});
        code.push_back(Insn{Op::ADDI, 0, kRCount, kRCount, -1});
        code.push_back(
            Insn{Op::DIVQ, kRCount, kRCount, kRSlots, 0});
    } else {
        emitLi(code, kRStride, 8);
        code.push_back(Insn{Op::ADD, kRCount, kRN, 0, 0});
    }

    // if (count <= 0) goto end
    const int guard_idx = static_cast<int>(code.size());
    code.push_back(Insn{Op::BLEZ, 0, kRCount, 0, 0});  // patched

    const int loop_start = static_cast<int>(code.size());
    for (const Insn &insn : loop_body)
        code.push_back(insn);
    code.push_back(Insn{Op::ADDI, 0, kRCount, kRCount, -1});
    if (params.parallel)
        code.push_back(Insn{Op::CHGPRI, 0, 0, 0, 0});
    const int branch_idx = static_cast<int>(code.size());
    code.push_back(Insn{Op::BGTZ, 0, kRCount, 0,
                        loop_start - (branch_idx + 1)});
    const int end_idx = static_cast<int>(code.size());
    code.push_back(Insn{Op::HALT, 0, 0, 0, 0});
    code[guard_idx].imm = end_idx - (guard_idx + 1);

    Program prog;
    prog.text_base = kDefaultTextBase;
    prog.data_base = kDefaultDataBase;
    prog.entry = prog.text_base;
    for (const Insn &insn : code)
        prog.text.push_back(encode(insn));
    prog.symbols["consts"] = consts_addr;
    prog.symbols["z"] = z_addr;
    prog.symbols["y"] = y_addr;
    prog.symbols["x"] = x_addr;

    Workload w;
    w.name = params.parallel ? "livermore1.par" : "livermore1.seq";
    w.program = std::move(prog);
    w.init = [n, consts_addr, z_addr, y_addr](MainMemory &mem) {
        mem.writeDouble(consts_addr + 0, kR);
        mem.writeDouble(consts_addr + 8, kT);
        mem.writeDouble(consts_addr + 16, kQ);
        for (int i = 0; i < n + 11; ++i)
            mem.writeDouble(z_addr + static_cast<Addr>(8 * i),
                            zValue(i));
        for (int i = 0; i < n; ++i)
            mem.writeDouble(y_addr + static_cast<Addr>(8 * i),
                            yValue(i));
    };
    w.check = [n, x_addr](const MainMemory &mem, std::string *why) {
        for (int k = 0; k < n; ++k) {
            double t0 = kR * zValue(k + 10);
            double t1 = kT * zValue(k + 11);
            t0 = t0 + t1;
            t0 = yValue(k) * t0;
            const double expect = kQ + t0;
            const double got =
                mem.readDouble(x_addr + static_cast<Addr>(8 * k));
            if (got != expect) {
                if (why) {
                    std::ostringstream oss;
                    oss << "X[" << k << "] = " << got
                        << ", expected " << expect;
                    *why = oss.str();
                }
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace smtsim
