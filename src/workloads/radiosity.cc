#include "workloads.hh"

#include <sstream>

#include "asmr/assembler.hh"
#include "base/logging.hh"
#include "base/random.hh"

namespace smtsim
{

namespace
{

/** Patch record layout: 9 doubles = 72 bytes. */
constexpr Addr kPatchBytes = 72;
// offsets: px 0, py 8, pz 16, nx 24, ny 32, nz 40,
//          area 48, rho 56, emission 64

constexpr double kDampen = 0.05;    // keeps the divisor positive

struct Patch
{
    double px, py, pz;
    double nx, ny, nz;
    double area, rho, emission;
};

std::vector<Patch>
buildPatches(int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Patch> patches;
    for (int i = 0; i < n; ++i) {
        Patch p;
        p.px = rng.nextRange(-4.0, 4.0);
        p.py = rng.nextRange(-4.0, 4.0);
        p.pz = rng.nextRange(-4.0, 4.0);
        // Not normalized; the form factor only needs direction.
        p.nx = rng.nextRange(-1.0, 1.0);
        p.ny = rng.nextRange(-1.0, 1.0);
        p.nz = rng.nextRange(-1.0, 1.0);
        p.area = rng.nextRange(0.5, 2.0);
        p.rho = rng.nextRange(0.2, 0.9);
        p.emission = rng.nextBelow(4) == 0
                         ? rng.nextRange(0.5, 2.0)
                         : 0.0;
        patches.push_back(p);
    }
    return patches;
}

double
initialB(int j)
{
    return 0.1 + 0.01 * (j % 13);
}

/**
 * Mirror of one gather for patch i, with the kernel's exact FP
 * operation order.
 */
double
gatherReference(const std::vector<Patch> &patches,
                const std::vector<double> &b, int i)
{
    const Patch &pi = patches[i];
    double acc = 0.0;
    for (size_t j = 0; j < patches.size(); ++j) {
        if (static_cast<int>(j) == i)
            continue;
        const Patch &pj = patches[j];
        const double rx = pj.px - pi.px;
        const double ry = pj.py - pi.py;
        const double rz = pj.pz - pi.pz;
        double d0 = rx * rx;
        double d1 = ry * ry;
        d0 = d0 + d1;
        double d2c = rz * rz;
        const double d2 = d0 + d2c;
        double c0 = pi.nx * rx;
        double c1 = pi.ny * ry;
        c0 = c0 + c1;
        double c2 = pi.nz * rz;
        const double ci = c0 + c2;
        if (!(0.0 < ci))
            continue;
        double e0 = pj.nx * rx;
        double e1 = pj.ny * ry;
        e0 = e0 + e1;
        double e2 = pj.nz * rz;
        double cj = e0 + e2;
        cj = -cj;
        if (!(0.0 < cj))
            continue;
        double num = ci * cj;
        double den = d2 * d2;
        den = den + kDampen;
        double w = num / den;
        w = w * pj.area;
        w = w * b[j];
        acc = acc + w;
    }
    return acc;
}

const char *kText = R"(
        .text
main:   la   r1, patches
        la   r2, bin
        la   r3, bout
        la   r9, consts
        lf   f30, 0(r9)         # dampening constant
        li   r4, %N%
        li   r17, 72            # patch record stride
        fastfork
        tid  r10
        nslot r7
        mv   r5, r10            # i = tid
iloop:  slt  r11, r5, r4
        beq  r11, r0, done
        mul  r12, r5, r17
        add  r12, r1, r12       # patch_i
        lf   f10, 0(r12)        # p_i
        lf   f11, 8(r12)
        lf   f12, 16(r12)
        lf   f13, 24(r12)       # n_i
        lf   f14, 32(r12)
        lf   f15, 40(r12)
        fmov f16, f0            # acc = 0
        mv   r13, r1            # patch_j = patches
        mv   r15, r2            # &B[j]
        li   r6, 0              # j
jloop:  slt  r11, r6, r4
        beq  r11, r0, emit
        beq  r13, r12, jnext    # skip self
        lf   f1, 0(r13)         # p_j
        lf   f2, 8(r13)
        lf   f3, 16(r13)
        fsub f1, f1, f10        # r = p_j - p_i
        fsub f2, f2, f11
        fsub f3, f3, f12
        fmul f4, f1, f1
        fmul f5, f2, f2
        fadd f4, f4, f5
        fmul f6, f3, f3
        fadd f7, f4, f6         # d2 = |r|^2
        fmul f4, f13, f1        # ci = n_i . r
        fmul f5, f14, f2
        fadd f4, f4, f5
        fmul f6, f15, f3
        fadd f8, f4, f6
        fcmplt r14, f0, f8      # facing away?
        beq  r14, r0, jnext
        lf   f1, 24(r13)        # n_j (r reloaded below via regs)
        lf   f2, 32(r13)
        lf   f3, 40(r13)
        lf   f17, 0(r13)        # recompute r (registers reused)
        lf   f18, 8(r13)
        lf   f19, 16(r13)
        fsub f17, f17, f10
        fsub f18, f18, f11
        fsub f19, f19, f12
        fmul f4, f1, f17        # cj = -(n_j . r)
        fmul f5, f2, f18
        fadd f4, f4, f5
        fmul f6, f3, f19
        fadd f9, f4, f6
        fneg f9, f9
        fcmplt r14, f0, f9
        beq  r14, r0, jnext
        fmul f4, f8, f9         # num = ci * cj
        fmul f5, f7, f7         # den = d2^2 + dampening
        fadd f5, f5, f30
        fdiv f6, f4, f5         # w
        lf   f1, 48(r13)        # area_j
        fmul f6, f6, f1
        lf   f2, 0(r15)         # B[j]
        fmul f6, f6, f2
        fadd f16, f16, f6       # acc += w
jnext:  add  r13, r13, r17
        addi r15, r15, 8
        addi r6, r6, 1
        j    jloop
emit:   lf   f1, 56(r12)        # rho_i
        lf   f2, 64(r12)        # E_i
        fmul f3, f1, f16
        fadd f3, f2, f3         # Bnew = E + rho * acc
        sll  r16, r5, 3
        add  r16, r3, r16
        sf   f3, 0(r16)
        add  r5, r5, r7         # i += nslot
        j    iloop
done:   halt
        .data
        .align 8
consts: .float 0.05
patches: .space %PBYTES%
        .align 8
bin:    .space %BBYTES%
bout:   .space %BBYTES%
)";

} // namespace

Workload
makeRadiosity(const RadiosityParams &params)
{
    const int n = params.num_patches;
    SMTSIM_ASSERT(n >= 2, "radiosity: need at least two patches");

    std::string source(kText);
    auto replace_all = [&source](const std::string &key,
                                 const std::string &value) {
        size_t at;
        while ((at = source.find(key)) != std::string::npos)
            source.replace(at, key.size(), value);
    };
    replace_all("%N%", std::to_string(n));
    replace_all("%PBYTES%",
                std::to_string(static_cast<int>(kPatchBytes) * n));
    replace_all("%BBYTES%", std::to_string(8 * n));

    const std::vector<Patch> patches =
        buildPatches(n, params.seed);

    Program prog = assemble(source);
    const Addr patches_addr = prog.symbol("patches");
    const Addr bin = prog.symbol("bin");
    const Addr bout = prog.symbol("bout");

    Workload w;
    w.name = "radiosity";
    w.program = std::move(prog);
    w.init = [n, patches, patches_addr, bin](MainMemory &mem) {
        for (int i = 0; i < n; ++i) {
            const Addr a =
                patches_addr + static_cast<Addr>(i) * kPatchBytes;
            const Patch &p = patches[static_cast<size_t>(i)];
            mem.writeDouble(a + 0, p.px);
            mem.writeDouble(a + 8, p.py);
            mem.writeDouble(a + 16, p.pz);
            mem.writeDouble(a + 24, p.nx);
            mem.writeDouble(a + 32, p.ny);
            mem.writeDouble(a + 40, p.nz);
            mem.writeDouble(a + 48, p.area);
            mem.writeDouble(a + 56, p.rho);
            mem.writeDouble(a + 64, p.emission);
            mem.writeDouble(bin + static_cast<Addr>(8 * i),
                            initialB(i));
        }
    };
    w.check = [n, patches, bout](const MainMemory &mem,
                                 std::string *why) {
        std::vector<double> b;
        for (int j = 0; j < n; ++j)
            b.push_back(initialB(j));
        for (int i = 0; i < n; ++i) {
            const double acc = gatherReference(patches, b, i);
            const Patch &p = patches[static_cast<size_t>(i)];
            const double scaled = p.rho * acc;
            const double expect = p.emission + scaled;
            const double got = mem.readDouble(
                bout + static_cast<Addr>(8 * i));
            if (got != expect) {
                if (why) {
                    std::ostringstream oss;
                    oss << "B[" << i << "] = " << got
                        << ", expected " << expect;
                    *why = oss.str();
                }
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace smtsim
