#include "workloads.hh"

#include <sstream>

#include "asmr/assembler.hh"
#include "base/logging.hh"

namespace smtsim
{

namespace
{

std::uint32_t
tableValue(int i)
{
    return static_cast<std::uint32_t>(3 * i + 1);
}

/** Key for global query index q (deterministic, mixed hit/miss). */
std::uint32_t
keyValue(int q, int table_size)
{
    // Knuth multiplicative hash, folded into the table's value
    // range so roughly a third of the lookups hit. Shifted right so
    // the kernel's signed remainder sees a non-negative value.
    const std::uint32_t h =
        static_cast<std::uint32_t>(q + 1) * 2654435761u;
    return (h >> 1) %
           static_cast<std::uint32_t>(3 * table_size + 2);
}

/** Mirror of the kernel's search: index + 1, or ~0u when absent. */
std::uint32_t
searchResult(std::uint32_t key, int table_size)
{
    int lo = 0;
    int hi = table_size - 1;
    while (lo <= hi) {
        const int mid = (lo + hi) >> 1;
        const std::uint32_t v = tableValue(mid);
        if (v == key)
            return static_cast<std::uint32_t>(mid + 1);
        if (v < key)
            lo = mid + 1;
        else
            hi = mid - 1;
    }
    return ~std::uint32_t{0};
}

// Total work is fixed: query q is handled by thread q mod S, and
// its result lands in results[q], so any slot count computes the
// same output.
const char *kText = R"(
        .text
main:   la   r1, table
        la   r2, results
        li   r4, %M%            # table size
        li   r5, %Q%            # total queries
        li   r20, 40503         # hash constant 0x9e3779b1
        sll  r20, r20, 16
        ori  r20, r20, 31153
        li   r21, %RANGE%
        fastfork
        tid  r10
        nslot r7
        mv   r6, r10            # q = tid
qloop:  slt  r11, r6, r5
        beq  r11, r0, fin
        # key = (((q + 1) * HASH) >> 1) % RANGE
        addi r11, r6, 1
        mul  r11, r11, r20
        srl  r11, r11, 1
        remq r11, r11, r21
        # binary search for r11
        li   r12, 0             # lo
        addi r13, r4, -1        # hi
bs:     slt  r14, r13, r12      # hi < lo: not found
        bne  r14, r0, miss
        add  r15, r12, r13
        srl  r15, r15, 1        # mid
        sll  r16, r15, 2
        add  r16, r1, r16
        lw   r17, 0(r16)        # table[mid]
        beq  r17, r11, hit
        sltu r14, r17, r11      # table[mid] < key ?
        beq  r14, r0, golow
        addi r12, r15, 1        # lo = mid + 1
        j    bs
golow:  addi r13, r15, -1       # hi = mid - 1
        j    bs
hit:    addi r22, r15, 1        # result = mid + 1
        j    put
miss:   li   r22, 0xffff
        sll  r22, r22, 16
        ori  r22, r22, 0xffff   # result = ~0
put:    sll  r16, r6, 2
        add  r16, r2, r16
        sw   r22, 0(r16)        # results[q]
        add  r6, r6, r7         # q += nslot
        j    qloop
fin:    halt
        .data
table:  .space %TBYTES%
        .align 8
results: .space %RBYTES%
)";

} // namespace

Workload
makeBsearch(const BsearchParams &params)
{
    const int m = params.table_size;
    const int q = params.queries_per_thread * 4;    // total
    SMTSIM_ASSERT(m >= 1 && q >= 1, "bsearch: bad parameters");

    std::string source(kText);
    auto replace_all = [&source](const std::string &key,
                                 const std::string &value) {
        size_t at;
        while ((at = source.find(key)) != std::string::npos)
            source.replace(at, key.size(), value);
    };
    replace_all("%M%", std::to_string(m));
    replace_all("%Q%", std::to_string(q));
    replace_all("%RANGE%", std::to_string(3 * m + 2));
    replace_all("%TBYTES%", std::to_string(4 * m));
    replace_all("%RBYTES%", std::to_string(4 * q));

    Program prog = assemble(source);
    const Addr table = prog.symbol("table");
    const Addr results = prog.symbol("results");

    Workload w;
    w.name = "bsearch";
    w.program = std::move(prog);
    w.init = [m, table](MainMemory &mem) {
        for (int i = 0; i < m; ++i)
            mem.write32(table + static_cast<Addr>(4 * i),
                        tableValue(i));
    };
    w.check = [m, q, results](const MainMemory &mem,
                              std::string *why) {
        for (int i = 0; i < q; ++i) {
            const std::uint32_t expect =
                searchResult(keyValue(i, m), m);
            const std::uint32_t got =
                mem.read32(results + static_cast<Addr>(4 * i));
            if (got != expect) {
                if (why) {
                    std::ostringstream oss;
                    oss << "results[" << i << "] = " << got
                        << ", expected " << expect;
                    *why = oss.str();
                }
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace smtsim
