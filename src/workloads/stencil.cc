#include "workloads.hh"

#include <sstream>
#include <vector>

#include "asmr/assembler.hh"
#include "base/logging.hh"

namespace smtsim
{

namespace
{

double
initialPixel(int x, int y)
{
    return 0.1 * ((x * 7 + y * 13) % 23);
}

// Each sweep reads buffer "in" and writes buffer "out", interior
// points only, then the threads meet at a queue-register ring
// barrier (two token laps) and swap buffers. Thread t owns interior
// rows 1+t, 1+t+S, ...
const char *kText = R"(
        .text
main:   qen  r20, r21
        la   r1, bufa           # in
        la   r2, bufb           # out
        li   r3, %W%
        li   r4, %H%
        li   r5, %SWEEPS%
        la   r9, consts
        lf   f30, 0(r9)         # 4.0
        lf   f31, 8(r9)         # 0.125
        sll  r22, r3, 3         # row stride in bytes
        fastfork
        tid  r10
        nslot r7
sweep:  addi r11, r10, 1        # y = 1 + tid
rowloop:
        addi r12, r4, -2
        slt  r13, r12, r11      # y > H-2 ?
        bne  r13, r0, rowdone
        mul  r14, r11, r3
        sll  r14, r14, 3
        add  r15, r1, r14       # &in[y][0]
        add  r16, r2, r14       # &out[y][0]
        addi r15, r15, 8        # x = 1
        addi r16, r16, 8
        addi r17, r3, -2        # interior width
xloop:  lf   f1, 0(r15)         # center
        fmul f4, f1, f30
        sub  r23, r15, r22
        lf   f2, 0(r23)         # up
        fadd f4, f4, f2
        add  r23, r15, r22
        lf   f2, 0(r23)         # down
        fadd f4, f4, f2
        lf   f2, -8(r15)        # left
        fadd f4, f4, f2
        lf   f2, 8(r15)         # right
        fadd f4, f4, f2
        fmul f4, f4, f31
        sf   f4, 0(r16)
        addi r15, r15, 8
        addi r16, r16, 8
        addi r17, r17, -1
        bgtz r17, xloop
        add  r11, r11, r7       # y += S
        j    rowloop
rowdone:
        # Ring barrier (two token laps); skip when S == 1.
        addi r13, r7, -1
        blez r13, swapbufs
        beq  r10, r0, bar0
        add  r24, r20, r0       # wait: predecessors done
        add  r21, r24, r0       # forward completion token
        add  r24, r20, r0       # wait: release
        addi r13, r7, -1
        beq  r10, r13, swapbufs # last slot eats the release
        add  r21, r24, r0       # forward release
        j    swapbufs
bar0:   addi r21, r0, 1         # start completion lap
        add  r24, r20, r0       # everyone finished
        addi r21, r0, 1         # start release lap
swapbufs:
        mv   r13, r1
        mv   r1, r2
        mv   r2, r13
        addi r5, r5, -1
        bgtz r5, sweep
        halt
        .data
        .align 8
consts: .float 4.0, 0.125
bufa:   .space %BYTES%
        .align 8
bufb:   .space %BYTES%
)";

} // namespace

Workload
makeStencil(const StencilParams &params)
{
    const int w = params.width;
    const int h = params.height;
    const int sweeps = params.sweeps;
    SMTSIM_ASSERT(w >= 3 && h >= 3, "stencil: grid too small");
    SMTSIM_ASSERT(sweeps >= 1, "stencil: need at least one sweep");

    std::string source(kText);
    auto replace_all = [&source](const std::string &key,
                                 const std::string &value) {
        size_t at;
        while ((at = source.find(key)) != std::string::npos)
            source.replace(at, key.size(), value);
    };
    replace_all("%W%", std::to_string(w));
    replace_all("%H%", std::to_string(h));
    replace_all("%SWEEPS%", std::to_string(sweeps));
    replace_all("%BYTES%", std::to_string(8 * w * h));

    Program prog = assemble(source);
    const Addr bufa = prog.symbol("bufa");
    const Addr bufb = prog.symbol("bufb");

    Workload wl;
    wl.name = "stencil";
    wl.program = std::move(prog);
    wl.init = [w, h, bufa, bufb](MainMemory &mem) {
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                const double v = initialPixel(x, y);
                const Addr off =
                    static_cast<Addr>(8 * (y * w + x));
                mem.writeDouble(bufa + off, v);
                mem.writeDouble(bufb + off, v);
            }
        }
    };
    wl.check = [w, h, sweeps, bufa, bufb](const MainMemory &mem,
                                          std::string *why) {
        // Mirror the sweeps with the kernel's exact FP op order.
        std::vector<double> in(static_cast<size_t>(w) * h);
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                in[static_cast<size_t>(y) * w + x] =
                    initialPixel(x, y);
        std::vector<double> out = in;
        for (int s = 0; s < sweeps; ++s) {
            for (int y = 1; y < h - 1; ++y) {
                for (int x = 1; x < w - 1; ++x) {
                    const size_t i =
                        static_cast<size_t>(y) * w + x;
                    double acc = in[i] * 4.0;
                    acc = acc + in[i - static_cast<size_t>(w)];
                    acc = acc + in[i + static_cast<size_t>(w)];
                    acc = acc + in[i - 1];
                    acc = acc + in[i + 1];
                    out[i] = acc * 0.125;
                }
            }
            std::swap(in, out);
        }
        // After the final swap, "in" holds the result; it lives in
        // bufb after an odd number of sweeps, bufa after even.
        const Addr result = (sweeps % 2) ? bufb : bufa;
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                const double expect =
                    in[static_cast<size_t>(y) * w + x];
                const double got = mem.readDouble(
                    result + static_cast<Addr>(8 * (y * w + x)));
                if (got != expect) {
                    if (why) {
                        std::ostringstream oss;
                        oss << "pixel (" << x << "," << y
                            << ") = " << got << ", expected "
                            << expect;
                        *why = oss.str();
                    }
                    return false;
                }
            }
        }
        return true;
    };
    return wl;
}

} // namespace smtsim
