#include "interconnect.hh"

#include <algorithm>
#include <stdexcept>

#include "base/hash.hh"
#include "base/logging.hh"

namespace smtsim
{

Interconnect::Interconnect(const InterconnectConfig &cfg,
                           int num_cores)
    : cfg_(cfg), num_cores_(num_cores)
{
    if (num_cores_ < 1)
        fatal("interconnect: need at least one core, got ",
              num_cores_);
    if (cfg_.l2_banks < 1)
        fatal("interconnect: need at least one L2 bank, got ",
              cfg_.l2_banks);
    if (cfg_.mshrs_per_bank < 1)
        fatal("interconnect: need at least one MSHR per bank, got ",
              cfg_.mshrs_per_bank);
    if (cfg_.bank_interleave < 4)
        fatal("interconnect: bank interleave must be at least one "
              "word (4 bytes), got ", cfg_.bank_interleave);
    if (minLatency() < 2) {
        fatal("interconnect: l2_access_cycles + 2*hop_latency must "
              "be at least 2 cycles (the parallel schedule needs "
              "one cycle of quantum slack), got ", minLatency());
    }
    bank_slots_.assign(
        static_cast<std::size_t>(cfg_.l2_banks),
        std::vector<Cycle>(
            static_cast<std::size_t>(cfg_.mshrs_per_bank), 0));
    stats_.bank_accesses.assign(
        static_cast<std::size_t>(cfg_.l2_banks), 0);
    stats_.bank_conflicts.assign(
        static_cast<std::size_t>(cfg_.l2_banks), 0);
}

int
Interconnect::bankOf(Addr addr) const
{
    return static_cast<int>(
        (addr / cfg_.bank_interleave) %
        static_cast<Addr>(cfg_.l2_banks));
}

int
Interconnect::hops(int core, int bank) const
{
    // Cores occupy ring positions 0..N-1; bank j hangs off position
    // floor(j*N/B), spreading the banks around the ring. A request
    // always leaves the core, so the distance floors at one hop.
    const int n = num_cores_;
    const int pos = bank * n / cfg_.l2_banks;
    const int d = core >= pos ? core - pos : pos - core;
    return std::max(1, std::min(d, n - d));
}

Cycle
Interconnect::uncontendedLatency(int core, Addr addr) const
{
    const int h = hops(core, bankOf(addr));
    return cfg_.l2_access_cycles +
           2 * static_cast<Cycle>(h) * cfg_.hop_latency;
}

Cycle
Interconnect::minLatency() const
{
    // hops() floors at 1 and some (core, bank) pair always achieves
    // it, so the bound is closed-form.
    return cfg_.l2_access_cycles + 2 * cfg_.hop_latency;
}

Cycle
Interconnect::resolve(const RemoteRequest &req)
{
    const int bank = bankOf(req.addr);
    const Cycle travel =
        static_cast<Cycle>(hops(req.core, bank)) * cfg_.hop_latency;
    const Cycle arrival = req.issued + travel;

    // Claim the earliest-free MSHR slot (lowest index on ties — the
    // scan order makes the choice deterministic).
    auto &slots = bank_slots_[static_cast<std::size_t>(bank)];
    std::size_t pick = 0;
    for (std::size_t i = 1; i < slots.size(); ++i) {
        if (slots[i] < slots[pick])
            pick = i;
    }

    Cycle start = arrival;
    const bool queued = slots[pick] > arrival;
    if (queued) {
        start = slots[pick] + cfg_.bank_conflict_penalty;
        ++stats_.conflicts;
        ++stats_.bank_conflicts[static_cast<std::size_t>(bank)];
    }
    const Cycle done_at_bank = start + cfg_.l2_access_cycles;
    slots[pick] = done_at_bank;

    const Cycle completion = done_at_bank + travel;
    ++stats_.requests;
    ++stats_.bank_accesses[static_cast<std::size_t>(bank)];
    stats_.total_latency += completion - req.issued;
    return completion;
}

std::uint64_t
Interconnect::fingerprint() const
{
    Fnv1a h;
    auto add64 = [&h](std::uint64_t v) { h.add(&v, sizeof v); };
    add64(0x4d43'4e4f'4331ull);     // "MCNOC1"
    add64(static_cast<std::uint64_t>(num_cores_));
    add64(static_cast<std::uint64_t>(cfg_.l2_banks));
    add64(cfg_.bank_interleave);
    add64(static_cast<std::uint64_t>(cfg_.mshrs_per_bank));
    add64(cfg_.l2_access_cycles);
    add64(cfg_.bank_conflict_penalty);
    add64(cfg_.hop_latency);
    return h.digest();
}

void
Interconnect::save(obs::ByteWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(bank_slots_.size()));
    for (const auto &slots : bank_slots_) {
        w.u32(static_cast<std::uint32_t>(slots.size()));
        for (Cycle c : slots)
            w.u64(c);
    }
    w.u64(stats_.requests);
    w.u64(stats_.conflicts);
    w.u64(stats_.total_latency);
    for (std::uint64_t v : stats_.bank_accesses)
        w.u64(v);
    for (std::uint64_t v : stats_.bank_conflicts)
        w.u64(v);
}

void
Interconnect::load(obs::ByteReader &r)
{
    if (r.u32() != bank_slots_.size())
        throw std::runtime_error(
            "interconnect checkpoint: bank count mismatch");
    for (auto &slots : bank_slots_) {
        if (r.u32() != slots.size())
            throw std::runtime_error(
                "interconnect checkpoint: MSHR count mismatch");
        for (Cycle &c : slots)
            c = r.u64();
    }
    stats_.requests = r.u64();
    stats_.conflicts = r.u64();
    stats_.total_latency = r.u64();
    for (std::uint64_t &v : stats_.bank_accesses)
        v = r.u64();
    for (std::uint64_t &v : stats_.bank_conflicts)
        v = r.u64();
}

} // namespace smtsim
