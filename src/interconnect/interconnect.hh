/**
 * @file
 * Inter-core memory model for the many-core machine
 * (docs/MANYCORE.md): an address-interleaved banked shared L2
 * behind a ring interconnect with per-hop latency. This is what
 * the remote-memory/context-frame traffic of the elementary
 * processors targets once they are assembled into a machine —
 * replacing the fixed-latency RemoteRegion stub used by a lone
 * core.
 *
 * Timing model (deliberately simple and *sequentially folded*):
 *  - the L2 is split into address-interleaved banks
 *    (bank = (addr / interleave) % banks);
 *  - cores and banks sit on a bidirectional ring; a request pays
 *    hop_latency per hop each way (at least one hop — the bank is
 *    never inside the core);
 *  - each bank has a small file of MSHR-style slots; a request
 *    arriving while all slots are occupied queues until the
 *    earliest slot frees and pays bank_conflict_penalty once;
 *  - a bank slot is occupied for l2_access_cycles per request.
 *
 * Determinism contract: resolve() is a pure fold over the request
 * sequence — given the same requests in the same order it produces
 * the same completion times and the same bank state, regardless of
 * how the requests were batched by the simulator's quantum loop.
 * The machine guarantees a canonical (issue cycle, core, sequence)
 * order, so parallel host schedules are bit-identical to the
 * sequential one (docs/MANYCORE.md has the full argument).
 */

#ifndef SMTSIM_INTERCONNECT_INTERCONNECT_HH
#define SMTSIM_INTERCONNECT_INTERCONNECT_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "obs/serial.hh"

namespace smtsim
{

/** Banked-L2 + ring interconnect configuration. */
struct InterconnectConfig
{
    /** Address-interleaved L2 banks. */
    int l2_banks = 4;
    /** Interleave stripe in bytes (one bank services a stripe). */
    Addr bank_interleave = 64;
    /** Outstanding-request (MSHR-style) slots per bank. */
    int mshrs_per_bank = 4;
    /** Bank service time per request, in cycles. */
    Cycle l2_access_cycles = 20;
    /** One-time penalty when a request finds every slot busy. */
    Cycle bank_conflict_penalty = 6;
    /** Ring-hop traversal latency, paid per hop, each way. */
    Cycle hop_latency = 2;
};

/** One remote access in flight from a core to the shared L2. */
struct RemoteRequest
{
    Cycle issued = 0;       ///< cycle the core issued the access
    int core = 0;           ///< requesting core
    int frame = 0;          ///< context frame waiting on the line
    Addr addr = 0;
    /** Per-core issue sequence number; with (issued, core) it makes
     *  the canonical resolution order a total order. */
    std::uint64_t seq = 0;
};

/** Counters exported into MachineStats. */
struct InterconnectStats
{
    std::uint64_t requests = 0;
    /** Requests that queued for a busy bank. */
    std::uint64_t conflicts = 0;
    /** Sum of completion - issue over all requests. */
    std::uint64_t total_latency = 0;
    std::vector<std::uint64_t> bank_accesses;
    std::vector<std::uint64_t> bank_conflicts;
};

/**
 * The machine-wide shared L2 + ring. Mutable state is one
 * busy-until time per bank MSHR slot; everything else is pure
 * topology arithmetic.
 */
class Interconnect
{
  public:
    /**
     * @throws FatalError on a non-positive bank/slot count, an
     * interleave below one word, or a topology whose minimum
     * uncontended latency is below 2 cycles (the quantum-based
     * parallel schedule needs at least one cycle of slack —
     * docs/MANYCORE.md).
     */
    Interconnect(const InterconnectConfig &cfg, int num_cores);

    int numBanks() const { return cfg_.l2_banks; }
    int numCores() const { return num_cores_; }
    const InterconnectConfig &config() const { return cfg_; }

    /** Bank servicing @p addr (address-interleaved). */
    int bankOf(Addr addr) const;

    /** Ring distance (>= 1) between @p core and @p bank. */
    int hops(int core, int bank) const;

    /**
     * Request + response traversal plus one bank service, assuming
     * an idle bank. This is also the latency explicit-rotation
     * cores charge for their inline (non-trapping) remote waits.
     */
    Cycle uncontendedLatency(int core, Addr addr) const;

    /** Smallest uncontendedLatency over every (core, bank) pair —
     *  the bound the machine's quantum must stay under. */
    Cycle minLatency() const;

    /**
     * Fold one request through the bank model and return the cycle
     * its data is back at the requesting core. Callers must present
     * requests in canonical (issued, core, seq) order; the machine's
     * barrier does. Completion is always >= issued + minLatency().
     */
    Cycle resolve(const RemoteRequest &req);

    const InterconnectStats &stats() const { return stats_; }

    /** Config + topology digest folded into machine fingerprints. */
    std::uint64_t fingerprint() const;

    /** Checkpoint the mutable bank state + counters. */
    void save(obs::ByteWriter &w) const;
    /** @throws std::runtime_error on a shape mismatch. */
    void load(obs::ByteReader &r);

  private:
    InterconnectConfig cfg_;
    int num_cores_;
    /** busy-until cycle per (bank, MSHR slot). */
    std::vector<std::vector<Cycle>> bank_slots_;
    InterconnectStats stats_;
};

} // namespace smtsim

#endif // SMTSIM_INTERCONNECT_INTERCONNECT_HH
