#include "analytic.hh"

#include <algorithm>

namespace smtsim
{

AnalyticModel
buildAnalyticModel(const RunStats &single_thread)
{
    AnalyticModel model;
    if (single_thread.cycles == 0)
        return model;
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        model.demand[cls] =
            static_cast<double>(single_thread.fu_busy[cls]) /
            static_cast<double>(single_thread.cycles);
    }
    return model;
}

double
AnalyticModel::speedupBound(int threads,
                            const FuPoolConfig &pool) const
{
    double bound = static_cast<double>(threads);
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        const FuClass fc = static_cast<FuClass>(cls);
        if (fc == FuClass::None || demand[cls] <= 0.0)
            continue;
        bound = std::min(bound, static_cast<double>(
                                    pool.count(fc)) /
                                    demand[cls]);
    }
    return bound;
}

FuClass
AnalyticModel::bottleneck(const FuPoolConfig &pool) const
{
    FuClass worst = FuClass::None;
    double best_ratio = 0.0;
    for (int cls = 0; cls < kNumFuClasses; ++cls) {
        const FuClass fc = static_cast<FuClass>(cls);
        if (fc == FuClass::None || demand[cls] <= 0.0)
            continue;
        const double ratio =
            demand[cls] / static_cast<double>(pool.count(fc));
        if (ratio > best_ratio) {
            best_ratio = ratio;
            worst = fc;
        }
    }
    return worst;
}

} // namespace smtsim
