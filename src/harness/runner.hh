/**
 * @file
 * Convenience harness used by the tests, the examples and the
 * benchmark binaries: load a Workload, run it on one of the
 * engines, verify its outputs.
 */

#ifndef SMTSIM_HARNESS_RUNNER_HH
#define SMTSIM_HARNESS_RUNNER_HH

#include <string>

#include "baseline/baseline.hh"
#include "core/config.hh"
#include "machine/manycore.hh"
#include "machine/run_stats.hh"
#include "trace/exec_trace.hh"
#include "workloads/workloads.hh"

namespace smtsim
{

/** Result of one run: timing stats + output verification. */
struct Outcome
{
    RunStats stats;
    bool ok = false;        ///< finished and outputs verified
    std::string error;      ///< first failure description
};

/** Run on the multithreaded core. */
Outcome runCore(const Workload &workload, const CoreConfig &cfg);

/** Result of one many-core machine run. */
struct MachineOutcome
{
    MachineStats stats;
    bool ok = false;        ///< finished and every core verified
    std::string error;      ///< first failure description
};

/**
 * Run on the N-core machine (SPMD: every core executes the
 * workload against its own private memory, coupled through the
 * shared L2 model). host_threads = 0 is the sequential reference
 * schedule; any value produces bit-identical results.
 */
MachineOutcome runMachine(const Workload &workload,
                          const MachineConfig &cfg,
                          int host_threads = 0);

/** Run on the baseline RISC processor. */
Outcome runBaseline(const Workload &workload,
                    const BaselineConfig &cfg = {});

/**
 * Run on the functional interpreter (stats.instructions = executed
 * instructions; cycle fields are zero).
 */
Outcome runInterp(const Workload &workload, int num_threads = 1);

/**
 * Run on the threaded-code fast engine (fastpath::FastEngine) —
 * same output shape as runInterp, typically several times faster.
 */
Outcome runFast(const Workload &workload, int num_threads = 1);

/**
 * Functional-first core run: record an execution trace with the
 * fast engine (verifying the workload's outputs functionally), then
 * time it on the multithreaded core in replay mode. Bit-identical
 * stats to runCore; falls back to runCore on ReplayDivergence. Sets
 * @p replayed (when non-null) to whether replay was actually used.
 */
Outcome runCoreReplay(const Workload &workload,
                      const CoreConfig &cfg,
                      bool *replayed = nullptr);

/**
 * The timing half of runCoreReplay on its own: time @p workload on
 * the multithreaded core in verified replay mode against a trace
 * recorded earlier (with matching num_threads == num_slots and
 * queue depth). Does not re-verify workload outputs — the caller
 * vouches for the functional pass. Falls back to runCore on
 * ReplayDivergence; @p replayed reports whether replay held. Used
 * by the lab executor to record once and time many grid cells.
 */
Outcome timeCoreFromTrace(const Workload &workload,
                          const CoreConfig &cfg,
                          const ExecTrace &trace,
                          bool *replayed = nullptr);

/**
 * The paper's speed-up ratio: sequential-baseline cycles over
 * multithreaded cycles.
 */
double speedup(const RunStats &baseline, const RunStats &core);

} // namespace smtsim

#endif // SMTSIM_HARNESS_RUNNER_HH
