/**
 * @file
 * Convenience harness used by the tests, the examples and the
 * benchmark binaries: load a Workload, run it on one of the three
 * engines, verify its outputs.
 */

#ifndef SMTSIM_HARNESS_RUNNER_HH
#define SMTSIM_HARNESS_RUNNER_HH

#include <string>

#include "baseline/baseline.hh"
#include "core/config.hh"
#include "machine/run_stats.hh"
#include "workloads/workloads.hh"

namespace smtsim
{

/** Result of one run: timing stats + output verification. */
struct Outcome
{
    RunStats stats;
    bool ok = false;        ///< finished and outputs verified
    std::string error;      ///< first failure description
};

/** Run on the multithreaded core. */
Outcome runCore(const Workload &workload, const CoreConfig &cfg);

/** Run on the baseline RISC processor. */
Outcome runBaseline(const Workload &workload,
                    const BaselineConfig &cfg = {});

/**
 * Run on the functional interpreter (stats.instructions = executed
 * instructions; cycle fields are zero).
 */
Outcome runInterp(const Workload &workload, int num_threads = 1);

/**
 * The paper's speed-up ratio: sequential-baseline cycles over
 * multithreaded cycles.
 */
double speedup(const RunStats &baseline, const RunStats &core);

} // namespace smtsim

#endif // SMTSIM_HARNESS_RUNNER_HH
