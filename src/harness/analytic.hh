/**
 * @file
 * The paper's Figure 1 argument, as an analytic model: if the
 * busiest functional unit of a single-thread run shows utilization
 * U, then about 1/U threads can be merged onto one unit pool before
 * it saturates, and the speed-up of S threads is bounded by every
 * unit class's remaining headroom.
 *
 * Used to sanity-check the simulator: the measured Table 2 curve
 * must track min(S, capacity bound) within the slack the pipeline's
 * own overheads allow.
 */

#ifndef SMTSIM_HARNESS_ANALYTIC_HH
#define SMTSIM_HARNESS_ANALYTIC_HH

#include <array>

#include "machine/fu_pool.hh"
#include "machine/run_stats.hh"

namespace smtsim
{

/** Per-class demand extracted from a single-thread reference run. */
struct AnalyticModel
{
    /** Busy cycles per executed cycle, per class (N*L/T). */
    std::array<double, kNumFuClasses> demand{};

    /**
     * Upper bound on the speed-up of @p threads identical threads
     * sharing @p pool: each class c with single-thread demand d_c
     * and u_c units caps the speed-up at u_c / d_c; the thread
     * count itself caps it at S.
     */
    double speedupBound(int threads, const FuPoolConfig &pool) const;

    /** The class that saturates first under @p pool (the paper's
     *  "busiest functional unit"). */
    FuClass bottleneck(const FuPoolConfig &pool) const;
};

/** Build the model from a single-thread run's statistics. */
AnalyticModel buildAnalyticModel(const RunStats &single_thread);

} // namespace smtsim

#endif // SMTSIM_HARNESS_ANALYTIC_HH
