#include "runner.hh"

#include "core/processor.hh"
#include "fastpath/engine.hh"
#include "interp/interpreter.hh"

namespace smtsim
{

namespace
{

bool
verify(const Workload &workload, const MainMemory &mem,
       std::string *error)
{
    if (!workload.check)
        return true;
    std::string why;
    if (workload.check(mem, &why))
        return true;
    if (error)
        *error = workload.name + ": " + why;
    return false;
}

} // namespace

Outcome
runCore(const Workload &workload, const CoreConfig &cfg)
{
    Outcome out;
    MainMemory mem;
    workload.program.loadInto(mem);
    if (workload.init)
        workload.init(mem);

    MultithreadedProcessor cpu(workload.program, mem, cfg);
    out.stats = cpu.run();
    if (!out.stats.finished) {
        out.error = workload.name + ": cycle budget exhausted";
        return out;
    }
    out.ok = verify(workload, mem, &out.error);
    return out;
}

MachineOutcome
runMachine(const Workload &workload, const MachineConfig &cfg,
           int host_threads)
{
    MachineOutcome out;
    ManyCoreMachine machine(
        workload.program, cfg,
        [&workload](int, MainMemory &mem) {
            if (workload.init)
                workload.init(mem);
        });
    out.stats = machine.run(host_threads);
    if (!out.stats.finished) {
        out.error = workload.name + ": cycle budget exhausted";
        return out;
    }
    for (int i = 0; i < machine.numCores(); ++i) {
        std::string why;
        if (!verify(workload, machine.memory(i), &why)) {
            out.error =
                "core " + std::to_string(i) + ": " + why;
            return out;
        }
    }
    out.ok = true;
    return out;
}

Outcome
runBaseline(const Workload &workload, const BaselineConfig &cfg)
{
    Outcome out;
    MainMemory mem;
    workload.program.loadInto(mem);
    if (workload.init)
        workload.init(mem);

    BaselineProcessor cpu(workload.program, mem, cfg);
    out.stats = cpu.run();
    if (!out.stats.finished) {
        out.error = workload.name + ": cycle budget exhausted";
        return out;
    }
    out.ok = verify(workload, mem, &out.error);
    return out;
}

Outcome
runInterp(const Workload &workload, int num_threads)
{
    Outcome out;
    MainMemory mem;
    workload.program.loadInto(mem);
    if (workload.init)
        workload.init(mem);

    InterpConfig cfg;
    cfg.num_threads = num_threads;
    Interpreter interp(workload.program, mem, cfg);
    const InterpResult result = interp.run();
    out.stats.instructions = result.steps;
    out.stats.finished = result.completed;
    if (!result.completed) {
        out.error = workload.name + ": interpreter did not finish";
        return out;
    }
    out.ok = verify(workload, mem, &out.error);
    return out;
}

Outcome
runFast(const Workload &workload, int num_threads)
{
    Outcome out;
    MainMemory mem;
    workload.program.loadInto(mem);
    if (workload.init)
        workload.init(mem);

    InterpConfig cfg;
    cfg.num_threads = num_threads;
    fastpath::FastEngine engine(workload.program, mem, cfg);
    const InterpResult result = engine.run();
    out.stats.instructions = result.steps;
    out.stats.finished = result.completed;
    if (!result.completed) {
        out.error = workload.name + ": fast engine did not finish";
        return out;
    }
    out.ok = verify(workload, mem, &out.error);
    return out;
}

Outcome
runCoreReplay(const Workload &workload, const CoreConfig &cfg,
              bool *replayed)
{
    if (replayed)
        *replayed = false;

    // Functional pass: execute once with the fast engine, verify
    // the outputs, keep the trace.
    MainMemory fmem;
    workload.program.loadInto(fmem);
    if (workload.init)
        workload.init(fmem);
    InterpConfig icfg;
    icfg.num_threads = cfg.num_slots;
    icfg.queue_depth = cfg.queue_reg_depth;
    const fastpath::TracedRun recorded =
        fastpath::recordTrace(workload.program, fmem, icfg);

    Outcome out;
    if (!recorded.result.completed) {
        out.error = workload.name + ": fast engine did not finish";
        return out;
    }
    if (!verify(workload, fmem, &out.error))
        return out;

    return timeCoreFromTrace(workload, cfg, recorded.trace,
                             replayed);
}

Outcome
timeCoreFromTrace(const Workload &workload, const CoreConfig &cfg,
                  const ExecTrace &trace, bool *replayed)
{
    if (replayed)
        *replayed = false;
    // Verified replay: execution is checked against the trace
    // decision by decision, so the outputs need no second
    // verification here.
    try {
        MainMemory tmem;
        workload.program.loadInto(tmem);
        if (workload.init)
            workload.init(tmem);
        MultithreadedProcessor cpu(workload.program, tmem, cfg);
        cpu.setReplayTrace(&trace);
        Outcome out;
        out.stats = cpu.run();
        if (!out.stats.finished) {
            out.ok = false;
            out.error = workload.name + ": cycle budget exhausted";
            return out;
        }
        out.ok = true;
        if (replayed)
            *replayed = true;
        return out;
    } catch (const ReplayDivergence &) {
        return runCore(workload, cfg);
    }
}

double
speedup(const RunStats &baseline, const RunStats &core)
{
    if (core.cycles == 0)
        return 0.0;
    return static_cast<double>(baseline.cycles) /
           static_cast<double>(core.cycles);
}

} // namespace smtsim
