#include "runner.hh"

#include "core/processor.hh"
#include "interp/interpreter.hh"

namespace smtsim
{

namespace
{

bool
verify(const Workload &workload, const MainMemory &mem,
       std::string *error)
{
    if (!workload.check)
        return true;
    std::string why;
    if (workload.check(mem, &why))
        return true;
    if (error)
        *error = workload.name + ": " + why;
    return false;
}

} // namespace

Outcome
runCore(const Workload &workload, const CoreConfig &cfg)
{
    Outcome out;
    MainMemory mem;
    workload.program.loadInto(mem);
    if (workload.init)
        workload.init(mem);

    MultithreadedProcessor cpu(workload.program, mem, cfg);
    out.stats = cpu.run();
    if (!out.stats.finished) {
        out.error = workload.name + ": cycle budget exhausted";
        return out;
    }
    out.ok = verify(workload, mem, &out.error);
    return out;
}

Outcome
runBaseline(const Workload &workload, const BaselineConfig &cfg)
{
    Outcome out;
    MainMemory mem;
    workload.program.loadInto(mem);
    if (workload.init)
        workload.init(mem);

    BaselineProcessor cpu(workload.program, mem, cfg);
    out.stats = cpu.run();
    if (!out.stats.finished) {
        out.error = workload.name + ": cycle budget exhausted";
        return out;
    }
    out.ok = verify(workload, mem, &out.error);
    return out;
}

Outcome
runInterp(const Workload &workload, int num_threads)
{
    Outcome out;
    MainMemory mem;
    workload.program.loadInto(mem);
    if (workload.init)
        workload.init(mem);

    InterpConfig cfg;
    cfg.num_threads = num_threads;
    Interpreter interp(workload.program, mem, cfg);
    const InterpResult result = interp.run();
    out.stats.instructions = result.steps;
    out.stats.finished = result.completed;
    if (!result.completed) {
        out.error = workload.name + ": interpreter did not finish";
        return out;
    }
    out.ok = verify(workload, mem, &out.error);
    return out;
}

double
speedup(const RunStats &baseline, const RunStats &core)
{
    if (core.cycles == 0)
        return 0.0;
    return static_cast<double>(baseline.cycles) /
           static_cast<double>(core.cycles);
}

} // namespace smtsim
