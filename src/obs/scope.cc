#include "scope.hh"

#include <algorithm>

#include "isa/insn.hh"
#include "machine/fu_pool.hh"

namespace smtsim::obs
{

namespace
{

/** First event index whose cycle is greater than @p c. */
std::size_t
upperBound(const std::vector<Event> &events, Cycle c)
{
    auto it = std::upper_bound(
        events.begin(), events.end(), c,
        [](Cycle lhs, const Event &ev) { return lhs < ev.cycle; });
    return static_cast<std::size_t>(it - events.begin());
}

} // namespace

ScopeModel::ScopeModel(EventStream stream)
    : stream_(std::move(stream)), num_slots_(stream_.meta.num_slots)
{
    if (num_slots_ <= 0)
        num_slots_ = 1;

    State st;
    st.slot_frame.assign(num_slots_, -1);
    st.standby.assign(
        kNumFuClasses,
        std::vector<ScopeView::ParkedOp>(num_slots_));
    st.queue_depth.assign(num_slots_, 0);
    for (int s = 0; s < num_slots_; ++s)
        st.ring.push_back(s);

    keyframes_.emplace_back(0, st);
    for (std::size_t i = 0; i < stream_.events.size(); ++i) {
        apply(st, stream_.events[i]);
        if ((i + 1) % kKeyframeStride == 0)
            keyframes_.emplace_back(i + 1, st);
    }
}

Cycle
ScopeModel::firstCycle() const
{
    return stream_.events.empty() ? 0
                                  : stream_.events.front().cycle;
}

Cycle
ScopeModel::lastCycle() const
{
    return stream_.events.empty() ? 0 : stream_.events.back().cycle;
}

void
ScopeModel::apply(State &st, const Event &ev) const
{
    const bool slot_ok = ev.slot >= 0 && ev.slot < num_slots_;
    switch (ev.kind) {
      case EventKind::Snapshot:
        st.instructions = ev.a;
        break;
      case EventKind::RingState:
        if (ev.a != ~0ull && ev.unit > 0 && ev.unit <= 16) {
            int order[16];
            unpackRing(ev.a, order, ev.unit);
            st.ring.assign(order, order + ev.unit);
        }
        break;
      case EventKind::SlotBind:
        if (slot_ok)
            st.slot_frame[ev.slot] = ev.unit;
        break;
      case EventKind::SlotUnbind:
        if (slot_ok) {
            st.slot_frame[ev.slot] = -1;
            // Unbinding flushes the slot's standby stations without
            // per-op events (killOtherThreads, trap switch-out).
            for (auto &per_class : st.standby) {
                if (ev.slot < static_cast<int>(per_class.size()))
                    per_class[ev.slot] = ScopeView::ParkedOp{};
            }
        }
        break;
      case EventKind::Park:
        if (slot_ok && ev.fu >= 0 && ev.fu < kNumFuClasses) {
            st.standby[ev.fu][ev.slot] =
                ScopeView::ParkedOp{ev.insn, ev.pc};
        }
        break;
      case EventKind::Grant:
        if (slot_ok && ev.fu >= 0 && ev.fu < kNumFuClasses)
            st.standby[ev.fu][ev.slot] = {};
        ++st.instructions;
        break;
      case EventKind::Issue:
        // Control ops (fu == -1) retire in decode; data ops retire
        // at their later Grant event.
        if (ev.fu < 0)
            ++st.instructions;
        break;
      case EventKind::QueuePush:
        if (slot_ok)
            ++st.queue_depth[ev.slot];
        break;
      case EventKind::QueuePop:
        if (slot_ok) {
            // The link feeding slot s is its ring predecessor's.
            const int link =
                (ev.slot + num_slots_ - 1) % num_slots_;
            if (st.queue_depth[link] > 0)
                --st.queue_depth[link];
        }
        break;
      case EventKind::QueueState:
        if (slot_ok)
            st.queue_depth[ev.slot] = ev.a;
        break;
      case EventKind::Trap:
      case EventKind::Halt:
        // Slot release arrives as its own SlotUnbind event.
        break;
      case EventKind::Fetch:
      case EventKind::Branch:
      case EventKind::RunEnd:
        break;
    }
}

ScopeView
ScopeModel::viewAt(Cycle c) const
{
    const std::size_t end = upperBound(stream_.events, c);

    // Replay from the latest keyframe at or before `end`.
    auto kf = std::upper_bound(
        keyframes_.begin(), keyframes_.end(), end,
        [](std::size_t idx, const auto &frame) {
            return idx < frame.first;
        });
    --kf; // safe: keyframes_[0].first == 0 <= end always
    State st = kf->second;
    for (std::size_t i = kf->first; i < end; ++i)
        apply(st, stream_.events[i]);

    ScopeView view;
    view.cycle = c;
    view.ring = std::move(st.ring);
    view.slot_frame = std::move(st.slot_frame);
    view.standby = std::move(st.standby);
    view.queue_depth = std::move(st.queue_depth);
    view.instructions = st.instructions;
    for (std::size_t i = end;
         i > 0 && stream_.events[i - 1].cycle == c; --i) {
        view.events.push_back(stream_.events[i - 1]);
    }
    std::reverse(view.events.begin(), view.events.end());
    return view;
}

Cycle
ScopeModel::nextEventCycle(Cycle c) const
{
    const std::size_t idx = upperBound(stream_.events, c);
    return idx < stream_.events.size() ? stream_.events[idx].cycle
                                       : kNeverCycle;
}

Cycle
ScopeModel::prevEventCycle(Cycle c) const
{
    if (c == 0)
        return kNeverCycle;
    const std::size_t idx = upperBound(stream_.events, c - 1);
    return idx > 0 ? stream_.events[idx - 1].cycle : kNeverCycle;
}

void
ScopeModel::dump(const ScopeView &view, std::ostream &os)
{
    os << "cycle " << view.cycle << "\n";
    os << "insns " << view.instructions << "\n";

    os << "ring ";
    for (int s : view.ring)
        os << ' ' << s;
    os << "\n";

    for (std::size_t s = 0; s < view.slot_frame.size(); ++s) {
        os << "slot " << s << ": ";
        if (view.slot_frame[s] < 0)
            os << "free";
        else
            os << "ctx" << view.slot_frame[s];
        os << "\n";
    }

    bool any_standby = false;
    for (int fu = 0;
         fu < static_cast<int>(view.standby.size()); ++fu) {
        for (std::size_t s = 0; s < view.standby[fu].size(); ++s) {
            const ScopeView::ParkedOp &op = view.standby[fu][s];
            if (op.insn == 0)
                continue;
            any_standby = true;
            os << "standby " << fuClassName(static_cast<FuClass>(fu))
               << " slot" << s << ": '"
               << disassemble(decode(op.insn)) << "' @" << op.pc
               << "\n";
        }
    }
    if (!any_standby)
        os << "standby (all empty)\n";

    os << "queues ";
    for (std::size_t l = 0; l < view.queue_depth.size(); ++l)
        os << " link" << l << "=" << view.queue_depth[l];
    os << "\n";

    os << "events " << view.events.size() << "\n";
    for (const Event &ev : view.events)
        os << "  " << formatEvent(ev) << "\n";
}

} // namespace smtsim::obs
