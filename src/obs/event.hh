/**
 * @file
 * Structured cycle-event layer (docs/OBSERVABILITY.md).
 *
 * The pipeline models emit one compact POD Event per architectural
 * happening — fetch delivery, D2 issue, standby park, grant, queue
 * push/pop, rotation, trap, context bind/unbind — through an
 * abstract EventSink. The emitting code guards every emission with
 * a null-pointer check, so a disabled sink costs one predictable
 * branch per would-be event and nothing else (the ≤2% bench guard
 * in bench_simspeed holds the line).
 *
 * Events deliberately carry the *encoded* instruction word instead
 * of strings: formatting (disassembly) happens in the sink or in
 * smtsim-scope, never on the simulator's hot path.
 */

#ifndef SMTSIM_OBS_EVENT_HH
#define SMTSIM_OBS_EVENT_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace smtsim::obs
{

/** Schema version of the Event record and its binary encoding. */
constexpr std::uint32_t kEventSchemaVersion = 1;

enum class EventKind : std::uint8_t
{
    /**
     * Synthetic marker emitted when tracing starts (fresh run or
     * checkpoint restore): cycle = last completed cycle, a =
     * instructions retired so far. Followed by RingState /
     * SlotBind / QueueState / Park events describing the live
     * machine state, so a stream recorded after a restore is
     * self-contained.
     */
    Snapshot = 0,
    /** Priority ring order changed (or snapshot); a = packed ring
     *  (4 bits per slot, highest priority in the low nibble),
     *  unit = slot count. */
    RingState = 1,
    /** Context bound to a thread slot; unit = frame, pc = resume. */
    SlotBind = 2,
    /** Thread slot released its context; unit = frame. */
    SlotUnbind = 3,
    /** Fetch block delivered; pc = base address, a = words. */
    Fetch = 4,
    /** D2 issued an instruction toward a schedule unit (fu); for
     *  control ops retired in decode, fu = -1. */
    Issue = 5,
    /** Op latched into its standby station (fu x slot). */
    Park = 6,
    /** Op granted to functional unit `unit` of class fu. Grant of
     *  a parked op is the paper's standby "wake". */
    Grant = 7,
    /** Taken branch or jump; pc = branch pc, a = target. */
    Branch = 8,
    /** Queue-register deposit; slot = producer, a = raw value. */
    QueuePush = 9,
    /** Queue-register pop; slot = consumer, a = raw value. */
    QueuePop = 10,
    /** Synthetic: queue-link occupancy; slot = producer link,
     *  a = entries resident. Emitted with Snapshot. */
    QueueState = 11,
    /** Data-absence trap (context switch out); pc = faulting
     *  address, a = remote latency. */
    Trap = 12,
    /** HALT retired; the context is finished. */
    Halt = 13,
    /** Run ended; cycle = final stats.cycles, a = instructions. */
    RunEnd = 14,
};

/** Number of distinct EventKind values (validation bound). */
constexpr int kNumEventKinds = 15;

/**
 * One pipeline event. POD, fixed width, trivially copyable — the
 * binary stream writes these fields verbatim (little-endian).
 */
struct Event
{
    Cycle cycle = 0;
    EventKind kind = EventKind::Snapshot;
    std::int8_t slot = -1;   ///< thread slot (or queue link)
    std::int8_t fu = -1;     ///< FuClass index, -1 = n/a
    std::int16_t unit = -1;  ///< granted unit / context frame
    std::uint32_t pc = 0;    ///< pc or address
    std::uint32_t insn = 0;  ///< encoded instruction word, 0 = n/a
    std::uint64_t a = 0;     ///< kind-specific payload
};

/** Stable lower-case name of an event kind ("issue", "grant"...). */
const char *eventKindName(EventKind kind);

/** Human-readable one-line rendering (no trailing newline). */
std::string formatEvent(const Event &ev);

/**
 * Receiver of pipeline events. Implementations must tolerate
 * events arriving with non-decreasing cycle numbers and may be
 * attached mid-run (the processor re-emits a state snapshot).
 */
class EventSink
{
  public:
    virtual ~EventSink();

    virtual void event(const Event &ev) = 0;

    /** Push buffered output down (stream sinks override). */
    virtual void flush() {}
};

/** Pack a priority ring (≤16 slots) into 4-bit nibbles, highest
 *  priority in the low nibble. Returns ~0ull when it can't fit. */
std::uint64_t packRing(const int *ring, int n);

/** Inverse of packRing into @p out[n]. */
void unpackRing(std::uint64_t packed, int *out, int n);

} // namespace smtsim::obs

#endif // SMTSIM_OBS_EVENT_HH
