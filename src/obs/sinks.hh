/**
 * @file
 * Concrete event sinks and the event-stream reader.
 *
 *  - TextSink: human-readable line per event (smtsim-run --trace /
 *    --pipe-trace; the successor of the old freeform pipe trace).
 *  - BinarySink: compact fixed-width records, the recording format
 *    smtsim-scope replays (format documented in
 *    docs/OBSERVABILITY.md).
 *  - NdjsonSink: one JSON object per line, for ad-hoc tooling
 *    (jq) without a schema-aware reader.
 *  - readEventStream(): parse a BinarySink file back into memory.
 */

#ifndef SMTSIM_OBS_SINKS_HH
#define SMTSIM_OBS_SINKS_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "obs/event.hh"

namespace smtsim::obs
{

/** File magic of the binary event stream ("SMTEVT1\0"). */
constexpr std::uint64_t kEventMagic = 0x0031545645544d53ull;

/** Stream-level metadata written into the binary header. */
struct TraceMeta
{
    int num_slots = 0;
};

/** Human-readable text sink (one line per event). */
class TextSink : public EventSink
{
  public:
    explicit TextSink(std::ostream &os) : os_(os) {}

    void
    event(const Event &ev) override
    {
        os_ << formatEvent(ev) << '\n';
    }

    void flush() override { os_.flush(); }

  private:
    std::ostream &os_;
};

/** Compact binary sink; records are fixed-width little-endian. */
class BinarySink : public EventSink
{
  public:
    /** Writes the stream header immediately. */
    BinarySink(std::ostream &os, const TraceMeta &meta);

    void event(const Event &ev) override;
    void flush() override { os_.flush(); }

  private:
    std::ostream &os_;
};

/** One JSON object per line; keys match the Event fields. */
class NdjsonSink : public EventSink
{
  public:
    explicit NdjsonSink(std::ostream &os) : os_(os) {}

    void event(const Event &ev) override;
    void flush() override { os_.flush(); }

  private:
    std::ostream &os_;
};

/** A fully parsed binary event stream. */
struct EventStream
{
    TraceMeta meta;
    std::vector<Event> events;
};

/**
 * Parse a BinarySink-format stream. Throws std::runtime_error on a
 * bad magic, unsupported version, or truncated record.
 */
EventStream readEventStream(std::istream &is);

} // namespace smtsim::obs

#endif // SMTSIM_OBS_SINKS_HH
