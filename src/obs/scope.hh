/**
 * @file
 * Event-stream replay model behind smtsim-scope.
 *
 * A ScopeModel ingests one binary event stream (obs/sinks.hh) and
 * reconstructs, for any cycle, the visible pipeline state: thread
 * slot -> context bindings, priority ring order, standby-station
 * occupancy per (FU class x slot), queue-register link depths and
 * the retired-instruction count — plus the raw events of that
 * cycle. Reconstruction is pure replay (no re-simulation), so it
 * steps backward as easily as forward; keyframes snapshotted every
 * few thousand events keep random access cheap on long streams.
 *
 * Streams recorded after a checkpoint restore start with synthetic
 * Snapshot/RingState/SlotBind/QueueState/Park events describing
 * the live machine, so a suffix stream reconstructs the same views
 * as the full-run stream over their common cycles (the CI scope
 * smoke job diffs exactly that).
 */

#ifndef SMTSIM_OBS_SCOPE_HH
#define SMTSIM_OBS_SCOPE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/sinks.hh"

namespace smtsim::obs
{

/** Reconstructed machine view at the end of one cycle. */
struct ScopeView
{
    Cycle cycle = 0;

    /** An instruction resident in a standby station. */
    struct ParkedOp
    {
        std::uint32_t insn = 0; ///< encoded word, 0 = station empty
        std::uint32_t pc = 0;
    };

    std::vector<int> ring;           ///< priority order, top first
    std::vector<int> slot_frame;     ///< bound context, -1 = free
    /** standby[fu][slot]; empty stations have insn == 0. */
    std::vector<std::vector<ParkedOp>> standby;
    std::vector<std::uint64_t> queue_depth; ///< per producer link
    std::uint64_t instructions = 0;  ///< retired through this cycle
    std::vector<Event> events;       ///< events of exactly this cycle
};

class ScopeModel
{
  public:
    explicit ScopeModel(EventStream stream);

    bool empty() const { return stream_.events.empty(); }
    int numSlots() const { return num_slots_; }

    /** Cycle of the first / last event in the stream. */
    Cycle firstCycle() const;
    Cycle lastCycle() const;

    /** Reconstruct the view at the end of cycle @p c. */
    ScopeView viewAt(Cycle c) const;

    /** Next cycle after @p c carrying events (kNeverCycle: none). */
    Cycle nextEventCycle(Cycle c) const;
    /** Latest cycle before @p c carrying events (kNeverCycle). */
    Cycle prevEventCycle(Cycle c) const;

    /** Render @p view as the stable text block CI diffs. */
    static void dump(const ScopeView &view, std::ostream &os);

  private:
    struct State
    {
        std::vector<int> ring;
        std::vector<int> slot_frame;
        std::vector<std::vector<ScopeView::ParkedOp>> standby;
        std::vector<std::uint64_t> queue_depth;
        std::uint64_t instructions = 0;
    };

    void apply(State &st, const Event &ev) const;

    EventStream stream_;
    int num_slots_ = 0;
    /** State *before* event index .first, every kKeyframeStride. */
    std::vector<std::pair<std::size_t, State>> keyframes_;

    static constexpr std::size_t kKeyframeStride = 4096;
};

} // namespace smtsim::obs

#endif // SMTSIM_OBS_SCOPE_HH
