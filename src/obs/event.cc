#include "event.hh"

#include <sstream>

#include "isa/insn.hh"
#include "machine/fu_pool.hh"

namespace smtsim::obs
{

EventSink::~EventSink() = default;

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Snapshot: return "snapshot";
      case EventKind::RingState: return "ring";
      case EventKind::SlotBind: return "bind";
      case EventKind::SlotUnbind: return "unbind";
      case EventKind::Fetch: return "fetch";
      case EventKind::Issue: return "issue";
      case EventKind::Park: return "park";
      case EventKind::Grant: return "grant";
      case EventKind::Branch: return "branch";
      case EventKind::QueuePush: return "qpush";
      case EventKind::QueuePop: return "qpop";
      case EventKind::QueueState: return "qstate";
      case EventKind::Trap: return "trap";
      case EventKind::Halt: return "halt";
      case EventKind::RunEnd: return "end";
    }
    return "?";
}

std::uint64_t
packRing(const int *ring, int n)
{
    if (n > 16)
        return ~0ull;
    std::uint64_t packed = 0;
    for (int i = 0; i < n; ++i) {
        packed |= static_cast<std::uint64_t>(ring[i] & 0xf)
                  << (4 * i);
    }
    return packed;
}

void
unpackRing(std::uint64_t packed, int *out, int n)
{
    for (int i = 0; i < n; ++i)
        out[i] = static_cast<int>((packed >> (4 * i)) & 0xf);
}

namespace
{

std::string
disasmOf(const Event &ev)
{
    if (ev.insn == 0)
        return {};
    return disassemble(decode(ev.insn));
}

} // namespace

std::string
formatEvent(const Event &ev)
{
    std::ostringstream os;
    os << "[" << ev.cycle << "] ";
    switch (ev.kind) {
      case EventKind::Snapshot:
        os << "snapshot insns=" << ev.a;
        break;
      case EventKind::RingState: {
        os << "ring  ";
        if (ev.a == ~0ull) {
            os << " (unpacked: >16 slots)";
        } else {
            // unit carries the slot count for ring events.
            int order[16];
            const int n = ev.unit > 0 && ev.unit <= 16 ? ev.unit : 1;
            unpackRing(ev.a, order, n);
            for (int i = 0; i < n; ++i)
                os << ' ' << order[i];
        }
        break;
      }
      case EventKind::SlotBind:
        os << "bind   slot" << int{ev.slot} << " <- ctx" << ev.unit
           << " resume @" << ev.pc;
        break;
      case EventKind::SlotUnbind:
        os << "unbind slot" << int{ev.slot} << " ctx" << ev.unit;
        break;
      case EventKind::Fetch:
        os << "fetch  slot" << int{ev.slot} << " @" << ev.pc << " +"
           << ev.a << "w";
        break;
      case EventKind::Issue:
        os << "issue  slot" << int{ev.slot} << " '" << disasmOf(ev)
           << "' @" << ev.pc;
        break;
      case EventKind::Park:
        os << "park   slot" << int{ev.slot} << " "
           << fuClassName(static_cast<FuClass>(ev.fu)) << " '"
           << disasmOf(ev) << "' @" << ev.pc;
        break;
      case EventKind::Grant:
        os << "grant  slot" << int{ev.slot} << " "
           << fuClassName(static_cast<FuClass>(ev.fu)) << "["
           << ev.unit << "] '" << disasmOf(ev) << "' @" << ev.pc;
        break;
      case EventKind::Branch:
        os << "branch slot" << int{ev.slot} << " '" << disasmOf(ev)
           << "' @" << ev.pc << " -> " << ev.a;
        break;
      case EventKind::QueuePush:
        os << "qpush  link" << int{ev.slot} << " <- " << ev.a;
        break;
      case EventKind::QueuePop:
        os << "qpop   slot" << int{ev.slot} << " -> " << ev.a;
        break;
      case EventKind::QueueState:
        os << "qstate link" << int{ev.slot} << " depth " << ev.a;
        break;
      case EventKind::Trap:
        os << "trap   slot" << int{ev.slot} << " remote access @"
           << ev.pc << " latency " << ev.a;
        break;
      case EventKind::Halt:
        os << "halt   slot" << int{ev.slot} << " @" << ev.pc;
        break;
      case EventKind::RunEnd:
        os << "end    cycles=" << ev.cycle << " insns=" << ev.a;
        break;
    }
    return os.str();
}

} // namespace smtsim::obs
