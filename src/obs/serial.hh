/**
 * @file
 * Byte-level serialization helpers backing the observability
 * formats: machine checkpoints (core/checkpoint.cc) and the binary
 * event stream (obs/sinks.cc). Everything is little-endian and
 * fixed-width, so a stream written on one host restores on any
 * other. Readers throw std::runtime_error on truncation or a
 * magic/version mismatch rather than silently misparsing.
 */

#ifndef SMTSIM_OBS_SERIAL_HH
#define SMTSIM_OBS_SERIAL_HH

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace smtsim::obs
{

/** Little-endian fixed-width writer over a std::ostream. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::ostream &os) : os_(os) {}

    void
    u8(std::uint8_t v)
    {
        os_.put(static_cast<char>(v));
    }

    void
    u16(std::uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        os_.write(s.data(), static_cast<std::streamsize>(s.size()));
    }

    void
    bytes(const void *data, std::size_t len)
    {
        os_.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(len));
    }

    bool ok() const { return os_.good(); }

  private:
    std::ostream &os_;
};

/** Little-endian fixed-width reader; throws on truncated input. */
class ByteReader
{
  public:
    explicit ByteReader(std::istream &is) : is_(is) {}

    std::uint8_t
    u8()
    {
        const int c = is_.get();
        if (c == std::istream::traits_type::eof())
            throw std::runtime_error("obs: truncated stream");
        return static_cast<std::uint8_t>(c);
    }

    std::uint16_t
    u16()
    {
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(u8()) << (8 * i);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    bool b() { return u8() != 0; }
    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (n > (1u << 28))
            throw std::runtime_error("obs: implausible string size");
        std::string s(n, '\0');
        is_.read(s.data(), static_cast<std::streamsize>(n));
        if (is_.gcount() != static_cast<std::streamsize>(n))
            throw std::runtime_error("obs: truncated stream");
        return s;
    }

    void
    bytes(void *data, std::size_t len)
    {
        is_.read(static_cast<char *>(data),
                 static_cast<std::streamsize>(len));
        if (is_.gcount() != static_cast<std::streamsize>(len))
            throw std::runtime_error("obs: truncated stream");
    }

    /** True once the underlying stream is exhausted. */
    bool
    atEof()
    {
        return is_.peek() == std::istream::traits_type::eof();
    }

  private:
    std::istream &is_;
};

/** Read a value and require it to equal @p want. */
inline void
expectU32(ByteReader &r, std::uint32_t want, const char *what)
{
    const std::uint32_t got = r.u32();
    if (got != want) {
        throw std::runtime_error(std::string("obs: bad ") + what +
                                 " (got " + std::to_string(got) +
                                 ", want " + std::to_string(want) +
                                 ")");
    }
}

inline void
expectU64(ByteReader &r, std::uint64_t want, const char *what)
{
    const std::uint64_t got = r.u64();
    if (got != want) {
        throw std::runtime_error(std::string("obs: bad ") + what +
                                 " (got " + std::to_string(got) +
                                 ", want " + std::to_string(want) +
                                 ")");
    }
}

} // namespace smtsim::obs

#endif // SMTSIM_OBS_SERIAL_HH
