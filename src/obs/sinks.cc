#include "sinks.hh"

#include <stdexcept>

#include "obs/serial.hh"

namespace smtsim::obs
{

BinarySink::BinarySink(std::ostream &os, const TraceMeta &meta)
    : os_(os)
{
    ByteWriter w(os_);
    w.u64(kEventMagic);
    w.u32(kEventSchemaVersion);
    w.u32(static_cast<std::uint32_t>(meta.num_slots));
}

void
BinarySink::event(const Event &ev)
{
    ByteWriter w(os_);
    w.u64(ev.cycle);
    w.u8(static_cast<std::uint8_t>(ev.kind));
    w.u8(static_cast<std::uint8_t>(ev.slot));
    w.u8(static_cast<std::uint8_t>(ev.fu));
    w.u8(0); // padding, keeps the record 8-byte aligned at 32 bytes
    w.u16(static_cast<std::uint16_t>(ev.unit));
    w.u16(0);
    w.u32(ev.pc);
    w.u32(ev.insn);
    w.u64(ev.a);
}

void
NdjsonSink::event(const Event &ev)
{
    os_ << "{\"c\":" << ev.cycle << ",\"k\":\""
        << eventKindName(ev.kind) << "\",\"slot\":" << int{ev.slot}
        << ",\"fu\":" << int{ev.fu} << ",\"unit\":" << ev.unit
        << ",\"pc\":" << ev.pc << ",\"insn\":" << ev.insn
        << ",\"a\":" << ev.a << "}\n";
}

EventStream
readEventStream(std::istream &is)
{
    ByteReader r(is);
    expectU64(r, kEventMagic, "event-stream magic");
    expectU32(r, kEventSchemaVersion, "event-stream version");

    EventStream stream;
    stream.meta.num_slots = static_cast<int>(r.u32());

    while (!r.atEof()) {
        Event ev;
        ev.cycle = r.u64();
        const std::uint8_t kind = r.u8();
        if (kind >= kNumEventKinds)
            throw std::runtime_error("obs: unknown event kind");
        ev.kind = static_cast<EventKind>(kind);
        ev.slot = static_cast<std::int8_t>(r.u8());
        ev.fu = static_cast<std::int8_t>(r.u8());
        r.u8();
        ev.unit = static_cast<std::int16_t>(r.u16());
        r.u16();
        ev.pc = r.u32();
        ev.insn = r.u32();
        ev.a = r.u64();
        stream.events.push_back(ev);
    }
    return stream;
}

} // namespace smtsim::obs
