#include "engine.hh"

#include <bit>
#include <cmath>
#include <exception>
#include <thread>
#include <utility>

#include "base/logging.hh"
#include "isa/semantics.hh"
#include "trace/spsc.hh"

// Computed goto is a GNU extension; everything else gets the
// equivalent switch-based dispatch.
#if defined(__GNUC__) || defined(__clang__)
#define SMTSIM_FASTPATH_CGOTO 1
#endif

namespace smtsim::fastpath
{

namespace
{

std::int32_t
asSigned(std::uint32_t v)
{
    return static_cast<std::int32_t>(v);
}

} // namespace

/** Every Op, in exact enum order — the dispatch-table generator.
 *  (A wrong order would misdispatch every program; the fuzzer's
 *  fast-vs-interp differential cells would catch it instantly.) */
#define SMTSIM_FAST_OPS(X)                                           \
    X(ADD) X(SUB) X(AND_) X(OR_) X(XOR_) X(NOR_) X(SLT) X(SLTU)      \
    X(ADDI) X(SLTI) X(ANDI) X(ORI) X(XORI) X(LUI)                    \
    X(SLL) X(SRL) X(SRA) X(SLLV) X(SRLV) X(SRAV)                     \
    X(MUL) X(DIVQ) X(REMQ)                                           \
    X(FADD) X(FSUB) X(FABS) X(FNEG) X(FMOV)                          \
    X(FCMPLT) X(FCMPLE) X(FCMPEQ)                                    \
    X(ITOF) X(FTOI)                                                  \
    X(FMUL)                                                          \
    X(FDIV) X(FSQRT)                                                 \
    X(LW) X(SW) X(LF) X(SF)                                          \
    X(PSTW) X(PSTF)                                                  \
    X(BEQ) X(BNE) X(BLEZ) X(BGTZ) X(BLTZ) X(BGEZ)                    \
    X(J) X(JAL) X(JR) X(JALR)                                        \
    X(NOP) X(HALT)                                                   \
    X(FASTFORK) X(CHGPRI) X(KILLT) X(TID) X(NSLOT)                   \
    X(QEN) X(QENF) X(QDIS)                                           \
    X(SETRMODE)

FastEngine::FastEngine(const Program &prog, MainMemory &mem,
                       const InterpConfig &cfg)
    : prog_(prog), mem_(mem), cfg_(cfg), text_(prog)
{
    SMTSIM_ASSERT(cfg_.num_threads >= 1, "need at least one thread");
    threads_.resize(static_cast<std::size_t>(cfg_.num_threads));
    queues_.resize(static_cast<std::size_t>(cfg_.num_threads));

    threads_[0].state = ThreadState::Running;
    threads_[0].pc = prog_.entry;
    ring_.push_back(0);

    text_base_ = prog_.text_base;
    text_bytes_ =
        static_cast<Addr>(prog_.text.size()) * kInsnBytes;

    // Predecode: resolve per-format fields once so handlers touch
    // no metadata tables at run time.
    ops_.reserve(prog_.text.size());
    for (std::size_t i = 0; i < prog_.text.size(); ++i) {
        const Addr pc =
            text_base_ + static_cast<Addr>(i) * kInsnBytes;
        const Insn &insn = text_.at(pc);
        FastOp fo;
        fo.op = insn.op;
        fo.rd = insn.rd;
        fo.rs = insn.rs;
        fo.rt = insn.rt;
        fo.imm = insn.imm;
        const RegRef d = insn.dst();
        if (d.file == RF::Int)
            fo.dst = d.idx == 0 ? kSinkReg : d.idx;
        switch (insn.op) {
          case Op::ANDI:
          case Op::ORI:
          case Op::XORI:
            fo.uimm = static_cast<std::uint32_t>(insn.imm) & 0xffffu;
            break;
          case Op::LUI:
            fo.uimm = (static_cast<std::uint32_t>(insn.imm) &
                       0xffffu)
                      << 16;
            break;
          case Op::SLL:
          case Op::SRL:
          case Op::SRA:
            fo.uimm = static_cast<std::uint32_t>(insn.imm) & 31u;
            break;
          case Op::J:
          case Op::JAL:
            fo.target =
                (pc & 0xf0000000u) |
                (static_cast<std::uint32_t>(insn.imm) << 2);
            break;
          case Op::BEQ:
          case Op::BNE:
          case Op::BLEZ:
          case Op::BGTZ:
          case Op::BLTZ:
          case Op::BGEZ:
            fo.target =
                pc + kInsnBytes + static_cast<Addr>(insn.imm * 4);
            break;
          default:
            break;
        }
        ops_.push_back(fo);
    }
}

std::uint32_t
FastEngine::intReg(int thread, RegIndex idx) const
{
    return threads_.at(static_cast<std::size_t>(thread)).iregs[idx];
}

double
FastEngine::fpReg(int thread, RegIndex idx) const
{
    return threads_.at(static_cast<std::size_t>(thread)).fregs[idx];
}

bool
FastEngine::hasTopPriority(int tid) const
{
    return !ring_.empty() && ring_.front() == tid;
}

void
FastEngine::rotatePriority()
{
    if (ring_.size() > 1) {
        ring_.push_back(ring_.front());
        ring_.erase(ring_.begin());
    }
}

void
FastEngine::removeFromRing(int tid)
{
    for (auto it = ring_.begin(); it != ring_.end(); ++it) {
        if (*it == tid) {
            ring_.erase(it);
            return;
        }
    }
}

std::deque<std::uint64_t> &
FastEngine::queueFrom(int src)
{
    return queues_[static_cast<std::size_t>(src)];
}

std::deque<std::uint64_t> &
FastEngine::queueInto(int dst)
{
    return queues_[static_cast<std::size_t>(
        (dst + cfg_.num_threads - 1) % cfg_.num_threads)];
}

// ---------------------------------------------------------------
// Page-cached memory access. Values are identical to MainMemory's
// byte-compose reads; the cache only skips the hash lookup when
// consecutive accesses stay on one 64 KiB page (they almost always
// do). Page storage pointers are stable (unordered_map nodes).

std::uint8_t *
FastEngine::readPage(Addr base)
{
    if (base != page_base_) {
        page_base_ = base;
        // The cache is shared with the write path, which needs a
        // mutable pointer; mem_ itself is non-const.
        page_ =
            const_cast<std::uint8_t *>(mem_.findPageData(base));
    }
    return page_;
}

std::uint8_t *
FastEngine::writePage(Addr base)
{
    if (base != page_base_ || page_ == nullptr) {
        page_base_ = base;
        page_ = mem_.pageData(base);
    }
    return page_;
}

std::uint32_t
FastEngine::memRead32(Addr addr)
{
    const Addr off = addr % MainMemory::kPageBytes;
    if (off <= MainMemory::kPageBytes - 4) [[likely]] {
        const std::uint8_t *p = readPage(addr - off);
        if (p == nullptr)
            return 0;
        return static_cast<std::uint32_t>(p[off]) |
               static_cast<std::uint32_t>(p[off + 1]) << 8 |
               static_cast<std::uint32_t>(p[off + 2]) << 16 |
               static_cast<std::uint32_t>(p[off + 3]) << 24;
    }
    return mem_.read32(addr);
}

void
FastEngine::memWrite32(Addr addr, std::uint32_t value)
{
    const Addr off = addr % MainMemory::kPageBytes;
    if (off <= MainMemory::kPageBytes - 4) [[likely]] {
        std::uint8_t *p = writePage(addr - off);
        p[off] = static_cast<std::uint8_t>(value);
        p[off + 1] = static_cast<std::uint8_t>(value >> 8);
        p[off + 2] = static_cast<std::uint8_t>(value >> 16);
        p[off + 3] = static_cast<std::uint8_t>(value >> 24);
        return;
    }
    // A page-straddling write may materialize the cached-absent
    // page behind the cache's back; drop the cache entry.
    mem_.write32(addr, value);
    page_base_ = ~Addr{0};
    page_ = nullptr;
}

double
FastEngine::memReadDouble(Addr addr)
{
    const Addr off = addr % MainMemory::kPageBytes;
    if (off <= MainMemory::kPageBytes - 8) [[likely]] {
        const std::uint8_t *p = readPage(addr - off);
        if (p == nullptr)
            return 0.0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[off +
                                              static_cast<Addr>(i)])
                 << (8 * i);
        return std::bit_cast<double>(v);
    }
    return mem_.readDouble(addr);
}

void
FastEngine::memWriteDouble(Addr addr, double value)
{
    const Addr off = addr % MainMemory::kPageBytes;
    if (off <= MainMemory::kPageBytes - 8) [[likely]] {
        std::uint8_t *p = writePage(addr - off);
        const std::uint64_t v = std::bit_cast<std::uint64_t>(value);
        for (int i = 0; i < 8; ++i)
            p[off + static_cast<Addr>(i)] =
                static_cast<std::uint8_t>(v >> (8 * i));
        return;
    }
    mem_.writeDouble(addr, value);
    page_base_ = ~Addr{0};
    page_ = nullptr;
}

// ---------------------------------------------------------------
// Queue-aware register access (generic path), faithful to
// Interpreter::readInt/readFp/writeInt/writeFp, plus queue-push
// trace recording.

bool
FastEngine::readInt(Thread &t, int tid, RegIndex idx,
                    std::uint32_t &out)
{
    if (t.q_read_int && *t.q_read_int == idx) {
        auto &q = queueInto(tid);
        if (q.empty())
            return false;
        out = static_cast<std::uint32_t>(q.front());
        q.pop_front();
        return true;
    }
    out = idx == 0 ? 0 : t.iregs[idx];
    return true;
}

bool
FastEngine::readFp(Thread &t, int tid, RegIndex idx, double &out)
{
    if (t.q_read_fp && *t.q_read_fp == idx) {
        auto &q = queueInto(tid);
        if (q.empty())
            return false;
        out = std::bit_cast<double>(q.front());
        q.pop_front();
        return true;
    }
    out = t.fregs[idx];
    return true;
}

bool
FastEngine::writeInt(Thread &t, int tid, Addr pc, RegIndex idx,
                     std::uint32_t value, TraceRecorder *rec)
{
    if (t.q_write_int && *t.q_write_int == idx) {
        auto &q = queueFrom(tid);
        if (static_cast<int>(q.size()) >= cfg_.queue_depth)
            return false;
        q.push_back(value);
        if (rec)
            rec->onQueuePush(tid, pc, value);
        return true;
    }
    if (idx != 0)
        t.iregs[idx] = value;
    return true;
}

bool
FastEngine::writeFp(Thread &t, int tid, Addr pc, RegIndex idx,
                    double value, TraceRecorder *rec)
{
    if (t.q_write_fp && *t.q_write_fp == idx) {
        auto &q = queueFrom(tid);
        if (static_cast<int>(q.size()) >= cfg_.queue_depth)
            return false;
        q.push_back(std::bit_cast<std::uint64_t>(value));
        if (rec)
            rec->onQueuePush(tid, pc,
                             std::bit_cast<std::uint64_t>(value));
        return true;
    }
    t.fregs[idx] = value;
    return true;
}

int
FastEngine::soleRunner() const
{
    int solo = -1;
    for (int tid = 0; tid < cfg_.num_threads; ++tid) {
        if (threads_[static_cast<std::size_t>(tid)].state !=
            ThreadState::Running) {
            continue;
        }
        if (solo >= 0)
            return -1;
        solo = tid;
    }
    if (solo < 0)
        return -1;
    const Thread &t = threads_[static_cast<std::size_t>(solo)];
    if (t.q_read_int || t.q_write_int || t.q_read_fp || t.q_write_fp)
        return -1;
    return solo;
}

// ---------------------------------------------------------------
// The tight loop. Preconditions (checked by soleRunner): @p tid is
// the only running thread and has no queue-register mappings, so
// no instruction can block, priority-gated ops always pass (the
// ring is exactly [tid]), and KILLT/CHGPRI are no-ops. The loop
// exits on HALT, on a FASTFORK that activated siblings, on
// QEN/QENF (mappings from then on), or when the step budget runs
// out; QDIS and a childless FASTFORK stay in the loop.

template <bool Traced>
FastEngine::ChunkExit
FastEngine::runChunk(int tid, std::uint64_t &total,
                     TraceRecorder *rec)
{
    Thread &t = threads_[static_cast<std::size_t>(tid)];
    std::uint32_t *const R = t.iregs.data();
    double *const F = t.fregs.data();
    const FastOp *const ops = ops_.data();

    Addr pc = t.pc;
    std::uint64_t remaining = cfg_.max_steps - total;
    const std::uint64_t budget = remaining;
    ChunkExit exit_reason = ChunkExit::Budget;
    const FastOp *fo = nullptr;

#ifdef SMTSIM_FASTPATH_CGOTO
#define SMTSIM_TABLE_ENTRY(n) &&L_##n,
    static const void *const kTable[] = {
        SMTSIM_FAST_OPS(SMTSIM_TABLE_ENTRY)};
    static_assert(sizeof(kTable) / sizeof(kTable[0]) ==
                  static_cast<std::size_t>(kNumOps));
#define SMTSIM_DISPATCH_OP() goto *kTable[static_cast<int>(fo->op)]
#else
#define SMTSIM_CASE_GOTO(n)                                          \
  case Op::n:                                                        \
    goto L_##n;
#define SMTSIM_DISPATCH_OP()                                         \
    switch (fo->op) {                                                \
        SMTSIM_FAST_OPS(SMTSIM_CASE_GOTO)                            \
      default:                                                       \
        panic("fastpath: bad opcode");                               \
    }
#endif

#define DISPATCH()                                                   \
    do {                                                             \
        if (remaining == 0)                                          \
            goto done;                                               \
        {                                                            \
            const Addr off = pc - text_base_;                        \
            if (off >= text_bytes_ || (off & 3u) != 0)               \
                (void)text_.at(pc); /* throws the standard          \
                                       stray-fetch FatalError */     \
            fo = &ops[off / kInsnBytes];                             \
        }                                                            \
        SMTSIM_DISPATCH_OP();                                        \
    } while (0)

#define NEXT()                                                       \
    do {                                                             \
        pc += kInsnBytes;                                            \
        --remaining;                                                 \
        DISPATCH();                                                  \
    } while (0)

#define NEXT_AT(a)                                                   \
    do {                                                             \
        pc = (a);                                                    \
        --remaining;                                                 \
        DISPATCH();                                                  \
    } while (0)

    DISPATCH();

    // Integer ALU.
L_ADD:
    R[fo->dst] = R[fo->rs] + R[fo->rt];
    NEXT();
L_SUB:
    R[fo->dst] = R[fo->rs] - R[fo->rt];
    NEXT();
L_AND_:
    R[fo->dst] = R[fo->rs] & R[fo->rt];
    NEXT();
L_OR_:
    R[fo->dst] = R[fo->rs] | R[fo->rt];
    NEXT();
L_XOR_:
    R[fo->dst] = R[fo->rs] ^ R[fo->rt];
    NEXT();
L_NOR_:
    R[fo->dst] = ~(R[fo->rs] | R[fo->rt]);
    NEXT();
L_SLT:
    R[fo->dst] =
        asSigned(R[fo->rs]) < asSigned(R[fo->rt]) ? 1u : 0u;
    NEXT();
L_SLTU:
    R[fo->dst] = R[fo->rs] < R[fo->rt] ? 1u : 0u;
    NEXT();
L_ADDI:
    R[fo->dst] =
        R[fo->rs] + static_cast<std::uint32_t>(fo->imm);
    NEXT();
L_SLTI:
    R[fo->dst] = asSigned(R[fo->rs]) < fo->imm ? 1u : 0u;
    NEXT();
L_ANDI:
    R[fo->dst] = R[fo->rs] & fo->uimm;
    NEXT();
L_ORI:
    R[fo->dst] = R[fo->rs] | fo->uimm;
    NEXT();
L_XORI:
    R[fo->dst] = R[fo->rs] ^ fo->uimm;
    NEXT();
L_LUI:
    R[fo->dst] = fo->uimm; // pre-shifted at predecode
    NEXT();

    // Shifter.
L_SLL:
    R[fo->dst] = R[fo->rs] << fo->uimm;
    NEXT();
L_SRL:
    R[fo->dst] = R[fo->rs] >> fo->uimm;
    NEXT();
L_SRA:
    R[fo->dst] = static_cast<std::uint32_t>(
        asSigned(R[fo->rs]) >> fo->uimm);
    NEXT();
L_SLLV:
    R[fo->dst] = R[fo->rs] << (R[fo->rt] & 31u);
    NEXT();
L_SRLV:
    R[fo->dst] = R[fo->rs] >> (R[fo->rt] & 31u);
    NEXT();
L_SRAV:
    R[fo->dst] = static_cast<std::uint32_t>(
        asSigned(R[fo->rs]) >> (R[fo->rt] & 31u));
    NEXT();

    // Multiplier (semantics identical to execIntOp, including the
    // architecturally defined divide-by-zero and overflow cases).
L_MUL:
    R[fo->dst] = static_cast<std::uint32_t>(
        asSigned(R[fo->rs]) * std::int64_t{asSigned(R[fo->rt])});
    NEXT();
L_DIVQ: {
    const std::uint32_t a = R[fo->rs], b = R[fo->rt];
    std::uint32_t r;
    if (b == 0)
        r = 0;
    else if (a == 0x80000000u && b == 0xffffffffu)
        r = 0x80000000u;
    else
        r = static_cast<std::uint32_t>(asSigned(a) / asSigned(b));
    R[fo->dst] = r;
    NEXT();
}
L_REMQ: {
    const std::uint32_t a = R[fo->rs], b = R[fo->rt];
    std::uint32_t r;
    if (b == 0 || (a == 0x80000000u && b == 0xffffffffu))
        r = 0;
    else
        r = static_cast<std::uint32_t>(asSigned(a) % asSigned(b));
    R[fo->dst] = r;
    NEXT();
}

    // FP adder / multiplier / divider.
L_FADD:
    F[fo->rd] = F[fo->rs] + F[fo->rt];
    NEXT();
L_FSUB:
    F[fo->rd] = F[fo->rs] - F[fo->rt];
    NEXT();
L_FABS:
    F[fo->rd] = std::fabs(F[fo->rs]);
    NEXT();
L_FNEG:
    F[fo->rd] = -F[fo->rs];
    NEXT();
L_FMOV:
    F[fo->rd] = F[fo->rs];
    NEXT();
L_FCMPLT:
    R[fo->dst] = F[fo->rs] < F[fo->rt] ? 1u : 0u;
    NEXT();
L_FCMPLE:
    R[fo->dst] = F[fo->rs] <= F[fo->rt] ? 1u : 0u;
    NEXT();
L_FCMPEQ:
    R[fo->dst] = F[fo->rs] == F[fo->rt] ? 1u : 0u;
    NEXT();
L_ITOF:
    F[fo->rd] = static_cast<double>(asSigned(R[fo->rs]));
    NEXT();
L_FTOI: {
    const double a = F[fo->rs];
    std::uint32_t r;
    if (std::isnan(a))
        r = 0;
    else if (a >= 2147483648.0)
        r = 0x7fffffffu;
    else if (a < -2147483648.0)
        r = 0x80000000u;
    else
        r = static_cast<std::uint32_t>(static_cast<std::int32_t>(a));
    R[fo->dst] = r;
    NEXT();
}
L_FMUL:
    F[fo->rd] = F[fo->rs] * F[fo->rt];
    NEXT();
L_FDIV:
    F[fo->rd] = F[fo->rs] / F[fo->rt];
    NEXT();
L_FSQRT:
    F[fo->rd] = std::sqrt(F[fo->rs]);
    NEXT();

    // Load/store. Priority stores need top priority, which the
    // sole running thread always holds.
L_LW: {
    const Addr a = R[fo->rs] + static_cast<std::uint32_t>(fo->imm);
    if constexpr (Traced)
        rec->onMem(tid, pc, a);
    R[fo->dst] = memRead32(a);
    NEXT();
}
L_SW:
L_PSTW: {
    const Addr a = R[fo->rs] + static_cast<std::uint32_t>(fo->imm);
    if constexpr (Traced)
        rec->onMem(tid, pc, a);
    memWrite32(a, R[fo->rt]);
    NEXT();
}
L_LF: {
    const Addr a = R[fo->rs] + static_cast<std::uint32_t>(fo->imm);
    if constexpr (Traced)
        rec->onMem(tid, pc, a);
    F[fo->rt] = memReadDouble(a);
    NEXT();
}
L_SF:
L_PSTF: {
    const Addr a = R[fo->rs] + static_cast<std::uint32_t>(fo->imm);
    if constexpr (Traced)
        rec->onMem(tid, pc, a);
    memWriteDouble(a, F[fo->rt]);
    NEXT();
}

    // Branches. Conditional and indirect outcomes are recorded
    // (replay needs them); J/JAL targets are static.
L_BEQ: {
    const Addr nxt =
        R[fo->rs] == R[fo->rt] ? fo->target : pc + kInsnBytes;
    if constexpr (Traced)
        rec->onBranch(tid, pc, nxt);
    NEXT_AT(nxt);
}
L_BNE: {
    const Addr nxt =
        R[fo->rs] != R[fo->rt] ? fo->target : pc + kInsnBytes;
    if constexpr (Traced)
        rec->onBranch(tid, pc, nxt);
    NEXT_AT(nxt);
}
L_BLEZ: {
    const Addr nxt =
        asSigned(R[fo->rs]) <= 0 ? fo->target : pc + kInsnBytes;
    if constexpr (Traced)
        rec->onBranch(tid, pc, nxt);
    NEXT_AT(nxt);
}
L_BGTZ: {
    const Addr nxt =
        asSigned(R[fo->rs]) > 0 ? fo->target : pc + kInsnBytes;
    if constexpr (Traced)
        rec->onBranch(tid, pc, nxt);
    NEXT_AT(nxt);
}
L_BLTZ: {
    const Addr nxt =
        asSigned(R[fo->rs]) < 0 ? fo->target : pc + kInsnBytes;
    if constexpr (Traced)
        rec->onBranch(tid, pc, nxt);
    NEXT_AT(nxt);
}
L_BGEZ: {
    const Addr nxt =
        asSigned(R[fo->rs]) >= 0 ? fo->target : pc + kInsnBytes;
    if constexpr (Traced)
        rec->onBranch(tid, pc, nxt);
    NEXT_AT(nxt);
}
L_J:
    NEXT_AT(fo->target);
L_JAL:
    R[31] = pc + kInsnBytes;
    NEXT_AT(fo->target);
L_JR: {
    const Addr nxt = R[fo->rs];
    if constexpr (Traced)
        rec->onBranch(tid, pc, nxt);
    NEXT_AT(nxt);
}
L_JALR: {
    const Addr nxt = R[fo->rs]; // read rs before a same-reg link
    R[fo->dst] = pc + kInsnBytes;
    if constexpr (Traced)
        rec->onBranch(tid, pc, nxt);
    NEXT_AT(nxt);
}

    // Thread control.
L_NOP:
L_SETRMODE:
    NEXT();
L_CHGPRI:  // ring is [tid]: rotation is a no-op
L_KILLT:   // no sibling is running
    NEXT();
L_TID:
    R[fo->dst] = static_cast<std::uint32_t>(tid);
    NEXT();
L_NSLOT:
    R[fo->dst] = static_cast<std::uint32_t>(cfg_.num_threads);
    NEXT();
L_QDIS:
    // No mappings installed (chunk precondition): nothing to clear.
    NEXT();
L_HALT:
    t.state = ThreadState::Halted;
    removeFromRing(tid);
    --remaining;
    exit_reason = ChunkExit::Halted;
    goto done; // pc stays at the HALT, like the interpreter
L_FASTFORK: {
    bool forked = false;
    for (int j = 0; j < cfg_.num_threads; ++j) {
        Thread &nj = threads_[static_cast<std::size_t>(j)];
        if (j == tid || nj.state != ThreadState::Inactive)
            continue;
        nj = t; // registers; pc/steps/state overridden below
        nj.state = ThreadState::Running;
        nj.pc = pc + kInsnBytes;
        nj.steps = 0;
        ring_.push_back(j);
        forked = true;
    }
    if (!forked)
        NEXT();
    pc += kInsnBytes;
    --remaining;
    exit_reason = ChunkExit::Forked;
    goto done;
}
L_QEN:
    if (fo->rs == 0 || fo->rt == 0 || fo->rs == fo->rt)
        fatal("qen: bad register pair");
    t.q_read_int = fo->rs;
    t.q_write_int = fo->rt;
    pc += kInsnBytes;
    --remaining;
    exit_reason = ChunkExit::Mapped;
    goto done;
L_QENF:
    if (fo->rs == fo->rt)
        fatal("qenf: read and write register identical");
    t.q_read_fp = fo->rs;
    t.q_write_fp = fo->rt;
    pc += kInsnBytes;
    --remaining;
    exit_reason = ChunkExit::Mapped;
    goto done;

done: {
    const std::uint64_t executed = budget - remaining;
    t.steps += executed;
    total += executed;
    t.pc = pc;
    return exit_reason;
}

#undef NEXT_AT
#undef NEXT
#undef DISPATCH
#undef SMTSIM_DISPATCH_OP
#ifdef SMTSIM_FASTPATH_CGOTO
#undef SMTSIM_TABLE_ENTRY
#else
#undef SMTSIM_CASE_GOTO
#endif
}

// ---------------------------------------------------------------
// Generic path: one architectural step, structured exactly like
// Interpreter::step so multi-thread scheduling, queue blocking and
// error behaviour stay bit-identical.

bool
FastEngine::stepGeneric(int tid, TraceRecorder *rec)
{
    Thread &t = threads_[static_cast<std::size_t>(tid)];
    const Addr insn_pc = t.pc;
    const Insn &insn = text_.at(insn_pc);
    const Op op = insn.op;

    // Blocking pre-checks: an instruction executes completely or
    // not at all, so queue availability is verified before any
    // FIFO is mutated.
    {
        RegRef srcs[3];
        const int n = insn.srcs(srcs);
        int need_from_queue = 0;
        for (int i = 0; i < n; ++i) {
            const bool mapped =
                (srcs[i].file == RF::Int && t.q_read_int &&
                 *t.q_read_int == srcs[i].idx) ||
                (srcs[i].file == RF::Fp && t.q_read_fp &&
                 *t.q_read_fp == srcs[i].idx);
            if (mapped)
                ++need_from_queue;
        }
        if (need_from_queue >
            static_cast<int>(queueInto(tid).size())) {
            return false;
        }
        const RegRef dst = insn.dst();
        const bool dst_mapped =
            (dst.file == RF::Int && t.q_write_int &&
             *t.q_write_int == dst.idx) ||
            (dst.file == RF::Fp && t.q_write_fp &&
             *t.q_write_fp == dst.idx);
        if (dst_mapped && static_cast<int>(queueFrom(tid).size()) >=
                              cfg_.queue_depth) {
            return false;
        }
    }

    if ((op == Op::CHGPRI || op == Op::KILLT ||
         isPriorityStoreOp(op)) &&
        !hasTopPriority(tid)) {
        return false;
    }

    Addr next_pc = t.pc + kInsnBytes;

    if (isThreadCtlOp(op)) {
        switch (op) {
          case Op::NOP:
          case Op::SETRMODE:
            break;
          case Op::HALT:
            t.state = ThreadState::Halted;
            removeFromRing(tid);
            break;
          case Op::FASTFORK:
            for (int j = 0; j < cfg_.num_threads; ++j) {
                Thread &nj = threads_[static_cast<std::size_t>(j)];
                if (j == tid || nj.state != ThreadState::Inactive)
                    continue;
                nj = t;
                nj.state = ThreadState::Running;
                nj.pc = next_pc;
                nj.steps = 0;
                ring_.push_back(j);
            }
            break;
          case Op::CHGPRI:
            rotatePriority();
            break;
          case Op::KILLT:
            for (int j = 0; j < cfg_.num_threads; ++j) {
                if (j != tid &&
                    threads_[static_cast<std::size_t>(j)].state ==
                        ThreadState::Running) {
                    threads_[static_cast<std::size_t>(j)].state =
                        ThreadState::Killed;
                    removeFromRing(j);
                }
            }
            break;
          case Op::TID:
            if (insn.rd != 0)
                t.iregs[insn.rd] = static_cast<std::uint32_t>(tid);
            break;
          case Op::NSLOT:
            if (insn.rd != 0)
                t.iregs[insn.rd] =
                    static_cast<std::uint32_t>(cfg_.num_threads);
            break;
          case Op::QEN:
            if (insn.rs == 0 || insn.rt == 0 || insn.rs == insn.rt)
                fatal("qen: bad register pair");
            t.q_read_int = insn.rs;
            t.q_write_int = insn.rt;
            break;
          case Op::QENF:
            if (insn.rs == insn.rt)
                fatal("qenf: read and write register identical");
            t.q_read_fp = insn.rs;
            t.q_write_fp = insn.rt;
            break;
          case Op::QDIS:
            t.q_read_int.reset();
            t.q_write_int.reset();
            t.q_read_fp.reset();
            t.q_write_fp.reset();
            break;
          default:
            panic("unhandled thread-control op");
        }
    } else if (insn.isBranch()) {
        std::uint32_t a = 0, b = 0;
        if (op != Op::J && op != Op::JAL) {
            if (!readInt(t, tid, insn.rs, a))
                panic("queue precheck missed a branch source");
        }
        if (op == Op::BEQ || op == Op::BNE) {
            if (!readInt(t, tid, insn.rt, b))
                panic("queue precheck missed a branch source");
        }
        switch (op) {
          case Op::J:
            next_pc = (t.pc & 0xf0000000u) |
                      (static_cast<std::uint32_t>(insn.imm) << 2);
            break;
          case Op::JAL:
            t.iregs[31] = t.pc + kInsnBytes;
            next_pc = (t.pc & 0xf0000000u) |
                      (static_cast<std::uint32_t>(insn.imm) << 2);
            break;
          case Op::JR:
            next_pc = a;
            if (rec)
                rec->onBranch(tid, insn_pc, next_pc);
            break;
          case Op::JALR:
            if (insn.rd != 0)
                t.iregs[insn.rd] = t.pc + kInsnBytes;
            next_pc = a;
            if (rec)
                rec->onBranch(tid, insn_pc, next_pc);
            break;
          default:
            if (evalBranch(op, a, b)) {
                next_pc = t.pc + kInsnBytes +
                          static_cast<Addr>(insn.imm * 4);
            }
            if (rec)
                rec->onBranch(tid, insn_pc, next_pc);
            break;
        }
    } else if (insn.isMem()) {
        std::uint32_t base = 0;
        if (!readInt(t, tid, insn.rs, base))
            panic("queue precheck missed a base register");
        const Addr addr =
            base + static_cast<std::uint32_t>(insn.imm);
        if (rec)
            rec->onMem(tid, insn_pc, addr);
        switch (op) {
          case Op::LW: {
            if (!writeInt(t, tid, insn_pc, insn.rt,
                          memRead32(addr), rec))
                panic("queue precheck missed a load destination");
            break;
          }
          case Op::LF: {
            if (!writeFp(t, tid, insn_pc, insn.rt,
                         memReadDouble(addr), rec))
                panic("queue precheck missed a load destination");
            break;
          }
          case Op::SW:
          case Op::PSTW: {
            std::uint32_t v = 0;
            if (!readInt(t, tid, insn.rt, v))
                panic("queue precheck missed a store source");
            memWrite32(addr, v);
            break;
          }
          case Op::SF:
          case Op::PSTF: {
            double v = 0;
            if (!readFp(t, tid, insn.rt, v))
                panic("queue precheck missed a store source");
            memWriteDouble(addr, v);
            break;
          }
          default:
            panic("unhandled memory op");
        }
    } else if (isFpFormatOp(op) || op == Op::FCMPLT ||
               op == Op::FCMPLE || op == Op::FCMPEQ ||
               op == Op::FTOI) {
        switch (opMeta(op).format) {
          case Format::FR3: {
            double a = 0, b = 0;
            if (!readFp(t, tid, insn.rs, a) ||
                !readFp(t, tid, insn.rt, b)) {
                panic("queue precheck missed an FP source");
            }
            if (!writeFp(t, tid, insn_pc, insn.rd,
                         execFpOp(op, a, b), rec))
                panic("queue precheck missed an FP destination");
            break;
          }
          case Format::FR2: {
            double a = 0;
            if (!readFp(t, tid, insn.rs, a))
                panic("queue precheck missed an FP source");
            if (!writeFp(t, tid, insn_pc, insn.rd,
                         execFpOp(op, a, 0.0), rec))
                panic("queue precheck missed an FP destination");
            break;
          }
          case Format::FCMP: {
            double a = 0, b = 0;
            if (!readFp(t, tid, insn.rs, a) ||
                !readFp(t, tid, insn.rt, b)) {
                panic("queue precheck missed an FP source");
            }
            if (!writeInt(t, tid, insn_pc, insn.rd,
                          execFpToIntOp(op, a, b), rec)) {
                panic("queue precheck missed a cmp destination");
            }
            break;
          }
          case Format::ITOFF: {
            std::uint32_t a = 0;
            if (!readInt(t, tid, insn.rs, a))
                panic("queue precheck missed an itof source");
            const double v =
                static_cast<double>(static_cast<std::int32_t>(a));
            if (!writeFp(t, tid, insn_pc, insn.rd, v, rec))
                panic("queue precheck missed an itof destination");
            break;
          }
          case Format::FTOIF: {
            double a = 0;
            if (!readFp(t, tid, insn.rs, a))
                panic("queue precheck missed an ftoi source");
            if (!writeInt(t, tid, insn_pc, insn.rd,
                          execFpToIntOp(op, a, 0.0), rec)) {
                panic("queue precheck missed an ftoi destination");
            }
            break;
          }
          default:
            panic("unhandled FP format");
        }
    } else {
        // Integer ALU / shifter / multiplier.
        std::uint32_t a = 0, b = 0;
        if (!readInt(t, tid, insn.rs, a))
            panic("queue precheck missed an int source");
        const Format fmt = opMeta(op).format;
        if (fmt == Format::R3) {
            if (!readInt(t, tid, insn.rt, b))
                panic("queue precheck missed an int source");
        }
        const std::uint32_t result = execIntOp(insn, a, b);
        const RegRef dst = insn.dst();
        if (!writeInt(t, tid, insn_pc, dst.idx, result, rec))
            panic("queue precheck missed an int destination");
    }

    if (t.state == ThreadState::Running)
        t.pc = next_pc;
    ++t.steps;
    return true;
}

InterpResult
FastEngine::run(TraceRecorder *rec)
{
    InterpResult result;
    std::uint64_t total = 0;

    while (total < cfg_.max_steps) {
        const int solo = soleRunner();
        if (solo >= 0) {
            const ChunkExit e =
                rec ? runChunk<true>(solo, total, rec)
                    : runChunk<false>(solo, total, rec);
            if (e == ChunkExit::Forked) {
                // The fork happened mid-round: the interpreter
                // steps the higher-numbered (just-activated)
                // threads once before the next round starts.
                for (int tid = solo + 1;
                     tid < cfg_.num_threads &&
                     total < cfg_.max_steps;
                     ++tid) {
                    if (threads_[static_cast<std::size_t>(tid)]
                            .state != ThreadState::Running)
                        continue;
                    if (stepGeneric(tid, rec))
                        ++total;
                }
            }
            continue;
        }

        bool any_running = false;
        bool progressed = false;
        for (int tid = 0; tid < cfg_.num_threads; ++tid) {
            if (threads_[static_cast<std::size_t>(tid)].state !=
                ThreadState::Running)
                continue;
            any_running = true;
            if (stepGeneric(tid, rec)) {
                progressed = true;
                ++total;
            }
            if (total >= cfg_.max_steps)
                break;
        }
        if (!any_running)
            break;
        if (!progressed)
            fatal("interpreter deadlock: all running threads "
                  "blocked");
    }

    result.completed = true;
    for (const Thread &t : threads_) {
        if (t.state == ThreadState::Running)
            result.completed = false;
        result.per_thread_steps.push_back(t.steps);
    }
    result.steps = total;
    return result;
}

TracedRun
recordTrace(const Program &prog, MainMemory &mem,
            const InterpConfig &cfg)
{
    FastEngine engine(prog, mem, cfg);
    TraceBuilder builder(cfg.num_threads);
    TracedRun out;
    out.result = engine.run(&builder);
    ExecTrace &trace = builder.trace();
    trace.entry = prog.entry;
    for (std::size_t i = 0; i < trace.threads.size(); ++i)
        trace.threads[i].insns = out.result.per_thread_steps[i];
    out.trace = std::move(trace);
    return out;
}

TracedRun
recordTraceStreaming(const Program &prog, MainMemory &mem,
                     const InterpConfig &cfg)
{
    SpscRing<StreamRec> ring(1u << 14);
    TracedRun out;
    out.trace.entry = prog.entry;
    out.trace.threads.resize(
        static_cast<std::size_t>(cfg.num_threads));

    FastEngine engine(prog, mem, cfg);
    std::exception_ptr err;
    std::thread producer([&] {
        try {
            StreamingRecorder rec(ring);
            out.result = engine.run(&rec);
        } catch (...) {
            err = std::current_exception();
        }
        ring.close();
    });
    drainStream(ring, out.trace);
    producer.join();
    if (err)
        std::rethrow_exception(err);
    for (std::size_t i = 0; i < out.trace.threads.size(); ++i)
        out.trace.threads[i].insns = out.result.per_thread_steps[i];
    return out;
}

} // namespace smtsim::fastpath
