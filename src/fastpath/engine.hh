/**
 * @file
 * Threaded-code functional engine (the fast half of the
 * functional-first pipeline, docs/PERF.md).
 *
 * FastEngine is a drop-in replacement for the reference
 * Interpreter: same constructor shape, same InterpConfig /
 * InterpResult types, and bit-identical results — scheduling
 * (round-robin, one step per running thread per round), blocking
 * rules, error behaviour, step counts, registers and memory all
 * match the golden model exactly (tests/test_fastpath.cc and the
 * fuzzer's `fast` oracle cells enforce this).
 *
 * The speed comes from three things:
 *  - the text segment is predecoded into a dense array of
 *    handler-dispatched ops with per-format fields resolved
 *    (destination register, zero-extended immediates, static
 *    branch targets),
 *  - while exactly one thread is running with no queue-register
 *    mappings (the whole run for single-threaded programs, the
 *    pre-fork prologue otherwise) execution drops into a tight
 *    threaded-code loop — computed goto on GCC/Clang, a switch
 *    elsewhere — with no scheduling, blocking or mapping checks,
 *  - memory accesses go through a one-entry page cache instead of
 *    MainMemory's hash lookup per access.
 *
 * run() optionally records an execution trace (exec_trace.hh): the
 * resolved outcome of every data-dependent control transfer, every
 * memory effective address and every queue push — exactly what
 * trace-driven replay of the timing models needs.
 */

#ifndef SMTSIM_FASTPATH_ENGINE_HH
#define SMTSIM_FASTPATH_ENGINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "asmr/program.hh"
#include "base/types.hh"
#include "interp/interpreter.hh"
#include "isa/insn.hh"
#include "mem/memory.hh"
#include "trace/exec_trace.hh"

namespace smtsim::fastpath
{

/** The threaded-code functional engine. Single-shot: construct,
 *  run() once, then read registers. */
class FastEngine
{
  public:
    FastEngine(const Program &prog, MainMemory &mem,
               const InterpConfig &cfg = {});

    /**
     * Run until all threads finish, optionally recording an
     * execution trace through @p rec. Same contract as
     * Interpreter::run(): throws FatalError on an architectural
     * deadlock, reports budget exhaustion via
     * InterpResult::completed.
     */
    InterpResult run(TraceRecorder *rec = nullptr);

    /** Architectural integer register of a thread (post-run). */
    std::uint32_t intReg(int thread, RegIndex idx) const;
    /** Architectural FP register of a thread (post-run). */
    double fpReg(int thread, RegIndex idx) const;

  private:
    enum class ThreadState
    {
        Inactive,
        Running,
        Halted,
        Killed
    };

    /** Index of the scratch register that swallows writes whose
     *  architectural destination is r0. */
    static constexpr int kSinkReg = kNumRegs;

    struct Thread
    {
        ThreadState state = ThreadState::Inactive;
        Addr pc = 0;
        /** [kSinkReg] is the r0 write sink; r0 itself stays 0. */
        std::array<std::uint32_t, kNumRegs + 1> iregs{};
        std::array<double, kNumRegs> fregs{};
        std::optional<RegIndex> q_read_int, q_write_int;
        std::optional<RegIndex> q_read_fp, q_write_fp;
        std::uint64_t steps = 0;
    };

    /** One predecoded instruction, fields resolved per format. */
    struct FastOp
    {
        Op op = Op::NOP;
        /** Integer destination, r0 remapped to kSinkReg. */
        std::uint8_t dst = kSinkReg;
        RegIndex rd = 0, rs = 0, rt = 0;
        std::int32_t imm = 0;
        /** Pre-shifted LUI value / zero-extended imm16 / shamt. */
        std::uint32_t uimm = 0;
        /** Static target: J/JAL absolute, conditional taken pc. */
        Addr target = 0;
    };

    /** Why the tight loop handed control back. */
    enum class ChunkExit
    {
        Budget,     ///< max_steps reached
        Halted,     ///< executed HALT
        Forked,     ///< FASTFORK activated sibling threads
        Mapped      ///< QEN/QENF installed a queue mapping
    };

    template <bool Traced>
    ChunkExit runChunk(int tid, std::uint64_t &total,
                       TraceRecorder *rec);

    /** One architectural step, faithful to Interpreter::step. */
    bool stepGeneric(int tid, TraceRecorder *rec);

    /** The sole running thread if it is chunk-eligible (no queue
     *  mappings), else -1. */
    int soleRunner() const;

    bool hasTopPriority(int tid) const;
    void rotatePriority();
    void removeFromRing(int tid);
    std::deque<std::uint64_t> &queueFrom(int src);
    std::deque<std::uint64_t> &queueInto(int dst);

    bool readInt(Thread &t, int tid, RegIndex idx,
                 std::uint32_t &out);
    bool readFp(Thread &t, int tid, RegIndex idx, double &out);
    bool writeInt(Thread &t, int tid, Addr pc, RegIndex idx,
                  std::uint32_t value, TraceRecorder *rec);
    bool writeFp(Thread &t, int tid, Addr pc, RegIndex idx,
                 double value, TraceRecorder *rec);

    // Page-cached memory access (values identical to MainMemory's).
    std::uint8_t *readPage(Addr base);
    std::uint8_t *writePage(Addr base);
    std::uint32_t memRead32(Addr addr);
    void memWrite32(Addr addr, std::uint32_t value);
    double memReadDouble(Addr addr);
    void memWriteDouble(Addr addr, double value);

    const Program &prog_;
    MainMemory &mem_;
    InterpConfig cfg_;
    PredecodedText text_;

    /** Dense op array parallel to the text segment. */
    std::vector<FastOp> ops_;
    Addr text_base_ = 0;
    Addr text_bytes_ = 0;

    std::vector<Thread> threads_;
    std::vector<std::deque<std::uint64_t>> queues_;
    std::vector<int> ring_;

    /** One-entry page cache; ~0 never matches an aligned base. */
    Addr page_base_ = ~Addr{0};
    std::uint8_t *page_ = nullptr;
};

/** A recorded run: functional outcome + execution trace. */
struct TracedRun
{
    InterpResult result;
    ExecTrace trace;
};

/** Run the fast engine once, assembling the trace in memory. */
TracedRun recordTrace(const Program &prog, MainMemory &mem,
                      const InterpConfig &cfg = {});

/**
 * Same result, produced pipeline-style: the engine runs on its own
 * host thread streaming records through a bounded SPSC ring
 * (trace/spsc.hh) while the calling thread assembles the trace —
 * the deployment shape of the functional-first pipeline, where the
 * consumer is a timing model.
 */
TracedRun recordTraceStreaming(const Program &prog, MainMemory &mem,
                               const InterpConfig &cfg = {});

} // namespace smtsim::fastpath

#endif // SMTSIM_FASTPATH_ENGINE_HH
