#include "dataop.hh"

#include "base/logging.hh"
#include "isa/semantics.hh"

namespace smtsim
{

DataResult
execDataOp(const Insn &insn, const OperandValues &ops)
{
    DataResult r;
    switch (opMeta(insn.op).format) {
      case Format::FR3:
        r.is_fp = true;
        r.fval = execFpOp(insn.op, ops.rs_f, ops.rt_f);
        return r;
      case Format::FR2:
        r.is_fp = true;
        r.fval = execFpOp(insn.op, ops.rs_f, 0.0);
        return r;
      case Format::FCMP:
        r.ival = execFpToIntOp(insn.op, ops.rs_f, ops.rt_f);
        return r;
      case Format::ITOFF:
        r.is_fp = true;
        r.fval = static_cast<double>(
            static_cast<std::int32_t>(ops.rs_i));
        return r;
      case Format::FTOIF:
        r.ival = execFpToIntOp(insn.op, ops.rs_f, 0.0);
        return r;
      case Format::R3:
      case Format::R2:
      case Format::SHI:
      case Format::I:
      case Format::LUIF:
        r.ival = execIntOp(insn, ops.rs_i, ops.rt_i);
        return r;
      default:
        panic("execDataOp: not a data op: ",
              opMeta(insn.op).mnemonic);
    }
}

} // namespace smtsim
