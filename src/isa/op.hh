/**
 * @file
 * Operation enumeration and static per-operation metadata for the
 * smtsim RISC ISA.
 *
 * The ISA follows the paper's description: a RISC load/store
 * architecture whose instructions map onto seven heterogeneous
 * functional-unit classes (Table 1) plus the special thread-control
 * instructions of sections 2.2 and 2.3 (fast-fork, change-priority,
 * kill-threads, queue-register enable/disable, priority store, ...).
 */

#ifndef SMTSIM_ISA_OP_HH
#define SMTSIM_ISA_OP_HH

#include <cstdint>

#include "base/types.hh"

namespace smtsim
{

/** All architectural operations, one enumerator per mnemonic. */
enum class Op : std::uint8_t
{
    // Integer ALU (issue 1 / result 2).
    ADD, SUB, AND_, OR_, XOR_, NOR_, SLT, SLTU,
    ADDI, SLTI, ANDI, ORI, XORI, LUI,
    // Barrel shifter (issue 1 / result 2).
    SLL, SRL, SRA, SLLV, SRLV, SRAV,
    // Integer multiplier (issue 1 / result 6).
    MUL, DIVQ, REMQ,
    // FP adder (issue 1 / result 4; abs/neg/mov result 2).
    FADD, FSUB, FABS, FNEG, FMOV,
    FCMPLT, FCMPLE, FCMPEQ,     ///< compare; integer destination
    ITOF, FTOI,                 ///< conversions
    // FP multiplier (issue 1 / result 6).
    FMUL,
    // FP divider (issue 1 / result 12).
    FDIV, FSQRT,
    // Load/store unit (issue 2; load result 4, store result 2).
    LW, SW, LF, SF,
    PSTW, PSTF,                 ///< priority store (highest prio only)
    // Branches; executed inside the decode unit, no functional unit.
    BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ,
    J, JAL, JR, JALR,
    // Thread control; executed inside the decode unit.
    NOP, HALT,
    FASTFORK,                   ///< start all other thread slots here
    CHGPRI,                     ///< explicit priority rotation
    KILLT,                      ///< kill all other running threads
    TID,                        ///< read logical-processor identifier
    NSLOT,                      ///< read number of thread slots
    QEN,                        ///< map int regs onto queue registers
    QENF,                       ///< map FP regs onto queue registers
    QDIS,                       ///< unmap all queue registers
    SETRMODE,                   ///< select rotation mode / interval
    NumOps
};

constexpr int kNumOps = static_cast<int>(Op::NumOps);

/**
 * Functional-unit classes (the paper's Figure 2 / Table 1). Branch
 * and thread-control instructions execute inside the decode unit and
 * therefore have class None.
 */
enum class FuClass : std::uint8_t
{
    IntAlu,
    Shifter,
    IntMul,
    FpAdd,
    FpMul,
    FpDiv,
    LoadStore,
    None,
    NumClasses
};

constexpr int kNumFuClasses = static_cast<int>(FuClass::NumClasses);

/** Instruction encoding formats. */
enum class Format : std::uint8_t
{
    R3,     ///< op rd, rs, rt
    R2,     ///< op rd, rs
    SHI,    ///< op rd, rs, shamt
    I,      ///< op rt, rs, imm16
    LUIF,   ///< op rt, imm16
    FR3,    ///< op fd, fs, ft
    FR2,    ///< op fd, fs
    FCMP,   ///< op rd, fs, ft (integer destination)
    ITOFF,  ///< op fd, rs
    FTOIF,  ///< op rd, fs
    MEM,    ///< op rt|ft, imm16(rs)
    BR2,    ///< op rs, rt, label
    BR1,    ///< op rs, label
    JF,     ///< op label (26-bit region target)
    JRF,    ///< op rs
    JALRF,  ///< op rd, rs
    THR0,   ///< op               (no operands)
    THR1D,  ///< op rd            (integer destination)
    THR2,   ///< op r_read, r_write (queue enable)
    ROT     ///< op mode, interval
};

/** Static metadata describing one operation. */
struct OpMeta
{
    const char *mnemonic;
    Format format;
    FuClass fu;
    /** Cycles before the FU accepts another instruction. */
    int issue_latency;
    /** Number of EX stages (cycles until the result is available). */
    int result_latency;
};

namespace detail
{
/** One row per Op, in enum order (defined in op.cc). */
extern const OpMeta kOpTable[kNumOps];
} // namespace detail

/**
 * Metadata for @p op. Inline: every engine consults the table for
 * every simulated instruction, so the lookup must not cost a
 * cross-translation-unit call (hot-path profile, docs/PERF.md).
 */
inline const OpMeta &
opMeta(Op op)
{
    return detail::kOpTable[static_cast<int>(op)];
}

/** Shorthand queries (inline: hot on every engine's decode path). */

/** Conditional or unconditional branch. */
inline bool
isBranchOp(Op op)
{
    return op >= Op::BEQ && op <= Op::JALR;
}

inline bool
isCondBranchOp(Op op)
{
    return op >= Op::BEQ && op <= Op::BGEZ;
}

inline bool
isMemOp(Op op)
{
    return op >= Op::LW && op <= Op::PSTF;
}

inline bool
isLoadOp(Op op)
{
    return op == Op::LW || op == Op::LF;
}

inline bool
isStoreOp(Op op)
{
    return op == Op::SW || op == Op::SF || op == Op::PSTW ||
           op == Op::PSTF;
}

inline bool
isPriorityStoreOp(Op op)
{
    return op == Op::PSTW || op == Op::PSTF;
}

/** NOP..SETRMODE (decode-executed). */
inline bool
isThreadCtlOp(Op op)
{
    return op >= Op::NOP && op <= Op::SETRMODE;
}

/** Maps or unmaps queue registers (QEN / QENF / QDIS). */
inline bool
isQueueCtlOp(Op op)
{
    return op == Op::QEN || op == Op::QENF || op == Op::QDIS;
}

/**
 * Blocks in decode until the issuing thread reaches the head of the
 * priority ring (section 2.3.2's ordered operations). The scoreboard
 * does not interlock these; a gated instruction that can never reach
 * the ring head simply never issues.
 */
inline bool
isPriorityGatedOp(Op op)
{
    return op == Op::CHGPRI || op == Op::KILLT ||
           isPriorityStoreOp(op);
}

/**
 * Static side-effect summary of one operation, for analysis passes
 * that need more than Insn::srcs()/dst() register traffic: which
 * instructions touch memory, end or redirect a thread, mutate
 * machine-global state, or participate in the queue / priority
 * protocols. Timing-free: a property is set if the architectural
 * effect exists at all.
 */
struct OpEffects
{
    bool reads_mem = false;     ///< load
    bool writes_mem = false;    ///< store (incl. priority stores)
    bool control = false;       ///< branch/jump: pc not sequential
    bool indirect = false;      ///< control target from a register
    bool links = false;         ///< writes a return address
    bool terminates = false;    ///< HALT: thread never advances
    bool forks = false;         ///< FASTFORK starts sibling slots
    bool kills = false;         ///< KILLT stops sibling slots
    bool priority_gated = false;///< waits for the priority-ring head
    bool queue_map = false;     ///< QEN/QENF installs a mapping
    bool queue_unmap = false;   ///< QDIS removes all mappings
    bool global_state = false;  ///< SETRMODE: machine-wide mode
};

/** Effects of @p op (table-backed, defined in op.cc). */
const OpEffects &opEffects(Op op);

/** Operates on the FP register file. */
inline bool
isFpFormatOp(Op op)
{
    switch (opMeta(op).format) {
      case Format::FR3:
      case Format::FR2:
      case Format::FCMP:
      case Format::ITOFF:
      case Format::FTOIF:
        return true;
      default:
        return op == Op::LF || op == Op::SF || op == Op::PSTF;
    }
}

} // namespace smtsim

#endif // SMTSIM_ISA_OP_HH
