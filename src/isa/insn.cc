#include "insn.hh"

#include <sstream>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace smtsim
{

namespace
{

/** Primary opcode values (bits [31:26]). */
enum Primary : std::uint32_t
{
    P_INTOP = 0x00,
    P_FPOP = 0x01,
    P_THROP = 0x02,
    P_ADDI = 0x08,
    P_SLTI = 0x09,
    P_ANDI = 0x0a,
    P_ORI = 0x0b,
    P_XORI = 0x0c,
    P_LUI = 0x0f,
    P_SETRMODE = 0x10,
    P_LW = 0x20,
    P_SW = 0x21,
    P_LF = 0x22,
    P_SF = 0x23,
    P_PSTW = 0x24,
    P_PSTF = 0x25,
    P_BEQ = 0x30,
    P_BNE = 0x31,
    P_BLEZ = 0x32,
    P_BGTZ = 0x33,
    P_BLTZ = 0x34,
    P_BGEZ = 0x35,
    P_J = 0x38,
    P_JAL = 0x39,
    P_JR = 0x3a,
    P_JALR = 0x3b,
};

/** INTOP funct codes, indexable by (op - Op::ADD) for R-type ints. */
constexpr Op int_functs[] = {
    Op::ADD, Op::SUB, Op::AND_, Op::OR_, Op::XOR_, Op::NOR_,
    Op::SLT, Op::SLTU, Op::SLL, Op::SRL, Op::SRA, Op::SLLV,
    Op::SRLV, Op::SRAV, Op::MUL, Op::DIVQ, Op::REMQ,
};

constexpr Op fp_functs[] = {
    Op::FADD, Op::FSUB, Op::FABS, Op::FNEG, Op::FMOV,
    Op::FCMPLT, Op::FCMPLE, Op::FCMPEQ, Op::ITOF, Op::FTOI,
    Op::FMUL, Op::FDIV, Op::FSQRT,
};

constexpr Op thr_functs[] = {
    Op::NOP, Op::HALT, Op::FASTFORK, Op::CHGPRI, Op::KILLT,
    Op::TID, Op::NSLOT, Op::QEN, Op::QENF, Op::QDIS,
};

template <size_t N>
int
functOf(const Op (&table)[N], Op op)
{
    for (size_t i = 0; i < N; ++i) {
        if (table[i] == op)
            return static_cast<int>(i);
    }
    panic("op ", opMeta(op).mnemonic, " not in funct table");
}

std::uint32_t
encodeR(std::uint32_t primary, int funct, RegIndex rs, RegIndex rt,
        RegIndex rd, std::uint32_t shamt)
{
    std::uint32_t w = 0;
    w = insertBits(w, 31, 26, primary);
    w = insertBits(w, 25, 21, rs);
    w = insertBits(w, 20, 16, rt);
    w = insertBits(w, 15, 11, rd);
    w = insertBits(w, 10, 6, shamt);
    w = insertBits(w, 5, 0, static_cast<std::uint32_t>(funct));
    return w;
}

std::uint32_t
encodeI(std::uint32_t primary, RegIndex rs, RegIndex rt,
        std::int32_t imm)
{
    std::uint32_t w = 0;
    w = insertBits(w, 31, 26, primary);
    w = insertBits(w, 25, 21, rs);
    w = insertBits(w, 20, 16, rt);
    w = insertBits(w, 15, 0, static_cast<std::uint32_t>(imm));
    return w;
}

/** True if the 16-bit immediate of this op is sign-extended. */
bool
signExtended(Op op)
{
    switch (op) {
      case Op::ANDI:
      case Op::ORI:
      case Op::XORI:
      case Op::LUI:
        return false;
      default:
        return true;
    }
}

const char *
intRegName(RegIndex idx)
{
    static const char *names[kNumRegs] = {
        "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
        "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
        "r16", "r17", "r18", "r19", "r20", "r21", "r22", "r23",
        "r24", "r25", "r26", "r27", "r28", "r29", "r30", "r31",
    };
    return names[idx % kNumRegs];
}

const char *
fpRegName(RegIndex idx)
{
    static const char *names[kNumRegs] = {
        "f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7",
        "f8", "f9", "f10", "f11", "f12", "f13", "f14", "f15",
        "f16", "f17", "f18", "f19", "f20", "f21", "f22", "f23",
        "f24", "f25", "f26", "f27", "f28", "f29", "f30", "f31",
    };
    return names[idx % kNumRegs];
}

} // namespace

std::uint32_t
encode(const Insn &insn)
{
    const OpMeta &meta = opMeta(insn.op);
    switch (meta.format) {
      case Format::R3:
      case Format::R2:
        if (insn.op >= Op::ADD && insn.op <= Op::REMQ) {
            return encodeR(P_INTOP, functOf(int_functs, insn.op),
                           insn.rs, insn.rt, insn.rd, 0);
        }
        panic("unexpected R-format op");
      case Format::SHI:
        return encodeR(P_INTOP, functOf(int_functs, insn.op),
                       insn.rs, 0, insn.rd,
                       static_cast<std::uint32_t>(insn.imm) & 0x1f);
      case Format::I: {
        std::uint32_t primary = 0;
        switch (insn.op) {
          case Op::ADDI: primary = P_ADDI; break;
          case Op::SLTI: primary = P_SLTI; break;
          case Op::ANDI: primary = P_ANDI; break;
          case Op::ORI: primary = P_ORI; break;
          case Op::XORI: primary = P_XORI; break;
          default: panic("unexpected I-format op");
        }
        return encodeI(primary, insn.rs, insn.rt, insn.imm);
      }
      case Format::LUIF:
        return encodeI(P_LUI, 0, insn.rt, insn.imm);
      case Format::FR3:
      case Format::FR2:
      case Format::FCMP:
      case Format::ITOFF:
      case Format::FTOIF:
        return encodeR(P_FPOP, functOf(fp_functs, insn.op),
                       insn.rs, insn.rt, insn.rd, 0);
      case Format::MEM: {
        std::uint32_t primary = 0;
        switch (insn.op) {
          case Op::LW: primary = P_LW; break;
          case Op::SW: primary = P_SW; break;
          case Op::LF: primary = P_LF; break;
          case Op::SF: primary = P_SF; break;
          case Op::PSTW: primary = P_PSTW; break;
          case Op::PSTF: primary = P_PSTF; break;
          default: panic("unexpected MEM-format op");
        }
        return encodeI(primary, insn.rs, insn.rt, insn.imm);
      }
      case Format::BR2:
        return encodeI(insn.op == Op::BEQ ? P_BEQ : P_BNE, insn.rs,
                       insn.rt, insn.imm);
      case Format::BR1: {
        std::uint32_t primary = 0;
        switch (insn.op) {
          case Op::BLEZ: primary = P_BLEZ; break;
          case Op::BGTZ: primary = P_BGTZ; break;
          case Op::BLTZ: primary = P_BLTZ; break;
          case Op::BGEZ: primary = P_BGEZ; break;
          default: panic("unexpected BR1-format op");
        }
        return encodeI(primary, insn.rs, 0, insn.imm);
      }
      case Format::JF: {
        std::uint32_t w = 0;
        w = insertBits(w, 31, 26, insn.op == Op::J ? P_J : P_JAL);
        w = insertBits(w, 25, 0,
                       static_cast<std::uint32_t>(insn.imm));
        return w;
      }
      case Format::JRF:
        return encodeI(P_JR, insn.rs, 0, 0);
      case Format::JALRF:
        return encodeR(P_JALR, 0, insn.rs, 0, insn.rd, 0);
      case Format::THR0:
      case Format::THR1D:
      case Format::THR2:
        return encodeR(P_THROP, functOf(thr_functs, insn.op),
                       insn.rs, insn.rt, insn.rd, 0);
      case Format::ROT:
        return encodeI(P_SETRMODE, 0, insn.rt, insn.imm);
    }
    panic("unhandled format in encode");
}

Insn
decode(std::uint32_t word)
{
    Insn insn;
    const std::uint32_t primary = bits(word, 31, 26);
    const RegIndex rs = static_cast<RegIndex>(bits(word, 25, 21));
    const RegIndex rt = static_cast<RegIndex>(bits(word, 20, 16));
    const RegIndex rd = static_cast<RegIndex>(bits(word, 15, 11));
    const std::uint32_t shamt = bits(word, 10, 6);
    const std::uint32_t funct = bits(word, 5, 0);
    const std::uint32_t imm16 = bits(word, 15, 0);

    auto decode_funct = [&](const Op *table, size_t n) {
        if (funct >= n)
            fatal("bad funct ", funct, " in word ", word);
        return table[funct];
    };

    insn.rs = rs;
    insn.rt = rt;
    insn.rd = rd;

    switch (primary) {
      case P_INTOP:
        insn.op = decode_funct(int_functs,
                               std::size(int_functs));
        if (opMeta(insn.op).format == Format::SHI)
            insn.imm = static_cast<std::int32_t>(shamt);
        return insn;
      case P_FPOP:
        insn.op = decode_funct(fp_functs, std::size(fp_functs));
        return insn;
      case P_THROP:
        insn.op = decode_funct(thr_functs, std::size(thr_functs));
        return insn;
      case P_ADDI: insn.op = Op::ADDI; break;
      case P_SLTI: insn.op = Op::SLTI; break;
      case P_ANDI: insn.op = Op::ANDI; break;
      case P_ORI: insn.op = Op::ORI; break;
      case P_XORI: insn.op = Op::XORI; break;
      case P_LUI: insn.op = Op::LUI; break;
      case P_SETRMODE: insn.op = Op::SETRMODE; break;
      case P_LW: insn.op = Op::LW; break;
      case P_SW: insn.op = Op::SW; break;
      case P_LF: insn.op = Op::LF; break;
      case P_SF: insn.op = Op::SF; break;
      case P_PSTW: insn.op = Op::PSTW; break;
      case P_PSTF: insn.op = Op::PSTF; break;
      case P_BEQ: insn.op = Op::BEQ; break;
      case P_BNE: insn.op = Op::BNE; break;
      case P_BLEZ: insn.op = Op::BLEZ; break;
      case P_BGTZ: insn.op = Op::BGTZ; break;
      case P_BLTZ: insn.op = Op::BLTZ; break;
      case P_BGEZ: insn.op = Op::BGEZ; break;
      case P_J:
      case P_JAL:
        insn.op = primary == P_J ? Op::J : Op::JAL;
        insn.imm = static_cast<std::int32_t>(bits(word, 25, 0));
        return insn;
      case P_JR: insn.op = Op::JR; return insn;
      case P_JALR: insn.op = Op::JALR; return insn;
      default:
        fatal("unknown primary opcode ", primary, " in word ", word);
    }

    // All remaining formats carry a 16-bit immediate.
    insn.imm = signExtended(insn.op)
                   ? sext(imm16, 16)
                   : static_cast<std::int32_t>(imm16);
    return insn;
}

std::string
disassemble(const Insn &insn)
{
    const OpMeta &meta = opMeta(insn.op);
    std::ostringstream oss;
    oss << meta.mnemonic;

    auto sep = [&, first = true]() mutable {
        oss << (first ? " " : ", ");
        first = false;
    };

    switch (meta.format) {
      case Format::R3:
        sep(); oss << intRegName(insn.rd);
        sep(); oss << intRegName(insn.rs);
        sep(); oss << intRegName(insn.rt);
        break;
      case Format::R2:
        sep(); oss << intRegName(insn.rd);
        sep(); oss << intRegName(insn.rs);
        break;
      case Format::SHI:
        sep(); oss << intRegName(insn.rd);
        sep(); oss << intRegName(insn.rs);
        sep(); oss << insn.imm;
        break;
      case Format::I:
        sep(); oss << intRegName(insn.rt);
        sep(); oss << intRegName(insn.rs);
        sep(); oss << insn.imm;
        break;
      case Format::LUIF:
        sep(); oss << intRegName(insn.rt);
        sep(); oss << insn.imm;
        break;
      case Format::FR3:
        sep(); oss << fpRegName(insn.rd);
        sep(); oss << fpRegName(insn.rs);
        sep(); oss << fpRegName(insn.rt);
        break;
      case Format::FR2:
        sep(); oss << fpRegName(insn.rd);
        sep(); oss << fpRegName(insn.rs);
        break;
      case Format::FCMP:
        sep(); oss << intRegName(insn.rd);
        sep(); oss << fpRegName(insn.rs);
        sep(); oss << fpRegName(insn.rt);
        break;
      case Format::ITOFF:
        sep(); oss << fpRegName(insn.rd);
        sep(); oss << intRegName(insn.rs);
        break;
      case Format::FTOIF:
        sep(); oss << intRegName(insn.rd);
        sep(); oss << fpRegName(insn.rs);
        break;
      case Format::MEM:
        sep();
        oss << (isFpFormatOp(insn.op) ? fpRegName(insn.rt)
                                      : intRegName(insn.rt));
        sep(); oss << insn.imm << '(' << intRegName(insn.rs) << ')';
        break;
      case Format::BR2:
        sep(); oss << intRegName(insn.rs);
        sep(); oss << intRegName(insn.rt);
        sep(); oss << insn.imm;
        break;
      case Format::BR1:
        sep(); oss << intRegName(insn.rs);
        sep(); oss << insn.imm;
        break;
      case Format::JF:
        sep(); oss << insn.imm;
        break;
      case Format::JRF:
        sep(); oss << intRegName(insn.rs);
        break;
      case Format::JALRF:
        sep(); oss << intRegName(insn.rd);
        sep(); oss << intRegName(insn.rs);
        break;
      case Format::THR0:
        break;
      case Format::THR1D:
        sep(); oss << intRegName(insn.rd);
        break;
      case Format::THR2:
        sep();
        oss << (insn.op == Op::QENF ? fpRegName(insn.rs)
                                    : intRegName(insn.rs));
        sep();
        oss << (insn.op == Op::QENF ? fpRegName(insn.rt)
                                    : intRegName(insn.rt));
        break;
      case Format::ROT:
        sep(); oss << static_cast<int>(insn.rt);
        sep(); oss << insn.imm;
        break;
    }
    return oss.str();
}

} // namespace smtsim
