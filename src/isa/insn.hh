/**
 * @file
 * Decoded instruction representation and register-operand queries
 * shared by the assembler, the functional interpreter and both
 * pipeline models.
 */

#ifndef SMTSIM_ISA_INSN_HH
#define SMTSIM_ISA_INSN_HH

#include <cstdint>
#include <string>

#include "base/types.hh"
#include "isa/op.hh"

namespace smtsim
{

/** Which register file an operand lives in. */
enum class RF : std::uint8_t { None, Int, Fp };

/** Reference to one architectural register. */
struct RegRef
{
    RF file = RF::None;
    RegIndex idx = 0;

    bool valid() const { return file != RF::None; }

    bool
    operator==(const RegRef &other) const
    {
        return file == other.file && idx == other.idx;
    }
};

/**
 * A decoded instruction. Field meaning depends on opMeta(op).format;
 * see the Format enum. @c imm holds, depending on format, the
 * sign/zero-extended 16-bit immediate, the shift amount, or the
 * 26-bit jump target (word index).
 */
struct Insn
{
    Op op = Op::NOP;
    RegIndex rd = 0;
    RegIndex rs = 0;
    RegIndex rt = 0;
    std::int32_t imm = 0;

    /** Source registers; returns the count written into @p out[3]. */
    int srcs(RegRef out[3]) const;

    /** Destination register (invalid RegRef if none). */
    RegRef dst() const;

    /** Functional-unit class executing this instruction. */
    FuClass fu() const { return opMeta(op).fu; }

    bool isBranch() const { return isBranchOp(op); }
    bool isMem() const { return isMemOp(op); }
    bool isLoad() const { return isLoadOp(op); }
    bool isStore() const { return isStoreOp(op); }
    bool isThreadCtl() const { return isThreadCtlOp(op); }

    bool operator==(const Insn &other) const = default;
};

/** Encode @p insn into its 32-bit machine form. */
std::uint32_t encode(const Insn &insn);

/** Decode a 32-bit machine word. Throws FatalError on bad encodings. */
Insn decode(std::uint32_t word);

/** Human-readable disassembly, e.g. "addi r1, r2, 10". */
std::string disassemble(const Insn &insn);

} // namespace smtsim

#endif // SMTSIM_ISA_INSN_HH
