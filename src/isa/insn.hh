/**
 * @file
 * Decoded instruction representation and register-operand queries
 * shared by the assembler, the functional interpreter and both
 * pipeline models.
 */

#ifndef SMTSIM_ISA_INSN_HH
#define SMTSIM_ISA_INSN_HH

#include <cstdint>
#include <string>

#include "base/types.hh"
#include "isa/op.hh"

namespace smtsim
{

/** Which register file an operand lives in. */
enum class RF : std::uint8_t { None, Int, Fp };

/** Reference to one architectural register. */
struct RegRef
{
    RF file = RF::None;
    RegIndex idx = 0;

    bool valid() const { return file != RF::None; }

    bool
    operator==(const RegRef &other) const
    {
        return file == other.file && idx == other.idx;
    }
};

/**
 * A decoded instruction. Field meaning depends on opMeta(op).format;
 * see the Format enum. @c imm holds, depending on format, the
 * sign/zero-extended 16-bit immediate, the shift amount, or the
 * 26-bit jump target (word index).
 */
struct Insn
{
    Op op = Op::NOP;
    RegIndex rd = 0;
    RegIndex rs = 0;
    RegIndex rt = 0;
    std::int32_t imm = 0;

    /** Source registers; returns the count written into @p out[3].
     *  Inline: called per instruction per cycle by every engine. */
    int srcs(RegRef out[3]) const;

    /** Destination register (invalid RegRef if none). Inline, for
     *  the same hot-path reason as srcs(). */
    RegRef dst() const;

    /** Functional-unit class executing this instruction. */
    FuClass fu() const { return opMeta(op).fu; }

    bool isBranch() const { return isBranchOp(op); }
    bool isMem() const { return isMemOp(op); }
    bool isLoad() const { return isLoadOp(op); }
    bool isStore() const { return isStoreOp(op); }
    bool isThreadCtl() const { return isThreadCtlOp(op); }

    bool operator==(const Insn &other) const = default;
};

inline int
Insn::srcs(RegRef out[3]) const
{
    int n = 0;
    auto add = [&](RF file, RegIndex idx) {
        // r0 is hardwired to zero: never a real dependence.
        if (file == RF::Int && idx == 0)
            return;
        out[n++] = RegRef{file, idx};
    };

    switch (opMeta(op).format) {
      case Format::R3:
        add(RF::Int, rs);
        add(RF::Int, rt);
        break;
      case Format::R2:
        add(RF::Int, rs);
        break;
      case Format::SHI:
      case Format::I:
        add(RF::Int, rs);
        break;
      case Format::LUIF:
        break;
      case Format::FR3:
        add(RF::Fp, rs);
        add(RF::Fp, rt);
        break;
      case Format::FR2:
        add(RF::Fp, rs);
        break;
      case Format::FCMP:
        add(RF::Fp, rs);
        add(RF::Fp, rt);
        break;
      case Format::ITOFF:
        add(RF::Int, rs);
        break;
      case Format::FTOIF:
        add(RF::Fp, rs);
        break;
      case Format::MEM:
        add(RF::Int, rs);          // address base
        if (isStoreOp(op))
            add(isFpFormatOp(op) ? RF::Fp : RF::Int, rt);
        break;
      case Format::BR2:
        add(RF::Int, rs);
        add(RF::Int, rt);
        break;
      case Format::BR1:
        add(RF::Int, rs);
        break;
      case Format::JRF:
      case Format::JALRF:
        add(RF::Int, rs);
        break;
      case Format::JF:
      case Format::THR0:
      case Format::THR1D:
      case Format::THR2:
      case Format::ROT:
        break;
    }
    return n;
}

inline RegRef
Insn::dst() const
{
    switch (opMeta(op).format) {
      case Format::R3:
      case Format::R2:
      case Format::SHI:
        return {RF::Int, rd};
      case Format::I:
      case Format::LUIF:
        return {RF::Int, rt};
      case Format::FR3:
      case Format::FR2:
        return {RF::Fp, rd};
      case Format::FCMP:
        return {RF::Int, rd};
      case Format::ITOFF:
        return {RF::Fp, rd};
      case Format::FTOIF:
        return {RF::Int, rd};
      case Format::MEM:
        if (isLoadOp(op))
            return {isFpFormatOp(op) ? RF::Fp : RF::Int, rt};
        return {};
      case Format::JF:
        if (op == Op::JAL)
            return {RF::Int, 31};
        return {};
      case Format::JALRF:
        return {RF::Int, rd};
      case Format::THR1D:
        return {RF::Int, rd};
      default:
        return {};
    }
}

/** Encode @p insn into its 32-bit machine form. */
std::uint32_t encode(const Insn &insn);

/** Decode a 32-bit machine word. Throws FatalError on bad encodings. */
Insn decode(std::uint32_t word);

/** Human-readable disassembly, e.g. "addi r1, r2, 10". */
std::string disassemble(const Insn &insn);

} // namespace smtsim

#endif // SMTSIM_ISA_INSN_HH
