#include "semantics.hh"

#include <cmath>

#include "base/logging.hh"

namespace smtsim
{

namespace
{

std::int32_t
asSigned(std::uint32_t v)
{
    return static_cast<std::int32_t>(v);
}

} // namespace

std::uint32_t
execIntOp(const Insn &insn, std::uint32_t rs_val, std::uint32_t rt_val)
{
    const std::uint32_t uimm =
        static_cast<std::uint32_t>(insn.imm) & 0xffffu;
    const std::int32_t simm = insn.imm;

    switch (insn.op) {
      case Op::ADD: return rs_val + rt_val;
      case Op::SUB: return rs_val - rt_val;
      case Op::AND_: return rs_val & rt_val;
      case Op::OR_: return rs_val | rt_val;
      case Op::XOR_: return rs_val ^ rt_val;
      case Op::NOR_: return ~(rs_val | rt_val);
      case Op::SLT:
        return asSigned(rs_val) < asSigned(rt_val) ? 1 : 0;
      case Op::SLTU: return rs_val < rt_val ? 1 : 0;
      case Op::ADDI:
        return rs_val + static_cast<std::uint32_t>(simm);
      case Op::SLTI:
        return asSigned(rs_val) < simm ? 1 : 0;
      case Op::ANDI: return rs_val & uimm;
      case Op::ORI: return rs_val | uimm;
      case Op::XORI: return rs_val ^ uimm;
      case Op::LUI: return uimm << 16;
      case Op::SLL:
        return rs_val << (insn.imm & 31);
      case Op::SRL:
        return rs_val >> (insn.imm & 31);
      case Op::SRA:
        return static_cast<std::uint32_t>(asSigned(rs_val) >>
                                          (insn.imm & 31));
      case Op::SLLV: return rs_val << (rt_val & 31);
      case Op::SRLV: return rs_val >> (rt_val & 31);
      case Op::SRAV:
        return static_cast<std::uint32_t>(asSigned(rs_val) >>
                                          (rt_val & 31));
      case Op::MUL:
        return static_cast<std::uint32_t>(
            asSigned(rs_val) * std::int64_t{asSigned(rt_val)});
      case Op::DIVQ:
        // Division by zero is architecturally defined to yield zero
        // so every engine (and host) agrees.
        if (rt_val == 0)
            return 0;
        if (rs_val == 0x80000000u && rt_val == 0xffffffffu)
            return 0x80000000u;
        return static_cast<std::uint32_t>(asSigned(rs_val) /
                                          asSigned(rt_val));
      case Op::REMQ:
        if (rt_val == 0)
            return 0;
        if (rs_val == 0x80000000u && rt_val == 0xffffffffu)
            return 0;
        return static_cast<std::uint32_t>(asSigned(rs_val) %
                                          asSigned(rt_val));
      default:
        panic("execIntOp: not an int op: ", opMeta(insn.op).mnemonic);
    }
}

double
execFpOp(Op op, double a, double b)
{
    switch (op) {
      case Op::FADD: return a + b;
      case Op::FSUB: return a - b;
      case Op::FMUL: return a * b;
      case Op::FDIV: return a / b;
      case Op::FSQRT: return std::sqrt(a);
      case Op::FABS: return std::fabs(a);
      case Op::FNEG: return -a;
      case Op::FMOV: return a;
      default:
        panic("execFpOp: not an FP op: ", opMeta(op).mnemonic);
    }
}

std::uint32_t
execFpToIntOp(Op op, double a, double b)
{
    switch (op) {
      case Op::FCMPLT: return a < b ? 1 : 0;
      case Op::FCMPLE: return a <= b ? 1 : 0;
      case Op::FCMPEQ: return a == b ? 1 : 0;
      case Op::FTOI:
        // Saturating conversion with NaN -> 0: float-to-int is
        // undefined behaviour in C++ for NaN and out-of-range
        // values, and the architecture needs one answer every
        // engine (and host compiler) agrees on.
        if (std::isnan(a))
            return 0;
        if (a >= 2147483648.0)
            return 0x7fffffffu;
        if (a < -2147483648.0)
            return 0x80000000u;
        return static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a));
      default:
        panic("execFpToIntOp: bad op: ", opMeta(op).mnemonic);
    }
}

bool
evalBranch(Op op, std::uint32_t rs_val, std::uint32_t rt_val)
{
    switch (op) {
      case Op::BEQ: return rs_val == rt_val;
      case Op::BNE: return rs_val != rt_val;
      case Op::BLEZ: return asSigned(rs_val) <= 0;
      case Op::BGTZ: return asSigned(rs_val) > 0;
      case Op::BLTZ: return asSigned(rs_val) < 0;
      case Op::BGEZ: return asSigned(rs_val) >= 0;
      case Op::J:
      case Op::JAL:
      case Op::JR:
      case Op::JALR:
        return true;
      default:
        panic("evalBranch: not a branch: ", opMeta(op).mnemonic);
    }
}

} // namespace smtsim
