#include "op.hh"

#include <array>

namespace smtsim
{

namespace detail
{

/**
 * One row per Op, in enum order. Latencies are the paper's Table 1;
 * rows the scan garbled are reconstructed as documented in DESIGN.md
 * section 2.
 */
const OpMeta kOpTable[kNumOps] = {
    // mnemonic  format        fu                 issue result
    {"add",      Format::R3,   FuClass::IntAlu,    1, 2},
    {"sub",      Format::R3,   FuClass::IntAlu,    1, 2},
    {"and",      Format::R3,   FuClass::IntAlu,    1, 2},
    {"or",       Format::R3,   FuClass::IntAlu,    1, 2},
    {"xor",      Format::R3,   FuClass::IntAlu,    1, 2},
    {"nor",      Format::R3,   FuClass::IntAlu,    1, 2},
    {"slt",      Format::R3,   FuClass::IntAlu,    1, 2},
    {"sltu",     Format::R3,   FuClass::IntAlu,    1, 2},
    {"addi",     Format::I,    FuClass::IntAlu,    1, 2},
    {"slti",     Format::I,    FuClass::IntAlu,    1, 2},
    {"andi",     Format::I,    FuClass::IntAlu,    1, 2},
    {"ori",      Format::I,    FuClass::IntAlu,    1, 2},
    {"xori",     Format::I,    FuClass::IntAlu,    1, 2},
    {"lui",      Format::LUIF, FuClass::IntAlu,    1, 2},
    {"sll",      Format::SHI,  FuClass::Shifter,   1, 2},
    {"srl",      Format::SHI,  FuClass::Shifter,   1, 2},
    {"sra",      Format::SHI,  FuClass::Shifter,   1, 2},
    {"sllv",     Format::R3,   FuClass::Shifter,   1, 2},
    {"srlv",     Format::R3,   FuClass::Shifter,   1, 2},
    {"srav",     Format::R3,   FuClass::Shifter,   1, 2},
    {"mul",      Format::R3,   FuClass::IntMul,    1, 6},
    {"divq",     Format::R3,   FuClass::IntMul,    1, 6},
    {"remq",     Format::R3,   FuClass::IntMul,    1, 6},
    {"fadd",     Format::FR3,  FuClass::FpAdd,     1, 4},
    {"fsub",     Format::FR3,  FuClass::FpAdd,     1, 4},
    {"fabs",     Format::FR2,  FuClass::FpAdd,     1, 2},
    {"fneg",     Format::FR2,  FuClass::FpAdd,     1, 2},
    {"fmov",     Format::FR2,  FuClass::FpAdd,     1, 2},
    {"fcmplt",   Format::FCMP, FuClass::FpAdd,     1, 4},
    {"fcmple",   Format::FCMP, FuClass::FpAdd,     1, 4},
    {"fcmpeq",   Format::FCMP, FuClass::FpAdd,     1, 4},
    {"itof",     Format::ITOFF, FuClass::FpAdd,    1, 4},
    {"ftoi",     Format::FTOIF, FuClass::FpAdd,    1, 4},
    {"fmul",     Format::FR3,  FuClass::FpMul,     1, 6},
    {"fdiv",     Format::FR3,  FuClass::FpDiv,     1, 12},
    {"fsqrt",    Format::FR2,  FuClass::FpDiv,     1, 12},
    {"lw",       Format::MEM,  FuClass::LoadStore, 2, 4},
    {"sw",       Format::MEM,  FuClass::LoadStore, 2, 2},
    {"lf",       Format::MEM,  FuClass::LoadStore, 2, 4},
    {"sf",       Format::MEM,  FuClass::LoadStore, 2, 2},
    {"pstw",     Format::MEM,  FuClass::LoadStore, 2, 2},
    {"pstf",     Format::MEM,  FuClass::LoadStore, 2, 2},
    {"beq",      Format::BR2,  FuClass::None,      1, 1},
    {"bne",      Format::BR2,  FuClass::None,      1, 1},
    {"blez",     Format::BR1,  FuClass::None,      1, 1},
    {"bgtz",     Format::BR1,  FuClass::None,      1, 1},
    {"bltz",     Format::BR1,  FuClass::None,      1, 1},
    {"bgez",     Format::BR1,  FuClass::None,      1, 1},
    {"j",        Format::JF,   FuClass::None,      1, 1},
    {"jal",      Format::JF,   FuClass::None,      1, 1},
    {"jr",       Format::JRF,  FuClass::None,      1, 1},
    {"jalr",     Format::JALRF, FuClass::None,     1, 1},
    {"nop",      Format::THR0, FuClass::None,      1, 1},
    {"halt",     Format::THR0, FuClass::None,      1, 1},
    {"fastfork", Format::THR0, FuClass::None,      1, 1},
    {"chgpri",   Format::THR0, FuClass::None,      1, 1},
    {"killt",    Format::THR0, FuClass::None,      1, 1},
    {"tid",      Format::THR1D, FuClass::None,     1, 1},
    {"nslot",    Format::THR1D, FuClass::None,     1, 1},
    {"qen",      Format::THR2, FuClass::None,      1, 1},
    {"qenf",     Format::THR2, FuClass::None,      1, 1},
    {"qdis",     Format::THR0, FuClass::None,      1, 1},
    {"setrmode", Format::ROT,  FuClass::None,      1, 1},
};

} // namespace detail

const OpEffects &
opEffects(Op op)
{
    static const std::array<OpEffects, kNumOps> table = [] {
        std::array<OpEffects, kNumOps> t{};
        for (int i = 0; i < kNumOps; ++i) {
            const Op o = static_cast<Op>(i);
            OpEffects &e = t[i];
            e.reads_mem = isLoadOp(o);
            e.writes_mem = isStoreOp(o);
            e.control = isBranchOp(o);
            e.indirect = o == Op::JR || o == Op::JALR;
            e.links = o == Op::JAL || o == Op::JALR;
            e.terminates = o == Op::HALT;
            e.forks = o == Op::FASTFORK;
            e.kills = o == Op::KILLT;
            e.priority_gated = isPriorityGatedOp(o);
            e.queue_map = o == Op::QEN || o == Op::QENF;
            e.queue_unmap = o == Op::QDIS;
            e.global_state = o == Op::SETRMODE;
        }
        return t;
    }();
    return table[static_cast<int>(op)];
}

} // namespace smtsim
