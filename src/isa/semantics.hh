/**
 * @file
 * Architectural semantics of arithmetic, compare and branch
 * operations, shared by the functional interpreter and both timing
 * models so every engine computes identical values.
 */

#ifndef SMTSIM_ISA_SEMANTICS_HH
#define SMTSIM_ISA_SEMANTICS_HH

#include <cstdint>

#include "isa/insn.hh"

namespace smtsim
{

/**
 * Evaluate an integer ALU / shifter / multiplier operation.
 *
 * @param insn decoded instruction (imm/shamt read from insn.imm)
 * @param rs_val value of the rs register
 * @param rt_val value of the rt register (ignored by I-formats)
 * @return the 32-bit result
 */
std::uint32_t execIntOp(const Insn &insn, std::uint32_t rs_val,
                        std::uint32_t rt_val);

/**
 * Evaluate an FP-register-producing operation (FADD..FSQRT, FMOV,
 * ITOF). For ITOF, @p a carries the integer source value reinterpreted
 * via static_cast from its signed reading.
 */
double execFpOp(Op op, double a, double b);

/** Evaluate an FP compare / FTOI; produces an integer result. */
std::uint32_t execFpToIntOp(Op op, double a, double b);

/** Evaluate a conditional branch predicate. */
bool evalBranch(Op op, std::uint32_t rs_val, std::uint32_t rt_val);

} // namespace smtsim

#endif // SMTSIM_ISA_SEMANTICS_HH
