/**
 * @file
 * Evaluation of register-to-register data operations (everything but
 * memory, branch and thread-control instructions), shared by both
 * pipeline models.
 */

#ifndef SMTSIM_ISA_DATAOP_HH
#define SMTSIM_ISA_DATAOP_HH

#include <cstdint>

#include "isa/insn.hh"

namespace smtsim
{

/** Operand values for one instruction (unused fields are zero). */
struct OperandValues
{
    std::uint32_t rs_i = 0;
    std::uint32_t rt_i = 0;
    double rs_f = 0.0;
    double rt_f = 0.0;
};

/** Result of a data operation. */
struct DataResult
{
    bool is_fp = false;
    std::uint32_t ival = 0;
    double fval = 0.0;
};

/**
 * Evaluate a non-memory, non-branch, non-thread-control instruction.
 * The destination register is insn.dst().
 */
DataResult execDataOp(const Insn &insn, const OperandValues &ops);

} // namespace smtsim

#endif // SMTSIM_ISA_DATAOP_HH
