#include "synth.hh"

#include <sstream>
#include <vector>

#include "asmr/assembler.hh"
#include "base/random.hh"

namespace smtsim
{

namespace
{

/** Scratch data area the generated loads/stores touch. */
constexpr int kScratchWords = 64;

} // namespace

Program
makeSyntheticKernel(const SynthParams &params)
{
    Rng rng(params.seed);
    std::ostringstream src;

    src << "        .text\n"
        << "main:   la   r1, scratch\n"
        << "        la   r5, fpone\n"
        << "        lf   f25, 0(r5)\n"
        << "        li   r2, " << params.iterations << "\n";
    if (params.parallel) {
        // Give each thread a private slice of the scratch area so
        // results stay deterministic under any interleaving.
        src << "        fastfork\n"
            << "        tid  r3\n"
            << "        sll  r4, r3, 9\n"
            << "        add  r1, r1, r4\n";
    }
    src << "loop:\n";

    struct Choice
    {
        double weight;
        int kind;
    };
    const std::vector<Choice> choices = {
        {params.w_int_alu, 0}, {params.w_shift, 1},
        {params.w_int_mul, 2}, {params.w_fp_add, 3},
        {params.w_fp_mul, 4},  {params.w_fp_div, 5},
        {params.w_load, 6},    {params.w_store, 7},
    };
    double total_w = 0;
    for (const Choice &c : choices)
        total_w += c.weight;

    // Rotating destination registers; r8..r23 and f1..f23 are the
    // kernel's scratch registers.
    int next_ir = 8;
    int next_fr = 1;
    std::vector<int> recent_ir = {8, 9, 10};
    std::vector<int> recent_fr = {1, 2, 3};

    auto pick_src_ir = [&]() {
        if (rng.nextDouble() < params.dependence_locality)
            return recent_ir[rng.nextBelow(recent_ir.size())];
        return 8 + static_cast<int>(rng.nextBelow(16));
    };
    auto pick_src_fr = [&]() {
        if (rng.nextDouble() < params.dependence_locality)
            return recent_fr[rng.nextBelow(recent_fr.size())];
        return 1 + static_cast<int>(rng.nextBelow(23));
    };
    auto new_ir = [&]() {
        const int r = next_ir;
        next_ir = next_ir == 23 ? 8 : next_ir + 1;
        recent_ir.erase(recent_ir.begin());
        recent_ir.push_back(r);
        return r;
    };
    auto new_fr = [&]() {
        const int r = next_fr;
        next_fr = next_fr == 23 ? 1 : next_fr + 1;
        recent_fr.erase(recent_fr.begin());
        recent_fr.push_back(r);
        return r;
    };

    for (int i = 0; i < params.insns_per_block; ++i) {
        double roll = rng.nextDouble() * total_w;
        int kind = 0;
        for (const Choice &c : choices) {
            if (roll < c.weight) {
                kind = c.kind;
                break;
            }
            roll -= c.weight;
        }

        switch (kind) {
          case 0: {   // integer ALU
            static const char *ops[] = {"add", "sub", "and", "or",
                                        "xor"};
            src << "        " << ops[rng.nextBelow(5)] << "  r"
                << new_ir() << ", r" << pick_src_ir() << ", r"
                << pick_src_ir() << "\n";
            break;
          }
          case 1:     // shifter
            src << "        sll  r" << new_ir() << ", r"
                << pick_src_ir() << ", "
                << (1 + rng.nextBelow(8)) << "\n";
            break;
          case 2:     // integer multiplier
            src << "        mul  r" << new_ir() << ", r"
                << pick_src_ir() << ", r" << pick_src_ir()
                << "\n";
            break;
          case 3: {   // FP adder
            static const char *ops[] = {"fadd", "fsub"};
            src << "        " << ops[rng.nextBelow(2)] << " f"
                << new_fr() << ", f" << pick_src_fr() << ", f"
                << pick_src_fr() << "\n";
            break;
          }
          case 4:     // FP multiplier
            src << "        fmul f" << new_fr() << ", f"
                << pick_src_fr() << ", f" << pick_src_fr()
                << "\n";
            break;
          case 5:     // FP divider (guarded against 0/0 by adding 1)
            src << "        fadd f" << 24 << ", f"
                << pick_src_fr() << ", f25\n"
                << "        fdiv f" << new_fr() << ", f"
                << pick_src_fr() << ", f24\n";
            break;
          case 6: {   // load
            const bool fp = rng.nextBelow(2) == 0;
            const int off = static_cast<int>(
                rng.nextBelow(kScratchWords / 2) * 8);
            if (fp)
                src << "        lf   f" << new_fr() << ", " << off
                    << "(r1)\n";
            else
                src << "        lw   r" << new_ir() << ", " << off
                    << "(r1)\n";
            break;
          }
          case 7: {   // store
            const bool fp = rng.nextBelow(2) == 0;
            const int off = static_cast<int>(
                rng.nextBelow(kScratchWords / 2) * 8);
            if (fp)
                src << "        sf   f" << pick_src_fr() << ", "
                    << off << "(r1)\n";
            else
                src << "        sw   r" << pick_src_ir() << ", "
                    << off << "(r1)\n";
            break;
          }
        }
    }

    src << "        addi r2, r2, -1\n"
        << "        bgtz r2, loop\n"
        << "        halt\n"
        << "        .data\n"
        << "        .align 8\n"
        << "fpone:  .float 1.0\n"
        << "scratch: .space " << (8 * kScratchWords * 9) << "\n";

    Program prog = assemble(src.str());
    return prog;
}

} // namespace smtsim
