#include "trace.hh"

#include <istream>
#include <ostream>

#include "base/logging.hh"
#include "interp/interpreter.hh"

namespace smtsim
{

void
Trace::save(std::ostream &os) const
{
    const std::uint64_t n = records_.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    for (const TraceRecord &r : records_) {
        os.write(reinterpret_cast<const char *>(&r.tid),
                 sizeof(r.tid));
        os.write(reinterpret_cast<const char *>(&r.pc),
                 sizeof(r.pc));
        os.write(reinterpret_cast<const char *>(&r.word),
                 sizeof(r.word));
    }
}

Trace
Trace::load(std::istream &is)
{
    Trace trace;
    std::uint64_t n = 0;
    is.read(reinterpret_cast<char *>(&n), sizeof(n));
    if (!is)
        fatal("trace load: truncated header");
    trace.records_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceRecord r;
        is.read(reinterpret_cast<char *>(&r.tid), sizeof(r.tid));
        is.read(reinterpret_cast<char *>(&r.pc), sizeof(r.pc));
        is.read(reinterpret_cast<char *>(&r.word), sizeof(r.word));
        if (!is)
            fatal("trace load: truncated record ", i);
        trace.records_.push_back(r);
    }
    return trace;
}

Trace
recordTrace(const Program &prog, MainMemory &mem, int num_threads)
{
    Trace trace;
    InterpConfig cfg;
    cfg.num_threads = num_threads;
    Interpreter interp(prog, mem, cfg);
    interp.setTraceHook(
        [&trace](int tid, Addr pc, const Insn &insn) {
            trace.append(tid, pc, insn);
        });
    const InterpResult result = interp.run();
    if (!result.completed)
        fatal("recordTrace: program did not finish");
    return trace;
}

InstructionMix
analyzeMix(const Trace &trace)
{
    InstructionMix mix;
    for (const TraceRecord &r : trace.records()) {
        const Insn insn = r.insn();
        ++mix.total;
        if (insn.isBranch()) {
            ++mix.branches;
        } else if (insn.isThreadCtl()) {
            ++mix.thread_ctl;
        } else {
            ++mix.by_class[static_cast<int>(insn.fu())];
        }
    }
    return mix;
}

} // namespace smtsim
