/**
 * @file
 * Instruction-trace infrastructure.
 *
 * The paper obtained its workload by running compiler-generated
 * object code on a workstation and translating the traced
 * instruction sequences for its simulator. This module reproduces
 * that flow: the functional interpreter records per-thread dynamic
 * instruction streams, which can be saved, reloaded, and analyzed
 * (instruction-mix statistics drive the synthetic workload
 * generator in synth.hh).
 */

#ifndef SMTSIM_TRACE_TRACE_HH
#define SMTSIM_TRACE_TRACE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "asmr/program.hh"
#include "base/types.hh"
#include "isa/insn.hh"
#include "mem/memory.hh"

namespace smtsim
{

/** One dynamic instruction. */
struct TraceRecord
{
    std::uint16_t tid = 0;
    Addr pc = 0;
    std::uint32_t word = 0;     ///< encoded instruction

    Insn insn() const { return decode(word); }
};

/** A recorded multi-thread execution. */
class Trace
{
  public:
    void
    append(int tid, Addr pc, const Insn &insn)
    {
        records_.push_back(TraceRecord{
            static_cast<std::uint16_t>(tid), pc, encode(insn)});
    }

    const std::vector<TraceRecord> &records() const
    {
        return records_;
    }
    size_t size() const { return records_.size(); }

    /** Serialize to a simple binary stream (and back). */
    void save(std::ostream &os) const;
    static Trace load(std::istream &is);

  private:
    std::vector<TraceRecord> records_;
};

/**
 * Record the dynamic instruction stream of @p prog by running it on
 * the functional interpreter with @p num_threads logical
 * processors. @p mem must already hold the loaded image.
 */
Trace recordTrace(const Program &prog, MainMemory &mem,
                  int num_threads = 1);

/** Dynamic instruction mix, per functional-unit class. */
struct InstructionMix
{
    std::array<std::uint64_t, kNumFuClasses> by_class{};
    std::uint64_t branches = 0;
    std::uint64_t thread_ctl = 0;
    std::uint64_t total = 0;

    double
    fraction(FuClass cls) const
    {
        return total == 0 ? 0.0
                          : static_cast<double>(
                                by_class[static_cast<int>(cls)]) /
                                static_cast<double>(total);
    }
};

/** Classify every record of @p trace. */
InstructionMix analyzeMix(const Trace &trace);

} // namespace smtsim

#endif // SMTSIM_TRACE_TRACE_HH
