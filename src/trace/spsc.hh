/**
 * @file
 * Bounded single-producer/single-consumer ring buffer.
 *
 * The functional-first pipeline (docs/PERF.md) runs the fast
 * functional engine and the trace consumer on separate host
 * threads: the engine pushes execution-trace records while the
 * consumer assembles them into an ExecTrace (exec_trace.hh). The
 * ring is the only shared state, so this is the one place in the
 * pipeline where host-level synchronization lives (TSan-covered by
 * tests/test_spsc.cc).
 *
 * Exactly one thread may call push() and exactly one thread may
 * call pop(); close() may be called from either (or a third)
 * thread to release whoever is blocked.
 */

#ifndef SMTSIM_TRACE_SPSC_HH
#define SMTSIM_TRACE_SPSC_HH

#include <atomic>
#include <bit>
#include <cstddef>
#include <thread>
#include <vector>

namespace smtsim
{

/** Bounded SPSC queue with blocking push/pop and cooperative
 *  shutdown. Capacity is rounded up to a power of two. */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity = 1024)
        : buf_(std::bit_ceil(capacity < 2 ? std::size_t{2}
                                          : capacity)),
          mask_(buf_.size() - 1)
    {
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /**
     * Append one item, blocking while the ring is full.
     * @return false when the ring was closed (item dropped).
     */
    bool
    push(const T &item)
    {
        const std::size_t tail =
            tail_.load(std::memory_order_relaxed);
        for (;;) {
            const std::size_t head =
                head_.load(std::memory_order_acquire);
            if (tail - head <= mask_)
                break;
            if (closed_.load(std::memory_order_acquire))
                return false;
            std::this_thread::yield();
        }
        buf_[tail & mask_] = item;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Remove the oldest item, blocking while the ring is empty.
     * After close(), remaining items still drain in order.
     * @return false once the ring is closed *and* drained.
     */
    bool
    pop(T &out)
    {
        const std::size_t head =
            head_.load(std::memory_order_relaxed);
        for (;;) {
            const std::size_t tail =
                tail_.load(std::memory_order_acquire);
            if (head != tail)
                break;
            if (closed_.load(std::memory_order_acquire))
                return false;
            std::this_thread::yield();
        }
        out = buf_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Release blocked callers; push() fails from now on. */
    void
    close()
    {
        closed_.store(true, std::memory_order_release);
    }

    bool closed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return buf_.size(); }

  private:
    std::vector<T> buf_;
    std::size_t mask_;
    /** Consumer cursor (monotonically increasing, wraps via mask). */
    alignas(64) std::atomic<std::size_t> head_{0};
    /** Producer cursor. */
    alignas(64) std::atomic<std::size_t> tail_{0};
    std::atomic<bool> closed_{false};
};

} // namespace smtsim

#endif // SMTSIM_TRACE_SPSC_HH
