/**
 * @file
 * Synthetic workload generator: produces assembly kernels with a
 * configurable dynamic instruction mix, dependence locality and
 * branch frequency. Used for controlled studies (ablation benches)
 * where the ray tracer's fixed mix would confound the variable
 * under test, standing in for the additional traced applications
 * the paper calls for in its concluding remarks.
 */

#ifndef SMTSIM_TRACE_SYNTH_HH
#define SMTSIM_TRACE_SYNTH_HH

#include <cstdint>

#include "asmr/program.hh"

namespace smtsim
{

/** Parameters of a generated kernel. */
struct SynthParams
{
    std::uint64_t seed = 1;
    /** Loop iterations executed by each thread. */
    int iterations = 64;
    /** Straight-line instructions per loop body. */
    int insns_per_block = 24;

    /** Instruction-mix weights (normalized internally). */
    double w_int_alu = 0.35;
    double w_shift = 0.05;
    double w_int_mul = 0.02;
    double w_fp_add = 0.15;
    double w_fp_mul = 0.12;
    double w_fp_div = 0.01;
    double w_load = 0.20;
    double w_store = 0.10;

    /**
     * Probability that an operand reuses one of the last few
     * results, controlling fine-grained ILP: 1.0 produces a long
     * serial chain, 0.0 an embarrassingly parallel block.
     */
    double dependence_locality = 0.5;

    /** Emit FASTFORK so every thread slot runs the kernel. */
    bool parallel = true;
};

/** Generate the kernel program (deterministic in the seed). */
Program makeSyntheticKernel(const SynthParams &params);

} // namespace smtsim

#endif // SMTSIM_TRACE_SYNTH_HH
