#include "exec_trace.hh"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/serial.hh"
#include "trace/spsc.hh"

namespace smtsim
{

namespace
{

/** Anything above this is treated as corruption, not data: the
 *  largest plausible trace is bounded by the interpreter's step
 *  budget, far below 2^28 records per stream. */
constexpr std::uint32_t kMaxRecords = 1u << 28;
constexpr std::uint32_t kMaxThreads = 1u << 12;

std::uint32_t
checkedCount(obs::ByteReader &r, const char *what)
{
    const std::uint32_t n = r.u32();
    if (n > kMaxRecords) {
        throw std::runtime_error(
            std::string("trace: implausible ") + what + " count (" +
            std::to_string(n) + ")");
    }
    return n;
}

} // namespace

std::vector<Addr>
ExecTrace::fetchBlockPcs(int tid) const
{
    const ThreadTrace &t =
        threads.at(static_cast<std::size_t>(tid));
    std::vector<Addr> blocks;
    blocks.reserve(t.branches.size() + 1);
    blocks.push_back(entry);
    for (const BranchRec &b : t.branches) {
        // An untaken branch continues the current fetch block.
        if (b.next != b.pc + kInsnBytes)
            blocks.push_back(b.next);
    }
    return blocks;
}

void
ExecTrace::save(std::ostream &os) const
{
    obs::ByteWriter w(os);
    w.u64(kExecTraceMagic);
    w.u32(entry);
    w.u32(static_cast<std::uint32_t>(threads.size()));
    for (const ThreadTrace &t : threads) {
        w.u64(t.insns);
        w.u32(static_cast<std::uint32_t>(t.branches.size()));
        for (const BranchRec &b : t.branches) {
            w.u32(b.pc);
            w.u32(b.next);
        }
        w.u32(static_cast<std::uint32_t>(t.mems.size()));
        for (const MemRec &m : t.mems) {
            w.u32(m.pc);
            w.u32(m.addr);
        }
        w.u32(static_cast<std::uint32_t>(t.queue_pushes.size()));
        for (const QueueRec &q : t.queue_pushes) {
            w.u32(q.pc);
            w.u64(q.value);
        }
    }
}

ExecTrace
ExecTrace::load(std::istream &is)
{
    obs::ByteReader r(is);
    obs::expectU64(r, kExecTraceMagic, "execution-trace magic");

    ExecTrace trace;
    trace.entry = r.u32();
    const std::uint32_t num_threads = r.u32();
    if (num_threads > kMaxThreads) {
        throw std::runtime_error(
            "trace: implausible thread count (" +
            std::to_string(num_threads) + ")");
    }
    trace.threads.resize(num_threads);
    for (ThreadTrace &t : trace.threads) {
        t.insns = r.u64();
        const std::uint32_t nb = checkedCount(r, "branch");
        t.branches.reserve(nb);
        for (std::uint32_t i = 0; i < nb; ++i) {
            BranchRec b;
            b.pc = r.u32();
            b.next = r.u32();
            t.branches.push_back(b);
        }
        const std::uint32_t nm = checkedCount(r, "memory");
        t.mems.reserve(nm);
        for (std::uint32_t i = 0; i < nm; ++i) {
            MemRec m;
            m.pc = r.u32();
            m.addr = r.u32();
            t.mems.push_back(m);
        }
        const std::uint32_t nq = checkedCount(r, "queue");
        t.queue_pushes.reserve(nq);
        for (std::uint32_t i = 0; i < nq; ++i) {
            QueueRec q;
            q.pc = r.u32();
            q.value = r.u64();
            t.queue_pushes.push_back(q);
        }
    }
    return trace;
}

void
StreamingRecorder::onBranch(int tid, Addr pc, Addr next)
{
    ring_.push(StreamRec{StreamRec::Kind::Branch,
                         static_cast<std::uint8_t>(tid), pc, next});
}

void
StreamingRecorder::onMem(int tid, Addr pc, Addr addr)
{
    ring_.push(StreamRec{StreamRec::Kind::Mem,
                         static_cast<std::uint8_t>(tid), pc, addr});
}

void
StreamingRecorder::onQueuePush(int tid, Addr pc, std::uint64_t value)
{
    ring_.push(StreamRec{StreamRec::Kind::QueuePush,
                         static_cast<std::uint8_t>(tid), pc, value});
}

void
drainStream(SpscRing<StreamRec> &ring, ExecTrace &out)
{
    StreamRec rec;
    while (ring.pop(rec)) {
        ThreadTrace &t = out.threads.at(rec.tid);
        switch (rec.kind) {
          case StreamRec::Kind::Branch:
            t.branches.push_back(BranchRec{
                rec.pc, static_cast<Addr>(rec.payload)});
            break;
          case StreamRec::Kind::Mem:
            t.mems.push_back(MemRec{
                rec.pc, static_cast<Addr>(rec.payload)});
            break;
          case StreamRec::Kind::QueuePush:
            t.queue_pushes.push_back(QueueRec{rec.pc, rec.payload});
            break;
        }
    }
}

} // namespace smtsim
