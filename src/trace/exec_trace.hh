/**
 * @file
 * Compact execution traces for trace-driven timing (`SMTTRC1`).
 *
 * The functional-first pipeline (docs/PERF.md) records, per thread,
 * exactly the data-dependent decisions a timing model cannot
 * recompute without architectural values:
 *
 *  - every *resolved* branch outcome (conditional branches and the
 *    register-indirect JR/JALR; J/JAL targets are static),
 *  - every memory-access effective address, in program order,
 *  - every queue-register push with its value (informational; the
 *    timing models re-derive queue occupancy structurally).
 *
 * Fetch-block PCs are fully determined by the entry point plus the
 * branch records, so they are served as a derived view
 * (fetchBlockPcs()) rather than stored.
 *
 * The on-disk format mirrors the SMTEVT1 event stream
 * (obs/sinks.hh): little-endian fixed-width records behind a u64
 * magic, written with obs::ByteWriter. load() throws
 * std::runtime_error on truncation, magic mismatch or implausible
 * counts instead of misparsing.
 */

#ifndef SMTSIM_TRACE_EXEC_TRACE_HH
#define SMTSIM_TRACE_EXEC_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <vector>

#include "base/types.hh"

namespace smtsim
{

/**
 * Thrown by a trace-driven timing run when the machine's execution
 * departs from the recorded trace (wrong pc on a record, stream
 * exhausted, or records left over at completion). Replay callers
 * catch this and fall back to execute mode — the trace-recording
 * contract (docs/PERF.md) says when it cannot happen.
 */
struct ReplayDivergence : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** "SMTTRC1\0", little-endian, same layout rule as kEventMagic. */
constexpr std::uint64_t kExecTraceMagic = 0x0031435254544d53ull;

/** One resolved control transfer (conditional or indirect). */
struct BranchRec
{
    Addr pc = 0;    ///< branch instruction address
    Addr next = 0;  ///< resolved next pc (pc+4 when untaken)

    bool operator==(const BranchRec &) const = default;
};

/** One memory access (loads and stores alike). */
struct MemRec
{
    Addr pc = 0;    ///< memory instruction address
    Addr addr = 0;  ///< effective address

    bool operator==(const MemRec &) const = default;
};

/** One queue-register push (raw 64-bit payload). */
struct QueueRec
{
    Addr pc = 0;
    std::uint64_t value = 0;

    bool operator==(const QueueRec &) const = default;
};

/** Per-thread record streams, each in program order. */
struct ThreadTrace
{
    std::vector<BranchRec> branches;
    std::vector<MemRec> mems;
    std::vector<QueueRec> queue_pushes;
    /** Instructions the thread executed (all of them, not just the
     *  recorded ones). */
    std::uint64_t insns = 0;

    bool operator==(const ThreadTrace &) const = default;
};

/** A full recorded execution: one ThreadTrace per logical
 *  processor, indexed by interpreter thread id. */
struct ExecTrace
{
    Addr entry = 0;
    std::vector<ThreadTrace> threads;

    /**
     * Fetch-block start addresses of one thread, derived from the
     * entry point and the recorded branch targets: the blocks a
     * fetch unit walking this trace would request.
     */
    std::vector<Addr> fetchBlockPcs(int tid) const;

    /** Serialize as SMTTRC1. */
    void save(std::ostream &os) const;

    /**
     * Parse an SMTTRC1 stream.
     * @throws std::runtime_error on bad magic, truncation or
     *         implausible record counts.
     */
    static ExecTrace load(std::istream &is);

    bool operator==(const ExecTrace &) const = default;
};

/**
 * Sink interface the fast engine records through; one callback per
 * record kind, invoked in per-thread program order.
 */
class TraceRecorder
{
  public:
    virtual ~TraceRecorder() = default;
    virtual void onBranch(int tid, Addr pc, Addr next) = 0;
    virtual void onMem(int tid, Addr pc, Addr addr) = 0;
    virtual void onQueuePush(int tid, Addr pc,
                             std::uint64_t value) = 0;
};

/** Recorder that assembles an ExecTrace in memory. */
class TraceBuilder final : public TraceRecorder
{
  public:
    explicit TraceBuilder(int num_threads)
    {
        trace_.threads.resize(
            static_cast<std::size_t>(num_threads));
    }

    void
    onBranch(int tid, Addr pc, Addr next) override
    {
        trace_.threads[static_cast<std::size_t>(tid)]
            .branches.push_back(BranchRec{pc, next});
    }

    void
    onMem(int tid, Addr pc, Addr addr) override
    {
        trace_.threads[static_cast<std::size_t>(tid)]
            .mems.push_back(MemRec{pc, addr});
    }

    void
    onQueuePush(int tid, Addr pc, std::uint64_t value) override
    {
        trace_.threads[static_cast<std::size_t>(tid)]
            .queue_pushes.push_back(QueueRec{pc, value});
    }

    /** The assembled trace (entry/insns filled by the caller). */
    ExecTrace &trace() { return trace_; }

  private:
    ExecTrace trace_;
};

/** One record in flight between producer and consumer threads. */
struct StreamRec
{
    enum class Kind : std::uint8_t { Branch, Mem, QueuePush };
    Kind kind = Kind::Branch;
    std::uint8_t tid = 0;
    Addr pc = 0;
    std::uint64_t payload = 0;  ///< next pc / address / value
};

template <typename T>
class SpscRing;

/** Recorder that streams records into an SPSC ring (producer side
 *  of the two-thread pipeline). */
class StreamingRecorder final : public TraceRecorder
{
  public:
    explicit StreamingRecorder(SpscRing<StreamRec> &ring)
        : ring_(ring)
    {
    }

    void onBranch(int tid, Addr pc, Addr next) override;
    void onMem(int tid, Addr pc, Addr addr) override;
    void onQueuePush(int tid, Addr pc,
                     std::uint64_t value) override;

  private:
    SpscRing<StreamRec> &ring_;
};

/**
 * Consumer side: drain @p ring until it is closed and empty,
 * appending records into @p out (whose thread vector must already
 * be sized). Runs on its own host thread in the pipeline.
 */
void drainStream(SpscRing<StreamRec> &ring, ExecTrace &out);

} // namespace smtsim

#endif // SMTSIM_TRACE_EXEC_TRACE_HH
