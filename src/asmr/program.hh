/**
 * @file
 * An assembled program image: text, data, entry point, symbols.
 */

#ifndef SMTSIM_ASMR_PROGRAM_HH
#define SMTSIM_ASMR_PROGRAM_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/insn.hh"

namespace smtsim
{

class MainMemory;

/** Default segment placement used by the assembler. */
constexpr Addr kDefaultTextBase = 0x00001000;
constexpr Addr kDefaultDataBase = 0x00100000;

/**
 * Source position of an assembled instruction. line is 1-based
 * (0 = unknown, e.g. a programmatically built Program); col is the
 * 1-based column of the statement's mnemonic.
 */
struct SrcLoc
{
    std::uint32_t line = 0;
    std::uint32_t col = 0;

    bool valid() const { return line != 0; }
    bool operator==(const SrcLoc &other) const = default;
};

/**
 * A fully linked program image produced by the assembler (or built
 * programmatically by the schedulers).
 */
struct Program
{
    Addr text_base = kDefaultTextBase;
    std::vector<std::uint32_t> text;

    Addr data_base = kDefaultDataBase;
    std::vector<std::uint8_t> data;

    /** First instruction executed ("main" label if present). */
    Addr entry = kDefaultTextBase;

    /** Label name -> address. */
    std::map<std::string, Addr> symbols;

    /**
     * Per-text-word source positions, parallel to @c text. Filled by
     * the assembler; empty for programmatically built or
     * deserialized images (diagnostics then fall back to the pc).
     */
    std::vector<SrcLoc> text_locs;

    /** Source position of the instruction at @p addr ({0,0} when
     *  unknown or out of range). */
    SrcLoc locAt(Addr addr) const;

    /** Address of a required symbol; throws FatalError if missing. */
    Addr symbol(const std::string &name) const;

    /** Copy text and data into @p mem. */
    void loadInto(MainMemory &mem) const;

    /** Address one past the last text word. */
    Addr
    textEnd() const
    {
        return text_base +
               static_cast<Addr>(text.size()) * kInsnBytes;
    }

    /** Decode the text word holding @p addr. */
    Insn insnAt(Addr addr) const;

    /** Bounds/alignment check shared with PredecodedText. */
    bool
    holdsInsn(Addr addr) const
    {
        return addr >= text_base && addr < textEnd() &&
               (addr - text_base) % kInsnBytes == 0;
    }

    /**
     * Serialize to / deserialize from a simple binary object
     * format (magic "SMTP"), preserving segments, the entry point
     * and the symbol table. load() throws FatalError on corrupt
     * input.
     */
    void save(std::ostream &os) const;
    static Program load(std::istream &is);
};

/**
 * Decoded view of a program's text segment.
 *
 * Program::insnAt runs the full decoder on every call, which is
 * fine for cold paths (disassembly, trap re-decode) but far too
 * expensive once per dynamic fetch. Engines build one of these at
 * construction: the whole text segment is decoded exactly once and
 * the dynamic path becomes a bounds-checked array index. at() keeps
 * insnAt's fatal-on-stray-fetch contract bit for bit.
 */
class PredecodedText
{
  public:
    PredecodedText() = default;
    explicit PredecodedText(const Program &prog);

    /** Decoded instruction at @p addr; fatal outside the text
     *  segment (same contract as Program::insnAt). */
    const Insn &
    at(Addr addr) const
    {
        // One unsigned compare covers addr < base_ too (wraps big).
        const Addr off = addr - base_;
        if (off >= size_bytes_ || off % kInsnBytes != 0)
            badFetch(addr);
        return insns_[off / kInsnBytes];
    }

    std::size_t size() const { return insns_.size(); }

  private:
    [[noreturn]] void badFetch(Addr addr) const;

    Addr base_ = 0;
    Addr size_bytes_ = 0;
    std::vector<Insn> insns_;
};

} // namespace smtsim

#endif // SMTSIM_ASMR_PROGRAM_HH
