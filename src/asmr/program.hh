/**
 * @file
 * An assembled program image: text, data, entry point, symbols.
 */

#ifndef SMTSIM_ASMR_PROGRAM_HH
#define SMTSIM_ASMR_PROGRAM_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/insn.hh"

namespace smtsim
{

class MainMemory;

/** Default segment placement used by the assembler. */
constexpr Addr kDefaultTextBase = 0x00001000;
constexpr Addr kDefaultDataBase = 0x00100000;

/**
 * A fully linked program image produced by the assembler (or built
 * programmatically by the schedulers).
 */
struct Program
{
    Addr text_base = kDefaultTextBase;
    std::vector<std::uint32_t> text;

    Addr data_base = kDefaultDataBase;
    std::vector<std::uint8_t> data;

    /** First instruction executed ("main" label if present). */
    Addr entry = kDefaultTextBase;

    /** Label name -> address. */
    std::map<std::string, Addr> symbols;

    /** Address of a required symbol; throws FatalError if missing. */
    Addr symbol(const std::string &name) const;

    /** Copy text and data into @p mem. */
    void loadInto(MainMemory &mem) const;

    /** Address one past the last text word. */
    Addr
    textEnd() const
    {
        return text_base +
               static_cast<Addr>(text.size()) * kInsnBytes;
    }

    /** Decode the text word holding @p addr. */
    Insn insnAt(Addr addr) const;

    /**
     * Serialize to / deserialize from a simple binary object
     * format (magic "SMTP"), preserving segments, the entry point
     * and the symbol table. load() throws FatalError on corrupt
     * input.
     */
    void save(std::ostream &os) const;
    static Program load(std::istream &is);
};

} // namespace smtsim

#endif // SMTSIM_ASMR_PROGRAM_HH
