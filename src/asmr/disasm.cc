#include "asmr/disasm.hh"

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "base/logging.hh"
#include "isa/insn.hh"

namespace smtsim
{

namespace
{

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

/** Branch target address encoded by a BR1/BR2 instruction at @p pc. */
Addr
branchTarget(Addr pc, const Insn &insn)
{
    return static_cast<Addr>(static_cast<std::int64_t>(pc) +
                             kInsnBytes +
                             static_cast<std::int64_t>(insn.imm) *
                                 kInsnBytes);
}

/** Jump target address encoded by a JF instruction. */
Addr
jumpTarget(const Insn &insn)
{
    return static_cast<Addr>(
               static_cast<std::uint32_t>(insn.imm))
           << 2;
}

bool
isControlTransfer(Format f)
{
    return f == Format::BR1 || f == Format::BR2 || f == Format::JF;
}

} // namespace

std::string
programToAsm(const Program &prog)
{
    if (prog.text_base != kDefaultTextBase ||
        prog.data_base != kDefaultDataBase) {
        fatal("programToAsm: only the default segment bases are "
              "expressible (text ",
              hexAddr(prog.text_base), ", data ",
              hexAddr(prog.data_base), ")");
    }

    const Addr text_end = prog.textEnd();
    const Addr data_end =
        prog.data_base + static_cast<Addr>(prog.data.size());

    // Partition the symbol table: labels we can place in the text
    // stream, labels we can place in the data stream, and everything
    // else (constants, odd addresses) that must travel as .equ.
    std::multimap<Addr, std::string> text_labels, data_labels;
    std::vector<std::pair<std::string, Addr>> equs;
    for (const auto &[name, addr] : prog.symbols) {
        if (prog.holdsInsn(addr) ||
            (addr == text_end && addr > prog.text_base)) {
            text_labels.emplace(addr, name);
        } else if (addr >= prog.data_base && addr <= data_end) {
            data_labels.emplace(addr, name);
        } else {
            equs.emplace_back(name, addr);
        }
    }

    // Entry point: the assembler derives it from the "main" symbol
    // (or defaults to text_base), so the image's entry must agree.
    if (auto it = prog.symbols.find("main");
        it != prog.symbols.end()) {
        if (it->second != prog.entry) {
            fatal("programToAsm: \"main\" symbol at ",
                  hexAddr(it->second),
                  " disagrees with the entry point ",
                  hexAddr(prog.entry));
        }
    } else if (prog.entry != prog.text_base) {
        if (!prog.holdsInsn(prog.entry)) {
            fatal("programToAsm: entry ", hexAddr(prog.entry),
                  " is outside the text segment");
        }
        text_labels.emplace(prog.entry, "main");
    }

    // Decode everything up front and synthesize labels for
    // control-flow targets that have none (disassemble() prints raw
    // offsets, which the assembler does not accept).
    std::vector<Insn> insns;
    insns.reserve(prog.text.size());
    std::map<Addr, std::string> synth;
    for (std::size_t i = 0; i < prog.text.size(); ++i) {
        const Addr pc =
            prog.text_base + static_cast<Addr>(i) * kInsnBytes;
        insns.push_back(decode(prog.text[i]));
        const Insn &insn = insns.back();
        const Format f = opMeta(insn.op).format;
        if (!isControlTransfer(f))
            continue;
        const Addr target = f == Format::JF ? jumpTarget(insn)
                                            : branchTarget(pc, insn);
        if (prog.holdsInsn(target) && !text_labels.count(target))
            synth.emplace(target, "");
    }
    for (auto &[addr, name] : synth) {
        std::string candidate = "L_" + hexAddr(addr).substr(2);
        while (prog.symbols.count(candidate))
            candidate += "_";
        name = candidate;
    }

    auto targetExpr = [&](Addr target) -> std::string {
        if (auto it = synth.find(target); it != synth.end())
            return it->second;
        auto range = text_labels.equal_range(target);
        if (range.first != range.second)
            return range.first->second;
        return hexAddr(target);     // out-of-text absolute target
    };

    std::ostringstream os;
    for (const auto &[name, value] : equs)
        os << "        .equ " << name << ", " << hexAddr(value)
           << "\n";

    os << "        .text\n";
    for (std::size_t i = 0; i < prog.text.size(); ++i) {
        const Addr pc =
            prog.text_base + static_cast<Addr>(i) * kInsnBytes;
        auto range = text_labels.equal_range(pc);
        for (auto it = range.first; it != range.second; ++it)
            os << it->second << ":\n";
        if (auto it = synth.find(pc); it != synth.end())
            os << it->second << ":\n";

        const Insn &insn = insns[i];
        const Format f = opMeta(insn.op).format;
        os << "        ";
        if (f == Format::BR2) {
            os << opMeta(insn.op).mnemonic << " r"
               << static_cast<int>(insn.rs) << ", r"
               << static_cast<int>(insn.rt) << ", "
               << targetExpr(branchTarget(pc, insn));
        } else if (f == Format::BR1) {
            os << opMeta(insn.op).mnemonic << " r"
               << static_cast<int>(insn.rs) << ", "
               << targetExpr(branchTarget(pc, insn));
        } else if (f == Format::JF) {
            os << opMeta(insn.op).mnemonic << " "
               << targetExpr(jumpTarget(insn));
        } else {
            os << disassemble(insn);
        }
        if (const SrcLoc loc = prog.locAt(pc); loc.valid())
            os << "    # " << loc.line << ":" << loc.col;
        os << "\n";
    }
    {   // labels sitting one past the last instruction
        auto range = text_labels.equal_range(text_end);
        for (auto it = range.first; it != range.second; ++it)
            os << it->second << ":\n";
    }

    if (prog.data.empty() && data_labels.empty())
        return os.str();

    os << "        .data\n";
    std::set<Addr> boundaries;
    for (const auto &[addr, name] : data_labels)
        boundaries.insert(addr);

    const std::vector<std::uint8_t> &d = prog.data;
    std::size_t i = 0;
    auto emitLabels = [&](Addr addr) {
        auto range = data_labels.equal_range(addr);
        for (auto it = range.first; it != range.second; ++it)
            os << it->second << ":\n";
    };
    while (i < d.size()) {
        const Addr addr = prog.data_base + static_cast<Addr>(i);
        emitLabels(addr);
        // The segment runs to the next label (labels force directive
        // boundaries because there is no sub-word data directive).
        auto next = boundaries.upper_bound(addr);
        std::size_t seg_end =
            next == boundaries.end()
                ? d.size()
                : static_cast<std::size_t>(*next - prog.data_base);
        // Compress the all-zero tail of the segment into .space.
        std::size_t last_nonzero = i;
        for (std::size_t j = i; j < seg_end; ++j) {
            if (d[j] != 0)
                last_nonzero = j + 1;
        }
        while (i < seg_end) {
            if (i >= last_nonzero) {
                os << "        .space " << (seg_end - i) << "\n";
                i = seg_end;
                break;
            }
            if (seg_end - i < 4) {
                fatal("programToAsm: non-zero data tail of ",
                      seg_end - i,
                      " bytes is not expressible with .word");
            }
            const std::uint32_t w =
                static_cast<std::uint32_t>(d[i]) |
                (static_cast<std::uint32_t>(d[i + 1]) << 8) |
                (static_cast<std::uint32_t>(d[i + 2]) << 16) |
                (static_cast<std::uint32_t>(d[i + 3]) << 24);
            os << "        .word " << w << "\n";
            i += 4;
        }
    }
    emitLabels(data_end);
    return os.str();
}

} // namespace smtsim
