#include "program.hh"

#include <istream>
#include <ostream>

#include "base/logging.hh"
#include "mem/memory.hh"

namespace smtsim
{

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '", name, "'");
    return it->second;
}

void
Program::loadInto(MainMemory &mem) const
{
    mem.loadWords(text_base, text);
    mem.loadBytes(data_base, data);
}

SrcLoc
Program::locAt(Addr addr) const
{
    if (!holdsInsn(addr))
        return {};
    const std::size_t i = (addr - text_base) / kInsnBytes;
    return i < text_locs.size() ? text_locs[i] : SrcLoc{};
}

Insn
Program::insnAt(Addr addr) const
{
    if (!holdsInsn(addr))
        fatal("instruction fetch outside text segment: ", addr);
    return decode(text[(addr - text_base) / kInsnBytes]);
}

PredecodedText::PredecodedText(const Program &prog)
    : base_(prog.text_base),
      size_bytes_(static_cast<Addr>(prog.text.size()) * kInsnBytes)
{
    insns_.reserve(prog.text.size());
    for (std::uint32_t word : prog.text)
        insns_.push_back(decode(word));
}

void
PredecodedText::badFetch(Addr addr) const
{
    fatal("instruction fetch outside text segment: ", addr);
}

namespace
{

constexpr std::uint32_t kMagic = 0x504d5453;    // "STMP" LE
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
T
get(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        fatal("program load: truncated input");
    return v;
}

} // namespace

void
Program::save(std::ostream &os) const
{
    put(os, kMagic);
    put(os, kVersion);
    put(os, text_base);
    put(os, static_cast<std::uint32_t>(text.size()));
    for (std::uint32_t word : text)
        put(os, word);
    put(os, data_base);
    put(os, static_cast<std::uint32_t>(data.size()));
    if (!data.empty()) {
        os.write(reinterpret_cast<const char *>(data.data()),
                 static_cast<std::streamsize>(data.size()));
    }
    put(os, entry);
    put(os, static_cast<std::uint32_t>(symbols.size()));
    for (const auto &[name, value] : symbols) {
        put(os, static_cast<std::uint32_t>(name.size()));
        os.write(name.data(),
                 static_cast<std::streamsize>(name.size()));
        put(os, value);
    }
}

Program
Program::load(std::istream &is)
{
    if (get<std::uint32_t>(is) != kMagic)
        fatal("program load: bad magic");
    if (get<std::uint32_t>(is) != kVersion)
        fatal("program load: unsupported version");

    Program prog;
    prog.text_base = get<Addr>(is);
    const std::uint32_t nwords = get<std::uint32_t>(is);
    prog.text.reserve(nwords);
    for (std::uint32_t i = 0; i < nwords; ++i)
        prog.text.push_back(get<std::uint32_t>(is));

    prog.data_base = get<Addr>(is);
    const std::uint32_t nbytes = get<std::uint32_t>(is);
    prog.data.resize(nbytes);
    if (nbytes > 0) {
        is.read(reinterpret_cast<char *>(prog.data.data()),
                nbytes);
        if (!is)
            fatal("program load: truncated data segment");
    }

    prog.entry = get<Addr>(is);
    const std::uint32_t nsyms = get<std::uint32_t>(is);
    for (std::uint32_t i = 0; i < nsyms; ++i) {
        const std::uint32_t len = get<std::uint32_t>(is);
        if (len > 4096)
            fatal("program load: unreasonable symbol length");
        std::string name(len, '\0');
        is.read(name.data(), len);
        if (!is)
            fatal("program load: truncated symbol table");
        prog.symbols[name] = get<Addr>(is);
    }
    return prog;
}

} // namespace smtsim
