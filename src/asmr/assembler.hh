/**
 * @file
 * Two-pass assembler for the smtsim ISA.
 *
 * Syntax overview:
 *
 *     # comment                 ; also a comment
 *             .text             # switch to text segment
 *     main:   la   r1, table    # pseudo: lui + ori
 *             li   r2, 100
 *     loop:   lw   r3, 0(r1)
 *             addi r1, r1, 4
 *             addi r2, r2, -1
 *             bgtz r2, loop
 *             halt
 *             .data
 *     table:  .word 1, 2, 3
 *     vec:    .float 1.5, -2.25 # 8-byte doubles
 *             .space 64
 *             .align 8
 *
 * Expressions accept integers (decimal / 0x hex), symbols, sym+off,
 * %hi(expr) and %lo(expr). Pseudo-instructions: la, li, mv, b.
 */

#ifndef SMTSIM_ASMR_ASSEMBLER_HH
#define SMTSIM_ASMR_ASSEMBLER_HH

#include <string>
#include <string_view>

#include "asmr/program.hh"

namespace smtsim
{

/** Assembler configuration. */
struct AsmOptions
{
    Addr text_base = kDefaultTextBase;
    Addr data_base = kDefaultDataBase;
};

/**
 * Assemble @p source into a Program. Throws FatalError with a
 * line-numbered message on the first error.
 */
Program assemble(std::string_view source, const AsmOptions &opts = {});

} // namespace smtsim

#endif // SMTSIM_ASMR_ASSEMBLER_HH
