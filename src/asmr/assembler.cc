#include "assembler.hh"

#include <bit>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "base/bitops.hh"
#include "base/logging.hh"
#include "base/strutil.hh"

namespace smtsim
{

namespace
{

enum class Segment { Text, Data };

/** One parsed source statement (after label extraction). */
struct Statement
{
    int line = 0;
    int col = 0;                // 1-based column of the mnemonic
    std::string label;          // optional, bound at this address
    std::string mnemonic;       // lower-case; empty for label-only
    std::vector<std::string> operands;
    std::string raw;            // operand text before splitting
    Segment segment = Segment::Text;
    Addr addr = 0;              // assigned in pass 1
};

/** Mnemonic -> Op map built from the static metadata. */
const std::map<std::string, Op> &
mnemonicMap()
{
    static const std::map<std::string, Op> map = [] {
        std::map<std::string, Op> m;
        for (int i = 0; i < kNumOps; ++i) {
            const Op op = static_cast<Op>(i);
            m[opMeta(op).mnemonic] = op;
        }
        return m;
    }();
    return map;
}

class Assembler
{
  public:
    Assembler(std::string_view source, const AsmOptions &opts)
        : opts_(opts), source_(source)
    {}

    Program run();

  private:
    [[noreturn]] void
    err(int line, const std::string &msg) const
    {
        fatal("asm line ", line, ": ", msg);
    }

    void parseLines();
    void pass1();
    void pass2(Program &prog);

    /** Size in text words occupied by an instruction statement. */
    int insnWords(const Statement &st) const;

    /** Bytes occupied by a data directive (pass 1 view). */
    Addr dataBytes(const Statement &st, Addr at);

    std::int64_t evalExpr(const Statement &st,
                          std::string_view text) const;
    std::vector<std::uint8_t>
    parseStringLiteral(const Statement &st) const;
    RegIndex parseReg(const Statement &st, std::string_view text,
                      char kind) const;
    void parseMemOperand(const Statement &st, std::string_view text,
                         Insn &insn) const;
    std::int32_t branchOffset(const Statement &st, Addr pc,
                              std::string_view target) const;

    void emitInsn(const Statement &st, Program &prog);
    void emitData(const Statement &st, Program &prog, Addr &dloc);

    AsmOptions opts_;
    std::string_view source_;
    std::vector<Statement> statements_;
    std::map<std::string, std::int64_t> symbols_;
};

void
Assembler::parseLines()
{
    int line_no = 0;
    size_t pos = 0;
    Segment segment = Segment::Text;

    while (pos <= source_.size()) {
        size_t eol = source_.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = source_.size();
        std::string line(source_.substr(pos, eol - pos));
        pos = eol + 1;
        ++line_no;

        // Strip comments (respecting string literals).
        bool in_quote = false;
        for (size_t c = 0; c < line.size(); ++c) {
            if (line[c] == '"' &&
                (c == 0 || line[c - 1] != '\\')) {
                in_quote = !in_quote;
            } else if (!in_quote &&
                       (line[c] == '#' || line[c] == ';')) {
                line.resize(c);
                break;
            }
        }
        std::string text = trim(line);
        if (text.empty())
            continue;

        Statement st;
        st.line = line_no;
        // Column where the statement (and, absent a label, the
        // mnemonic) starts in the original line.
        size_t col0 = line.find_first_not_of(" \t");

        // Extract an optional leading label.
        size_t colon = text.find(':');
        if (colon != std::string::npos) {
            std::string head = trim(text.substr(0, colon));
            bool is_label = !head.empty();
            for (char c : head) {
                if (!std::isalnum(static_cast<unsigned char>(c)) &&
                    c != '_' && c != '.') {
                    is_label = false;
                }
            }
            if (is_label) {
                st.label = head;
                const std::string rest = text.substr(colon + 1);
                const size_t skip = rest.find_first_not_of(" \t");
                col0 += colon + 1 +
                        (skip == std::string::npos ? rest.size()
                                                   : skip);
                text = trim(rest);
            }
        }
        st.col = static_cast<int>(col0) + 1;

        if (!text.empty()) {
            size_t sp = text.find_first_of(" \t");
            st.mnemonic = toLower(
                sp == std::string::npos ? text : text.substr(0, sp));
            if (sp != std::string::npos) {
                st.raw = trim(text.substr(sp + 1));
                for (std::string &operand :
                     split(st.raw, ',')) {
                    st.operands.push_back(trim(operand));
                }
            }
        }

        // Segment directives take effect immediately so labels in
        // the same statement list bind into the right segment.
        if (st.mnemonic == ".text")
            segment = Segment::Text;
        else if (st.mnemonic == ".data")
            segment = Segment::Data;
        st.segment = segment;

        if (!st.mnemonic.empty() || !st.label.empty())
            statements_.push_back(std::move(st));
    }
}

int
Assembler::insnWords(const Statement &st) const
{
    if (st.mnemonic == "la" || st.mnemonic == "li")
        return 2;
    if (st.mnemonic == "mv" || st.mnemonic == "b")
        return 1;
    if (mnemonicMap().count(st.mnemonic))
        return 1;
    err(st.line, "unknown mnemonic '" + st.mnemonic + "'");
}

Addr
Assembler::dataBytes(const Statement &st, Addr at)
{
    if (st.mnemonic == ".word")
        return static_cast<Addr>(4 * st.operands.size());
    if (st.mnemonic == ".float")
        return static_cast<Addr>(8 * st.operands.size());
    if (st.mnemonic == ".space") {
        if (st.operands.size() != 1)
            err(st.line, ".space needs one operand");
        return static_cast<Addr>(evalExpr(st, st.operands[0]));
    }
    if (st.mnemonic == ".align") {
        if (st.operands.size() != 1)
            err(st.line, ".align needs one operand");
        const Addr a =
            static_cast<Addr>(evalExpr(st, st.operands[0]));
        if (a == 0 || (a & (a - 1)) != 0)
            err(st.line, ".align operand must be a power of two");
        return (a - at % a) % a;
    }
    if (st.mnemonic == ".ascii")
        return static_cast<Addr>(parseStringLiteral(st).size());
    if (st.mnemonic == ".asciiz") {
        return static_cast<Addr>(parseStringLiteral(st).size()) +
               1;
    }
    err(st.line, "unknown data directive '" + st.mnemonic + "'");
}

void
Assembler::pass1()
{
    Addr tloc = opts_.text_base;
    Addr dloc = opts_.data_base;

    for (Statement &st : statements_) {
        const bool in_text = st.segment == Segment::Text;
        Addr &loc = in_text ? tloc : dloc;

        if (!st.label.empty()) {
            if (symbols_.count(st.label))
                err(st.line, "duplicate label '" + st.label + "'");
            symbols_[st.label] = loc;
        }
        st.addr = loc;

        if (st.mnemonic.empty() || st.mnemonic == ".text" ||
            st.mnemonic == ".data") {
            continue;
        }
        if (st.mnemonic == ".equ") {
            if (st.operands.size() != 2)
                err(st.line, ".equ needs name, value");
            symbols_[st.operands[0]] = evalExpr(st, st.operands[1]);
            continue;
        }
        if (st.mnemonic[0] == '.') {
            if (in_text)
                err(st.line, "data directive in .text segment");
            loc += dataBytes(st, loc);
        } else {
            if (!in_text)
                err(st.line, "instruction in .data segment");
            loc += static_cast<Addr>(insnWords(st)) * kInsnBytes;
        }
    }
}

std::vector<std::uint8_t>
Assembler::parseStringLiteral(const Statement &st) const
{
    const std::string &raw = st.raw;
    const size_t open = raw.find('"');
    const size_t close = raw.rfind('"');
    if (open == std::string::npos || close <= open)
        err(st.line, ".ascii needs a quoted string");

    std::vector<std::uint8_t> bytes;
    for (size_t i = open + 1; i < close; ++i) {
        char c = raw[i];
        if (c == '\\' && i + 1 < close) {
            ++i;
            switch (raw[i]) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case 'r': c = '\r'; break;
              case '0': c = '\0'; break;
              case '\\': c = '\\'; break;
              case '"': c = '"'; break;
              default:
                err(st.line, "unknown escape in string literal");
            }
        }
        bytes.push_back(static_cast<std::uint8_t>(c));
    }
    return bytes;
}

std::int64_t
Assembler::evalExpr(const Statement &st, std::string_view text) const
{
    // Tiny recursive-descent parser: sum of unary terms.
    size_t pos = 0;
    auto skip_ws = [&] {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    };

    std::function<std::int64_t()> parse_prim =
        [&]() -> std::int64_t {
        skip_ws();
        if (pos >= text.size())
            err(st.line, "empty expression operand");
        if (text[pos] == '-') {
            ++pos;
            return -parse_prim();
        }
        if (text[pos] == '(') {
            ++pos;
            std::int64_t v = 0;
            // Parse a nested expression up to the matching ')'.
            v = parse_prim();
            skip_ws();
            while (pos < text.size() && text[pos] != ')') {
                char op = text[pos];
                if (op != '+' && op != '-' && op != '*' &&
                    op != '/') {
                    err(st.line, "bad expression");
                }
                ++pos;
                std::int64_t rhs = parse_prim();
                switch (op) {
                  case '+': v = v + rhs; break;
                  case '-': v = v - rhs; break;
                  case '*': v = v * rhs; break;
                  case '/':
                    if (rhs == 0)
                        err(st.line, "division by zero");
                    v = v / rhs;
                    break;
                }
                skip_ws();
            }
            if (pos >= text.size())
                err(st.line, "missing ')'");
            ++pos;
            return v;
        }
        if (text[pos] == '%') {
            const bool hi = text.substr(pos, 3) == "%hi";
            const bool lo = text.substr(pos, 3) == "%lo";
            if (!hi && !lo)
                err(st.line, "unknown % operator");
            pos += 3;
            skip_ws();
            if (pos >= text.size() || text[pos] != '(')
                err(st.line, "%hi/%lo need (expr)");
            std::int64_t inner = parse_prim();  // consumes (...)
            const std::uint32_t v =
                static_cast<std::uint32_t>(inner);
            return hi ? (v >> 16) & 0xffff : v & 0xffff;
        }
        if (std::isdigit(static_cast<unsigned char>(text[pos]))) {
            size_t consumed = 0;
            const std::string rest(text.substr(pos));
            const std::int64_t v = std::stoll(rest, &consumed, 0);
            pos += consumed;
            return v;
        }
        // Symbol.
        size_t start = pos;
        while (pos < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '_' || text[pos] == '.')) {
            ++pos;
        }
        if (start == pos)
            err(st.line, "bad expression token");
        const std::string name(text.substr(start, pos - start));
        auto it = symbols_.find(name);
        if (it == symbols_.end())
            err(st.line, "undefined symbol '" + name + "'");
        return it->second;
    };

    // term := prim (('*' | '/') prim)*
    std::function<std::int64_t()> parse_term =
        [&]() -> std::int64_t {
        std::int64_t v = parse_prim();
        skip_ws();
        while (pos < text.size() &&
               (text[pos] == '*' || text[pos] == '/')) {
            const char op = text[pos];
            ++pos;
            const std::int64_t rhs = parse_prim();
            if (op == '*') {
                v = v * rhs;
            } else {
                if (rhs == 0)
                    err(st.line, "division by zero");
                v = v / rhs;
            }
            skip_ws();
        }
        return v;
    };

    std::int64_t value = parse_term();
    skip_ws();
    while (pos < text.size()) {
        char op = text[pos];
        if (op != '+' && op != '-')
            err(st.line, "trailing junk in expression");
        ++pos;
        std::int64_t rhs = parse_term();
        value = op == '+' ? value + rhs : value - rhs;
        skip_ws();
    }
    return value;
}

RegIndex
Assembler::parseReg(const Statement &st, std::string_view text,
                    char kind) const
{
    const std::string t = toLower(trim(text));
    if (t.size() < 2 || t[0] != kind)
        err(st.line, "expected '" + std::string(1, kind) +
                         "' register, got '" + t + "'");
    char *end = nullptr;
    const long idx = std::strtol(t.c_str() + 1, &end, 10);
    if (*end != '\0' || idx < 0 || idx >= kNumRegs)
        err(st.line, "bad register '" + t + "'");
    return static_cast<RegIndex>(idx);
}

void
Assembler::parseMemOperand(const Statement &st, std::string_view text,
                           Insn &insn) const
{
    const size_t open = text.rfind('(');
    const size_t close = text.rfind(')');
    if (open == std::string_view::npos ||
        close == std::string_view::npos || close < open) {
        err(st.line, "expected offset(reg) operand");
    }
    const std::string off(trim(text.substr(0, open)));
    insn.rs = parseReg(
        st, text.substr(open + 1, close - open - 1), 'r');
    const std::int64_t value = off.empty() ? 0 : evalExpr(st, off);
    if (!fitsSigned(value, 16))
        err(st.line, "memory offset out of range");
    insn.imm = static_cast<std::int32_t>(value);
}

std::int32_t
Assembler::branchOffset(const Statement &st, Addr pc,
                        std::string_view target) const
{
    const std::int64_t dest = evalExpr(st, target);
    const std::int64_t delta =
        (dest - (static_cast<std::int64_t>(pc) + kInsnBytes)) /
        kInsnBytes;
    if (!fitsSigned(delta, 16))
        err(st.line, "branch target out of range");
    return static_cast<std::int32_t>(delta);
}

void
Assembler::emitInsn(const Statement &st, Program &prog)
{
    const Addr pc = st.addr;
    auto push = [&](const Insn &insn) {
        prog.text.push_back(encode(insn));
        prog.text_locs.push_back(
            {static_cast<std::uint32_t>(st.line),
             static_cast<std::uint32_t>(st.col)});
    };
    auto need = [&](size_t n) {
        if (st.operands.size() != n)
            err(st.line, "operand count mismatch for '" +
                             st.mnemonic + "'");
    };

    // Pseudo-instructions first.
    if (st.mnemonic == "la" || st.mnemonic == "li") {
        need(2);
        const RegIndex rt = parseReg(st, st.operands[0], 'r');
        const std::uint32_t value = static_cast<std::uint32_t>(
            evalExpr(st, st.operands[1]));
        Insn hi{Op::LUI, 0, 0, rt,
                static_cast<std::int32_t>(value >> 16)};
        Insn lo{Op::ORI, 0, rt, rt,
                static_cast<std::int32_t>(value & 0xffff)};
        push(hi);
        push(lo);
        return;
    }
    if (st.mnemonic == "mv") {
        need(2);
        Insn insn;
        insn.op = Op::ADD;
        insn.rd = parseReg(st, st.operands[0], 'r');
        insn.rs = parseReg(st, st.operands[1], 'r');
        insn.rt = 0;
        push(insn);
        return;
    }
    if (st.mnemonic == "b") {
        need(1);
        Insn insn;
        insn.op = Op::BEQ;
        insn.rs = 0;
        insn.rt = 0;
        insn.imm = branchOffset(st, pc, st.operands[0]);
        push(insn);
        return;
    }

    const Op op = mnemonicMap().at(st.mnemonic);
    Insn insn;
    insn.op = op;

    switch (opMeta(op).format) {
      case Format::R3:
        need(3);
        insn.rd = parseReg(st, st.operands[0], 'r');
        insn.rs = parseReg(st, st.operands[1], 'r');
        insn.rt = parseReg(st, st.operands[2], 'r');
        break;
      case Format::R2:
        need(2);
        insn.rd = parseReg(st, st.operands[0], 'r');
        insn.rs = parseReg(st, st.operands[1], 'r');
        break;
      case Format::SHI: {
        need(3);
        insn.rd = parseReg(st, st.operands[0], 'r');
        insn.rs = parseReg(st, st.operands[1], 'r');
        const std::int64_t sh = evalExpr(st, st.operands[2]);
        if (sh < 0 || sh > 31)
            err(st.line, "shift amount out of range");
        insn.imm = static_cast<std::int32_t>(sh);
        break;
      }
      case Format::I: {
        need(3);
        insn.rt = parseReg(st, st.operands[0], 'r');
        insn.rs = parseReg(st, st.operands[1], 'r');
        const std::int64_t v = evalExpr(st, st.operands[2]);
        const bool se = op == Op::ADDI || op == Op::SLTI;
        if (se ? !fitsSigned(v, 16)
               : !(fitsUnsigned(v, 16) || fitsSigned(v, 16))) {
            err(st.line, "immediate out of range");
        }
        insn.imm = static_cast<std::int32_t>(
            se ? v : (static_cast<std::uint32_t>(v) & 0xffff));
        break;
      }
      case Format::LUIF: {
        need(2);
        insn.rt = parseReg(st, st.operands[0], 'r');
        const std::int64_t v = evalExpr(st, st.operands[1]);
        if (!fitsUnsigned(v, 16))
            err(st.line, "lui immediate out of range");
        insn.imm = static_cast<std::int32_t>(v);
        break;
      }
      case Format::FR3:
        need(3);
        insn.rd = parseReg(st, st.operands[0], 'f');
        insn.rs = parseReg(st, st.operands[1], 'f');
        insn.rt = parseReg(st, st.operands[2], 'f');
        break;
      case Format::FR2:
        need(2);
        insn.rd = parseReg(st, st.operands[0], 'f');
        insn.rs = parseReg(st, st.operands[1], 'f');
        break;
      case Format::FCMP:
        need(3);
        insn.rd = parseReg(st, st.operands[0], 'r');
        insn.rs = parseReg(st, st.operands[1], 'f');
        insn.rt = parseReg(st, st.operands[2], 'f');
        break;
      case Format::ITOFF:
        need(2);
        insn.rd = parseReg(st, st.operands[0], 'f');
        insn.rs = parseReg(st, st.operands[1], 'r');
        break;
      case Format::FTOIF:
        need(2);
        insn.rd = parseReg(st, st.operands[0], 'r');
        insn.rs = parseReg(st, st.operands[1], 'f');
        break;
      case Format::MEM:
        need(2);
        insn.rt = parseReg(st, st.operands[0],
                           isFpFormatOp(op) ? 'f' : 'r');
        parseMemOperand(st, st.operands[1], insn);
        break;
      case Format::BR2:
        need(3);
        insn.rs = parseReg(st, st.operands[0], 'r');
        insn.rt = parseReg(st, st.operands[1], 'r');
        insn.imm = branchOffset(st, pc, st.operands[2]);
        break;
      case Format::BR1:
        need(2);
        insn.rs = parseReg(st, st.operands[0], 'r');
        insn.imm = branchOffset(st, pc, st.operands[1]);
        break;
      case Format::JF: {
        need(1);
        const std::int64_t dest = evalExpr(st, st.operands[0]);
        if (dest % kInsnBytes != 0)
            err(st.line, "jump target misaligned");
        insn.imm = static_cast<std::int32_t>(
            (static_cast<std::uint32_t>(dest) >> 2) & 0x03ffffff);
        break;
      }
      case Format::JRF:
        need(1);
        insn.rs = parseReg(st, st.operands[0], 'r');
        break;
      case Format::JALRF:
        need(2);
        insn.rd = parseReg(st, st.operands[0], 'r');
        insn.rs = parseReg(st, st.operands[1], 'r');
        break;
      case Format::THR0:
        need(0);
        break;
      case Format::THR1D:
        need(1);
        insn.rd = parseReg(st, st.operands[0], 'r');
        break;
      case Format::THR2: {
        need(2);
        const char kind = op == Op::QENF ? 'f' : 'r';
        insn.rs = parseReg(st, st.operands[0], kind);
        insn.rt = parseReg(st, st.operands[1], kind);
        break;
      }
      case Format::ROT: {
        need(2);
        const std::string mode = toLower(trim(st.operands[0]));
        if (mode == "implicit" || mode == "0")
            insn.rt = 0;
        else if (mode == "explicit" || mode == "1")
            insn.rt = 1;
        else
            err(st.line, "setrmode mode must be implicit/explicit");
        const std::int64_t interval = evalExpr(st, st.operands[1]);
        if (!fitsUnsigned(interval, 16))
            err(st.line, "rotation interval out of range");
        insn.imm = static_cast<std::int32_t>(interval);
        break;
      }
    }
    push(insn);
}

void
Assembler::emitData(const Statement &st, Program &prog, Addr &dloc)
{
    auto pad_to = [&](Addr target) {
        while (dloc < target) {
            prog.data.push_back(0);
            ++dloc;
        }
    };
    pad_to(st.addr);

    if (st.mnemonic == ".word") {
        for (const std::string &operand : st.operands) {
            const std::uint32_t v = static_cast<std::uint32_t>(
                evalExpr(st, operand));
            for (int i = 0; i < 4; ++i)
                prog.data.push_back(
                    static_cast<std::uint8_t>(v >> (8 * i)));
            dloc += 4;
        }
    } else if (st.mnemonic == ".float") {
        for (const std::string &operand : st.operands) {
            char *end = nullptr;
            const double d =
                std::strtod(trim(operand).c_str(), &end);
            const std::uint64_t bits =
                std::bit_cast<std::uint64_t>(d);
            for (int i = 0; i < 8; ++i)
                prog.data.push_back(
                    static_cast<std::uint8_t>(bits >> (8 * i)));
            dloc += 8;
        }
    } else if (st.mnemonic == ".ascii" ||
               st.mnemonic == ".asciiz") {
        for (std::uint8_t b : parseStringLiteral(st)) {
            prog.data.push_back(b);
            ++dloc;
        }
        if (st.mnemonic == ".asciiz") {
            prog.data.push_back(0);
            ++dloc;
        }
    } else if (st.mnemonic == ".space") {
        const Addr n =
            static_cast<Addr>(evalExpr(st, st.operands[0]));
        pad_to(dloc + n);
    } else if (st.mnemonic == ".align") {
        // Padding was already emitted by pad_to(st.addr) plus the
        // pass-1 size; nothing else to do.
        const Addr a =
            static_cast<Addr>(evalExpr(st, st.operands[0]));
        pad_to(st.addr + (a - st.addr % a) % a);
    } else {
        err(st.line, "unknown data directive");
    }
}

void
Assembler::pass2(Program &prog)
{
    prog.text_base = opts_.text_base;
    prog.data_base = opts_.data_base;

    Addr dloc = opts_.data_base;
    for (const Statement &st : statements_) {
        if (st.mnemonic.empty() || st.mnemonic == ".text" ||
            st.mnemonic == ".data" || st.mnemonic == ".equ") {
            continue;
        }
        if (st.segment == Segment::Text)
            emitInsn(st, prog);
        else
            emitData(st, prog, dloc);
    }

    for (const auto &[name, value] : symbols_)
        prog.symbols[name] = static_cast<Addr>(value);

    auto it = prog.symbols.find("main");
    prog.entry = it != prog.symbols.end() ? it->second
                                          : prog.text_base;
}

Program
Assembler::run()
{
    parseLines();
    pass1();
    Program prog;
    pass2(prog);
    return prog;
}

} // namespace

Program
assemble(std::string_view source, const AsmOptions &opts)
{
    return Assembler(source, opts).run();
}

} // namespace smtsim
