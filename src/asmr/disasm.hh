/**
 * @file
 * Program -> assembly round-trip serialization.
 *
 * Renders an assembled Program back into source the assembler
 * accepts, such that `assemble(programToAsm(p))` reproduces the same
 * text words, data bytes, entry point and symbols. Plain
 * disassembly is not enough for that: branch and jump operands print
 * as raw offsets/word indices while the assembler expects target
 * *expressions*, so this pass resolves every control-flow target to
 * a label (an existing symbol, or a synthesized `L_<addr>` one).
 */

#ifndef SMTSIM_ASMR_DISASM_HH
#define SMTSIM_ASMR_DISASM_HH

#include <string>

#include "asmr/program.hh"

namespace smtsim
{

/**
 * Serialize @p prog as assembly source.
 *
 * Throws FatalError for images this textual format cannot express:
 * a data segment whose trailing non-word-sized bytes are non-zero,
 * or a "main" symbol pointing anywhere but the entry.
 */
std::string programToAsm(const Program &prog);

} // namespace smtsim

#endif // SMTSIM_ASMR_DISASM_HH
