#include "fuzz/lintoracle.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/lint.hh"
#include "asmr/assembler.hh"
#include "base/random.hh"
#include "fuzz/generate.hh"
#include "fuzz/oracle.hh"

namespace smtsim::fuzz
{

namespace
{

/**
 * A wait-for cycle behind a statically dead seeder guard
 * (tid == nslot): the path-insensitive rules see a push-first path,
 * but no slot ever takes it, so every slot's first queue action is
 * a pop and the whole ring blocks.
 */
std::string
waitCycleText(Rng &rng)
{
    const int trip = 4 + static_cast<int>(rng.nextBelow(28));
    const int inc = 1 + static_cast<int>(rng.nextBelow(7));
    std::ostringstream oss;
    oss << "        .text\n"
        << "main:   qen  r20, r21\n"
        << "        fastfork\n"
        << "        tid  r10\n"
        << "        nslot r11\n"
        << "        addi r4, r0, " << trip << "\n"
        << "        beq  r10, r11, seed\n"
        << "loop:   add  r3, r20, r0\n"
        << "        addi r3, r3, " << inc << "\n"
        << "        addi r21, r3, 0\n"
        << "        addi r4, r4, -1\n"
        << "        bgtz r4, loop\n"
        << "        halt\n"
        << "seed:   addi r21, r0, " << inc << "\n"
        << "        j    loop\n";
    return oss.str();
}

/**
 * Rate-skewed ring: slot 0 and the followers push/pop different
 * per-iteration counts, so some link either starves (consumers ask
 * for two, receive one) or fills until its producer wedges
 * (producers push two, consumers drain one). The trip count is
 * large enough that the overrun variant exceeds the FIFO depth.
 */
std::string
rateSkewText(Rng &rng, bool overrun)
{
    const int trip = 8 + static_cast<int>(rng.nextBelow(24));
    const int inc = 1 + static_cast<int>(rng.nextBelow(5));
    // Slot 0 gets one role, the followers the other; which side
    // does the double traffic flips the starve/overrun direction.
    const char *one_pop =
        "        add  r3, r20, r0\n";
    const char *two_pops =
        "        add  r3, r20, r0\n"
        "        add  r5, r20, r0\n";
    std::ostringstream one_push, two_pushes;
    one_push << "        addi r21, r3, " << inc << "\n";
    two_pushes << "        addi r21, r3, " << inc << "\n"
               << "        addi r21, r3, " << inc + 1 << "\n";

    std::ostringstream oss;
    oss << "        .text\n"
        << "main:   qen  r20, r21\n"
        << "        fastfork\n"
        << "        tid  r10\n"
        << "        addi r21, r0, 1\n"     // seed one value
        << "        addi r4, r0, " << trip << "\n"
        << "loop:   bne  r10, r0, follow\n";
    if (overrun)
        oss << two_pops << one_push.str();
    else
        oss << one_pop << two_pushes.str();
    oss << "        j    latch\n"
        << "follow:";
    if (overrun)
        oss << one_pop << two_pushes.str();
    else
        oss << two_pops << one_push.str();
    oss << "latch:  addi r4, r4, -1\n"
        << "        bgtz r4, loop\n"
        << "        halt\n";
    return oss.str();
}

/** Spin wait on a zero-initialised flag word nothing ever stores. */
std::string
spinNoStoreText(Rng &rng)
{
    const int pad = 4 * static_cast<int>(rng.nextBelow(8));
    std::ostringstream oss;
    oss << "        .text\n"
        << "main:   fastfork\n"
        << "        la   r8, flag\n"
        << "spin:   lw   r9, " << pad << "(r8)\n"
        << "        beq  r9, r0, spin\n"
        << "        halt\n"
        << "        .data\n"
        << "flag:   .space " << pad + 4 << "\n";
    return oss.str();
}

/** Hang = deadlock trap or budget exhaustion; finishing cleanly is
 *  the one outcome an injected bug must never produce. */
bool
boundedRunHangs(const Program &prog, int slots,
                const OracleBudget &budget)
{
    RunConfig rc;
    rc.engine = Engine::Interp;
    rc.slots = slots;
    const EngineState st = runEngine(prog, rc, budget);
    return !st.finished;
}

void
writeRepro(const LintOracleOptions &opts, const std::string &name,
           const std::string &header, const std::string &text)
{
    if (opts.repro_dir.empty())
        return;
    namespace fs = std::filesystem;
    fs::create_directories(opts.repro_dir);
    const fs::path out = fs::path(opts.repro_dir) / name;
    std::ofstream os(out);
    os << header << text;
    if (!opts.quiet)
        std::printf("  repro: %s\n", out.string().c_str());
}

} // namespace

const char *
bugClassName(BugClass c)
{
    switch (c) {
      case BugClass::WaitCycle: return "wait-cycle";
      case BugClass::RateStarve: return "rate-starve";
      case BugClass::RateOverrun: return "rate-overrun";
      case BugClass::SpinNoStore: return "spin-no-store";
    }
    return "?";
}

const char *
bugClassDiagnostic(BugClass c)
{
    switch (c) {
      case BugClass::WaitCycle: return "Q009";
      case BugClass::RateStarve: return "Q011";
      case BugClass::RateOverrun: return "Q012";
      case BugClass::SpinNoStore: return "S001";
    }
    return "?";
}

std::string
renderBugProgram(BugClass c, std::uint64_t seed)
{
    Rng rng(seed);
    switch (c) {
      case BugClass::WaitCycle: return waitCycleText(rng);
      case BugClass::RateStarve: return rateSkewText(rng, false);
      case BugClass::RateOverrun: return rateSkewText(rng, true);
      case BugClass::SpinNoStore: return spinNoStoreText(rng);
    }
    return {};
}

LintOracleStats
runLintOracle(const LintOracleOptions &opts)
{
    LintOracleStats stats;
    Rng top(opts.seed ? opts.seed : 1);

    analysis::LintOptions lopts;
    lopts.slots = opts.slots;

    // Injected programs hang by design: a deadlock traps almost
    // immediately, a spin burns the whole step budget, so keep the
    // ceiling small. Clean programs get the default headroom.
    OracleBudget hang_budget;
    hang_budget.interp_max_steps = 500'000;
    hang_budget.max_cycles = 500'000;

    constexpr BugClass kClasses[] = {
        BugClass::WaitCycle, BugClass::RateStarve,
        BugClass::RateOverrun, BugClass::SpinNoStore};

    for (long long run = 0; run < opts.runs; ++run) {
        // --- clean arm -----------------------------------------
        GenOptions gopts;
        gopts.seed = top.next();
        const GenProgram gp = generate(gopts);
        const std::string text = gp.render();
        const Program image = assemble(text);
        ++stats.clean_runs;

        const analysis::LintReport lr = analysis::lint(image, lopts);
        if (!lr.diags.empty()) {
            ++stats.false_positives;
            if (!opts.quiet) {
                std::printf(
                    "run %lld seed %llu: FALSE POSITIVE\n%s", run,
                    (unsigned long long)gp.seed,
                    analysis::formatText(lr, "  <gen>").c_str());
            }
            writeRepro(opts,
                       "lintoracle-fp-" +
                           std::to_string(gp.seed) + ".s",
                       "# lint-oracle FALSE POSITIVE: generated "
                       "clean program got diagnostics\n# seed " +
                           std::to_string(gp.seed) + "\n",
                       text);
        } else if (boundedRunHangs(image, opts.slots, {})) {
            ++stats.clean_hangs;
            if (!opts.quiet) {
                std::printf("run %lld seed %llu: CLEAN HANG\n", run,
                            (unsigned long long)gp.seed);
            }
            writeRepro(opts,
                       "lintoracle-hang-" +
                           std::to_string(gp.seed) + ".s",
                       "# lint-oracle CLEAN HANG: lint-clean "
                       "generated program failed its bounded run\n"
                       "# seed " +
                           std::to_string(gp.seed) + "\n",
                       text);
        }

        // --- injected arm --------------------------------------
        const BugClass klass = kClasses[top.nextBelow(4)];
        const std::uint64_t bug_seed = top.next();
        const std::string bug_text =
            renderBugProgram(klass, bug_seed);
        const Program bug_image = assemble(bug_text);
        ++stats.injected_runs;

        const char *want = bugClassDiagnostic(klass);
        const analysis::LintReport blr =
            analysis::lint(bug_image, lopts);
        bool flagged = false;
        for (const analysis::Diagnostic &d : blr.diags)
            flagged = flagged || want == std::string(d.id);

        if (!flagged) {
            ++stats.missed_bugs;
            if (!opts.quiet) {
                std::printf(
                    "run %lld bug %s seed %llu: MISSED (wanted %s, "
                    "got%s)\n%s",
                    run, bugClassName(klass),
                    (unsigned long long)bug_seed, want,
                    blr.diags.empty() ? " clean" : ":",
                    analysis::formatText(blr, "  <bug>").c_str());
            }
            writeRepro(opts,
                       std::string("lintoracle-miss-") +
                           bugClassName(klass) + "-" +
                           std::to_string(bug_seed) + ".s",
                       std::string("# lint-oracle MISS: injected ") +
                           bugClassName(klass) +
                           " not flagged as " + want + "\n",
                       bug_text);
        } else if (!boundedRunHangs(bug_image, opts.slots,
                                    hang_budget)) {
            ++stats.phantom_bugs;
            if (!opts.quiet) {
                std::printf(
                    "run %lld bug %s seed %llu: PHANTOM (program "
                    "finished; the injected bug is not a bug)\n",
                    run, bugClassName(klass),
                    (unsigned long long)bug_seed);
            }
            writeRepro(opts,
                       std::string("lintoracle-phantom-") +
                           bugClassName(klass) + "-" +
                           std::to_string(bug_seed) + ".s",
                       std::string("# lint-oracle PHANTOM: "
                                   "injected ") +
                           bugClassName(klass) +
                           " finished its bounded run\n",
                       bug_text);
        }
    }
    return stats;
}

} // namespace smtsim::fuzz
