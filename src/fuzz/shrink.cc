#include "shrink.hh"

#include <utility>
#include <vector>

namespace smtsim::fuzz
{

namespace
{

/** Path from the program root to one unit (child indices). */
using Path = std::vector<int>;

std::vector<GenUnit> *
siblingsOf(GenProgram &prog, const Path &path)
{
    std::vector<GenUnit> *units = &prog.units;
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        units = &(*units)[path[i]].kids;
    return units;
}

GenUnit *
unitAt(GenProgram &prog, const Path &path)
{
    return &(*siblingsOf(prog, path))[path.back()];
}

void
collectPaths(const std::vector<GenUnit> &units, Path &prefix,
             std::vector<Path> &out)
{
    for (std::size_t i = 0; i < units.size(); ++i) {
        prefix.push_back(static_cast<int>(i));
        out.push_back(prefix);
        collectPaths(units[i].kids, prefix, out);
        prefix.pop_back();
    }
}

std::vector<Path>
allPaths(const GenProgram &prog)
{
    std::vector<Path> out;
    Path prefix;
    collectPaths(prog.units, prefix, out);
    return out;
}

bool
tryCandidate(GenProgram &prog, GenProgram candidate,
             const FailFn &fails, ShrinkStats *stats)
{
    if (stats)
        ++stats->attempts;
    bool still_fails = false;
    try {
        still_fails = fails(candidate);
    } catch (...) {
        still_fails = false;
    }
    if (!still_fails)
        return false;
    prog = std::move(candidate);
    if (stats)
        ++stats->accepted;
    return true;
}

/** One sweep over every unit; true if any edit was accepted. */
bool
sweep(GenProgram &prog, const FailFn &fails, ShrinkStats *stats)
{
    // Edits ordered by how much they delete: whole-unit removal
    // first, then structure collapses, then line-level trims.
    for (const Path &path : allPaths(prog)) {
        const GenUnit *u = unitAt(prog, path);
        if (!u->removable)
            continue;
        GenProgram cand = prog;
        std::vector<GenUnit> *sibs = siblingsOf(cand, path);
        sibs->erase(sibs->begin() + path.back());
        if (tryCandidate(prog, std::move(cand), fails, stats))
            return true;
    }

    for (const Path &path : allPaths(prog)) {
        const GenUnit *u = unitAt(prog, path);
        if (u->kind != GenUnit::Kind::Loop &&
            u->kind != GenUnit::Kind::If) {
            continue;
        }
        // Hoist: replace the loop/if with its body. The body ran at
        // least zero times before; running it exactly once at a
        // uniform point keeps all invariants.
        GenProgram cand = prog;
        std::vector<GenUnit> *sibs = siblingsOf(cand, path);
        std::vector<GenUnit> kids =
            std::move((*sibs)[path.back()].kids);
        sibs->erase(sibs->begin() + path.back());
        sibs->insert(sibs->begin() + path.back(),
                     std::make_move_iterator(kids.begin()),
                     std::make_move_iterator(kids.end()));
        if (tryCandidate(prog, std::move(cand), fails, stats))
            return true;
    }

    for (const Path &path : allPaths(prog)) {
        const GenUnit *u = unitAt(prog, path);
        if (u->kind == GenUnit::Kind::Loop && u->trip > 1) {
            GenProgram cand = prog;
            unitAt(cand, path)->trip = 1;
            if (tryCandidate(prog, std::move(cand), fails, stats))
                return true;
        }
    }

    for (const Path &path : allPaths(prog)) {
        const GenUnit *u = unitAt(prog, path);
        if (u->kind == GenUnit::Kind::Code && u->removable &&
            u->code.size() > 1) {
            for (std::size_t line = 0; line < u->code.size();
                 ++line) {
                GenProgram cand = prog;
                GenUnit *cu = unitAt(cand, path);
                cu->code.erase(cu->code.begin() + line);
                if (tryCandidate(prog, std::move(cand), fails,
                                 stats)) {
                    return true;
                }
            }
        } else if (u->kind == GenUnit::Kind::Queue && u->burst > 1) {
            // Drop the i-th send together with the i-th receive so
            // the block stays balanced around the ring.
            for (int i = 0; i < u->burst; ++i) {
                GenProgram cand = prog;
                GenUnit *cu = unitAt(cand, path);
                cu->code.erase(cu->code.begin() + cu->burst + i);
                cu->code.erase(cu->code.begin() + i);
                --cu->burst;
                if (tryCandidate(prog, std::move(cand), fails,
                                 stats)) {
                    return true;
                }
            }
        }
    }
    return false;
}

} // namespace

GenProgram
shrink(GenProgram prog, const FailFn &fails, ShrinkStats *stats)
{
    while (sweep(prog, fails, stats)) {
        // Accepted one edit; rescan from the top (paths shifted).
    }
    return prog;
}

} // namespace smtsim::fuzz
