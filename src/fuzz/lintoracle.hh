/**
 * @file
 * Soundness oracle for the static concurrency verifier
 * (analysis/concurrency.hh): cross-tabulate lint verdicts against
 * actual bounded-run outcomes so the verifier's claims are tested,
 * not asserted.
 *
 * Two arms per run:
 *
 *  - clean arm: a freshly generated fuzz program (deadlock-free by
 *    construction) must lint clean AND finish a bounded
 *    interpreter run. Any diagnostic is a lint false positive; any
 *    hang is a generator bug. Both fail the cell.
 *  - injected arm: a program built from a known concurrency-bug
 *    class (queue wait-for cycle, rate-skewed ring, unsatisfiable
 *    spin wait) must be flagged with the class's diagnostic ID AND
 *    hang the same bounded run. A missed flag is a verifier
 *    soundness gap; a finished run means the injector is wrong.
 *
 * Every mismatch can be dumped as a repro .s file whose header
 * records the class, the expected and actual verdicts, and the
 * run outcome.
 */

#ifndef SMTSIM_FUZZ_LINTORACLE_HH
#define SMTSIM_FUZZ_LINTORACLE_HH

#include <cstdint>
#include <string>

namespace smtsim::fuzz
{

/** Injected concurrency-bug classes. */
enum class BugClass
{
    WaitCycle,      ///< nobody seeds the ring -> Q009
    RateStarve,     ///< consumers pop more than producers push -> Q011
    RateOverrun,    ///< producers push more than consumers pop -> Q012
    SpinNoStore     ///< spin wait nothing ever satisfies -> S001
};

const char *bugClassName(BugClass c);

/** Diagnostic ID the verifier must report for @p c. */
const char *bugClassDiagnostic(BugClass c);

/**
 * Render a program of class @p c, parameter-varied by @p seed
 * (trip counts, increments, seed values). Every rendered program
 * deadlocks or livelocks at any slot count >= 2.
 */
std::string renderBugProgram(BugClass c, std::uint64_t seed);

struct LintOracleOptions
{
    long long runs = 200;
    std::uint64_t seed = 1;
    /** Thread slots for both the lint projection and the bounded
     *  run. */
    int slots = 4;
    /** Write mismatch repro .s files here ("" = don't). */
    std::string repro_dir;
    bool quiet = false;
};

struct LintOracleStats
{
    long long clean_runs = 0;
    long long injected_runs = 0;
    /** Lint flagged a generated clean program: the CI failure the
     *  tentpole cares most about. */
    long long false_positives = 0;
    /** A generated clean program hung or trapped the bounded run. */
    long long clean_hangs = 0;
    /** An injected bug was not flagged with its diagnostic. */
    long long missed_bugs = 0;
    /** An injected program finished: the injector is not actually
     *  producing a bug. */
    long long phantom_bugs = 0;

    long long
    mismatches() const
    {
        return false_positives + clean_hangs + missed_bugs +
               phantom_bugs;
    }

    bool ok() const { return mismatches() == 0; }
};

/** Run the cell; deterministic for fixed options. */
LintOracleStats runLintOracle(const LintOracleOptions &opts);

} // namespace smtsim::fuzz

#endif // SMTSIM_FUZZ_LINTORACLE_HH
