#include "generate.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/random.hh"

namespace smtsim::fuzz
{

namespace
{

/** Pseudo-instructions that expand to two text words. */
bool
isTwoWordLine(const std::string &line)
{
    return line.rfind("la ", 0) == 0 || line.rfind("li ", 0) == 0;
}

// Built via insert-free concatenation: GCC 12's -Wrestrict fires a
// false positive (PR105329) on `"r" + std::to_string(i)` at -O3.
std::string
reg(char file, int idx)
{
    std::string s(1, file);
    s += std::to_string(idx);
    return s;
}

std::string
r(int idx)
{
    return reg('r', idx);
}

std::string
f(int idx)
{
    return reg('f', idx);
}

/**
 * The generator proper. All randomness flows through one Rng in a
 * fixed draw order, so a seed maps to exactly one program on every
 * host.
 */
class Gen
{
  public:
    explicit Gen(const GenOptions &opts)
        : opts_(opts), rng_(opts.seed * 0x9e3779b97f4a7c15ull + 1)
    {}

    GenProgram run();

  private:
    int below(int n) { return static_cast<int>(rng_.nextBelow(n)); }
    bool chance(int percent) { return below(100) < percent; }

    // ----- operand pickers ---------------------------------------
    /** Writable integer data register (r8..r15). */
    std::string intDst() { return r(8 + below(8)); }
    /** Readable integer register (data regs + tid/nslot + r0). */
    std::string
    intSrc()
    {
        const int pick = below(12);
        if (pick < 8)
            return r(8 + pick);
        if (pick == 8)
            return r(5);    // tid
        if (pick == 9)
            return r(6);    // nslot
        return r(0);
    }
    std::string fpDst() { return f(below(8)); }
    std::string fpSrc() { return f(below(8)); }

    /** Aligned offset into a region of @p bytes, @p align bytes. */
    int
    offset(int bytes, int align)
    {
        // Bias toward small offsets so stores and loads alias often.
        const int words = bytes / align;
        const int w = chance(50) ? below(words < 8 ? words : 8)
                                 : below(words);
        return w * align;
    }

    // ----- leaf instruction builders -----------------------------
    std::string aluInsn();
    std::string shiftInsn();
    std::string mulInsn();
    std::string loadInsn();
    std::string storeInsn();
    std::string fpInsn();
    std::string fpCmpInsn();
    std::string convInsn();
    std::string anyLeaf();
    std::string burstLeaf(int cls);

    // ----- unit builders -----------------------------------------
    GenUnit codeUnit();
    GenUnit loopUnit(bool uniform, int depth);
    GenUnit ifUnit(int depth);
    GenUnit queueUnit();
    std::vector<GenUnit> body(int count, bool uniform, int depth);

    GenOptions opts_;
    Rng rng_;
    GenFeatures feat_;
    int loop_depth_ = 0;
};

std::string
Gen::aluInsn()
{
    static const char *r3[] = {"add", "sub", "and", "or",
                               "xor", "nor", "slt", "sltu"};
    static const char *imm[] = {"addi", "slti", "andi", "ori",
                                "xori"};
    if (chance(55)) {
        return std::string(r3[below(8)]) + " " + intDst() + ", " +
               intSrc() + ", " + intSrc();
    }
    const int which = below(5);
    const bool sign = which < 2;    // addi/slti sign-extend
    const int v = sign ? below(8192) - 4096 : below(0x10000);
    return std::string(imm[which]) + " " + intDst() + ", " +
           intSrc() + ", " + std::to_string(v);
}

std::string
Gen::shiftInsn()
{
    static const char *shi[] = {"sll", "srl", "sra"};
    static const char *shv[] = {"sllv", "srlv", "srav"};
    if (chance(60)) {
        return std::string(shi[below(3)]) + " " + intDst() + ", " +
               intSrc() + ", " + std::to_string(below(32));
    }
    return std::string(shv[below(3)]) + " " + intDst() + ", " +
           intSrc() + ", " + intSrc();
}

std::string
Gen::mulInsn()
{
    static const char *ops[] = {"mul", "divq", "remq"};
    return std::string(ops[below(3)]) + " " + intDst() + ", " +
           intSrc() + ", " + intSrc();
}

std::string
Gen::loadInsn()
{
    if (feat_.fp && chance(35)) {
        // FP loads: private slice or the read-only double table.
        if (chance(60)) {
            return "lf " + fpDst() + ", " +
                   std::to_string(offset(kSliceBytes, 8)) + "(r1)";
        }
        return "lf " + fpDst() + ", " +
               std::to_string(offset(64, 8)) + "(r3)";
    }
    if (chance(60)) {
        return "lw " + intDst() + ", " +
               std::to_string(offset(kSliceBytes, 4)) + "(r1)";
    }
    return "lw " + intDst() + ", " + std::to_string(offset(64, 4)) +
           "(r2)";
}

std::string
Gen::storeInsn()
{
    const bool pst = feat_.priority && chance(25);
    if (feat_.fp && chance(35)) {
        return std::string(pst ? "pstf " : "sf ") + fpSrc() + ", " +
               std::to_string(offset(kSliceBytes, 8)) + "(r1)";
    }
    return std::string(pst ? "pstw " : "sw ") + intSrc() + ", " +
           std::to_string(offset(kSliceBytes, 4)) + "(r1)";
}

std::string
Gen::fpInsn()
{
    static const char *fr3[] = {"fadd", "fsub", "fmul", "fdiv"};
    static const char *fr2[] = {"fabs", "fneg", "fmov", "fsqrt"};
    if (chance(60)) {
        return std::string(fr3[below(4)]) + " " + fpDst() + ", " +
               fpSrc() + ", " + fpSrc();
    }
    return std::string(fr2[below(4)]) + " " + fpDst() + ", " +
           fpSrc();
}

std::string
Gen::fpCmpInsn()
{
    static const char *ops[] = {"fcmplt", "fcmple", "fcmpeq"};
    return std::string(ops[below(3)]) + " " + intDst() + ", " +
           fpSrc() + ", " + fpSrc();
}

std::string
Gen::convInsn()
{
    if (chance(50))
        return "itof " + fpDst() + ", " + intSrc();
    return "ftoi " + intDst() + ", " + fpSrc();
}

std::string
Gen::anyLeaf()
{
    // Category weights; FP categories collapse onto int ones when
    // the program has no FP feature.
    const int w = below(100);
    if (w < 30)
        return aluInsn();
    if (w < 42)
        return shiftInsn();
    if (w < 52)
        return mulInsn();
    if (w < 68)
        return loadInsn();
    if (w < 82)
        return storeInsn();
    if (!feat_.fp)
        return chance(50) ? aluInsn() : loadInsn();
    if (w < 92)
        return fpInsn();
    if (w < 96)
        return fpCmpInsn();
    return convInsn();
}

/** One instruction of a fixed FU class (standby-station stress). */
std::string
Gen::burstLeaf(int cls)
{
    switch (cls) {
      case 0: return mulInsn();
      case 1: return feat_.fp ? fpInsn() : mulInsn();
      case 2:
        if (feat_.fp) {
            // FP divider: longest issue/result latencies.
            return chance(50)
                       ? "fdiv " + fpDst() + ", " + fpSrc() + ", " +
                             fpSrc()
                       : "fsqrt " + fpDst() + ", " + fpSrc();
        }
        return mulInsn();
      default:
        return chance(50) ? loadInsn() : storeInsn();
    }
}

GenUnit
Gen::codeUnit()
{
    GenUnit u;
    u.kind = GenUnit::Kind::Code;
    if (chance(25)) {
        // Homogeneous burst: every thread slams one FU class, so
        // standby stations and schedule-unit arbitration contend.
        const int cls = below(4);
        const int n = 3 + below(4);
        for (int i = 0; i < n; ++i)
            u.code.push_back(burstLeaf(cls));
    } else {
        const int n = 1 + below(5);
        for (int i = 0; i < n; ++i)
            u.code.push_back(anyLeaf());
    }
    if (feat_.priority && chance(20))
        u.code.push_back("chgpri");
    return u;
}

GenUnit
Gen::loopUnit(bool uniform, int depth)
{
    GenUnit u;
    u.kind = GenUnit::Kind::Loop;
    u.trip = 1 + below(6);
    u.counter = 16 + loop_depth_;
    ++loop_depth_;
    u.kids = body(1 + below(3), uniform, depth + 1);
    --loop_depth_;
    return u;
}

GenUnit
Gen::ifUnit(int depth)
{
    GenUnit u;
    u.kind = GenUnit::Kind::If;
    static const char *br2[] = {"beq", "bne"};
    static const char *br1[] = {"blez", "bgtz", "bltz", "bgez"};
    if (chance(50)) {
        u.cond = std::string(br2[below(2)]) + " " + intSrc() + ", " +
                 intSrc();
    } else {
        u.cond = std::string(br1[below(4)]) + " " + intSrc();
    }
    // Body executes thread-dependently: no queue traffic below here.
    u.kids = body(1 + below(3), false, depth + 1);
    return u;
}

GenUnit
Gen::queueUnit()
{
    GenUnit u;
    u.kind = GenUnit::Kind::Queue;
    const bool fp = feat_.fp_queues &&
                    (!feat_.int_queues || chance(50));
    u.burst = 1 + below(4);     // <= queue depth (4)
    for (int i = 0; i < u.burst; ++i) {
        if (fp) {
            u.code.push_back(chance(50)
                                 ? "fmov f9, " + fpSrc()
                                 : "fadd f9, " + fpSrc() + ", " +
                                       fpSrc());
        } else {
            u.code.push_back(
                chance(50) ? "add r21, " + intSrc() + ", r0"
                           : "addi r21, " + intSrc() + ", " +
                                 std::to_string(below(256)));
        }
    }
    for (int i = 0; i < u.burst; ++i) {
        if (fp) {
            u.code.push_back(
                chance(60) ? "fmov " + fpDst() + ", f8"
                           : "sf f8, " +
                                 std::to_string(
                                     offset(kSliceBytes, 8)) +
                                 "(r1)");
        } else {
            u.code.push_back(
                chance(60) ? "add " + intDst() + ", r20, r0"
                           : "sw r20, " +
                                 std::to_string(
                                     offset(kSliceBytes, 4)) +
                                 "(r1)");
        }
    }
    return u;
}

std::vector<GenUnit>
Gen::body(int count, bool uniform, int depth)
{
    std::vector<GenUnit> units;
    for (int i = 0; i < count; ++i) {
        const int w = below(100);
        if (depth < 3 && w < 18 && loop_depth_ < 3) {
            units.push_back(loopUnit(uniform, depth));
        } else if (depth < 3 && w < 32) {
            units.push_back(ifUnit(depth));
        } else if (uniform && feat_.usesQueues() && w < 55) {
            units.push_back(queueUnit());
        } else {
            units.push_back(codeUnit());
        }
    }
    return units;
}

GenProgram
Gen::run()
{
    GenProgram prog;
    prog.seed = opts_.seed;

    // Feature draw (fixed order for determinism).
    feat_.fp = opts_.allow_fp && chance(70);
    if (opts_.allow_queues && chance(45)) {
        feat_.int_queues = chance(80);
        feat_.fp_queues = feat_.fp && (!feat_.int_queues || chance(40));
        if (!feat_.int_queues && !feat_.fp_queues)
            feat_.int_queues = true;
    }
    // Priority-gated instructions block until the thread reaches the
    // ring head; mixed with queue blocking they could cross-deadlock,
    // so a program draws one of the two features at most.
    feat_.priority = !feat_.usesQueues() && opts_.allow_priority &&
                     chance(40);
    feat_.setrmode = chance(30);
    prog.features = feat_;

    // Read-only data tables: a mix of full-range and small values so
    // branches and divisions see both regimes.
    for (int i = 0; i < 16; ++i) {
        prog.table.push_back(
            chance(50) ? static_cast<std::uint32_t>(rng_.next())
                       : static_cast<std::uint32_t>(below(16)));
    }
    for (int i = 0; i < 8; ++i)
        prog.ftable.push_back(rng_.nextRange(-4.0, 4.0));

    // ----- init units --------------------------------------------
    auto code1 = [](std::string line, bool removable = true) {
        GenUnit u;
        u.kind = GenUnit::Kind::Code;
        u.code.push_back(std::move(line));
        u.removable = removable;
        return u;
    };
    prog.units.push_back(code1("la r1, priv"));
    prog.units.push_back(code1("la r2, table"));
    if (feat_.fp)
        prog.units.push_back(code1("la r3, ftab"));
    if (feat_.setrmode) {
        prog.units.push_back(code1(
            std::string("setrmode ") +
            (chance(50) ? "implicit" : "explicit") + ", " +
            std::to_string(1 << below(6))));
    }

    // Fork block: atomic so the tid-derived private-slice base can
    // never survive without the fork (shrinking it apart would let
    // every thread write slice 0 and the program would stop being
    // interleaving-deterministic).
    {
        GenUnit fork;
        fork.kind = GenUnit::Kind::Code;
        fork.code = {"fastfork", "tid r5", "nslot r6",
                     "sll r7, r5, 8", "add r1, r1, r7"};
        // Queue exchange blocks are deadlock-free only when every
        // logical processor participates; dropping the fork would
        // leave thread 0 receiving from a ring nobody feeds.
        fork.removable = !feat_.usesQueues();
        prog.units.push_back(std::move(fork));
    }

    if (feat_.int_queues)
        prog.units.push_back(code1("qen r20, r21"));
    if (feat_.fp_queues)
        prog.units.push_back(code1("qenf f8, f9"));

    // Seed every writable data register so the body starts from
    // varied values. Covering the full intDst()/fpDst() range also
    // keeps generated programs clean under the static verifier's
    // inconsistent-init rule (D001): a conditional body write can
    // only ever re-define a register, never introduce a
    // written-on-some-paths-only read.
    prog.units.push_back(code1("lw r8, 0(r2)"));
    prog.units.push_back(code1("lw r9, 4(r2)"));
    prog.units.push_back(code1("lw r10, 8(r2)"));
    prog.units.push_back(code1("lw r11, 12(r2)"));
    prog.units.push_back(code1("add r12, r5, r0"));
    prog.units.push_back(code1("add r13, r6, r0"));
    prog.units.push_back(code1("xor r14, r8, r9"));
    prog.units.push_back(code1("addi r15, r5, 1"));
    if (feat_.fp) {
        prog.units.push_back(code1("lf f0, 0(r3)"));
        prog.units.push_back(code1("lf f1, 8(r3)"));
        prog.units.push_back(code1("lf f2, 16(r3)"));
        prog.units.push_back(code1("lf f3, 24(r3)"));
        prog.units.push_back(code1("lf f4, 32(r3)"));
        prog.units.push_back(code1("lf f5, 40(r3)"));
        prog.units.push_back(code1("lf f6, 48(r3)"));
        prog.units.push_back(code1("itof f7, r5"));
    }

    // ----- body --------------------------------------------------
    for (GenUnit &u : body(2 + below(opts_.max_top_units - 1),
                           /*uniform=*/true, /*depth=*/0)) {
        prog.units.push_back(std::move(u));
    }

    if (feat_.usesQueues())
        prog.units.push_back(code1("qdis"));
    return prog;
}

void
renderUnit(std::ostringstream &os, const GenUnit &u, int &label)
{
    switch (u.kind) {
      case GenUnit::Kind::Code:
      case GenUnit::Kind::Queue:
        for (const std::string &line : u.code)
            os << "        " << line << "\n";
        break;
      case GenUnit::Kind::Loop: {
        const int l = label++;
        os << "        addi r" << u.counter << ", r0, " << u.trip
           << "\n";
        os << "L" << l << ":\n";
        for (const GenUnit &kid : u.kids)
            renderUnit(os, kid, label);
        os << "        addi r" << u.counter << ", r" << u.counter
           << ", -1\n";
        os << "        bgtz r" << u.counter << ", L" << l << "\n";
        break;
      }
      case GenUnit::Kind::If: {
        const int l = label++;
        os << "        " << u.cond << ", L" << l << "\n";
        for (const GenUnit &kid : u.kids)
            renderUnit(os, kid, label);
        os << "L" << l << ":\n";
        break;
      }
    }
}

} // namespace

int
GenUnit::countInsns() const
{
    int n = 0;
    for (const std::string &line : code)
        n += isTwoWordLine(line) ? 2 : 1;
    for (const GenUnit &kid : kids)
        n += kid.countInsns();
    switch (kind) {
      case Kind::Loop: return n + 3;    // counter init, dec, latch
      case Kind::If: return n + 1;      // the branch
      default: return n;
    }
}

int
GenProgram::countInsns() const
{
    int n = 1;      // halt
    for (const GenUnit &u : units)
        n += u.countInsns();
    return n;
}

std::string
GenProgram::render() const
{
    std::ostringstream os;
    os << "# smtsim-fuzz generated program\n";
    os << "# seed: " << seed << "\n";
    os << "        .text\n";
    os << "main:\n";
    int label = 0;
    for (const GenUnit &u : units)
        renderUnit(os, u, label);
    os << "        halt\n";
    os << "        .data\n";
    os << "priv:   .space " << kSliceBytes * kMaxFuzzSlots << "\n";
    os << "table:";
    for (std::size_t i = 0; i < table.size(); ++i) {
        os << (i % 4 == 0 ? (i ? "\n        .word " : "  .word ")
                          : ", ")
           << table[i];
    }
    os << "\n";
    os << "ftab:";
    for (std::size_t i = 0; i < ftable.size(); ++i) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", ftable[i]);
        os << (i % 4 == 0 ? (i ? "\n        .float " : "  .float ")
                          : ", ")
           << buf;
    }
    os << "\n";
    return os.str();
}

GenProgram
generate(const GenOptions &opts)
{
    SMTSIM_ASSERT(opts.max_top_units >= 2,
                  "generator needs at least two body units");
    return Gen(opts).run();
}

} // namespace smtsim::fuzz
