/**
 * @file
 * Deterministic random program generator for differential fuzzing.
 *
 * Programs are generated as a tree of units (straight-line code,
 * bounded loops, forward branches, queue-register exchange blocks)
 * and rendered to assembly on demand. Every generated program is
 * well-formed by construction:
 *
 *  - Termination (fuel): every loop decrements a dedicated counter
 *    register initialised to a constant trip count; there are no
 *    backward branches outside loop latches and no indirect jumps.
 *  - Determinism across engines: threads are SPMD (fast-fork, then
 *    one tid read); every store targets the thread's private slice
 *    of the scratch region, so final memory does not depend on the
 *    interleaving an engine happens to produce. Shared data is
 *    read-only. KILLT is never generated (its effect is inherently
 *    timing-dependent).
 *  - Deadlock freedom: queue-register traffic is organised as
 *    atomic "exchange blocks" of b sends followed by b receives
 *    with b <= queue depth, placed only at thread-uniform points
 *    (top level or inside constant-trip loops, never under a
 *    data-dependent branch), so send/receive counts match around
 *    the ring and FIFO occupancy never exceeds capacity. Programs
 *    that use queue registers never use the priority-gated
 *    instructions (CHGPRI / priority stores) and vice versa, which
 *    rules out cross-blocking cycles.
 *
 * The same tree is the unit of shrinking: removing any unit whose
 * `removable` flag is set preserves all of the properties above.
 */

#ifndef SMTSIM_FUZZ_GENERATE_HH
#define SMTSIM_FUZZ_GENERATE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace smtsim::fuzz
{

/** Generator tuning knobs. */
struct GenOptions
{
    std::uint64_t seed = 1;
    /** Top-level body units (loops/ifs expand recursively). */
    int max_top_units = 10;
    /** Feature gates (a program draws a subset of the allowed set). */
    bool allow_queues = true;
    bool allow_fp = true;
    bool allow_priority = true;
};

/** Features drawn for one program (drives oracle grid choices). */
struct GenFeatures
{
    bool int_queues = false;
    bool fp_queues = false;
    /** CHGPRI / priority stores (mutually exclusive with queues). */
    bool priority = false;
    bool fp = false;
    bool setrmode = false;

    bool usesQueues() const { return int_queues || fp_queues; }
};

/** One node of the program tree. */
struct GenUnit
{
    enum class Kind
    {
        Code,   ///< straight-line instructions (no labels)
        Loop,   ///< constant-trip counted loop around kids
        If,     ///< forward conditional branch over kids
        Queue   ///< atomic send/receive exchange block
    };

    Kind kind = Kind::Code;
    /** Instruction lines (Code and Queue bodies). */
    std::vector<std::string> code;
    /** Loop trip count (>= 1). */
    int trip = 1;
    /** Loop counter register index (r16..r19 by nesting depth). */
    int counter = 16;
    /** If condition without target, e.g. "bne r8, r9". */
    std::string cond;
    /** Queue block: number of send/receive pairs (code holds the
     *  burst sends followed by the burst receives). */
    int burst = 0;
    std::vector<GenUnit> kids;
    /** May the shrinker delete this unit outright? */
    bool removable = true;

    int countInsns() const;
};

/** A generated program: unit tree + read-only data tables. */
struct GenProgram
{
    std::uint64_t seed = 0;
    GenFeatures features;
    /** Init units, body units and tail units, in program order. */
    std::vector<GenUnit> units;
    /** Shared read-only word table ("table" symbol). */
    std::vector<std::uint32_t> table;
    /** Shared read-only double table ("ftab" symbol). */
    std::vector<double> ftable;

    /** Render to assembly source (deterministic). */
    std::string render() const;
    /** Static instruction count of the rendered program. */
    int countInsns() const;
};

/** Bytes of private scratch per logical processor. */
constexpr int kSliceBytes = 256;
/** Largest thread-slot count a generated program must be valid for. */
constexpr int kMaxFuzzSlots = 8;

/** Generate one program from @p opts (same options => same bytes). */
GenProgram generate(const GenOptions &opts);

} // namespace smtsim::fuzz

#endif // SMTSIM_FUZZ_GENERATE_HH
