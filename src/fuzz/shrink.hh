/**
 * @file
 * Delta-debugging shrinker for diverging fuzz programs.
 *
 * Works on the generator's unit tree, so every candidate is
 * well-formed by construction (see generate.hh): removing a unit,
 * hoisting a loop/if body, collapsing a trip count or dropping a
 * send/receive *pair* all preserve termination, SPMD determinism and
 * queue balance. The shrinker is greedy-to-fixpoint: it keeps any
 * edit that still makes the predicate fail and stops when no single
 * edit does.
 */

#ifndef SMTSIM_FUZZ_SHRINK_HH
#define SMTSIM_FUZZ_SHRINK_HH

#include <functional>

#include "fuzz/generate.hh"

namespace smtsim::fuzz
{

/**
 * Predicate: does this program still exhibit the divergence?
 * Implementations should return false (not throw) for candidates
 * that fail to assemble or run; the shrinker additionally treats a
 * throwing predicate as "does not fail".
 */
using FailFn = std::function<bool(const GenProgram &)>;

/** Statistics from one shrink run. */
struct ShrinkStats
{
    int attempts = 0;       ///< candidate programs evaluated
    int accepted = 0;       ///< edits kept
};

/**
 * Minimize @p prog while @p fails stays true. @p prog must satisfy
 * the predicate on entry; the result still does.
 */
GenProgram shrink(GenProgram prog, const FailFn &fails,
                  ShrinkStats *stats = nullptr);

} // namespace smtsim::fuzz

#endif // SMTSIM_FUZZ_SHRINK_HH
