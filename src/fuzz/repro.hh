/**
 * @file
 * Self-contained divergence repros.
 *
 * A repro is a single `.s` file that the assembler accepts as-is:
 * the oracle configuration travels in `#!` directive comments (the
 * assembler treats `#` as a comment starter), so one file carries
 * the program, the (reference, candidate) pair that disagreed and an
 * informational snapshot of the first mismatch. Replaying a repro
 * re-derives the expectation by running both configurations again —
 * there is no separately maintained golden state to go stale.
 *
 *     # smtsim-fuzz divergence repro
 *     #! ref engine=interp slots=4
 *     #! cfg engine=core slots=4 ff=0 cache=1 ...
 *     #! mask-queue-regs 0
 *     # divergence: thread 0 r9: ref 5 vs 7
 *     main:   ...
 */

#ifndef SMTSIM_FUZZ_REPRO_HH
#define SMTSIM_FUZZ_REPRO_HH

#include <string>

#include "fuzz/generate.hh"
#include "fuzz/oracle.hh"

namespace smtsim::fuzz
{

/** A parsed repro file. */
struct Repro
{
    RunConfig ref;
    RunConfig cfg;
    /** Ignore architectural queue-pair registers in the diff. */
    bool mask_queue_regs = false;
    /** Assembly source (the full file text; directives are
     *  comments, so it assembles unchanged). */
    std::string asm_text;
};

/** Serialize one RunConfig as `key=value` tokens. */
std::string formatRunConfig(const RunConfig &rc);
/** Parse the output of formatRunConfig; throws FatalError. */
RunConfig parseRunConfig(const std::string &text);

/** Render a diverging program as a repro file. */
std::string formatRepro(const GenProgram &prog,
                        const Divergence &div);

/** Parse a repro file; throws FatalError when directives are
 *  missing or malformed. */
Repro parseRepro(const std::string &text);

/**
 * Re-run both configurations of @p repro and diff them.
 * @return empty string when the engines now agree (the bug is
 * fixed), else the first mismatch.
 */
std::string replayRepro(const Repro &repro,
                        const OracleBudget &budget = {});

/** Corpus file name: `div-<seed>-<hash16>.s`. */
std::string reproFileName(const GenProgram &prog,
                          const Divergence &div);

} // namespace smtsim::fuzz

#endif // SMTSIM_FUZZ_REPRO_HH
