#include "repro.hh"

#include <sstream>

#include "asmr/assembler.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "base/strutil.hh"

namespace smtsim::fuzz
{

namespace
{

const char *
engineToken(Engine e)
{
    switch (e) {
      case Engine::Interp: return "interp";
      case Engine::Baseline: return "baseline";
      case Engine::Core: return "core";
      case Engine::Fast: return "fast";
    }
    return "core";
}

Engine
parseEngineToken(const std::string &tok)
{
    if (tok == "interp")
        return Engine::Interp;
    if (tok == "baseline")
        return Engine::Baseline;
    if (tok == "core")
        return Engine::Core;
    if (tok == "fast")
        return Engine::Fast;
    fatal("repro: unknown engine \"", tok, "\"");
}

int
parseIntToken(const std::string &key, const std::string &value)
{
    long long v = 0;
    if (!parseInt(value, &v))
        fatal("repro: ", key, " needs an integer, got \"",
              value, "\"");
    return static_cast<int>(v);
}

} // namespace

std::string
formatRunConfig(const RunConfig &rc)
{
    std::ostringstream os;
    os << "engine=" << engineToken(rc.engine)
       << " slots=" << rc.slots
       << " ff=" << (rc.fast_forward ? 1 : 0)
       << " cache=" << (rc.cache ? 1 : 0)
       << " standby=" << (rc.standby ? 1 : 0)
       << " width=" << rc.width
       << " rot=" << (rc.explicit_rot ? "explicit" : "implicit")
       << " interval=" << rc.interval
       << " remote=" << (rc.remote ? 1 : 0);
    return os.str();
}

RunConfig
parseRunConfig(const std::string &text)
{
    RunConfig rc;
    std::istringstream is(text);
    std::string tok;
    while (is >> tok) {
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos)
            fatal("repro: malformed token \"", tok, "\"");
        const std::string key = tok.substr(0, eq);
        const std::string value = tok.substr(eq + 1);
        if (key == "engine") {
            rc.engine = parseEngineToken(value);
        } else if (key == "slots") {
            rc.slots = parseIntToken(key, value);
        } else if (key == "ff") {
            rc.fast_forward = parseIntToken(key, value) != 0;
        } else if (key == "cache") {
            rc.cache = parseIntToken(key, value) != 0;
        } else if (key == "standby") {
            rc.standby = parseIntToken(key, value) != 0;
        } else if (key == "width") {
            rc.width = parseIntToken(key, value);
        } else if (key == "rot") {
            if (value != "explicit" && value != "implicit")
                fatal("repro: rot must be explicit|implicit");
            rc.explicit_rot = value == "explicit";
        } else if (key == "interval") {
            rc.interval = parseIntToken(key, value);
        } else if (key == "remote") {
            rc.remote = parseIntToken(key, value) != 0;
        } else {
            fatal("repro: unknown config key \"", key, "\"");
        }
    }
    if (rc.slots < 1)
        fatal("repro: slots must be >= 1");
    return rc;
}

std::string
formatRepro(const GenProgram &prog, const Divergence &div)
{
    std::ostringstream os;
    os << "# smtsim-fuzz divergence repro\n";
    os << "#! ref " << formatRunConfig(div.ref) << "\n";
    os << "#! cfg " << formatRunConfig(div.cfg) << "\n";
    os << "#! mask-queue-regs "
       << (prog.features.usesQueues() ? 1 : 0) << "\n";
    // Informational only: replay re-derives the expectation.
    os << "# divergence: " << div.detail << "\n";
    os << "# instructions: " << prog.countInsns() << "\n";
    os << prog.render();
    return os.str();
}

Repro
parseRepro(const std::string &text)
{
    Repro repro;
    repro.asm_text = text;
    bool have_ref = false, have_cfg = false;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("#!", 0) != 0)
            continue;
        std::istringstream ls(line.substr(2));
        std::string directive;
        ls >> directive;
        std::string rest;
        std::getline(ls, rest);
        if (directive == "ref") {
            repro.ref = parseRunConfig(rest);
            have_ref = true;
        } else if (directive == "cfg") {
            repro.cfg = parseRunConfig(rest);
            have_cfg = true;
        } else if (directive == "mask-queue-regs") {
            repro.mask_queue_regs =
                parseIntToken(directive, trim(rest)) != 0;
        } else {
            fatal("repro: unknown directive \"#! ", directive,
                  "\"");
        }
    }
    if (!have_ref || !have_cfg)
        fatal("repro: missing #! ref or #! cfg directive");
    return repro;
}

std::string
replayRepro(const Repro &repro, const OracleBudget &budget)
{
    const Program prog = assemble(repro.asm_text);
    const EngineState a = runEngine(prog, repro.ref, budget);
    const EngineState b = runEngine(prog, repro.cfg, budget);
    return diffStates(a, b, repro.mask_queue_regs);
}

std::string
reproFileName(const GenProgram &prog, const Divergence &div)
{
    Fnv1a h;
    h.add(prog.render());
    h.add(formatRunConfig(div.cfg));
    return "div-" + std::to_string(prog.seed) + "-" +
           hashToHex(h.digest()) + ".s";
}

} // namespace smtsim::fuzz
