/**
 * @file
 * Differential oracle: run one program through the interpreter, the
 * baseline pipeline and the multithreaded core across a grid of
 * configurations and diff the architectural outcomes.
 *
 * The reference for every comparison is the interpreter at the same
 * logical-processor count, because a fuzz program's final state is
 * only interleaving-independent *per thread count* (each thread owns
 * a private memory slice indexed by TID, and queue traffic wraps a
 * ring whose shape depends on S). The baseline engine executes the
 * thread-control instructions as no-ops, so it is compared against
 * interpreter(1) and skipped entirely for queue-register programs.
 */

#ifndef SMTSIM_FUZZ_ORACLE_HH
#define SMTSIM_FUZZ_ORACLE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "asmr/program.hh"
#include "fuzz/generate.hh"

namespace smtsim::fuzz
{

enum class Engine
{
    Interp,
    Baseline,
    Core,
    Fast        ///< threaded-code engine (fastpath::FastEngine)
};

/** One cell of the oracle grid. */
struct RunConfig
{
    Engine engine = Engine::Core;
    /** Thread slots (core) / logical processors (interp). */
    int slots = 4;
    bool fast_forward = true;
    /** Finite i+d cache models on (timing-only; results identical). */
    bool cache = false;
    bool standby = true;
    int width = 1;
    bool explicit_rot = false;
    int interval = 8;
    /** Map the shared word table as remote memory (data-absence
     *  traps + concurrent-MT context switches). */
    bool remote = false;

    /** Human-readable cell name for reports and repro files. */
    std::string name() const;
};

/** Architectural outcome of one engine run. */
struct EngineState
{
    /** Engine threw FatalError/PanicError. */
    bool trapped = false;
    std::string trap;
    /** Ran to completion within budget. */
    bool finished = false;
    /** Retired instructions. */
    std::uint64_t instructions = 0;
    /** Per-thread integer registers. */
    std::vector<std::array<std::uint32_t, kNumRegs>> iregs;
    /** Per-thread FP registers as bit patterns. */
    std::vector<std::array<std::uint64_t, kNumRegs>> fregs;
    /** Data-segment words. */
    std::vector<std::uint32_t> mem;
};

/** Simulation budgets (generated programs stay far below these; the
 *  ceiling only matters when a real bug livelocks an engine). */
struct OracleBudget
{
    std::uint64_t interp_max_steps = 50'000'000;
    std::uint64_t max_cycles = 50'000'000;
};

/** Execute @p prog under one grid cell. Never throws: engine traps
 *  are captured in the returned state. */
EngineState runEngine(const Program &prog, const RunConfig &rc,
                      const OracleBudget &budget = {});

/**
 * Compare two outcomes; returns an empty string when they agree or
 * a one-line description of the first mismatch. When
 * @p mask_queue_regs is set the architectural values of the queue
 * pair registers (r20/r21, f8/f9) are ignored: while mapped, those
 * names address the FIFO, and the leftover architectural values are
 * not specified by the paper.
 */
std::string diffStates(const EngineState &ref,
                       const EngineState &got,
                       bool mask_queue_regs);

/** (reference, candidate) grid for a program's feature set. */
std::vector<std::pair<RunConfig, RunConfig>>
buildGrid(const GenFeatures &features);

/** One detected disagreement. */
struct Divergence
{
    RunConfig ref;
    RunConfig cfg;
    std::string detail;
};

/**
 * Coarse divergence signature, used by the shrinker to keep a
 * candidate's failure on the *same* bug: delta debugging may
 * otherwise slip from, say, a register mismatch to an unrelated
 * budget-timeout divergence.
 */
enum class DivClass
{
    Trap,
    Finished,
    Instructions,
    State       ///< registers or memory
};

DivClass classifyDivergence(const std::string &detail);

/** Run one (ref, cfg) pair; nullopt when the outcomes agree. */
std::optional<Divergence> checkPair(const Program &prog,
                                    const GenFeatures &features,
                                    const RunConfig &ref,
                                    const RunConfig &cfg,
                                    const OracleBudget &budget = {});

/**
 * Functional-first timing check: record the program's execution
 * trace with the fast engine, then run the detailed core once in
 * execute mode and once in verified replay mode and diff the full
 * statistics dumps — cycles, per-unit busy counters, everything.
 * A replay that diverges from the recording falls back to execute
 * mode (still compared, trivially equal); a *stats* mismatch means
 * replay changed timing and is reported as a divergence.
 */
std::optional<Divergence> checkReplayTiming(
    const Program &prog, const GenFeatures &features,
    const OracleBudget &budget = {});

/**
 * Many-core determinism check: run the program on a 2-core machine
 * (each core a full multithreaded processor, coupled through the
 * shared word table as interconnect-resolved remote memory) once on
 * the sequential reference schedule and once with two host threads,
 * and diff the complete machine statistics plus every core's
 * architectural state. Any difference means the parallel host
 * schedule leaked into simulated behavior — the invariant
 * docs/MANYCORE.md argues can't happen. Skipped for queue/priority
 * programs for the same slot-rebinding reason as the remote cell.
 */
std::optional<Divergence> checkManyCoreDeterminism(
    const Program &prog, const GenFeatures &features,
    const OracleBudget &budget = {});

/** Run the whole grid (plus the replay timing check); first
 *  divergence wins. */
std::optional<Divergence> checkProgram(const Program &prog,
                                       const GenFeatures &features,
                                       const OracleBudget &budget = {});

} // namespace smtsim::fuzz

#endif // SMTSIM_FUZZ_ORACLE_HH
