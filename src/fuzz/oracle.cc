#include "oracle.hh"

#include <cstring>
#include <sstream>

#include "base/logging.hh"
#include "baseline/baseline.hh"
#include "core/processor.hh"
#include "fastpath/engine.hh"
#include "interp/interpreter.hh"
#include "machine/manycore.hh"
#include "machine/manycore_json.hh"
#include "machine/run_stats_json.hh"
#include "mem/memory.hh"

namespace smtsim::fuzz
{

namespace
{

std::uint64_t
fpBits(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

bool
isQueuePairReg(int idx, bool fp)
{
    return fp ? (idx == 8 || idx == 9) : (idx == 20 || idx == 21);
}

void
captureMemory(const Program &prog, MainMemory &mem, EngineState &st)
{
    const std::size_t words = prog.data.size() / 4;
    st.mem.reserve(words);
    for (std::size_t i = 0; i < words; ++i) {
        st.mem.push_back(
            mem.read32(prog.data_base + static_cast<Addr>(i) * 4));
    }
}

} // namespace

std::string
RunConfig::name() const
{
    std::ostringstream os;
    switch (engine) {
      case Engine::Interp: os << "interp"; break;
      case Engine::Baseline: os << "baseline"; break;
      case Engine::Core: os << "core"; break;
      case Engine::Fast: os << "fast"; break;
    }
    os << " slots=" << slots;
    if (engine != Engine::Interp && engine != Engine::Fast) {
        os << " ff=" << (fast_forward ? 1 : 0);
        os << " width=" << width;
    }
    if (engine == Engine::Core) {
        os << " cache=" << (cache ? 1 : 0);
        os << " standby=" << (standby ? 1 : 0);
        if (explicit_rot)
            os << " rot=explicit interval=" << interval;
        if (remote)
            os << " remote=1";
    }
    return os.str();
}

EngineState
runEngine(const Program &prog, const RunConfig &rc,
          const OracleBudget &budget)
{
    EngineState st;
    MainMemory mem;
    prog.loadInto(mem);
    try {
        switch (rc.engine) {
          case Engine::Interp: {
            InterpConfig cfg;
            cfg.num_threads = rc.slots;
            cfg.max_steps = budget.interp_max_steps;
            Interpreter interp(prog, mem, cfg);
            const InterpResult r = interp.run();
            st.finished = r.completed;
            st.instructions = r.steps;
            for (int t = 0; t < rc.slots; ++t) {
                std::array<std::uint32_t, kNumRegs> ir{};
                std::array<std::uint64_t, kNumRegs> fr{};
                for (int i = 0; i < kNumRegs; ++i) {
                    ir[i] = interp.intReg(t, static_cast<RegIndex>(i));
                    fr[i] =
                        fpBits(interp.fpReg(t, static_cast<RegIndex>(i)));
                }
                st.iregs.push_back(ir);
                st.fregs.push_back(fr);
            }
            break;
          }
          case Engine::Fast: {
            InterpConfig cfg;
            cfg.num_threads = rc.slots;
            cfg.max_steps = budget.interp_max_steps;
            fastpath::FastEngine fast(prog, mem, cfg);
            const InterpResult r = fast.run();
            st.finished = r.completed;
            st.instructions = r.steps;
            for (int t = 0; t < rc.slots; ++t) {
                std::array<std::uint32_t, kNumRegs> ir{};
                std::array<std::uint64_t, kNumRegs> fr{};
                for (int i = 0; i < kNumRegs; ++i) {
                    ir[i] = fast.intReg(t, static_cast<RegIndex>(i));
                    fr[i] =
                        fpBits(fast.fpReg(t, static_cast<RegIndex>(i)));
                }
                st.iregs.push_back(ir);
                st.fregs.push_back(fr);
            }
            break;
          }
          case Engine::Baseline: {
            BaselineConfig cfg;
            cfg.width = rc.width;
            cfg.fast_forward = rc.fast_forward;
            cfg.max_cycles = budget.max_cycles;
            BaselineProcessor cpu(prog, mem, cfg);
            const RunStats stats = cpu.run();
            st.finished = stats.finished;
            st.instructions = stats.instructions;
            std::array<std::uint32_t, kNumRegs> ir{};
            std::array<std::uint64_t, kNumRegs> fr{};
            for (int i = 0; i < kNumRegs; ++i) {
                ir[i] = cpu.intReg(static_cast<RegIndex>(i));
                fr[i] = fpBits(cpu.fpReg(static_cast<RegIndex>(i)));
            }
            st.iregs.push_back(ir);
            st.fregs.push_back(fr);
            break;
          }
          case Engine::Core: {
            CoreConfig cfg;
            cfg.num_slots = rc.slots;
            cfg.width = rc.width;
            cfg.fast_forward = rc.fast_forward;
            cfg.standby_enabled = rc.standby;
            cfg.max_cycles = budget.max_cycles;
            if (rc.explicit_rot) {
                cfg.rotation_mode = RotationMode::Explicit;
                cfg.rotation_interval = rc.interval;
            }
            if (rc.cache) {
                cfg.dcache.size_bytes = 1024;
                cfg.icache.size_bytes = 1024;
            }
            if (rc.remote) {
                // The shared word table becomes remote memory so the
                // seed loads take data-absence traps; one extra
                // context frame exercises concurrent multithreading.
                cfg.remote.base = prog.symbol("table");
                cfg.remote.size = 64;
                cfg.remote.latency = 40;
                cfg.num_frames = cfg.num_slots + 1;
            }
            MultithreadedProcessor cpu(prog, mem, cfg);
            const RunStats stats = cpu.run();
            st.finished = stats.finished;
            st.instructions = stats.instructions;
            for (int t = 0; t < rc.slots; ++t) {
                std::array<std::uint32_t, kNumRegs> ir{};
                std::array<std::uint64_t, kNumRegs> fr{};
                for (int i = 0; i < kNumRegs; ++i) {
                    ir[i] = cpu.intReg(t, static_cast<RegIndex>(i));
                    fr[i] =
                        fpBits(cpu.fpReg(t, static_cast<RegIndex>(i)));
                }
                st.iregs.push_back(ir);
                st.fregs.push_back(fr);
            }
            break;
          }
        }
        captureMemory(prog, mem, st);
    } catch (const FatalError &e) {
        st.trapped = true;
        st.trap = std::string("fatal: ") + e.what();
    } catch (const PanicError &e) {
        st.trapped = true;
        st.trap = std::string("panic: ") + e.what();
    }
    return st;
}

std::string
diffStates(const EngineState &ref, const EngineState &got,
           bool mask_queue_regs)
{
    std::ostringstream os;
    if (ref.trapped != got.trapped) {
        os << "trap mismatch: ref "
           << (ref.trapped ? ref.trap : "clean") << " vs "
           << (got.trapped ? got.trap : "clean");
        return os.str();
    }
    if (ref.trapped)
        return {};      // both trapped: parity holds
    if (ref.finished != got.finished) {
        os << "finished mismatch: ref "
           << (ref.finished ? "yes" : "no") << " vs "
           << (got.finished ? "yes" : "no");
        return os.str();
    }
    if (ref.instructions != got.instructions) {
        os << "retired-instruction mismatch: ref "
           << ref.instructions << " vs " << got.instructions;
        return os.str();
    }
    const std::size_t threads =
        ref.iregs.size() < got.iregs.size() ? ref.iregs.size()
                                            : got.iregs.size();
    for (std::size_t t = 0; t < threads; ++t) {
        for (int i = 0; i < kNumRegs; ++i) {
            if (mask_queue_regs && isQueuePairReg(i, false))
                continue;
            if (ref.iregs[t][i] != got.iregs[t][i]) {
                os << "thread " << t << " r" << i << ": ref "
                   << ref.iregs[t][i] << " vs " << got.iregs[t][i];
                return os.str();
            }
        }
        for (int i = 0; i < kNumRegs; ++i) {
            if (mask_queue_regs && isQueuePairReg(i, true))
                continue;
            if (ref.fregs[t][i] != got.fregs[t][i]) {
                os << "thread " << t << " f" << i << ": ref bits 0x"
                   << std::hex << ref.fregs[t][i] << " vs 0x"
                   << got.fregs[t][i];
                return os.str();
            }
        }
    }
    for (std::size_t i = 0;
         i < ref.mem.size() && i < got.mem.size(); ++i) {
        if (ref.mem[i] != got.mem[i]) {
            os << "mem word " << i << " (+0x" << std::hex << i * 4
               << "): ref " << std::dec << ref.mem[i] << " vs "
               << got.mem[i];
            return os.str();
        }
    }
    return {};
}

DivClass
classifyDivergence(const std::string &detail)
{
    if (detail.rfind("trap mismatch", 0) == 0)
        return DivClass::Trap;
    if (detail.rfind("finished mismatch", 0) == 0)
        return DivClass::Finished;
    if (detail.rfind("retired-instruction mismatch", 0) == 0)
        return DivClass::Instructions;
    return DivClass::State;
}

std::vector<std::pair<RunConfig, RunConfig>>
buildGrid(const GenFeatures &features)
{
    std::vector<std::pair<RunConfig, RunConfig>> grid;
    auto interpRef = [](int slots) {
        RunConfig rc;
        rc.engine = Engine::Interp;
        rc.slots = slots;
        return rc;
    };

    // The fast engine must be architecturally indistinguishable
    // from the interpreter at every logical-processor count.
    for (int slots : {1, 2, 4, 8}) {
        RunConfig rc;
        rc.engine = Engine::Fast;
        rc.slots = slots;
        grid.emplace_back(interpRef(slots), rc);
    }

    // The issue's grid: slots 1/2/4/8 x fast-forward x cache.
    for (int slots : {1, 2, 4, 8}) {
        for (bool ff : {true, false}) {
            for (bool cache : {true, false}) {
                RunConfig rc;
                rc.engine = Engine::Core;
                rc.slots = slots;
                rc.fast_forward = ff;
                rc.cache = cache;
                grid.emplace_back(interpRef(slots), rc);
            }
        }
    }

    // Micro-architecture extras at the paper's headline S=4.
    {
        RunConfig rc;
        rc.engine = Engine::Core;
        rc.slots = 4;
        rc.standby = false;
        grid.emplace_back(interpRef(4), rc);

        rc = {};
        rc.engine = Engine::Core;
        rc.slots = 4;
        rc.width = 2;
        grid.emplace_back(interpRef(4), rc);

        rc = {};
        rc.engine = Engine::Core;
        rc.slots = 4;
        rc.explicit_rot = true;
        rc.interval = 8;
        grid.emplace_back(interpRef(4), rc);
    }

    // Remote memory rebinds contexts across slots after a switch,
    // which permutes the (slot-indexed) queue ring; the pairing is
    // only meaningful for queue-free programs. Priority-gated
    // instructions are likewise skipped: their blocking interacts
    // with which *slot* holds the ring head, not which context.
    if (!features.usesQueues() && !features.priority) {
        RunConfig rc;
        rc.engine = Engine::Core;
        rc.slots = 4;
        rc.remote = true;
        grid.emplace_back(interpRef(4), rc);
    }

    // Baseline executes thread-control ops as no-ops, so it only
    // models the single-thread projection; queue programs would
    // bypass the FIFO entirely and legitimately differ.
    if (!features.usesQueues()) {
        for (bool ff : {true, false}) {
            RunConfig rc;
            rc.engine = Engine::Baseline;
            rc.slots = 1;
            rc.fast_forward = ff;
            grid.emplace_back(interpRef(1), rc);
        }
        RunConfig rc;
        rc.engine = Engine::Baseline;
        rc.slots = 1;
        rc.width = 2;
        grid.emplace_back(interpRef(1), rc);
    }
    return grid;
}

std::optional<Divergence>
checkPair(const Program &prog, const GenFeatures &features,
          const RunConfig &ref, const RunConfig &cfg,
          const OracleBudget &budget)
{
    const EngineState a = runEngine(prog, ref, budget);
    const EngineState b = runEngine(prog, cfg, budget);
    const std::string diff =
        diffStates(a, b, features.usesQueues());
    if (diff.empty())
        return std::nullopt;
    return Divergence{ref, cfg, diff};
}

std::optional<Divergence>
checkReplayTiming(const Program &prog, const GenFeatures &features,
                  const OracleBudget &budget)
{
    (void)features;     // verified replay self-detects divergence
    RunConfig cell;     // the cell being exercised, for reports
    cell.engine = Engine::Core;
    cell.slots = 4;

    CoreConfig ccfg;
    ccfg.num_slots = cell.slots;
    ccfg.max_cycles = budget.max_cycles;

    InterpConfig icfg;
    icfg.num_threads = ccfg.num_slots;
    icfg.queue_depth = ccfg.queue_reg_depth;
    icfg.max_steps = budget.interp_max_steps;

    try {
        MainMemory fmem;
        prog.loadInto(fmem);
        const fastpath::TracedRun recorded =
            fastpath::recordTrace(prog, fmem, icfg);
        if (!recorded.result.completed)
            return std::nullopt;    // budget-bound; nothing to time

        MainMemory emem;
        prog.loadInto(emem);
        MultithreadedProcessor exec(prog, emem, ccfg);
        const RunStats a = exec.run();

        RunStats b;
        try {
            MainMemory rmem;
            prog.loadInto(rmem);
            MultithreadedProcessor rep(prog, rmem, ccfg);
            rep.setReplayTrace(&recorded.trace);
            b = rep.run();
        } catch (const ReplayDivergence &) {
            // Legitimately non-replayable (interleaving-dependent
            // control flow); production code falls back to execute
            // mode, so there is nothing to compare.
            return std::nullopt;
        }
        const std::string ja = statsToJson(a).dump();
        const std::string jb = statsToJson(b).dump();
        if (ja != jb) {
            return Divergence{
                cell, cell,
                "replay timing mismatch: execute " + ja +
                    " vs replay " + jb};
        }
    } catch (const FatalError &) {
        // Trapping programs are covered by the architectural grid;
        // trap parity is checked there.
    } catch (const PanicError &) {
    }
    return std::nullopt;
}

std::optional<Divergence>
checkManyCoreDeterminism(const Program &prog,
                         const GenFeatures &features,
                         const OracleBudget &budget)
{
    // Same gating as the single-core remote cell: remote traps
    // rebind contexts across slots, which permutes queue rings and
    // priority ring heads.
    if (features.usesQueues() || features.priority)
        return std::nullopt;

    RunConfig cell;     // for reports only
    cell.engine = Engine::Core;
    cell.slots = 4;
    cell.remote = true;

    MachineConfig mcfg;
    mcfg.num_cores = 2;
    mcfg.core.num_slots = cell.slots;
    mcfg.core.max_cycles = budget.max_cycles;
    mcfg.core.remote.base = prog.symbol("table");
    mcfg.core.remote.size = 64;
    mcfg.core.num_frames = mcfg.core.num_slots + 1;

    auto capture = [&](int host_threads, MachineStats *stats,
                       std::vector<EngineState> *cores) {
        ManyCoreMachine m(prog, mcfg);
        *stats = m.run(host_threads);
        for (int c = 0; c < m.numCores(); ++c) {
            EngineState st;
            st.finished = (*stats).cores[c].finished;
            st.instructions = (*stats).cores[c].instructions;
            for (int t = 0; t < mcfg.core.num_slots; ++t) {
                std::array<std::uint32_t, kNumRegs> ir{};
                std::array<std::uint64_t, kNumRegs> fr{};
                for (int i = 0; i < kNumRegs; ++i) {
                    ir[i] = m.core(c).intReg(
                        t, static_cast<RegIndex>(i));
                    fr[i] = fpBits(m.core(c).fpReg(
                        t, static_cast<RegIndex>(i)));
                }
                st.iregs.push_back(ir);
                st.fregs.push_back(fr);
            }
            captureMemory(prog, m.memory(c), st);
            cores->push_back(std::move(st));
        }
    };

    try {
        MachineStats sa, sb;
        std::vector<EngineState> ca, cb;
        capture(0, &sa, &ca);   // sequential reference schedule
        capture(2, &sb, &cb);   // one host thread per core
        if (!machineStatsEqual(sa, sb)) {
            return Divergence{
                cell, cell,
                "manycore schedule divergence: sequential " +
                    machineStatsToJson(sa).dump() + " vs threaded " +
                    machineStatsToJson(sb).dump()};
        }
        for (std::size_t c = 0; c < ca.size(); ++c) {
            const std::string diff = diffStates(ca[c], cb[c], false);
            if (!diff.empty()) {
                return Divergence{cell, cell,
                                  "manycore schedule divergence: "
                                  "core " +
                                      std::to_string(c) + ": " +
                                      diff};
            }
        }
    } catch (const FatalError &) {
        // Trap parity across schedules is uninteresting here; the
        // architectural grid covers trapping programs.
    } catch (const PanicError &) {
    }
    return std::nullopt;
}

std::optional<Divergence>
checkProgram(const Program &prog, const GenFeatures &features,
             const OracleBudget &budget)
{
    // Each reference state is computed once per slot count.
    std::vector<std::pair<RunConfig, RunConfig>> grid =
        buildGrid(features);
    std::vector<std::pair<std::string, EngineState>> ref_cache;
    for (const auto &[ref, cfg] : grid) {
        const std::string key = ref.name();
        const EngineState *ref_state = nullptr;
        for (const auto &[k, st] : ref_cache) {
            if (k == key) {
                ref_state = &st;
                break;
            }
        }
        if (!ref_state) {
            ref_cache.emplace_back(key, runEngine(prog, ref, budget));
            ref_state = &ref_cache.back().second;
        }
        const EngineState got = runEngine(prog, cfg, budget);
        const std::string diff =
            diffStates(*ref_state, got, features.usesQueues());
        if (!diff.empty())
            return Divergence{ref, cfg, diff};
    }
    if (auto div = checkReplayTiming(prog, features, budget))
        return div;
    return checkManyCoreDeterminism(prog, features, budget);
}

} // namespace smtsim::fuzz
