/**
 * @file
 * The paper's motivating workload: render a sphere scene on the
 * multithreaded processor, print the image as ASCII art, and show
 * how the speed-up scales with thread slots (the Table 2
 * experiment in miniature).
 */

#include <cstdio>

#include "core/processor.hh"
#include "harness/runner.hh"

using namespace smtsim;

int
main()
{
    RayTraceParams params;
    params.width = 48;
    params.height = 24;
    params.num_spheres = 5;
    params.seed = 42;
    const Workload ray = makeRayTrace(params);

    // Render once on the core and show the image.
    MainMemory mem;
    ray.program.loadInto(mem);
    ray.init(mem);
    CoreConfig cfg;
    cfg.num_slots = 4;
    cfg.fus.load_store = 2;
    MultithreadedProcessor cpu(ray.program, mem, cfg);
    const RunStats stats = cpu.run();

    std::string why;
    if (!stats.finished || !ray.check(mem, &why)) {
        std::fprintf(stderr, "render failed: %s\n", why.c_str());
        return 1;
    }

    const char *shades = " .:-=+*#%@";
    const Addr image = ray.program.symbol("image");
    for (int y = 0; y < params.height; ++y) {
        for (int x = 0; x < params.width; ++x) {
            const std::uint32_t v = mem.read32(
                image +
                static_cast<Addr>(4 * (y * params.width + x)));
            const int shade =
                std::min<std::uint32_t>(v, 255) * 9 / 255;
            std::putchar(shades[shade]);
        }
        std::putchar('\n');
    }
    std::printf("\nrendered %dx%d pixels in %llu cycles on "
                "4 thread slots\n\n",
                params.width, params.height,
                (unsigned long long)stats.cycles);

    // Scaling study.
    const Outcome base = runBaseline(ray);
    std::printf("%-18s %12s %10s\n", "configuration", "cycles",
                "speed-up");
    std::printf("%-18s %12llu %10s\n", "baseline RISC",
                (unsigned long long)base.stats.cycles, "1.00");
    for (int slots : {1, 2, 4, 8}) {
        CoreConfig c;
        c.num_slots = slots;
        c.fus.load_store = 2;
        const Outcome o = runCore(ray, c);
        if (!o.ok) {
            std::fprintf(stderr, "%s\n", o.error.c_str());
            return 1;
        }
        std::printf("%-15s %2d %12llu %9.2fx\n", "core, slots =",
                    slots, (unsigned long long)o.stats.cycles,
                    speedup(base.stats, o.stats));
    }
    return 0;
}
