/**
 * @file
 * Eager execution of a sequential while loop (sections 2.3.3 and
 * 3.5): the Figure 6 linked-list traversal is parallelized across
 * logical processors, with ptr relayed through queue registers and
 * the loop exit killing the speculative iterations — a loop that
 * vector and VLIW machines cannot parallelize.
 */

#include <cstdio>

#include "harness/runner.hh"

using namespace smtsim;

int
main()
{
    constexpr int kNodes = 300;

    ListWalkParams params;
    params.num_nodes = kNodes;

    // Sequential reference on the base RISC machine.
    const Workload seq = makeListWalk(params);
    const Outcome base = runBaseline(seq);
    if (!base.ok) {
        std::fprintf(stderr, "%s\n", base.error.c_str());
        return 1;
    }
    std::printf("sequential: %llu cycles (%.2f per iteration)\n\n",
                (unsigned long long)base.stats.cycles,
                static_cast<double>(base.stats.cycles) / kNodes);

    // Eager version: the same loop, one iteration per logical
    // processor.
    params.eager = true;
    const Workload eager = makeListWalk(params);

    std::printf("%6s %12s %14s %10s\n", "slots", "cycles",
                "cycles/iter", "speed-up");
    for (int slots : {1, 2, 3, 4, 6, 8}) {
        CoreConfig cfg;
        cfg.num_slots = slots;
        cfg.rotation_mode = RotationMode::Explicit;
        const Outcome o = runCore(eager, cfg);
        if (!o.ok) {
            std::fprintf(stderr, "slots %d: %s\n", slots,
                         o.error.c_str());
            return 1;
        }
        std::printf("%6d %12llu %14.2f %9.2fx\n", slots,
                    (unsigned long long)o.stats.cycles,
                    static_cast<double>(o.stats.cycles) / kNodes,
                    speedup(base.stats, o.stats));
    }

    std::printf("\nthe speed-up saturates at the loop-carried "
                "ptr = ptr->next recurrence,\nas in the paper's "
                "Table 5\n");

    // A run that takes the break: sequential semantics preserved.
    params.break_at = 123;
    const Workload brk = makeListWalk(params);
    CoreConfig cfg;
    cfg.num_slots = 4;
    cfg.rotation_mode = RotationMode::Explicit;
    const Outcome o = runCore(brk, cfg);
    std::printf("\nwith a data-dependent break at node 123: %s\n",
                o.ok ? "sequential semantics preserved"
                     : o.error.c_str());
    return o.ok ? 0 : 1;
}
