/**
 * @file
 * Concurrent multithreading (section 2.1.3): context frames
 * outnumber thread slots; a data-absence trap on a remote-memory
 * access switches the logical processor to another resident
 * context, hiding the remote latency.
 */

#include <cstdio>

#include "asmr/assembler.hh"
#include "core/processor.hh"
#include "mem/memory.hh"

using namespace smtsim;

namespace
{

constexpr Addr kRemoteBase = 0x00400000;
constexpr int kWords = 32;

const char *kWorker = R"(
main:   blez r2, done
loop:   lw   r3, 0(r1)          # remote load: may trap
        add  r4, r4, r3
        addi r1, r1, 4
        addi r2, r2, -1
        bgtz r2, loop
        sw   r4, 0(r6)
done:   halt
        .data
outs:   .word 0,0,0,0,0,0,0,0
)";

} // namespace

int
main()
{
    const Program prog = assemble(kWorker);
    const Cycle remote_latency = 250;

    std::printf("fixed work: 8 contexts of %d remote words each; "
                "2 thread slots; remote latency %llu cycles\n\n",
                kWords, (unsigned long long)remote_latency);
    std::printf("%8s %10s %14s %10s\n", "frames", "resident",
                "total cycles", "switches");

    constexpr int kTotalContexts = 8;
    for (int frames : {3, 5, 9}) {
        // Only frames-1 worker contexts fit at once; the rest run
        // in later batches (as an OS would schedule them).
        const int resident = frames - 1;
        Cycle total = 0;
        std::uint64_t switches = 0;
        for (int base_ctx = 0; base_ctx < kTotalContexts;
             base_ctx += resident) {
            MainMemory mem;
            prog.loadInto(mem);
            for (int i = 0; i < kWords * kTotalContexts; ++i) {
                mem.write32(
                    kRemoteBase + static_cast<Addr>(4 * i),
                    static_cast<std::uint32_t>(i));
            }

            CoreConfig cfg;
            cfg.num_slots = 2;
            cfg.num_frames = frames;
            cfg.remote.base = kRemoteBase;
            cfg.remote.size = 0x100000;
            cfg.remote.latency = remote_latency;

            MultithreadedProcessor cpu(prog, mem, cfg);
            const int batch = std::min(resident,
                                       kTotalContexts - base_ctx);
            for (int c = 0; c < batch; ++c) {
                std::array<std::uint32_t, kNumRegs> regs{};
                regs[1] = kRemoteBase + static_cast<Addr>(
                                            4 * (base_ctx + c) *
                                            kWords);
                regs[2] = kWords;
                regs[6] = prog.symbol("outs") +
                          static_cast<Addr>(4 * (base_ctx + c));
                cpu.spawnContext(prog.entry, regs);
            }
            const RunStats stats = cpu.run();
            total += stats.cycles;
            switches += stats.context_switches;
        }
        std::printf("%8d %10d %14llu %10llu\n", frames, resident,
                    (unsigned long long)total,
                    (unsigned long long)switches);
    }

    std::printf("\nmore resident contexts -> the slots stay busy "
                "across data-absence traps\n(the mechanism the "
                "paper describes but leaves unevaluated)\n");
    return 0;
}
