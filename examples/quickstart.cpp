/**
 * @file
 * Quickstart: assemble a small multithreaded program, run it on the
 * multithreaded core and on the sequential baseline, and inspect
 * the statistics.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "asmr/assembler.hh"
#include "baseline/baseline.hh"
#include "core/processor.hh"
#include "mem/memory.hh"

using namespace smtsim;

namespace
{

// A parallel dot product: FASTFORK starts a thread on every slot;
// each thread accumulates a strided slice and stores a partial sum.
const char *kProgram = R"(
        .text
main:   la   r1, vec_a
        la   r2, vec_b
        la   r3, partials
        li   r4, 64             # elements
        fastfork                # activate all thread slots
        tid  r5                 # my logical processor id
        nslot r6                # number of logical processors
        sll  r7, r5, 3          # byte offset of my first element
        add  r1, r1, r7
        add  r2, r2, r7
        sll  r8, r6, 3          # stride in bytes
        sub  r4, r4, r5
        add  r4, r4, r6
        addi r4, r4, -1
        divq r4, r4, r6         # my iteration count
loop:   lf   f1, 0(r1)
        lf   f2, 0(r2)
        fmul f3, f1, f2
        fadd f4, f4, f3
        add  r1, r1, r8
        add  r2, r2, r8
        addi r4, r4, -1
        bgtz r4, loop
        sll  r9, r5, 3
        add  r9, r3, r9
        sf   f4, 0(r9)          # store my partial sum
        halt
        .data
        .align 8
partials: .space 64
vec_a:  .float 1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8
        .float 1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8
        .float 1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8
        .float 1,2,3,4,5,6,7,8,1,2,3,4,5,6,7,8
vec_b:  .float 2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2
        .float 2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2
        .float 2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2
        .float 2,2,2,2,2,2,2,2,2,2,2,2,2,2,2,2
)";

} // namespace

int
main()
{
    const Program prog = assemble(kProgram);

    // --- Multithreaded core: 4 thread slots ----------------------
    MainMemory mem;
    prog.loadInto(mem);
    CoreConfig cfg;
    cfg.num_slots = 4;
    MultithreadedProcessor cpu(prog, mem, cfg);
    const RunStats stats = cpu.run();

    double total = 0;
    for (int t = 0; t < cfg.num_slots; ++t) {
        total += mem.readDouble(prog.symbol("partials") +
                                static_cast<Addr>(8 * t));
    }
    std::printf("dot product          = %.1f (expected 576)\n",
                total);
    std::printf("core cycles          = %llu\n",
                (unsigned long long)stats.cycles);
    std::printf("core instructions    = %llu\n",
                (unsigned long long)stats.instructions);
    std::printf("busiest FU util      = %.1f%%\n",
                stats.busiestUnitUtilization());

    // --- Sequential baseline (the fork degenerates) --------------
    MainMemory bmem;
    prog.loadInto(bmem);
    BaselineProcessor base(prog, bmem);
    const RunStats bstats = base.run();
    std::printf("baseline cycles      = %llu\n",
                (unsigned long long)bstats.cycles);
    std::printf("speed-up (4 slots)   = %.2fx\n",
                static_cast<double>(bstats.cycles) /
                    static_cast<double>(stats.cycles));
    return 0;
}
