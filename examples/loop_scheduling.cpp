/**
 * @file
 * Static code scheduling for parallel loop execution (sections
 * 2.3.2 and 3.4): shows the Livermore Kernel 1 loop body before and
 * after strategy A (list scheduling) and strategy B (reservation
 * table + standby table), then measures cycles per iteration on the
 * multithreaded core in explicit-rotation mode.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "isa/insn.hh"
#include "sched/list_scheduler.hh"
#include "sched/standby_scheduler.hh"

using namespace smtsim;

namespace
{

void
printBody(const char *title, const std::vector<Insn> &body)
{
    std::printf("%s:\n", title);
    for (const Insn &insn : body)
        std::printf("    %s\n", disassemble(insn).c_str());
    std::printf("\n");
}

double
cyclesPerIter(const Workload &w, int slots)
{
    CoreConfig cfg;
    cfg.num_slots = slots;
    cfg.rotation_mode = RotationMode::Explicit;
    const Outcome o = runCore(w, cfg);
    if (!o.ok) {
        std::fprintf(stderr, "%s\n", o.error.c_str());
        std::exit(1);
    }
    return static_cast<double>(o.stats.cycles);
}

} // namespace

int
main()
{
    const std::vector<Insn> body = lk1LoopBody();
    printBody("Livermore Kernel 1 body (source order)", body);

    const ScheduleResult a = listSchedule(body);
    printBody("strategy A (list scheduling)", a.order);
    std::printf("strategy A estimated length: %d cycles\n\n",
                a.length);

    StandbySchedulerConfig bcfg;
    bcfg.num_slots = 4;
    const ScheduleResult b = standbySchedule(body, bcfg);
    printBody("strategy B (reservation + standby tables, 4 slots)",
              b.order);
    std::printf("strategy B estimated length: %d cycles\n\n",
                b.length);

    constexpr int kIters = 256;
    Lk1Params params;
    params.n = kIters;
    params.parallel = true;

    const Workload plain = makeLivermore1(params);
    const Workload wa = makeLivermore1(params, &a.order);
    const Workload wb = makeLivermore1(params, &b.order);

    std::printf("%6s %15s %12s %12s   (cycles/iteration)\n",
                "slots", "non-optimized", "strategy A",
                "strategy B");
    for (int slots : {1, 2, 4, 8}) {
        // Strategy B's reservation table is built per slot count.
        StandbySchedulerConfig sc;
        sc.num_slots = slots;
        const ScheduleResult bs = standbySchedule(body, sc);
        const Workload wbs = makeLivermore1(params, &bs.order);
        std::printf("%6d %15.2f %12.2f %12.2f\n", slots,
                    cyclesPerIter(plain, slots) / kIters,
                    cyclesPerIter(wa, slots) / kIters,
                    cyclesPerIter(wbs, slots) / kIters);
    }
    std::printf("\nfloor: 4 memory ops x issue latency 2 = 8 "
                "cycles/iteration on one load/store unit\n");
    return 0;
}
