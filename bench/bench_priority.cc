/**
 * @file
 * Figure 4 — the dynamic instruction selection policy of the
 * instruction schedule units, demonstrated directly: three thread
 * slots (A, B, C) submit an ALU instruction every cycle; the
 * schedule unit grants by rotating multi-level priority. The grant
 * sequence printed here is the figure's pattern.
 */

#include <cstdio>
#include <vector>

#include "core/schedule.hh"

using namespace smtsim;

int
main()
{
    constexpr int kSlots = 3;
    constexpr int kRotation = 4;    // rotate priorities every 4 cyc

    ScheduleUnit alu(FuClass::IntAlu, 1, kSlots);
    std::vector<int> ring = {0, 1, 2};

    std::printf("Figure 4: rotating-priority selection "
                "(3 thread slots, 1 ALU, rotation interval %d)\n\n",
                kRotation);
    std::printf("cycle | priority order | granted\n");
    std::printf("------+----------------+--------\n");

    const char *names = "ABC";
    for (Cycle c = 1; c <= 16; ++c) {
        // Every slot re-submits if its standby station is free
        // (instructions stream in continuously).
        for (int s = 0; s < kSlots; ++s) {
            if (!alu.slotBusy(s)) {
                IssuedOp op;
                op.insn.op = Op::ADD;
                op.slot = s;
                op.arrive = c;
                alu.submit(std::move(op));
            }
        }
        const auto grants = alu.select(c, ring);
        std::printf("%5llu | %c > %c > %c      |",
                    (unsigned long long)c, names[ring[0]],
                    names[ring[1]], names[ring[2]]);
        for (const Grant &g : grants)
            std::printf(" %c", names[g.op.slot]);
        std::printf("\n");

        if (c % kRotation == 0) {
            ring.push_back(ring.front());
            ring.erase(ring.begin());
            std::printf("      | (rotate: lowest priority to the "
                        "previous top)\n");
        }
    }

    std::printf("\nEvery slot receives the grant while it holds "
                "the highest priority;\nrotation prevents "
                "starvation, as in the paper's Figure 4.\n");
    return 0;
}
