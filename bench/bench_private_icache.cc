/**
 * @file
 * Section 3.2's private instruction cache experiment: thread slots
 * with private instruction caches and fetch units versus the shared
 * organization. The paper reports a barely measurable gain
 * (1.79 -> 1.80 at 2 slots, 5.79 -> 5.80 at 8), concluding that
 * sharing one instruction cache between thread slots is possible.
 */

#include "bench_common.hh"

using namespace smtsim;
using namespace smtsim::bench;

int
main()
{
    const Workload ray = standardRayTrace();
    const RunStats base =
        mustRun(runBaseline(ray), "baseline raytrace");

    TextTable table("Private vs shared instruction cache / fetch "
                    "unit (ray tracing)");
    table.addRow({"slots", "ls units", "shared speed-up",
                  "private speed-up", "gain %"});

    for (int lsu : {1, 2}) {
        for (int slots : {2, 4, 8}) {
            CoreConfig cfg;
            cfg.num_slots = slots;
            cfg.fus.load_store = lsu;

            const RunStats shared =
                mustRun(runCore(ray, cfg), "shared icache");
            cfg.private_icache = true;
            const RunStats priv =
                mustRun(runCore(ray, cfg), "private icache");

            const double su_shared = speedup(base, shared);
            const double su_priv = speedup(base, priv);
            table.addRow(
                {std::to_string(slots), std::to_string(lsu),
                 fmt(su_shared), fmt(su_priv),
                 fmt(100.0 * (su_priv / su_shared - 1.0), 2)});
        }
    }
    table.print(std::cout);
    std::printf("\npaper: 1.79->1.80 and 5.79->5.80; instruction "
                "fetch conflicts are hidden\n");
    return 0;
}
