/**
 * @file
 * Many-core simulation-throughput benchmarks (google-benchmark):
 * how fast the host simulates an N-core machine, and how well the
 * quantum-parallel host loop scales from 1 to 8 host threads. Not a
 * paper experiment — this tracks whether the reproduction can reach
 * the paper's intended scale (hundreds of logical processors) at a
 * usable speed.
 *
 * Rows are BM_ManyCore/<cores>/<host_threads>. The 16-core rows at
 * 1/2/4/8 host threads feed scripts/bench_manycore.sh, which
 * records BENCH_manycore.json and fails when the 4-thread parallel
 * efficiency drops below a floor. The 64-core/8-slot row is the
 * headline scale: 512 logical processors in one machine.
 *
 * Every row couples the cores through the shared L2 (the workload's
 * data segment is the remote region), so the barrier/fold machinery
 * is on the measured path — an uncoupled machine would parallelize
 * trivially and measure nothing.
 */

#include <benchmark/benchmark.h>

#include "machine/manycore.hh"
#include "workloads/workloads.hh"

using namespace smtsim;

namespace
{

Workload
benchWorkload()
{
    MatmulParams p;
    p.n = 8;
    return makeMatmul(p);
}

MachineConfig
benchConfig(const Workload &w, int cores)
{
    MachineConfig cfg;
    cfg.num_cores = cores;
    cfg.core.num_slots = 8;
    cfg.core.num_frames = 10;   // concurrent MT over the stalls
    cfg.core.fus.load_store = 2;
    cfg.core.max_cycles = 5'000'000;
    cfg.core.remote.base = w.program.data_base;
    cfg.core.remote.size =
        static_cast<Addr>(w.program.data.size());
    // Paper-scale remote latency (bench_simspeed's concurrent-MT
    // row uses 200-800 cycles). The long minimum latency also means
    // long barrier quanta — the work between barriers, not the
    // barrier itself, should dominate.
    cfg.noc.l2_access_cycles = 200;
    cfg.noc.hop_latency = 8;
    return cfg;
}

} // namespace

static void
BM_ManyCore(benchmark::State &state)
{
    const int cores = static_cast<int>(state.range(0));
    const int host_threads = static_cast<int>(state.range(1));
    const Workload w = benchWorkload();
    const MachineConfig cfg = benchConfig(w, cores);
    const auto init = [&w](int, MainMemory &mem) {
        if (w.init)
            w.init(mem);
    };

    std::uint64_t machine_cycles = 0, core_cycles = 0, insns = 0;
    for (auto _ : state) {
        ManyCoreMachine m(w.program, cfg, init);
        const MachineStats s = m.run(host_threads);
        machine_cycles += s.cycles;
        for (const RunStats &cs : s.cores) {
            core_cycles += cs.cycles;
            insns += cs.instructions;
        }
        benchmark::DoNotOptimize(s.cycles);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(machine_cycles),
        benchmark::Counter::kIsRate);
    // Aggregate per-core cycle throughput: the number that should
    // scale with host threads.
    state.counters["corecycles/s"] = benchmark::Counter(
        static_cast<double>(core_cycles),
        benchmark::Counter::kIsRate);
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(insns) / 1e6,
        benchmark::Counter::kIsRate);
    state.counters["logical_processors"] =
        static_cast<double>(cores * cfg.core.num_slots);
}
BENCHMARK(BM_ManyCore)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Args({64, 8})     // 512 logical processors
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
