/**
 * @file
 * Table 1 — "Functional unit and issue/result latencies of
 * instructions". Not an experiment: prints the configuration this
 * reproduction uses, marking the rows reconstructed from garbled
 * scan text (see DESIGN.md section 2).
 */

#include <iostream>

#include "base/table.hh"
#include "isa/op.hh"
#include "machine/fu_pool.hh"

using namespace smtsim;

int
main()
{
    TextTable table("Table 1: functional units and issue/result "
                    "latencies");
    table.addRow({"functional unit", "category", "issue", "result",
                  "source"});

    struct Row
    {
        Op op;
        const char *category;
        const char *source;
    };
    const Row rows[] = {
        {Op::ADD, "add/subtract", "paper"},
        {Op::AND_, "logical", "paper"},
        {Op::SLT, "compare", "paper"},
        {Op::SLL, "shift", "paper"},
        {Op::MUL, "multiply", "paper"},
        {Op::DIVQ, "divide", "paper"},
        {Op::FADD, "fp add/subtract", "paper"},
        {Op::FCMPLT, "fp compare", "paper"},
        {Op::FABS, "fp absolute/negate", "paper"},
        {Op::FMUL, "fp multiply", "reconstructed"},
        {Op::FDIV, "fp divide", "reconstructed"},
        {Op::FSQRT, "fp square root", "reconstructed"},
        {Op::LW, "load", "paper(issue)/reconstructed(result)"},
        {Op::SW, "store", "paper(issue)/reconstructed(result)"},
    };
    for (const Row &row : rows) {
        const OpMeta &meta = opMeta(row.op);
        table.addRow({fuClassName(meta.fu), row.category,
                      std::to_string(meta.issue_latency),
                      std::to_string(meta.result_latency),
                      row.source});
    }
    table.print(std::cout);

    FuPoolConfig seven;
    FuPoolConfig eight;
    eight.load_store = 2;
    std::cout << "\nconfigurations: " << seven.total()
              << " heterogeneous units (one load/store unit), or "
              << eight.total()
              << " units with the second load/store unit\n";
    return 0;
}
