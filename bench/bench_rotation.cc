/**
 * @file
 * Section 3.2's rotation-interval sweep: execution cycles of the
 * ray tracer for rotation intervals 2^n, n = 0..8. The paper found
 * the interval "did not have much influence", with 8 or 16 cycles
 * slightly superior.
 */

#include "bench_common.hh"

using namespace smtsim;
using namespace smtsim::bench;

int
main()
{
    const Workload ray = standardRayTrace();

    TextTable table("Rotation-interval sweep (ray tracing, "
                    "4 slots, 2 load/store units)");
    table.addRow({"interval (cycles)", "cycles", "vs best"});

    struct Point
    {
        int interval;
        Cycle cycles;
    };
    std::vector<Point> points;
    Cycle best = kNeverCycle;
    for (int n = 0; n <= 8; ++n) {
        const int interval = 1 << n;
        CoreConfig cfg;
        cfg.num_slots = 4;
        cfg.fus.load_store = 2;
        cfg.rotation_interval = interval;
        const RunStats s =
            mustRun(runCore(ray, cfg),
                    "interval " + std::to_string(interval));
        points.push_back({interval, s.cycles});
        best = std::min(best, s.cycles);
    }
    for (const Point &pt : points) {
        const double rel = 100.0 *
                           (static_cast<double>(pt.cycles) -
                            static_cast<double>(best)) /
                           static_cast<double>(best);
        table.addRow({std::to_string(pt.interval),
                      std::to_string(pt.cycles),
                      "+" + fmt(rel, 2) + "%"});
    }
    table.print(std::cout);
    std::printf("\npaper: little influence; 8 or 16 cycles "
                "slightly superior\n");
    return 0;
}
