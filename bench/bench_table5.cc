/**
 * @file
 * Table 5 — "Evaluation of eager execution of sequential loop
 * iterations": the Figure 6 linked-list while loop, one iteration
 * per logical processor, ptr relayed through queue registers.
 *
 * The paper: 56 cycles/iteration sequentially; 32.5 / 21.67 / 17
 * cycles per iteration with 2 / 3 / 4 thread slots, saturating at
 * the loop-carried ptr->next recurrence.
 */

#include "bench_common.hh"

using namespace smtsim;
using namespace smtsim::bench;

namespace
{

double
paperValue(int slots)
{
    if (slots == 2) return 32.5;
    if (slots == 3) return 21.67;
    if (slots >= 4) return 17.0;
    return 0.0;
}

} // namespace

int
main()
{
    constexpr int kNodes = 400;

    ListWalkParams p;
    p.num_nodes = kNodes;

    const Workload seq = makeListWalk(p);
    const RunStats base =
        mustRun(runBaseline(seq), "sequential list walk");
    const double seq_per_iter =
        static_cast<double>(base.cycles) / kNodes;
    std::printf("sequential execution: %s cycles/iteration "
                "(paper: 56)\n\n",
                fmt(seq_per_iter).c_str());

    p.eager = true;
    const Workload eager = makeListWalk(p);

    TextTable table("Table 5: eager execution of sequential loop "
                    "iterations (cycles per iteration)");
    table.addRow({"thread slots", "cycles/iteration", "paper",
                  "speed-up vs sequential"});

    for (int slots : {1, 2, 3, 4, 6, 8}) {
        CoreConfig cfg;
        cfg.num_slots = slots;
        cfg.rotation_mode = RotationMode::Explicit;
        const RunStats s = mustRun(runCore(eager, cfg),
                                   "eager " + std::to_string(slots));
        const double per_iter =
            static_cast<double>(s.cycles) / kNodes;
        const double paper = paperValue(slots);
        table.addRow({std::to_string(slots), fmt(per_iter),
                      paper > 0 ? fmt(paper) : "-",
                      fmt(seq_per_iter / per_iter)});
    }
    table.print(std::cout);
    std::printf("\nsaturation: the inter-iteration dependence on "
                "ptr->next bounds the speed-up\n");
    return 0;
}
