/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): how many
 * simulated cycles and instructions per second each engine
 * achieves. Not a paper experiment — this tracks the usability of
 * the reproduction itself, and seeds the perf trajectory recorded
 * in EXPERIMENTS.md ("simulator throughput").
 *
 * Representative configs:
 *  - interpreter (functional oracle, 1 thread),
 *  - baseline RISC,
 *  - multithreaded core at 1/4/8 slots (dense issue),
 *  - concurrent multithreading with a 200-cycle remote-memory
 *    latency (the config dominated by idle cycles, where the
 *    fast-forward event model matters most).
 *
 * Every engine config reports simulated cycles/s and MIPS
 * (millions of simulated instructions per second).
 *
 * scripts/bench_simspeed.sh runs this binary and emits
 * BENCH_simspeed.json for before/after tracking.
 */

#include <benchmark/benchmark.h>

#include "asmr/assembler.hh"
#include "baseline/baseline.hh"
#include "core/processor.hh"
#include "fastpath/engine.hh"
#include "interp/interpreter.hh"
#include "obs/event.hh"
#include "trace/synth.hh"
#include "workloads/workloads.hh"

using namespace smtsim;

namespace
{

Program
benchKernel(bool parallel)
{
    SynthParams p;
    p.seed = 101;
    p.iterations = 256;
    p.insns_per_block = 32;
    p.parallel = parallel;
    return makeSyntheticKernel(p);
}

/** The remote-memory worker of bench_concurrent, reduced. */
constexpr Addr kRemoteBase = 0x00400000;
constexpr int kWordsPerCtx = 24;
constexpr int kRemoteContexts = 8;

const char *kRemoteWorker = R"(
main:   blez r2, done
loop:   lw   r3, 0(r1)
        add  r4, r4, r3
        mul  r5, r4, r3
        xor  r5, r5, r4
        addi r1, r1, 4
        addi r2, r2, -1
        bgtz r2, loop
        sw   r4, 0(r6)
done:   halt
        .data
outs:   .word 0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0
)";

void
reportRates(benchmark::State &state, std::uint64_t cycles,
            std::uint64_t insns)
{
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(insns) / 1e6,
        benchmark::Counter::kIsRate);
}

} // namespace

static void
BM_Interpreter(benchmark::State &state)
{
    const Program prog = benchKernel(false);
    std::uint64_t insns = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        Interpreter interp(prog, mem);
        const InterpResult r = interp.run();
        insns += r.steps;
        benchmark::DoNotOptimize(r.steps);
    }
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(insns) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Interpreter);

static void
BM_Fastpath(benchmark::State &state)
{
    // The BM_Interpreter shape on the threaded-code engine —
    // scripts/bench_simspeed.sh asserts the MIPS ratio between the
    // two rows stays >= 3x (docs/PERF.md).
    const Program prog = benchKernel(false);
    std::uint64_t insns = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        fastpath::FastEngine fast(prog, mem);
        const InterpResult r = fast.run();
        insns += r.steps;
        benchmark::DoNotOptimize(r.steps);
    }
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(insns) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fastpath);

static void
BM_FastpathTraced(benchmark::State &state)
{
    // Same kernel with full trace recording (branches, memory
    // addresses, queue pushes) into an in-memory ExecTrace.
    const Program prog = benchKernel(false);
    std::uint64_t insns = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        const fastpath::TracedRun tr =
            fastpath::recordTrace(prog, mem);
        insns += tr.result.steps;
        benchmark::DoNotOptimize(tr.trace.threads.size());
    }
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(insns) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FastpathTraced);

static void
BM_FastpathStreaming(benchmark::State &state)
{
    // Trace recording through the bounded SPSC ring with the
    // drain on this thread — the shape the lab executor uses.
    const Program prog = benchKernel(false);
    std::uint64_t insns = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        const fastpath::TracedRun tr =
            fastpath::recordTraceStreaming(prog, mem);
        insns += tr.result.steps;
        benchmark::DoNotOptimize(tr.trace.threads.size());
    }
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(insns) / 1e6,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FastpathStreaming);

static void
BM_CoreReplay(benchmark::State &state)
{
    // The timing half of the functional-first pipeline: the
    // BM_Core/4 shape driven in verified replay mode from a
    // pre-recorded trace.
    const Program prog = benchKernel(true);
    CoreConfig cfg;
    cfg.num_slots = 4;
    cfg.fus.load_store = 2;
    InterpConfig icfg;
    icfg.num_threads = cfg.num_slots;
    icfg.queue_depth = cfg.queue_reg_depth;
    MainMemory fmem;
    prog.loadInto(fmem);
    const fastpath::TracedRun recorded =
        fastpath::recordTrace(prog, fmem, icfg);
    std::uint64_t cycles = 0, insns = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        MultithreadedProcessor cpu(prog, mem, cfg);
        cpu.setReplayTrace(&recorded.trace);
        const RunStats s = cpu.run();
        cycles += s.cycles;
        insns += s.instructions;
        benchmark::DoNotOptimize(s.cycles);
    }
    reportRates(state, cycles, insns);
}
BENCHMARK(BM_CoreReplay);

static void
BM_Baseline(benchmark::State &state)
{
    const Program prog = benchKernel(false);
    std::uint64_t cycles = 0, insns = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        BaselineProcessor cpu(prog, mem);
        const RunStats s = cpu.run();
        cycles += s.cycles;
        insns += s.instructions;
        benchmark::DoNotOptimize(s.cycles);
    }
    reportRates(state, cycles, insns);
}
BENCHMARK(BM_Baseline);

static void
BM_Core(benchmark::State &state)
{
    const Program prog = benchKernel(true);
    CoreConfig cfg;
    cfg.num_slots = static_cast<int>(state.range(0));
    cfg.fus.load_store = 2;
    std::uint64_t cycles = 0, insns = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        MultithreadedProcessor cpu(prog, mem, cfg);
        const RunStats s = cpu.run();
        cycles += s.cycles;
        insns += s.instructions;
        benchmark::DoNotOptimize(s.cycles);
    }
    reportRates(state, cycles, insns);
}
BENCHMARK(BM_Core)->Arg(1)->Arg(4)->Arg(8);

namespace
{

/** Cheapest possible sink: measures the event layer itself, not a
 *  backend format. */
class CountingSink : public obs::EventSink
{
  public:
    void event(const obs::Event &ev) override
    {
        count_ += ev.cycle | 1;    // defeat dead-code elimination
    }
    std::uint64_t count() const { return count_; }

  private:
    std::uint64_t count_ = 0;
};

/** Shared body of the tracing-overhead pair: the BM_Core/4 shape,
 *  with or without an event sink attached. scripts/
 *  bench_simspeed.sh asserts TraceOff stays within 2% of BM_Core/4
 *  (the disabled event layer must cost one dead branch per
 *  would-be event, nothing more). */
void
runCoreTraceBench(benchmark::State &state, bool traced)
{
    const Program prog = benchKernel(true);
    CoreConfig cfg;
    cfg.num_slots = 4;
    cfg.fus.load_store = 2;
    std::uint64_t cycles = 0, insns = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        MultithreadedProcessor cpu(prog, mem, cfg);
        CountingSink sink;
        if (traced)
            cpu.setEventSink(&sink);
        const RunStats s = cpu.run();
        cycles += s.cycles;
        insns += s.instructions;
        benchmark::DoNotOptimize(s.cycles);
        benchmark::DoNotOptimize(sink.count());
    }
    reportRates(state, cycles, insns);
}

} // namespace

static void
BM_CoreTraceOff(benchmark::State &state)
{
    runCoreTraceBench(state, false);
}
BENCHMARK(BM_CoreTraceOff);

static void
BM_CoreTraceOn(benchmark::State &state)
{
    runCoreTraceBench(state, true);
}
BENCHMARK(BM_CoreTraceOn);

static void
BM_CoreRemote(benchmark::State &state)
{
    const Program prog = assemble(kRemoteWorker);
    const Addr outs = prog.symbol("outs");

    CoreConfig cfg;
    cfg.num_slots = 2;
    cfg.num_frames = 10;
    cfg.remote.base = kRemoteBase;
    cfg.remote.size = 0x100000;
    cfg.remote.latency = static_cast<Cycle>(state.range(0));

    std::uint64_t cycles = 0, insns = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        for (int i = 0; i < kWordsPerCtx * kRemoteContexts; ++i) {
            mem.write32(kRemoteBase + static_cast<Addr>(4 * i),
                        static_cast<std::uint32_t>(i * 3 + 1));
        }
        MultithreadedProcessor cpu(prog, mem, cfg);
        for (int c = 0; c < kRemoteContexts; ++c) {
            std::array<std::uint32_t, kNumRegs> regs{};
            regs[1] = kRemoteBase +
                      static_cast<Addr>(4 * c * kWordsPerCtx);
            regs[2] = kWordsPerCtx;
            regs[6] = outs + static_cast<Addr>(4 * c);
            cpu.spawnContext(prog.entry, regs);
        }
        const RunStats s = cpu.run();
        cycles += s.cycles;
        insns += s.instructions;
        benchmark::DoNotOptimize(s.cycles);
    }
    reportRates(state, cycles, insns);
}
BENCHMARK(BM_CoreRemote)->Arg(200)->Arg(800);

static void
BM_RayTracePixel(benchmark::State &state)
{
    RayTraceParams p;
    p.width = 8;
    p.height = 8;
    const Workload w = makeRayTrace(p);
    CoreConfig cfg;
    cfg.num_slots = 4;
    for (auto _ : state) {
        MainMemory mem;
        w.program.loadInto(mem);
        w.init(mem);
        MultithreadedProcessor cpu(w.program, mem, cfg);
        benchmark::DoNotOptimize(cpu.run().cycles);
    }
}
BENCHMARK(BM_RayTracePixel);

static void
BM_Assembler(benchmark::State &state)
{
    SynthParams p;
    p.seed = 55;
    for (auto _ : state) {
        p.seed += 1;    // defeat caching, keep work comparable
        const Program prog = makeSyntheticKernel(p);
        benchmark::DoNotOptimize(prog.text.size());
    }
}
BENCHMARK(BM_Assembler);

BENCHMARK_MAIN();
