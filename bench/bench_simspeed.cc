/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): how many
 * simulated cycles and instructions per second each engine
 * achieves. Not a paper experiment — this tracks the usability of
 * the reproduction itself.
 */

#include <benchmark/benchmark.h>

#include "baseline/baseline.hh"
#include "core/processor.hh"
#include "interp/interpreter.hh"
#include "trace/synth.hh"
#include "workloads/workloads.hh"

using namespace smtsim;

namespace
{

Program
benchKernel(bool parallel)
{
    SynthParams p;
    p.seed = 101;
    p.iterations = 256;
    p.insns_per_block = 32;
    p.parallel = parallel;
    return makeSyntheticKernel(p);
}

} // namespace

static void
BM_Interpreter(benchmark::State &state)
{
    const Program prog = benchKernel(false);
    std::uint64_t insns = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        Interpreter interp(prog, mem);
        const InterpResult r = interp.run();
        insns += r.steps;
        benchmark::DoNotOptimize(r.steps);
    }
    state.counters["insns/s"] = benchmark::Counter(
        static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Interpreter);

static void
BM_Baseline(benchmark::State &state)
{
    const Program prog = benchKernel(false);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        BaselineProcessor cpu(prog, mem);
        const RunStats s = cpu.run();
        cycles += s.cycles;
        benchmark::DoNotOptimize(s.cycles);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Baseline);

static void
BM_Core(benchmark::State &state)
{
    const Program prog = benchKernel(true);
    CoreConfig cfg;
    cfg.num_slots = static_cast<int>(state.range(0));
    cfg.fus.load_store = 2;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        MainMemory mem;
        prog.loadInto(mem);
        MultithreadedProcessor cpu(prog, mem, cfg);
        const RunStats s = cpu.run();
        cycles += s.cycles;
        benchmark::DoNotOptimize(s.cycles);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Core)->Arg(1)->Arg(4)->Arg(8);

static void
BM_RayTracePixel(benchmark::State &state)
{
    RayTraceParams p;
    p.width = 8;
    p.height = 8;
    const Workload w = makeRayTrace(p);
    CoreConfig cfg;
    cfg.num_slots = 4;
    for (auto _ : state) {
        MainMemory mem;
        w.program.loadInto(mem);
        w.init(mem);
        MultithreadedProcessor cpu(w.program, mem, cfg);
        benchmark::DoNotOptimize(cpu.run().cycles);
    }
}
BENCHMARK(BM_RayTracePixel);

static void
BM_Assembler(benchmark::State &state)
{
    SynthParams p;
    p.seed = 55;
    for (auto _ : state) {
        p.seed += 1;    // defeat caching, keep work comparable
        const Program prog = makeSyntheticKernel(p);
        benchmark::DoNotOptimize(prog.text.size());
    }
}
BENCHMARK(BM_Assembler);

BENCHMARK_MAIN();
