/**
 * @file
 * Table 3 — "Tradeoff between speed-up and employed parallelism":
 * hybrid (D,S)-processors, where each of S thread slots issues up
 * to D instructions per cycle, with eight functional units (the
 * seven heterogeneous units plus a second load/store unit).
 *
 * As in section 3.3, the (D,1) processors use the base RISC
 * pipeline (Figure 3b) and the multithreaded pipeline is used
 * whenever S > 1. The paper's finding: raising S beats raising D.
 */

#include "bench_common.hh"

using namespace smtsim;
using namespace smtsim::bench;

namespace
{

double
paperValue(int d, int s)
{
    if (d == 1) {
        if (s == 2) return 2.02;
        if (s == 4) return 3.72;
        if (s == 8) return 5.79;
    }
    if (d == 2) {
        if (s == 1) return 1.31;
        if (s == 2) return 2.43;
        if (s == 4) return 4.37;
    }
    if (d == 4) {
        if (s == 1) return 1.52;
        if (s == 2) return 2.79;
    }
    if (d == 8 && s == 1)
        return 1.68;    // partially garbled in the scan
    return 0.0;
}

} // namespace

namespace
{

std::string
pointId(int d, int s)
{
    return "ray/d" + std::to_string(d) + "/s" + std::to_string(s);
}

} // namespace

int
main()
{
    // Build the whole (D,S) grid as lab jobs — the (D,1) points on
    // the baseline engine, S > 1 on the multithreaded core — and
    // run them in parallel through the experiment executor.
    const lab::WorkloadSpec ray = standardRayTraceSpec();
    std::vector<lab::Job> jobs;
    jobs.push_back(lab::baselineJob("ray/baseline", ray));
    for (int d : {1, 2, 4, 8}) {
        for (int s : {1, 2, 4, 8}) {
            if (d * s > 8)
                continue;
            if (s == 1) {
                BaselineConfig cfg;
                cfg.width = d;
                cfg.fus.load_store = 2;
                jobs.push_back(
                    lab::baselineJob(pointId(d, s), ray, cfg));
            } else {
                CoreConfig cfg;
                cfg.width = d;
                cfg.num_slots = s;
                cfg.fus.load_store = 2;
                jobs.push_back(
                    lab::coreJob(pointId(d, s), ray, cfg));
            }
        }
    }
    const lab::ResultSet rs =
        lab::runJobs(jobs, benchLabOptions());
    const RunStats base = mustStats(rs, "ray/baseline");

    TextTable table(
        "Table 3: speed-up of hybrid (D,S)-processors "
        "(8 functional units; D*S <= 8)");
    table.addRow({"D (width)", "S (slots)", "speed-up", "paper"});

    for (int d : {1, 2, 4, 8}) {
        for (int s : {1, 2, 4, 8}) {
            if (d * s > 8)
                continue;
            const RunStats stats = mustStats(rs, pointId(d, s));
            const double paper = paperValue(d, s);
            table.addRow({std::to_string(d), std::to_string(s),
                          fmt(speedup(base, stats)),
                          paper > 0 ? fmt(paper) : "-"});
        }
    }
    table.print(std::cout);

    std::printf(
        "\nThe paper's conclusion to verify: for equal issue\n"
        "bandwidth D*S, larger S wins (e.g. (1,8) > (2,4) > (4,2) "
        "> (8,1)).\n");
    return 0;
}
