/**
 * @file
 * Extension experiment X1 (the concurrent multithreading of section
 * 2.1.3, whose evaluation the paper deferred): remote-memory
 * latency sweep with more context frames than thread slots. Data-
 * absence traps switch contexts; extra frames keep the slots busy
 * during the remote round trips.
 */

#include <cstdio>
#include <iostream>

#include "asmr/assembler.hh"
#include "base/table.hh"
#include "base/strutil.hh"
#include "core/processor.hh"
#include "mem/memory.hh"

using namespace smtsim;

namespace
{

constexpr Addr kRemoteBase = 0x00400000;
constexpr int kWordsPerCtx = 24;

const char *kWorker = R"(
main:   blez r2, done
loop:   lw   r3, 0(r1)
        add  r4, r4, r3
        mul  r5, r4, r3
        xor  r5, r5, r4
        addi r1, r1, 4
        addi r2, r2, -1
        bgtz r2, loop
        sw   r4, 0(r6)
done:   halt
        .data
outs:   .word 0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0
)";

Cycle
runConfig(const Program &prog, int slots, int frames, int contexts,
          Cycle latency, std::uint64_t *switches)
{
    MainMemory mem;
    prog.loadInto(mem);
    for (int i = 0; i < kWordsPerCtx * contexts; ++i) {
        mem.write32(kRemoteBase + static_cast<Addr>(4 * i),
                    static_cast<std::uint32_t>(i * 3 + 1));
    }

    CoreConfig cfg;
    cfg.num_slots = slots;
    cfg.num_frames = frames;
    cfg.remote.base = kRemoteBase;
    cfg.remote.size = 0x100000;
    cfg.remote.latency = latency;

    MultithreadedProcessor cpu(prog, mem, cfg);
    const Addr outs = prog.symbol("outs");
    for (int c = 0; c < contexts; ++c) {
        std::array<std::uint32_t, kNumRegs> regs{};
        regs[1] =
            kRemoteBase + static_cast<Addr>(4 * c * kWordsPerCtx);
        regs[2] = kWordsPerCtx;
        regs[6] = outs + static_cast<Addr>(4 * c);
        cpu.spawnContext(prog.entry, regs);
    }
    const RunStats stats = cpu.run();
    if (!stats.finished) {
        std::fprintf(stderr, "concurrent bench did not finish\n");
        std::exit(1);
    }
    if (switches)
        *switches = stats.context_switches;
    return stats.cycles;
}

} // namespace

int
main()
{
    const Program prog = assemble(kWorker);

    TextTable table(
        "Concurrent multithreading: remote-latency hiding "
        "(2 slots, 8 worker contexts, 24 remote words each)");
    table.addRow({"remote latency", "no spare frames",
                  "8 spare frames", "gain", "switches"});

    for (Cycle latency : {25, 50, 100, 200, 400, 800}) {
        // Without spare frames only 2 contexts can be resident:
        // run the 8 contexts in batches of 2 by giving the
        // processor exactly two frames 4 times.
        Cycle no_spare = 0;
        for (int batch = 0; batch < 4; ++batch) {
            // frames = 2 workers + the (idle) entry context
            no_spare +=
                runConfig(prog, 2, 3, 2, latency, nullptr);
        }

        std::uint64_t switches = 0;
        const Cycle spare =
            runConfig(prog, 2, 10, 8, latency, &switches);

        table.addRow({std::to_string(latency),
                      std::to_string(no_spare),
                      std::to_string(spare),
                      formatDouble(static_cast<double>(no_spare) /
                                       static_cast<double>(spare),
                                   2) +
                          "x",
                      std::to_string(switches)});
    }
    table.print(std::cout);
    std::printf("\nWith spare context frames the slots stay busy "
                "during remote accesses;\nthe gain grows with the "
                "remote latency (section 2.1.3's goal).\n");
    return 0;
}
