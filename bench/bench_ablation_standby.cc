/**
 * @file
 * Ablation: standby stations on/off across workloads. Table 2
 * showed only 0-2.2% on the ray tracer ("due to poor parallelism
 * within an instruction stream"); the paper predicts larger gains
 * for threads rich in fine-grained parallelism, which the synthetic
 * ILP-heavy kernel verifies.
 */

#include "bench_common.hh"
#include "core/processor.hh"
#include "trace/synth.hh"

using namespace smtsim;
using namespace smtsim::bench;

namespace
{

Cycle
runSynth(const Program &prog, int slots, bool standby)
{
    MainMemory mem;
    prog.loadInto(mem);
    CoreConfig cfg;
    cfg.num_slots = slots;
    cfg.standby_enabled = standby;
    MultithreadedProcessor cpu(prog, mem, cfg);
    const RunStats s = cpu.run();
    if (!s.finished)
        std::exit(1);
    return s.cycles;
}

} // namespace

int
main()
{
    TextTable table("Standby-station ablation (cycles; gain = "
                    "without/with - 1)");
    table.addRow({"workload", "slots", "with standby",
                  "without standby", "gain %"});

    // Ray tracing (the paper's Table 2 columns).
    const Workload ray = standardRayTrace();
    for (int slots : {2, 4, 8}) {
        CoreConfig cfg;
        cfg.num_slots = slots;
        cfg.fus.load_store = 2;
        const RunStats with = mustRun(runCore(ray, cfg), "with");
        cfg.standby_enabled = false;
        const RunStats without =
            mustRun(runCore(ray, cfg), "without");
        table.addRow(
            {"raytrace", std::to_string(slots),
             std::to_string(with.cycles),
             std::to_string(without.cycles),
             fmt(100.0 * (static_cast<double>(without.cycles) /
                              static_cast<double>(with.cycles) -
                          1.0),
                 2)});
    }

    // ILP-rich synthetic kernel: wide mix, low dependence locality.
    SynthParams sp;
    sp.seed = 11;
    sp.iterations = 64;
    sp.insns_per_block = 40;
    sp.dependence_locality = 0.15;
    sp.parallel = true;
    const Program ilp = makeSyntheticKernel(sp);
    for (int slots : {2, 4, 8}) {
        const Cycle with = runSynth(ilp, slots, true);
        const Cycle without = runSynth(ilp, slots, false);
        table.addRow(
            {"synthetic-ilp", std::to_string(slots),
             std::to_string(with), std::to_string(without),
             fmt(100.0 * (static_cast<double>(without) /
                              static_cast<double>(with) -
                          1.0),
                 2)});
    }

    // Serial synthetic kernel: little to gain.
    sp.dependence_locality = 0.95;
    sp.seed = 12;
    const Program serial = makeSyntheticKernel(sp);
    for (int slots : {4}) {
        const Cycle with = runSynth(serial, slots, true);
        const Cycle without = runSynth(serial, slots, false);
        table.addRow(
            {"synthetic-serial", std::to_string(slots),
             std::to_string(with), std::to_string(without),
             fmt(100.0 * (static_cast<double>(without) /
                              static_cast<double>(with) -
                          1.0),
                 2)});
    }

    table.print(std::cout);
    std::printf("\npaper: 0-2.2%% on ray tracing; 'greater "
                "improvement' expected for threads rich in "
                "fine-grained parallelism\n");
    return 0;
}
