/**
 * @file
 * Table 2 — "Speed-up ratio by parallel multithreading".
 *
 * Ray-tracing workload; thread slots {1, 2, 4, 8} x load/store
 * units {1, 2} x standby stations {without, with}. The speed-up
 * denominator is the sequential program on the base RISC processor
 * (one unit of each class, one load/store unit), as in section 3.1.
 *
 * Also reports the busiest-unit utilization, reproducing the text's
 * observation that the load/store unit saturates (99%) at 8 slots
 * with one unit.
 */

#include "bench_common.hh"

using namespace smtsim;
using namespace smtsim::bench;

namespace
{

/** Paper values for the matching cell (slots x lsu x standby). */
double
paperValue(int slots, int lsu, bool standby)
{
    // Rows: 2, 4, 8 thread slots (Table 2).
    if (lsu == 1 && !standby) {
        if (slots == 2) return 1.79;
        if (slots == 4) return 2.84;
        if (slots == 8) return 3.22;
    } else if (lsu == 1 && standby) {
        if (slots == 2) return 1.83;
        if (slots == 4) return 2.89;
        if (slots == 8) return 3.22;
    } else if (lsu == 2 && !standby) {
        if (slots == 2) return 2.01;
        if (slots == 4) return 3.68;
        if (slots == 8) return 5.68;
    } else {
        if (slots == 2) return 2.02;
        if (slots == 4) return 3.72;
        if (slots == 8) return 5.79;
    }
    return 0.0;
}

} // namespace

namespace
{

std::string
pointId(int slots, int lsu, bool standby)
{
    return "ray/s" + std::to_string(slots) + "/ls" +
           std::to_string(lsu) + (standby ? "/sb" : "/nosb");
}

} // namespace

int
main()
{
    // The whole grid — baseline denominator plus 16 core points —
    // goes through the smtsim::lab executor: all points run
    // concurrently across host threads, then the table is printed
    // from the ResultSet in the original order.
    const lab::WorkloadSpec ray = standardRayTraceSpec();
    std::vector<lab::Job> jobs;
    jobs.push_back(lab::baselineJob("ray/baseline", ray));
    for (int lsu : {1, 2}) {
        for (bool standby : {false, true}) {
            for (int slots : {1, 2, 4, 8}) {
                CoreConfig cfg;
                cfg.num_slots = slots;
                cfg.fus.load_store = lsu;
                cfg.standby_enabled = standby;
                cfg.rotation_interval = 8;
                jobs.push_back(lab::coreJob(
                    pointId(slots, lsu, standby), ray, cfg));
            }
        }
    }
    const lab::ResultSet rs =
        lab::runJobs(jobs, benchLabOptions());

    const RunStats base = mustStats(rs, "ray/baseline");
    std::printf("sequential baseline: %llu cycles, %llu insns\n\n",
                (unsigned long long)base.cycles,
                (unsigned long long)base.instructions);

    TextTable table(
        "Table 2: speed-up ratio by parallel multithreading "
        "(ray tracing, rotation interval 8)");
    table.addRow({"slots", "ls units", "standby", "speed-up",
                  "paper", "busiest FU util %", "ls util %"});

    for (int lsu : {1, 2}) {
        for (bool standby : {false, true}) {
            for (int slots : {1, 2, 4, 8}) {
                const RunStats s = mustStats(
                    rs, pointId(slots, lsu, standby));
                const double ls_util = std::max(
                    s.unitUtilization(FuClass::LoadStore, 0),
                    s.unitUtilization(FuClass::LoadStore, 1));
                const double paper =
                    paperValue(slots, lsu, standby);
                table.addRow(
                    {std::to_string(slots), std::to_string(lsu),
                     standby ? "with" : "without",
                     fmt(speedup(base, s)),
                     paper > 0 ? fmt(paper) : "-",
                     fmt(s.busiestUnitUtilization(), 1),
                     fmt(ls_util, 1)});
            }
        }
    }
    table.print(std::cout);
    return 0;
}
