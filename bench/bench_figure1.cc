/**
 * @file
 * Figure 1 — the utilization argument that motivates the whole
 * design: measure each functional unit's single-thread utilization
 * U = N*L/T, predict the multithreaded speed-up bound
 * min(S, units/U) per class, and compare with the simulated
 * machine. "Three processors could be united into one so that the
 * utilization of the busiest functional unit could be expected to
 * be improved nearly to 30x3 = 90%."
 */

#include "bench_common.hh"
#include "harness/analytic.hh"

using namespace smtsim;
using namespace smtsim::bench;

int
main()
{
    const Workload ray = standardRayTrace();

    for (int lsu : {1, 2}) {
        FuPoolConfig pool;
        pool.load_store = lsu;

        // Single-thread reference on the multithreaded pipeline.
        CoreConfig one;
        one.num_slots = 1;
        one.fus = pool;
        const RunStats ref =
            mustRun(runCore(ray, one), "single-thread reference");
        const AnalyticModel model = buildAnalyticModel(ref);

        TextTable table(
            "Figure 1 check, " + std::to_string(lsu) +
            " load/store unit(s): predicted bound vs simulated");
        table.addRow({"S", "analytic bound", "simulated",
                      "sim/bound", "bottleneck"});
        for (int slots : {1, 2, 4, 8, 16}) {
            CoreConfig cfg;
            cfg.num_slots = slots;
            cfg.fus = pool;
            const RunStats s = mustRun(
                runCore(ray, cfg),
                "slots " + std::to_string(slots));
            const double sim =
                static_cast<double>(ref.cycles) /
                static_cast<double>(s.cycles);
            const double bound = model.speedupBound(slots, pool);
            table.addRow({std::to_string(slots), fmt(bound),
                          fmt(sim), fmt(sim / bound),
                          fuClassName(model.bottleneck(pool))});
        }
        table.print(std::cout);
        std::cout << '\n';
    }

    std::printf("the simulated machine approaches (and never "
                "exceeds) the analytic\ncapacity bound; the gap is "
                "the pipeline's own dependence and branch\n"
                "overheads that multithreading cannot remove.\n");
    return 0;
}
