/**
 * @file
 * Extension experiment X3 — finite cache effects (the paper's
 * concluding remarks: "We are currently working on evaluating
 * finite cache effects"). Data-cache size sweep on the ray tracer:
 * multithreading both tolerates misses (other threads fill the
 * latency) and amplifies them (the threads share one cache).
 */

#include "bench_common.hh"

using namespace smtsim;
using namespace smtsim::bench;

int
main()
{
    const Workload ray = standardRayTrace();

    TextTable table(
        "Finite data cache (32-byte lines, 20-cycle miss penalty), "
        "ray tracing, 2 load/store units");
    table.addRow({"dcache", "slots", "cycles", "vs perfect",
                  "miss rate %"});

    for (int slots : {1, 4, 8}) {
        CoreConfig base_cfg;
        base_cfg.num_slots = slots;
        base_cfg.fus.load_store = 2;
        const RunStats perfect = mustRun(
            runCore(ray, base_cfg),
            "perfect s" + std::to_string(slots));

        table.addRow({"perfect", std::to_string(slots),
                      std::to_string(perfect.cycles), "1.00",
                      "-"});

        for (Addr size : {16384u, 2048u, 512u}) {
            CoreConfig cfg = base_cfg;
            cfg.dcache.size_bytes = size;
            cfg.dcache.line_bytes = 32;
            cfg.dcache.miss_penalty = 20;
            const RunStats s = mustRun(
                runCore(ray, cfg),
                "dcache " + std::to_string(size));
            const double miss_rate =
                100.0 * static_cast<double>(s.dcache_misses) /
                static_cast<double>(s.dcache_hits +
                                    s.dcache_misses);
            table.addRow(
                {std::to_string(size) + "B",
                 std::to_string(slots), std::to_string(s.cycles),
                 fmt(static_cast<double>(s.cycles) /
                     static_cast<double>(perfect.cycles)),
                 fmt(miss_rate, 1)});
        }
    }
    table.print(std::cout);

    std::printf(
        "\nslowdown factor vs. perfect caches shrinks as thread "
        "slots are added\n(parallel multithreading hides part of "
        "the miss latency), until the\nshared cache starts "
        "thrashing.\n");
    return 0;
}
