/**
 * @file
 * Static-verifier throughput microbenchmarks (google-benchmark):
 * how fast analysis::lint() turns a program into a verdict. Not a
 * paper experiment — the lint pass sits on the smtsim-run --lint
 * hot path and in smtsim-serve's admission gate, where a slow
 * verdict delays every submission, so its cost is tracked like
 * simulator throughput.
 *
 * Rows:
 *  - clean first-party workloads (the common admission case),
 *  - a flagged concurrency bug (verdict with diagnostics),
 *  - the synthetic fuzz kernel (large straight-line code),
 *  - the cross-slot passes at growing slot counts (the per-slot
 *    projection is the only part that scales with --slots).
 *
 * Every row reports insns/s (program words verified per second).
 *
 * scripts/bench_lint.sh runs this binary and emits BENCH_lint.json
 * for before/after tracking.
 */

#include <benchmark/benchmark.h>

#include <cstdint>

#include "analysis/lint.hh"
#include "asmr/assembler.hh"
#include "fuzz/lintoracle.hh"
#include "trace/synth.hh"
#include "workloads/workloads.hh"

using namespace smtsim;

namespace
{

void
reportRate(benchmark::State &state, std::uint64_t insns)
{
    state.counters["insns/s"] = benchmark::Counter(
        static_cast<double>(insns), benchmark::Counter::kIsRate);
}

/** Lint @p prog once per iteration with @p opts. */
void
lintLoop(benchmark::State &state, const Program &prog,
         const analysis::LintOptions &opts)
{
    std::uint64_t insns = 0;
    for (auto _ : state) {
        const analysis::LintReport r = analysis::lint(prog, opts);
        benchmark::DoNotOptimize(r.diags.data());
        insns += prog.text.size();
    }
    reportRate(state, insns);
}

void
BM_LintTokenRing(benchmark::State &state)
{
    const Workload w = makeTokenRing({});
    lintLoop(state, w.program, {});
}
BENCHMARK(BM_LintTokenRing);

void
BM_LintMatmul(benchmark::State &state)
{
    MatmulParams p;
    p.n = 8;
    const Workload w = makeMatmul(p);
    lintLoop(state, w.program, {});
}
BENCHMARK(BM_LintMatmul);

void
BM_LintFlaggedRing(benchmark::State &state)
{
    // A wait-for cycle: the verdict carries diagnostics, the path
    // the serve admission gate takes when rejecting.
    const Program prog = assemble(
        fuzz::renderBugProgram(fuzz::BugClass::WaitCycle, 1));
    lintLoop(state, prog, {});
}
BENCHMARK(BM_LintFlaggedRing);

void
BM_LintSynthetic(benchmark::State &state)
{
    SynthParams p;
    p.seed = 101;
    p.iterations = 256;
    p.insns_per_block = 32;
    lintLoop(state, makeSyntheticKernel(p), {});
}
BENCHMARK(BM_LintSynthetic);

void
BM_LintSlots(benchmark::State &state)
{
    const Workload w = makeTokenRing({});
    analysis::LintOptions opts;
    opts.slots = static_cast<int>(state.range(0));
    lintLoop(state, w.program, opts);
}
BENCHMARK(BM_LintSlots)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

} // namespace

BENCHMARK_MAIN();
