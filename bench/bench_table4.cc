/**
 * @file
 * Table 4 — "Comparison of static code scheduling" on Livermore
 * Kernel 1 (average execution cycles per iteration).
 *
 * Strategies: non-optimized (source order), strategy A (simple list
 * scheduling) and strategy B (list scheduling with a resource
 * reservation table and a standby table). One load/store unit;
 * explicit-rotation mode with a change-priority instruction per
 * iteration, as in section 2.3.2.
 *
 * The paper's floor: 3 loads + 1 store per iteration at issue
 * latency 2 mean at least 8 cycles per iteration.
 */

#include "bench_common.hh"
#include "sched/list_scheduler.hh"
#include "sched/standby_scheduler.hh"
#include "workloads/workloads.hh"

using namespace smtsim;
using namespace smtsim::bench;

namespace
{

double
paperValue(const std::string &strategy, int slots)
{
    // Table 4 is partially garbled in the scan; the legible cells:
    // non-optimized 1 slot = 50, strategy A 1 slot = 42, and the
    // 6..8-slot region saturating at ~8.x cycles/iteration.
    if (strategy == "none" && slots == 1) return 50.0;
    if (strategy == "A" && slots == 1) return 42.0;
    if (slots == 6) return 8.83;
    if (slots == 8) return 8.0;
    return 0.0;
}

} // namespace

int
main()
{
    constexpr int kIters = 400;

    Lk1Params params;
    params.n = kIters;
    params.parallel = true;

    const std::vector<Insn> body = lk1LoopBody();
    const ScheduleResult sched_a = listSchedule(body);

    TextTable table(
        "Table 4: static code scheduling of Livermore Kernel 1 "
        "(cycles per iteration, one load/store unit)");
    table.addRow({"slots", "non-optimized", "strategy A",
                  "strategy B", "paper (legible cells)"});

    for (int slots : {1, 2, 3, 4, 6, 8}) {
        CoreConfig cfg;
        cfg.num_slots = slots;
        cfg.rotation_mode = RotationMode::Explicit;

        StandbySchedulerConfig bcfg;
        bcfg.num_slots = slots;
        const ScheduleResult sched_b = standbySchedule(body, bcfg);

        const Workload plain = makeLivermore1(params);
        const Workload wa = makeLivermore1(params, &sched_a.order);
        const Workload wb = makeLivermore1(params, &sched_b.order);

        const double c0 = static_cast<double>(
            mustRun(runCore(plain, cfg), "lk1 plain").cycles);
        const double ca = static_cast<double>(
            mustRun(runCore(wa, cfg), "lk1 A").cycles);
        const double cb = static_cast<double>(
            mustRun(runCore(wb, cfg), "lk1 B").cycles);

        std::string paper_note;
        if (paperValue("none", slots) > 0) {
            paper_note += "none=" + fmt(paperValue("none", slots),
                                        1);
        }
        if (paperValue("A", slots) > 0)
            paper_note += " A=" + fmt(paperValue("A", slots), 1);
        if (slots >= 6)
            paper_note = "~" + fmt(paperValue("", slots), 2);

        table.addRow({std::to_string(slots), fmt(c0 / kIters),
                      fmt(ca / kIters), fmt(cb / kIters),
                      paper_note.empty() ? "-" : paper_note});
    }
    table.print(std::cout);
    std::printf("\nlower bound: (3 loads + 1 store) x issue "
                "latency 2 = 8 cycles/iteration\n");
    return 0;
}
