/**
 * @file
 * Shared helpers for the table-reproduction benchmark binaries.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation (section 3) and prints, side by side, the values the
 * paper reports and the values measured on this reproduction. The
 * absolute numbers differ (different compiler, different workload
 * build), but the shape — who wins, by what factor, where the
 * saturation points fall — is the reproduction target. Results are
 * summarized in EXPERIMENTS.md.
 */

#ifndef SMTSIM_BENCH_BENCH_COMMON_HH
#define SMTSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "base/strutil.hh"
#include "base/table.hh"
#include "harness/runner.hh"

namespace smtsim::bench
{

/** Standard ray-tracing workload used by the Table 2/3 benches. */
inline Workload
standardRayTrace()
{
    RayTraceParams p;
    p.width = 24;
    p.height = 24;
    p.num_spheres = 5;
    p.seed = 42;
    return makeRayTrace(p);
}

/** Run and abort loudly if the outcome is wrong. */
inline RunStats
mustRun(const Outcome &outcome, const std::string &what)
{
    if (!outcome.ok) {
        std::cerr << "BENCH FAILURE (" << what
                  << "): " << outcome.error << std::endl;
        std::exit(1);
    }
    return outcome.stats;
}

inline std::string
fmt(double v, int prec = 2)
{
    return formatDouble(v, prec);
}

} // namespace smtsim::bench

#endif // SMTSIM_BENCH_BENCH_COMMON_HH
