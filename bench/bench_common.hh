/**
 * @file
 * Shared helpers for the table-reproduction benchmark binaries.
 *
 * Each bench binary regenerates one table or figure of the paper's
 * evaluation (section 3) and prints, side by side, the values the
 * paper reports and the values measured on this reproduction. The
 * absolute numbers differ (different compiler, different workload
 * build), but the shape — who wins, by what factor, where the
 * saturation points fall — is the reproduction target. Results are
 * summarized in EXPERIMENTS.md.
 */

#ifndef SMTSIM_BENCH_BENCH_COMMON_HH
#define SMTSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include <unistd.h>

#include "base/strutil.hh"
#include "base/table.hh"
#include "harness/runner.hh"
#include "lab/lab.hh"

namespace smtsim::bench
{

/** Standard ray-tracing workload used by the Table 2/3 benches. */
inline Workload
standardRayTrace()
{
    RayTraceParams p;
    p.width = 24;
    p.height = 24;
    p.num_spheres = 5;
    p.seed = 42;
    return makeRayTrace(p);
}

/** The same workload as a lab spec (identical parameters). */
inline lab::WorkloadSpec
standardRayTraceSpec()
{
    return lab::WorkloadSpec::rayTrace(/*width=*/24, /*height=*/24,
                                       /*spheres=*/5, /*seed=*/42);
}

/**
 * Execution policy for the grid-sweep benches. Defaults: all host
 * cores, no cache (a stale cache must never alter published table
 * values). Overridable for measurement runs:
 *   SMTSIM_LAB_JOBS=N        worker threads (1 = the serial path)
 *   SMTSIM_LAB_CACHE_DIR=DIR reuse results across reruns
 * A progress line is shown when stderr is a terminal.
 */
inline lab::LabOptions
benchLabOptions()
{
    lab::LabOptions opts;
    if (const char *jobs = std::getenv("SMTSIM_LAB_JOBS"))
        opts.num_threads = std::atoi(jobs);
    if (const char *dir = std::getenv("SMTSIM_LAB_CACHE_DIR"))
        opts.cache_dir = dir;
    if (isatty(fileno(stderr)))
        opts.progress = lab::stderrProgress();
    return opts;
}

/** Fetch a sweep point's stats; abort loudly when it failed. */
inline RunStats
mustStats(const lab::ResultSet &rs, const std::string &id)
{
    const lab::JobResult *r = rs.find(id);
    if (!r || !r->ok) {
        std::cerr << "BENCH FAILURE (" << id << "): "
                  << (r ? r->error : "job missing") << std::endl;
        std::exit(1);
    }
    return r->stats;
}

/** Run and abort loudly if the outcome is wrong. */
inline RunStats
mustRun(const Outcome &outcome, const std::string &what)
{
    if (!outcome.ok) {
        std::cerr << "BENCH FAILURE (" << what
                  << "): " << outcome.error << std::endl;
        std::exit(1);
    }
    return outcome.stats;
}

inline std::string
fmt(double v, int prec = 2)
{
    return formatDouble(v, prec);
}

} // namespace smtsim::bench

#endif // SMTSIM_BENCH_BENCH_COMMON_HH
