/**
 * @file
 * Extension experiment X2 — the queue-register motivation of
 * section 2.3.1, quantified: a first-order linear recurrence
 * (X[k+1] = X[k] + Y[k]) executed doacross, with the loop-carried
 * value relayed either through the queue-register ring or through
 * memory with flag spin-waiting ("One solution would be
 * communication through memory. But in order to reduce the
 * communication overhead, we provide the processor with queue
 * registers.").
 */

#include "bench_common.hh"

using namespace smtsim;
using namespace smtsim::bench;

int
main()
{
    constexpr int kIters = 300;

    RecurrenceParams p;
    p.n = kIters;

    p.variant = RecurrenceVariant::Sequential;
    const Workload seq = makeRecurrence(p);
    p.variant = RecurrenceVariant::DoacrossQueue;
    const Workload queue = makeRecurrence(p);
    p.variant = RecurrenceVariant::DoacrossMemory;
    const Workload memory = makeRecurrence(p);

    CoreConfig scfg;
    scfg.num_slots = 1;
    const RunStats s = mustRun(runCore(seq, scfg), "sequential");
    std::printf("sequential (1 slot): %s cycles/iteration\n\n",
                fmt(static_cast<double>(s.cycles) / kIters)
                    .c_str());

    TextTable table("Doacross X[k+1] = X[k] + Y[k]: queue "
                    "registers vs memory (cycles per iteration)");
    table.addRow({"slots", "queue registers", "memory + flags",
                  "queue advantage"});

    for (int slots : {2, 3, 4, 6, 8}) {
        CoreConfig qcfg;
        qcfg.num_slots = slots;
        qcfg.rotation_mode = RotationMode::Explicit;
        const RunStats q =
            mustRun(runCore(queue, qcfg), "queue doacross");

        CoreConfig mcfg;
        mcfg.num_slots = slots;
        const RunStats m =
            mustRun(runCore(memory, mcfg), "memory doacross");

        table.addRow(
            {std::to_string(slots),
             fmt(static_cast<double>(q.cycles) / kIters),
             fmt(static_cast<double>(m.cycles) / kIters),
             fmt(static_cast<double>(m.cycles) /
                 static_cast<double>(q.cycles)) +
                 "x"});
    }
    table.print(std::cout);

    std::printf(
        "\nqueue registers carry the recurrence below the "
        "sequential cost;\nmemory mailboxes add loads/stores and "
        "spin traffic that can make\ndoacross SLOWER than "
        "sequential execution — the paper's point.\n");
    return 0;
}
